/**
 * @file
 * Accuracy study (paper Sections 1/3 prose): error of the simulated
 * execution time and CPI relative to the cycle-by-cycle gold standard
 * as the slack bound grows, up to unbounded slack. The paper's
 * observation is that even unbounded slack usually stays within
 * single-digit percent error on execution time.
 *
 * Flags: --kernel=NAME --uops=N --serial
 */

#include <cmath>
#include <iostream>

#include "common.hh"
#include "stats/table.hh"
#include "table_io.hh"

using namespace slacksim;
using namespace slacksim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    checkFlags(opts, "accuracy_error: error vs cycle-by-cycle as slack grows");
    const std::uint64_t uops = uopBudget(opts, 60000);
    banner("Accuracy: execution-time / CPI error vs cycle-by-cycle as "
           "slack grows",
           opts, uops);

    for (const auto &kernel : kernelList(opts)) {
        SimConfig cc = paperSetup(kernel, uops);
        applyCommonFlags(opts, cc);
        cc.engine.scheme = SchemeKind::CycleByCycle;
        const RunResult r_cc = runSimulation(cc);

        Table table("Accuracy [" + kernel + "] (CC exec = " +
                    std::to_string(r_cc.execCycles) + " cycles)");
        table.setHeader({"scheme", "exec cycles", "exec err %",
                         "CPI err %", "viol rate %/cyc",
                         "sim time (s)"});

        auto report = [&](const std::string &label,
                          const RunResult &r) {
            const double exec_err =
                100.0 *
                (static_cast<double>(r.execCycles) -
                 static_cast<double>(r_cc.execCycles)) /
                static_cast<double>(r_cc.execCycles);
            const double cpi_err =
                100.0 * (r.cpi() - r_cc.cpi()) / r_cc.cpi();
            table.cell(label)
                .cell(r.execCycles)
                .cell(exec_err, 2)
                .cell(cpi_err, 2)
                .cell(formatDouble(r.violationRate() * 100.0, 4))
                .cell(r.host.wallSeconds, 3)
                .endRow();
        };

        report("CC", r_cc);
        for (const Tick bound : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
            SimConfig config = paperSetup(kernel, uops);
            applyCommonFlags(opts, config);
            config.engine.scheme = SchemeKind::Bounded;
            config.engine.slackBound = bound;
            report("S" + std::to_string(bound), runSimulation(config));
        }
        {
            SimConfig config = paperSetup(kernel, uops);
            applyCommonFlags(opts, config);
            config.engine.scheme = SchemeKind::Unbounded;
            report("unbounded", runSimulation(config));
        }

        table.print(std::cout);
        std::cout << "\n";
        emitCsv(opts, {&table});
    }
    return 0;
}
