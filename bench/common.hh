/**
 * @file
 * Shared bench-harness helpers: the paper's experimental setup scaled
 * to tractable run lengths, plus flag handling common to every
 * table/figure binary.
 *
 * Scaling note (see EXPERIMENTS.md): the paper simulates 100M
 * committed instructions per run on a 2x4-core Xeon host. These
 * harnesses default to much shorter windows so the full suite runs in
 * minutes inside a 1-CPU container; pass --uops=... to lengthen runs.
 */

#ifndef SLACKSIM_BENCH_COMMON_HH
#define SLACKSIM_BENCH_COMMON_HH

#include <initializer_list>
#include <iostream>
#include <string>
#include <vector>

#include "core/run.hh"
#include "obs/obs_flags.hh"
#include "util/logging.hh"
#include "util/options.hh"

namespace slacksim::bench {

/**
 * Flags every table/figure harness accepts: the shared run knobs,
 * CSV export, and the observability outputs. Harness-specific flags
 * ride in via @p extra.
 */
inline std::vector<OptionSpec>
commonSpecs(std::initializer_list<OptionSpec> extra = {})
{
    std::vector<OptionSpec> specs = {
        {"uops", "N", "committed micro-op budget per run"},
        {"kernel", "NAME", "run only this workload kernel"},
        {"cores", "N", "simulated core count (default 8)"},
        {"serial", "", "use the serial reference engine"},
        {"verbose", "", "keep warn/inform chatter on"},
        {"csv", "PREFIX", "also write each table as PREFIX<table>.csv"},
    };
    specs.insert(specs.end(), extra.begin(), extra.end());
    for (const auto &spec : obs::obsOptionSpecs())
        specs.push_back(spec);
    return specs;
}

/** --help / unknown-flag handling for a bench harness. */
inline void
checkFlags(const Options &opts, const std::string &tool,
           std::initializer_list<OptionSpec> extra = {})
{
    opts.enforceKnown(tool, commonSpecs(extra));
}

/** Paper Table 1 input sets (LU block 16; FFT scaled, see docs). */
inline SimConfig
paperSetup(const std::string &kernel, std::uint64_t max_uops)
{
    SimConfig config;
    config.workload.kernel = kernel;
    config.workload.numThreads = config.target.numCores;
    config.workload.bodies = 1024;   // Barnes: 1024 bodies
    config.workload.timesteps = 2;
    config.workload.fftPoints = 16384; // paper: 64K (see EXPERIMENTS)
    config.workload.matrixN = 256;   // LU: 256x256
    config.workload.blockB = 16;
    config.workload.molecules = 216; // Water-Nsq: 216 molecules
    config.engine.maxCommittedUops = max_uops;
    return config;
}

/** The four Splash benchmarks in paper order, or a --kernel override. */
inline std::vector<std::string>
kernelList(const Options &opts)
{
    const std::string one = opts.get("kernel", "");
    if (!one.empty())
        return {one};
    return {"barnes", "fft", "lu", "water"};
}

/** Shared flags: --uops, --serial, --quiet. */
inline std::uint64_t
uopBudget(const Options &opts, std::uint64_t fallback)
{
    return opts.getUint("uops", fallback);
}

inline bool
parallelHost(const Options &opts)
{
    return !opts.has("serial");
}

inline void
applyCommonFlags(const Options &opts, SimConfig &config)
{
    config.engine.parallelHost = parallelHost(opts);
    if (opts.has("cores")) {
        config.target.numCores =
            static_cast<std::uint32_t>(opts.getUint("cores", 8));
        config.workload.numThreads = config.target.numCores;
    }
    obs::applyObsOptions(opts, config.engine.obs);
    setQuietLogging(!opts.has("verbose"));
}

/** Announce a harness and its knobs on stdout. */
inline void
banner(const std::string &what, const Options &opts,
       std::uint64_t uops)
{
    std::cout << "# " << what << "\n"
              << "# host=" << (parallelHost(opts) ? "parallel" : "serial")
              << " uop-budget=" << uops
              << "  (paper: 100M instructions on 2x quad-core Xeon;"
              << " scaled, see EXPERIMENTS.md)\n\n";
}

} // namespace slacksim::bench

#endif // SLACKSIM_BENCH_COMMON_HH
