/**
 * @file
 * Table 4 reproduction: average distance (simulated cycles) from the
 * beginning of a violating checkpoint interval to its first tracked
 * violation — the expected rollback distance Dr — for intervals of
 * 10k, 50k and 100k cycles under the baseline adaptive scheme.
 *
 * Reported for both tracking variants (all violations / map-only),
 * like Table 3: on this host bus violations are frequent enough that
 * the all-violations distance hugs the interval start; the map-only
 * distances show the paper's growth with the interval length.
 *
 * Flags: --kernel=NAME --uops=N --serial
 */

#include <iostream>

#include "common.hh"
#include "stats/table.hh"
#include "table_io.hh"

using namespace slacksim;
using namespace slacksim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    checkFlags(opts, "table4_distance: first-violation distance in an interval");
    const std::uint64_t uops = uopBudget(opts, 400000);
    banner("Table 4: average distance of first violation within one "
           "interval (cycles)",
           opts, uops);

    for (const bool track_bus : {true, false}) {
        Table table(track_bus
                        ? "Table 4: mean first-violation distance "
                          "(bus+map tracked)"
                        : "Table 4 variant: map violations only");
        table.setHeader({"", "10K", "50K", "100K"});

        for (const auto &kernel : kernelList(opts)) {
            table.cell(kernel);
            for (const Tick interval : {10000u, 50000u, 100000u}) {
                SimConfig config = paperSetup(kernel, uops);
                applyCommonFlags(opts, config);
                config.engine.scheme = SchemeKind::Adaptive;
                config.engine.adaptive.targetViolationRate = 1e-4;
                config.engine.adaptive.violationBand = 0.05;
                config.engine.checkpoint.mode = CheckpointMode::Measure;
                config.engine.checkpoint.interval = interval;
                config.engine.checkpoint.rollbackOnBus = track_bus;
                config.engine.warmupUops = uops / 5;
                const RunResult r = runSimulation(config);
                const double d = r.meanFirstViolationDistance();
                table.cell(formatCycles(
                    static_cast<std::uint64_t>(d + 0.5)));
            }
            table.endRow();
        }

        table.print(std::cout);
        std::cout << "\n";
        emitCsv(opts, {&table});
    }
    return 0;
}
