/**
 * @file
 * Table 2 reproduction: wall-clock simulation time (seconds) of
 * cycle-by-cycle (CC), unbounded slack (SU), adaptive slack at a
 * 0.01% target violation rate with a 5% band (Adapt), and the same
 * adaptive scheme with periodic global checkpoints every 5k, 10k,
 * 50k and 100k simulated cycles.
 *
 * Expected shape (paper Section 5.2): SU runs 2-3x faster than CC;
 * Adapt sits in between; small checkpoint intervals are the slowest
 * configuration and times improve sharply by 50k with little change
 * at 100k.
 *
 * Our checkpoints are in-memory snapshots instead of the paper's
 * fork() (DESIGN.md S10), so checkpoint overheads are milder; pass
 * --forkemu-mb=N to add an emulated N-MB copy per checkpoint,
 * approximating fork()'s copy-on-write cost.
 *
 * Flags: --kernel=NAME --uops=N --serial --forkemu-mb=N
 */

#include <iostream>

#include "common.hh"
#include "stats/table.hh"
#include "table_io.hh"

using namespace slacksim;
using namespace slacksim::bench;

namespace {

SimConfig
adaptiveBase(const Options &opts, const std::string &kernel,
             std::uint64_t uops)
{
    SimConfig config = paperSetup(kernel, uops);
    applyCommonFlags(opts, config);
    config.engine.scheme = SchemeKind::Adaptive;
    config.engine.adaptive.targetViolationRate = 1e-4; // 0.01%
    config.engine.adaptive.violationBand = 0.05;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    checkFlags(opts, "table2_times: simulation times of the schemes",
               {{"forkemu-mb", "MB", "emulated fork-checkpoint copy arena size"}});
    const std::uint64_t uops = uopBudget(opts, 240000);
    const std::uint64_t forkemu_bytes =
        opts.getUint("forkemu-mb", 96) * 1024 * 1024;
    banner("Table 2: simulation time of schemes with 0.01% target "
           "violation rate (seconds)",
           opts, uops);

    for (const std::uint64_t extra_copy : {std::uint64_t{0},
                                           forkemu_bytes}) {
        Table table(extra_copy == 0
                        ? "Table 2: simulation time (sec), in-memory "
                          "checkpoints"
                        : "Table 2 variant: + " +
                              std::to_string(extra_copy >> 20) +
                              "MB emulated fork() copy per checkpoint "
                              "(--forkemu-mb)");
        table.setHeader({"", "CC", "SU", "Adapt", "5K", "10K", "50K",
                         "100K"});

        for (const auto &kernel : kernelList(opts)) {
            table.cell(kernel);
            {
                SimConfig config = paperSetup(kernel, uops);
                applyCommonFlags(opts, config);
                config.engine.scheme = SchemeKind::CycleByCycle;
                table.cell(runSimulation(config).host.wallSeconds, 2);
            }
            {
                SimConfig config = paperSetup(kernel, uops);
                applyCommonFlags(opts, config);
                config.engine.scheme = SchemeKind::Unbounded;
                table.cell(runSimulation(config).host.wallSeconds, 2);
            }
            {
                SimConfig config = adaptiveBase(opts, kernel, uops);
                table.cell(runSimulation(config).host.wallSeconds, 2);
            }
            for (const Tick interval :
                 {5000u, 10000u, 50000u, 100000u}) {
                SimConfig config = adaptiveBase(opts, kernel, uops);
                config.engine.checkpoint.mode = CheckpointMode::Measure;
                config.engine.checkpoint.interval = interval;
                config.engine.checkpoint.extraCopyBytes = extra_copy;
                table.cell(runSimulation(config).host.wallSeconds, 2);
            }
            table.endRow();
        }

        table.print(std::cout);
        std::cout << "\n";
        emitCsv(opts, {&table});
    }
    std::cout << "The emulated-copy variant approximates the paper's "
                 "fork() copy-on-write cost;\nthe paper's 5k/10k "
                 "columns being slower than CC needs that cost.\n";
    return 0;
}
