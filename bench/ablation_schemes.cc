/**
 * @file
 * Scheme ablation (paper Sections 1-2 and related-work comparison):
 * wall-clock speed and violation behavior of every synchronization
 * scheme — cycle-by-cycle, quantum (several quanta), bounded slack
 * (several bounds), unbounded, and adaptive — on the same workload
 * window. This is the design-space sweep DESIGN.md calls out: quantum
 * with q=1 should behave like CC (the paper's "critical latency is
 * one cycle" argument), while larger quanta trade accuracy for speed
 * exactly like slack does.
 *
 * Flags: --kernel=NAME --uops=N --serial
 */

#include <iostream>

#include "common.hh"
#include "stats/table.hh"
#include "table_io.hh"

using namespace slacksim;
using namespace slacksim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    checkFlags(opts, "ablation_schemes: every synchronization scheme on one window");
    const std::uint64_t uops = uopBudget(opts, 50000);
    banner("Ablation: all synchronization schemes on one window",
           opts, uops);

    for (const auto &kernel : kernelList(opts)) {
        Table table("Schemes [" + kernel + "]");
        table.setHeader({"scheme", "sim time (s)", "speedup vs CC",
                         "bus viol", "map viol", "max slack seen"});

        double t_cc = 0.0;
        auto run = [&](const std::string &label, SimConfig config) {
            const RunResult r = runSimulation(config);
            if (label == "CC")
                t_cc = r.host.wallSeconds;
            table.cell(label)
                .cell(r.host.wallSeconds, 3)
                .cell(t_cc > 0 ? t_cc / r.host.wallSeconds : 1.0, 2)
                .cell(r.violations.busViolations)
                .cell(r.violations.mapViolations)
                .cell(r.host.maxObservedSlack)
                .endRow();
        };

        SimConfig base = paperSetup(kernel, uops);
        applyCommonFlags(opts, base);

        {
            SimConfig c = base;
            c.engine.scheme = SchemeKind::CycleByCycle;
            run("CC", c);
        }
        for (const Tick q : {1u, 8u, 64u, 512u}) {
            SimConfig c = base;
            c.engine.scheme = SchemeKind::Quantum;
            c.engine.quantum = q;
            run("quantum " + std::to_string(q), c);
        }
        for (const Tick b : {1u, 8u, 64u, 512u}) {
            SimConfig c = base;
            c.engine.scheme = SchemeKind::Bounded;
            c.engine.slackBound = b;
            run("bounded " + std::to_string(b), c);
        }
        {
            SimConfig c = base;
            c.engine.scheme = SchemeKind::Unbounded;
            run("unbounded", c);
        }
        {
            SimConfig c = base;
            c.engine.scheme = SchemeKind::Adaptive;
            c.engine.adaptive.targetViolationRate = 1e-4;
            run("adaptive 0.01%", c);
        }
        for (const Tick b : {4u, 64u}) {
            SimConfig c = base;
            c.engine.scheme = SchemeKind::LaxP2P;
            c.engine.slackBound = b;
            run("lax-p2p " + std::to_string(b), c);
        }
        if (parallelHost(opts)) {
            SimConfig c = base;
            c.engine.scheme = SchemeKind::Bounded;
            c.engine.slackBound = 8;
            c.engine.managerClusters = 2;
            run("bounded 8 + 2 relays", c);
        }

        table.print(std::cout);
        std::cout << "\n";
        emitCsv(opts, {&table});
    }
    return 0;
}
