/**
 * @file
 * Figure 4 reproduction: simulation time vs measured violation rate
 * for
 *  (a) adaptive slack with violation band 0%  (12 target rates),
 *  (b) adaptive slack with violation band 5%  (12 target rates),
 *  (c) cycle-by-cycle plus bounded slack S1..S9.
 *
 * Expected shape (paper Section 4): adaptive always beats
 * cycle-by-cycle; a wider violation band is a bit faster than band 0;
 * bounded slack at a similar violation rate beats adaptive (the price
 * of the "safety net").
 *
 * Flags: --kernel=NAME (default fft, like the paper's single plot),
 *        --all (all four benchmarks), --uops=N --serial
 */

#include <iostream>

#include "common.hh"
#include "stats/table.hh"
#include "table_io.hh"

using namespace slacksim;
using namespace slacksim::bench;

namespace {

// The paper's 12 target violation rates are 0.01%..0.20% per cycle.
// This host's violation-rate floor sits about an order of magnitude
// higher (a 1-CPU container batches arrivals far more coarsely than
// the authors' 8-context Xeon), so the sweep defaults to the same
// 12-point structure scaled by --target-scale (default 10x). Pass
// --target-scale=1 to run the paper's literal rates.
const double paperTargetRates[] = {0.01, 0.03, 0.05, 0.07, 0.09, 0.10,
                                   0.11, 0.13, 0.15, 0.17, 0.19, 0.20};

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    checkFlags(opts, "fig4_adaptive: simulation time vs violation rate",
               {{"target-scale", "X", "scale applied to the paper target rates"},
                {"all", "", "sweep all four kernels"}});
    const std::uint64_t uops = uopBudget(opts, 50000);
    const double scale = opts.getDouble("target-scale", 10.0);
    banner("Figure 4: simulation time vs violation rate (adaptive "
           "bands 0%/5% and CC+S1..9)",
           opts, uops);
    std::cout << "# target rates = paper's 12 points x "
              << formatDouble(scale, 0) << " (--target-scale)\n\n";

    std::vector<std::string> kernels = {opts.get("kernel", "fft")};
    if (opts.has("all"))
        kernels = kernelList(opts);

    for (const auto &kernel : kernels) {
        Table table("Fig 4 [" + kernel + "]: series / config -> "
                    "violation rate, simulation time");
        table.setHeader({"series", "config", "viol rate (%/cyc)",
                         "sim time (s)", "final bound"});

        for (const double band : {0.00, 0.05}) {
            for (const double paper_target : paperTargetRates) {
                const double target = paper_target * scale;
                SimConfig config = paperSetup(kernel, uops);
                applyCommonFlags(opts, config);
                config.engine.scheme = SchemeKind::Adaptive;
                config.engine.adaptive.targetViolationRate =
                    target / 100.0;
                config.engine.adaptive.violationBand = band;
                config.engine.warmupUops = uops / 5;
                const RunResult r = runSimulation(config);
                table.cell(band == 0.0 ? "adaptive band 0%"
                                       : "adaptive band 5%")
                    .cell("target " + formatDouble(target, 2) + "%")
                    .cell(formatDouble(r.violationRate() * 100.0, 4))
                    .cell(r.host.wallSeconds, 3)
                    .cell(r.finalSlackBound)
                    .endRow();
            }
        }

        {
            SimConfig config = paperSetup(kernel, uops);
            applyCommonFlags(opts, config);
            config.engine.scheme = SchemeKind::CycleByCycle;
            const RunResult r = runSimulation(config);
            table.cell("cc+bounded")
                .cell("CC")
                .cell(formatDouble(r.violationRate() * 100.0, 4))
                .cell(r.host.wallSeconds, 3)
                .cell(std::uint64_t{0})
                .endRow();
        }
        for (Tick bound = 1; bound <= 9; ++bound) {
            SimConfig config = paperSetup(kernel, uops);
            applyCommonFlags(opts, config);
            config.engine.scheme = SchemeKind::Bounded;
            config.engine.slackBound = bound;
            const RunResult r = runSimulation(config);
            table.cell("cc+bounded")
                .cell("S" + std::to_string(bound))
                .cell(formatDouble(r.violationRate() * 100.0, 4))
                .cell(r.host.wallSeconds, 3)
                .cell(bound)
                .endRow();
        }

        table.print(std::cout);
        std::cout << "\n";
        emitCsv(opts, {&table});
    }
    return 0;
}
