/**
 * @file
 * Serve-throughput harness: jobs/minute for a micro job sweep run two
 * ways — submitted to an in-process job server (persistent worker
 * pool, concurrent scheduling under the host-thread budget) versus
 * the pre-serve workflow of one sequential standalone run per job
 * (fresh engine threads spawned and joined every time).
 *
 * This is the amortization story behind `slacksim-serve`: parameter
 * sweeps pay the engine's thread spawn/join and setup cost per run,
 * while the daemon reuses one set of pooled host threads and overlaps
 * jobs up to the budget. The harness records both rates and the
 * speedup so the bench trajectory (BENCH_perf.json and friends)
 * carries the delta per PR.
 *
 * JSON schema:
 *   {
 *     "schema": "slacksim.serve_throughput.v3",
 *     "jobs": N, "uops": U, "cores": C, "pool_threads": T,
 *     "isolation": "inline" | "process",
 *     "sequential": { "wall_seconds", "jobs_per_min",
 *                     "threads_spawned" },
 *     "daemon":     { "wall_seconds", "jobs_per_min",
 *                     "threads_spawned", "tasks_run",
 *                     "overflow_spawns",
 *                     "queue_wait_ms":     { count, p50, p95, p99 },
 *                     "run_duration_ms":   { count, p50, p95, p99 },
 *                     "spawn_overhead_ms": { count, p50, p95, p99 },
 *                     "spawn_to_first_heartbeat_ms":
 *                                          { count, p50, p95, p99 } },
 *     "speedup": S
 *   }
 *
 * "threads_spawned" is the reuse proof: the sequential column grows
 * linearly with the job count (cores workers per run), the daemon
 * column is the pool size regardless of how many jobs ran.
 *
 * --isolation=process runs every daemon job in a forked supervised
 * child (the crash-proof production default); "spawn_overhead_ms"
 * then carries the fork-to-ready latency distribution, which is the
 * isolation tax EXPERIMENTS.md tracks (zero count under inline mode —
 * disabled isolation costs nothing).
 *
 * Flags: --jobs=N --uops=N --kernel=NAME --cores=N --threads=N
 *        --isolation=MODE --out=PATH
 */

#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/json.hh"
#include "util/logging.hh"

using namespace slacksim;
using namespace slacksim::bench;
using namespace slacksim::serve;

namespace {

double
seconds(std::chrono::steady_clock::time_point from,
        std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

double
jobsPerMin(std::uint64_t jobs, double wall_seconds)
{
    return wall_seconds > 0.0
               ? static_cast<double>(jobs) * 60.0 / wall_seconds
               : 0.0;
}

/**
 * The sweep: one spec per (seed, quantum) point. Both modes commit
 * the same uop budget per job, so jobs/minute compares equal amounts
 * of simulated work.
 */
std::vector<JobSpec>
makeSweep(std::uint64_t jobs, const std::string &kernel,
          std::uint32_t cores, std::uint64_t uops)
{
    std::vector<JobSpec> sweep;
    for (std::uint64_t i = 0; i < jobs; ++i) {
        JobSpec spec;
        spec.name = "sweep-" + std::to_string(i);
        spec.kernel = kernel;
        spec.cores = cores;
        spec.scheme = "quantum";
        spec.quantum = 8 + 8 * static_cast<std::uint32_t>(i % 4);
        spec.seed = 100 + i;
        spec.maxUops = uops;
        sweep.push_back(spec);
    }
    return sweep;
}

/** Baseline: the sweep as N standalone runs, one after another, each
 *  spawning and joining its own engine threads. */
double
runSequential(const std::vector<JobSpec> &sweep)
{
    const auto t0 = std::chrono::steady_clock::now();
    for (const JobSpec &spec : sweep)
        runSimulation(spec.toConfig());
    return seconds(t0, std::chrono::steady_clock::now());
}

/** The sweep through a live daemon: submit every spec over the
 *  socket, then wait for the queue to drain. */
double
runDaemon(Server &server, const std::vector<JobSpec> &sweep)
{
    Client client(server.options().socketPath);
    if (!client.valid())
        SLACKSIM_FATAL("serve_throughput: cannot connect to ",
                       server.options().socketPath);

    const auto t0 = std::chrono::steady_clock::now();
    for (const JobSpec &spec : sweep) {
        std::string error;
        if (client.submit(spec.toJson(), &error) == 0)
            SLACKSIM_FATAL("serve_throughput: submit failed: ", error);
    }
    // All submitted; the wall clock stops when the last job retires.
    while (!server.queue().idle())
        server.queue().waitChanged(20);
    return seconds(t0, std::chrono::steady_clock::now());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    checkFlags(opts,
               "serve_throughput: daemon vs sequential sweep rate",
               {{"jobs", "N", "sweep size (default 32)"},
                {"threads", "N",
                 "daemon host-thread budget (default 2x(cores+1))"},
                {"isolation", "MODE",
                 "daemon job execution: inline|process "
                 "(default inline)"},
                {"out", "PATH", "JSON output (BENCH_serve.json)"}});
    const std::uint64_t jobs = opts.getUint("jobs", 32);
    const std::string kernel = opts.get("kernel", "uniform");
    const std::uint32_t cores =
        static_cast<std::uint32_t>(opts.getUint("cores", 4));
    const std::uint64_t uops = uopBudget(opts, 40000);
    // Default budget fits two concurrent jobs (manager + cores each):
    // enough to show overlap without oversubscribing small hosts.
    const std::uint32_t threads = static_cast<std::uint32_t>(
        opts.getUint("threads", 2 * (cores + 1)));
    const std::string isolation = opts.get("isolation", "inline");
    if (isolation != "inline" && isolation != "process")
        SLACKSIM_FATAL("serve_throughput: --isolation must be "
                       "'inline' or 'process', got '",
                       isolation, "'");
    const std::string out = opts.get("out", "BENCH_serve.json");
    setQuietLogging(!opts.has("verbose"));
    banner("serve_throughput: " + std::to_string(jobs) +
               "-job micro sweep, daemon vs sequential",
           opts, uops);

    const std::vector<JobSpec> sweep =
        makeSweep(jobs, kernel, cores, uops);

    const double seq_seconds = runSequential(sweep);
    // Each standalone parallel-host run spawns its own worker threads.
    const std::uint64_t seq_threads = jobs * cores;
    std::cout << "sequential: " << seq_seconds << " s, "
              << jobsPerMin(jobs, seq_seconds) << " jobs/min ("
              << seq_threads << " threads spawned)\n";

    Server::Options sopts;
    sopts.socketPath = "serve_throughput.sock";
    sopts.outRoot = "serve_throughput_out";
    sopts.threadBudget = threads;
    sopts.defaultIsolation = isolation;
    Server server(sopts);
    if (!server.start())
        SLACKSIM_FATAL("serve_throughput: cannot bind ",
                       sopts.socketPath);
    std::thread accept_thread([&server] { server.run(); });

    const double srv_seconds = runDaemon(server, sweep);
    const double speedup =
        srv_seconds > 0.0 ? seq_seconds / srv_seconds : 0.0;
    std::cout << "daemon:     " << srv_seconds << " s, "
              << jobsPerMin(jobs, srv_seconds) << " jobs/min ("
              << server.pool().threadsSpawned() << " threads spawned, "
              << server.pool().tasksRun() << " pool tasks)\n"
              << "speedup:    " << speedup << "x\n";

    {
        Client control(sopts.socketPath);
        std::string error;
        if (!control.shutdown(true, &error))
            SLACKSIM_WARN("serve_throughput: shutdown op failed: ",
                          error);
    }
    accept_thread.join();

    const QueueStats stats = server.queue().stats();
    if (stats.done != jobs) {
        SLACKSIM_FATAL("serve_throughput: expected ", jobs,
                       " done jobs, got ", stats.done, " (",
                       stats.failed, " failed)");
    }
    if (server.pool().overflowSpawns() != 0) {
        SLACKSIM_FATAL("serve_throughput: governed sweep must not "
                       "overflow the pool (saw ",
                       server.pool().overflowSpawns(), ")");
    }

    std::ofstream os(out);
    if (!os)
        SLACKSIM_FATAL("serve_throughput: cannot write ", out);
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "slacksim.serve_throughput.v3");
    w.field("jobs", jobs);
    w.field("uops", uops);
    w.field("cores", cores);
    w.field("pool_threads", static_cast<std::uint64_t>(threads));
    w.field("isolation", isolation);
    w.beginObject("sequential");
    w.field("wall_seconds", seq_seconds);
    w.field("jobs_per_min", jobsPerMin(jobs, seq_seconds));
    w.field("threads_spawned", seq_threads);
    w.endObject();
    w.beginObject("daemon");
    w.field("wall_seconds", srv_seconds);
    w.field("jobs_per_min", jobsPerMin(jobs, srv_seconds));
    w.field("threads_spawned", server.pool().threadsSpawned());
    w.field("tasks_run", server.pool().tasksRun());
    w.field("overflow_spawns", server.pool().overflowSpawns());
    // Fleet latency distribution under the sweep load: how long jobs
    // queued behind the budget and how long they ran (bucketed
    // percentiles from the server's own telemetry registry).
    const ServerTelemetry &tel = server.telemetry();
    w.beginObject("queue_wait_ms");
    w.field("count", tel.queueWaitMs.count());
    w.field("p50", tel.queueWaitMs.percentile(50));
    w.field("p95", tel.queueWaitMs.percentile(95));
    w.field("p99", tel.queueWaitMs.percentile(99));
    w.endObject();
    w.beginObject("run_duration_ms");
    w.field("count", tel.runDurationMs.count());
    w.field("p50", tel.runDurationMs.percentile(50));
    w.field("p95", tel.runDurationMs.percentile(95));
    w.field("p99", tel.runDurationMs.percentile(99));
    w.endObject();
    // The isolation tax: fork-to-ready latency per supervised child.
    // Count is zero under inline mode — proof the feature is free
    // when disabled.
    w.beginObject("spawn_overhead_ms");
    w.field("count", tel.spawnOverheadMs.count());
    w.field("p50", tel.spawnOverheadMs.percentile(50));
    w.field("p95", tel.spawnOverheadMs.percentile(95));
    w.field("p99", tel.spawnOverheadMs.percentile(99));
    w.endObject();
    // Fork until the scheduler first observed the child simulating —
    // the operator-facing spawn latency (fork + exec + engine warmup
    // + first progress report), superset of spawn_overhead_ms. Also
    // zero-count under inline mode.
    w.beginObject("spawn_to_first_heartbeat_ms");
    w.field("count", tel.spawnToFirstHeartbeatMs.count());
    w.field("p50", tel.spawnToFirstHeartbeatMs.percentile(50));
    w.field("p95", tel.spawnToFirstHeartbeatMs.percentile(95));
    w.field("p99", tel.spawnToFirstHeartbeatMs.percentile(99));
    w.endObject();
    w.endObject();
    w.field("speedup", speedup);
    w.endObject();
    w.finish();
    std::cout << "wrote " << out << "\n";
    return 0;
}
