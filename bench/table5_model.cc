/**
 * @file
 * Table 5 reproduction: estimated overall simulation time of a fully
 * functional speculative slack simulation, from the paper's
 * analytical model
 *     Ts = (1-F)*Tcpt + F*Dr*Tcpt/I + F*Tcc
 * fed with measured Tcc (cycle-by-cycle time), Tcpt (adaptive +
 * checkpointing time), F (Table 3) and Dr (Table 4), for 50k and
 * 100k checkpoint intervals.
 *
 * Expected shape (paper Section 5.2): the estimated speculative time
 * exceeds cycle-by-cycle for every benchmark — the paper's negative
 * result on speculation at a 0.01% base violation rate.
 *
 * Flags: --kernel=NAME --uops=N --serial
 */

#include <iostream>

#include "common.hh"
#include "core/spec_model.hh"
#include "stats/table.hh"
#include "table_io.hh"

using namespace slacksim;
using namespace slacksim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    checkFlags(opts, "table5_model: modeled speculative simulation time");
    const std::uint64_t uops = uopBudget(opts, 300000);
    banner("Table 5: estimated overall simulation time of speculative "
           "simulation (sec)",
           opts, uops);

    Table table("Table 5: modeled speculative time vs CC");
    table.setHeader({"", "CC", "50K est", "100K est", "F@50K",
                     "Dr@50K", "F@100K", "Dr@100K"});

    for (const auto &kernel : kernelList(opts)) {
        SimConfig cc = paperSetup(kernel, uops);
        applyCommonFlags(opts, cc);
        cc.engine.scheme = SchemeKind::CycleByCycle;
        const RunResult r_cc = runSimulation(cc);

        double est[2], fs[2], drs[2];
        int idx = 0;
        for (const Tick interval : {50000u, 100000u}) {
            SimConfig config = paperSetup(kernel, uops);
            applyCommonFlags(opts, config);
            config.engine.scheme = SchemeKind::Adaptive;
            config.engine.adaptive.targetViolationRate = 1e-4;
            config.engine.adaptive.violationBand = 0.05;
            config.engine.checkpoint.mode = CheckpointMode::Measure;
            config.engine.checkpoint.interval = interval;
            config.engine.warmupUops = uops / 5;
            const RunResult r = runSimulation(config);

            SpecModelInputs in;
            in.tCc = r_cc.host.wallSeconds;
            in.tCpt = r.host.wallSeconds;
            in.fraction = r.fractionIntervalsViolated();
            in.rollbackDistance = r.meanFirstViolationDistance();
            in.interval = static_cast<double>(interval);
            est[idx] = speculativeTimeEstimate(in);
            fs[idx] = in.fraction;
            drs[idx] = in.rollbackDistance;
            ++idx;
        }

        table.cell(kernel)
            .cell(r_cc.host.wallSeconds, 2)
            .cell(est[0], 2)
            .cell(est[1], 2)
            .cell(formatDouble(fs[0] * 100.0, 0) + "%")
            .cell(formatCycles(static_cast<std::uint64_t>(drs[0] + 0.5)))
            .cell(formatDouble(fs[1] * 100.0, 0) + "%")
            .cell(formatCycles(static_cast<std::uint64_t>(drs[1] + 0.5)))
            .endRow();
    }

    table.print(std::cout);
    emitCsv(opts, {&table});
    return 0;
}
