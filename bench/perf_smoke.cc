/**
 * @file
 * Perf-smoke harness: a fixed set of short engine runs whose
 * throughput is recorded as machine-readable JSON (BENCH_perf.json)
 * so every PR leaves a comparable perf trajectory behind.
 *
 * Unlike the table/figure harnesses this binary is not about the
 * paper's numbers: it exists to catch host-side regressions in the
 * engine hot paths (queue plumbing, manager service, pacing,
 * checkpoint serialization). Runs are repeated --repeat times and the
 * best wall time is kept, which filters scheduler noise on small
 * hosts.
 *
 * JSON schema (see EXPERIMENTS.md "Perf methodology"):
 *   {
 *     "schema": "slacksim.perf_smoke.v1",
 *     "kernel": "...", "uops": N, "repeat": R, "host_cpus": H,
 *     "runs": [ { "name", "scheme", "parallel_host", "host_threads",
 *                 "wall_seconds", "committed_uops", "bus_requests",
 *                 "events", "events_per_sec", "uops_per_sec",
 *                 "checkpoints", "checkpoint_bytes",
 *                 "checkpoint_seconds", "checkpoint_async_seconds",
 *                 "checkpoint_bytes_per_sec",
 *                 "bus_violations", "map_violations" },
 *               ... ]
 *   }
 *
 * "host_threads" is per run and reports what the engine *actually
 * used* (RunResult host.hostThreadsUsed: manager + workers + relays),
 * not the machine's concurrency — earlier recordings wrote one global
 * hardware_concurrency() figure, which made parallel runs on a
 * 1-CPU CI host look like serial ones. The machine figure survives as
 * the top-level "host_cpus".
 *
 * Repeats are interleaved round-robin across the run set (round 1 of
 * every config, then round 2, ...) so slow drift in host load hits
 * every config equally instead of whichever config happened to run
 * last; best wall time per config is kept as before.
 *
 * "events" counts the simulated work the engine processed: committed
 * micro-ops plus serviced bus requests. events_per_sec is the
 * headline trend metric; the "bounded-micro" run is the canonical
 * bounded-slack micro-workload number quoted in PR descriptions.
 *
 * With --baseline=PATH the harness also compares each run's
 * events_per_sec against the named earlier recording and fails when
 * any run drops below --min-ratio (default 0.5) of it. CI uses this
 * against bench/BENCH_perf_baseline.json to assert the fault-
 * injection layer is free when no plan is installed: these runs
 * configure no --fault-spec, so every fault hook must collapse to one
 * relaxed pointer load. The same floor now also polices the profiler
 * hooks: baseline runs set no --profile, so a dormant PhaseScope that
 * stopped being a single relaxed load would show up here.
 *
 * With --profile each run additionally records the host-time phase
 * attribution of its best repetition, prints the breakdown, and emits
 * it as a "profile" object per run (wall_ns, attributed_ns, verdict,
 * phases[]) so the bench trajectory carries attribution, not just
 * events/s. The extra keys are invisible to baselineEventsPerSec(),
 * which anchors on "name"/"events_per_sec" only, so old and new
 * recordings stay comparable.
 *
 * With --min-parallel-serial-ratio=R the harness fails when the
 * bounded parallel run ("bounded-micro") delivers fewer events/s than
 * R x the serial control ("bounded-serial") — the paper's core claim,
 * enforced as a floor. CI starts this at 1.0.
 *
 * With --host-threads=A,B,... the harness additionally sweeps the
 * bounded workload across explicit engine host-thread counts
 * (EngineConfig::hostThreads), one run per value, named
 * "bounded-htK". 1 is the inline manager-only engine; 0 means
 * auto-size. The sweep shows where the parallel engine stops paying
 * for itself on the current machine.
 *
 * Flags: --kernel=NAME --uops=N --repeat=N --out=PATH --serial
 *        --baseline=PATH --min-ratio=R --profile
 *        --min-parallel-serial-ratio=R --host-threads=LIST
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hh"
#include "util/json.hh"
#include "util/logging.hh"

using namespace slacksim;
using namespace slacksim::bench;

namespace {

/** One measured configuration. */
struct SmokeRun
{
    std::string name;
    SimConfig config;
};

/** Best-of-N measurement of one configuration. */
struct Measurement
{
    std::string name;
    const char *scheme = "";
    bool parallelHost = false;
    std::uint32_t hostThreadsUsed = 1;
    double wallSeconds = 0.0;
    std::uint64_t committedUops = 0;
    std::uint64_t busRequests = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t checkpointBytes = 0;
    double checkpointSeconds = 0.0;
    double checkpointAsyncSeconds = 0.0;
    std::uint64_t busViolations = 0;
    std::uint64_t mapViolations = 0;
    obs::ProfileReport profile; //!< best run's attribution (--profile)

    std::uint64_t events() const { return committedUops + busRequests; }

    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(events()) / wallSeconds
                   : 0.0;
    }

    double
    uopsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(committedUops) / wallSeconds
                   : 0.0;
    }

    double
    checkpointBytesPerSec() const
    {
        // checkpointBytes is the size of one (the latest) snapshot;
        // total serialized volume is bytes * count.
        return checkpointSeconds > 0.0
                   ? static_cast<double>(checkpointBytes) *
                         static_cast<double>(checkpoints) /
                         checkpointSeconds
                   : 0.0;
    }
};

SimConfig
microConfig(const Options &opts, const std::string &kernel,
            std::uint64_t uops)
{
    SimConfig config = paperSetup(kernel, uops);
    applyCommonFlags(opts, config);
    config.workload.footprintBytes = 256 * 1024;
    return config;
}

/** One repetition of one configuration folded into its best-of. */
void
measureOnce(const SmokeRun &run, std::uint64_t round, Measurement *m)
{
    m->name = run.name;
    m->scheme = schemeName(run.config.engine.scheme);
    m->parallelHost = run.config.engine.parallelHost;
    const RunResult r = runSimulation(run.config);
    if (round == 0 || r.host.wallSeconds < m->wallSeconds) {
        m->hostThreadsUsed = r.host.hostThreadsUsed;
        m->wallSeconds = r.host.wallSeconds;
        m->committedUops = r.committedUops;
        m->busRequests = r.uncore.busRequests;
        m->checkpoints = r.host.checkpointsTaken;
        m->checkpointBytes = r.host.checkpointBytes;
        m->checkpointSeconds = r.host.checkpointSeconds;
        m->checkpointAsyncSeconds = r.host.checkpointAsyncSeconds;
        m->busViolations = r.violations.busViolations;
        m->mapViolations = r.violations.mapViolations;
        m->profile = r.forensics.profile;
    }
}

void
writeJson(std::ostream &os, const std::string &kernel,
          std::uint64_t uops, std::uint64_t repeat,
          const std::vector<Measurement> &all)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "slacksim.perf_smoke.v1");
    w.field("kernel", kernel);
    w.field("uops", uops);
    w.field("repeat", repeat);
    w.field("host_cpus",
            static_cast<std::uint64_t>(
                std::thread::hardware_concurrency()));
    w.beginArray("runs");
    for (const Measurement &m : all) {
        w.beginObject();
        w.field("name", m.name);
        w.field("scheme", m.scheme);
        w.field("parallel_host", m.parallelHost);
        w.field("host_threads",
                static_cast<std::uint64_t>(m.hostThreadsUsed));
        w.field("wall_seconds", m.wallSeconds);
        w.field("committed_uops", m.committedUops);
        w.field("bus_requests", m.busRequests);
        w.field("events", m.events());
        w.field("events_per_sec", m.eventsPerSec());
        w.field("uops_per_sec", m.uopsPerSec());
        w.field("checkpoints", m.checkpoints);
        w.field("checkpoint_bytes", m.checkpointBytes);
        w.field("checkpoint_seconds", m.checkpointSeconds);
        w.field("checkpoint_async_seconds", m.checkpointAsyncSeconds);
        w.field("checkpoint_bytes_per_sec", m.checkpointBytesPerSec());
        w.field("bus_violations", m.busViolations);
        w.field("map_violations", m.mapViolations);
        if (m.profile.enabled) {
            w.beginObject("profile");
            w.field("wall_ns", m.profile.wallNs);
            w.field("attributed_ns", m.profile.attributedNs());
            w.field("verdict", m.profile.verdict);
            w.beginArray("phases");
            for (const auto &p : m.profile.phaseTotals) {
                w.beginObject();
                w.field("name", p.name);
                w.field("ns", p.ns);
                w.field("count", p.count);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.finish();
}

/**
 * Pull "events_per_sec" for run @p name out of a perf_smoke JSON
 * recording by text scan (the file is our own writer's output, so
 * the key order is fixed). @return negative when not found.
 */
double
baselineEventsPerSec(const std::string &text, const std::string &name)
{
    const std::string anchor = "\"name\": \"" + name + "\"";
    const auto at = text.find(anchor);
    if (at == std::string::npos)
        return -1.0;
    const std::string key = "\"events_per_sec\": ";
    const auto k = text.find(key, at);
    if (k == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + k + key.size(), nullptr);
}

/**
 * Enforce --min-ratio against a baseline recording; fatal on any run
 * that regressed below it. A missing baseline file is fatal too — CI
 * passing a bad path must not silently skip the assertion.
 */
void
enforceBaseline(const std::string &path, double min_ratio,
                const std::vector<Measurement> &all)
{
    std::ifstream is(path);
    if (!is)
        SLACKSIM_FATAL("perf_smoke: cannot read baseline ", path);
    std::stringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();

    bool any = false;
    for (const Measurement &m : all) {
        const double base = baselineEventsPerSec(text, m.name);
        if (base <= 0.0) {
            std::cout << "baseline: no '" << m.name << "' run in "
                      << path << "; skipped\n";
            continue;
        }
        any = true;
        const double ratio = m.eventsPerSec() / base;
        std::cout << "baseline: " << m.name << " "
                  << static_cast<std::uint64_t>(m.eventsPerSec())
                  << " vs " << static_cast<std::uint64_t>(base)
                  << " events/s (ratio " << ratio << ", floor "
                  << min_ratio << ")\n";
        if (ratio < min_ratio) {
            SLACKSIM_FATAL("perf_smoke: '", m.name, "' regressed to ",
                           ratio, "x of baseline (floor ", min_ratio,
                           "x); the disabled fault layer must stay "
                           "zero-cost");
        }
    }
    if (!any)
        SLACKSIM_FATAL("perf_smoke: baseline ", path,
                       " matched none of the runs");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    checkFlags(opts, "perf_smoke: engine hot-path throughput recorder",
               {{"repeat", "N", "runs per config; best wall time kept"},
                {"out", "PATH", "JSON output path (BENCH_perf.json)"},
                {"baseline", "PATH",
                 "earlier recording to enforce --min-ratio against"},
                {"min-ratio", "R",
                 "fail if events/s falls below R x baseline "
                 "(default 0.5)"},
                {"min-parallel-serial-ratio", "R",
                 "fail if bounded parallel events/s falls below R x "
                 "the serial control"},
                {"host-threads", "LIST",
                 "also sweep bounded runs at these engine host-thread "
                 "counts, e.g. 1,2,4 (0 = auto)"}});
    const std::string kernel = opts.get("kernel", "uniform");
    const std::uint64_t uops = uopBudget(opts, 200000);
    const std::uint64_t repeat = opts.getUint("repeat", 3);
    const std::string out = opts.get("out", "BENCH_perf.json");
    banner("perf_smoke: hot-path throughput (best of " +
               std::to_string(repeat) + ")",
           opts, uops);

    std::vector<SmokeRun> runs;
    {
        // The canonical bounded-slack micro workload: the manager
        // services events eagerly in arrival order while the queue /
        // pacing plumbing carries the full event volume. Bounded runs
        // are cheap per uop, so they get a bigger budget for stable
        // wall times.
        SimConfig c = microConfig(opts, kernel, uops * 5);
        c.engine.scheme = SchemeKind::Bounded;
        c.engine.slackBound = 64;
        runs.push_back({"bounded-micro", c});
    }
    {
        // Sorted-service stress: cycle-by-cycle keeps every event in
        // the manager's merge structure before release.
        SimConfig c = microConfig(opts, kernel, uops);
        c.engine.scheme = SchemeKind::CycleByCycle;
        runs.push_back({"cc-sorted", c});
    }
    {
        // Serial reference engine on the same bounded workload: the
        // no-threads control group for the two runs above.
        SimConfig c = microConfig(opts, kernel, uops * 5);
        c.engine.scheme = SchemeKind::Bounded;
        c.engine.slackBound = 64;
        c.engine.parallelHost = false;
        runs.push_back({"bounded-serial", c});
    }
    {
        // Checkpoint turnover: adaptive + speculative checkpoints at
        // a short interval so serialization cost dominates; tracks
        // the paper's Tcpt term (checkpoint bytes/s).
        SimConfig c = microConfig(opts, kernel, uops);
        c.engine.scheme = SchemeKind::Adaptive;
        c.engine.checkpoint.mode = CheckpointMode::Speculative;
        c.engine.checkpoint.interval = 2000;
        runs.push_back({"spec-ckpt", c});
    }
    if (opts.has("host-threads")) {
        // Host-topology sweep: the same bounded workload pinned at
        // each requested engine thread count. "bounded-ht1" is the
        // inline manager-only engine; the honest head-to-head against
        // "bounded-serial" on a small CI box.
        std::stringstream list(opts.get("host-threads"));
        std::string tok;
        while (std::getline(list, tok, ',')) {
            if (tok.empty())
                continue;
            const std::uint32_t ht = static_cast<std::uint32_t>(
                std::strtoul(tok.c_str(), nullptr, 10));
            SimConfig c = microConfig(opts, kernel, uops * 5);
            c.engine.scheme = SchemeKind::Bounded;
            c.engine.slackBound = 64;
            c.engine.hostThreads = ht;
            runs.push_back({"bounded-ht" + std::to_string(ht), c});
        }
    }

    // Interleave the repeats so host-load drift is shared fairly
    // across configs instead of biasing whichever ran last.
    std::vector<Measurement> all(runs.size());
    for (std::uint64_t round = 0; round < repeat; ++round)
        for (std::size_t i = 0; i < runs.size(); ++i)
            measureOnce(runs[i], round, &all[i]);
    for (const Measurement &m : all) {
        std::cout << m.name << ": " << m.wallSeconds << " s, "
                  << static_cast<std::uint64_t>(m.eventsPerSec())
                  << " events/s, "
                  << static_cast<std::uint64_t>(m.uopsPerSec())
                  << " uops/s, " << m.hostThreadsUsed
                  << " host-thread"
                  << (m.hostThreadsUsed == 1 ? "" : "s");
        if (m.checkpoints) {
            std::cout << ", "
                      << static_cast<std::uint64_t>(
                             m.checkpointBytesPerSec())
                      << " ckpt-B/s";
        }
        std::cout << "\n";
        if (m.profile.enabled) {
            // Host time per phase for the kept (best) repetition,
            // as a share of *total thread-time* (phase totals sum
            // across every worker thread, so wall is the wrong
            // denominator on parallel hosts); sub-0.5% phases are
            // noise at smoke-run durations.
            double total = 0.0;
            for (const auto &p : m.profile.phaseTotals)
                total += static_cast<double>(p.ns);
            for (const auto &p : m.profile.phaseTotals) {
                if (total <= 0.0 ||
                    static_cast<double>(p.ns) < total * 0.005)
                    continue;
                std::cout << "    " << p.name << ": "
                          << static_cast<double>(p.ns) / 1e6
                          << " ms (" << 100.0 *
                                 static_cast<double>(p.ns) / total
                          << "% of host thread-time)\n";
            }
            std::cout << "    " << m.profile.verdict << "\n";
        }
    }

    if (opts.has("min-parallel-serial-ratio")) {
        const double floor = opts.getDouble("min-parallel-serial-ratio",
                                            1.0);
        std::size_t par = all.size(), ser = all.size();
        for (std::size_t i = 0; i < all.size(); ++i) {
            if (all[i].name == "bounded-micro")
                par = i;
            if (all[i].name == "bounded-serial")
                ser = i;
        }
        if (par == all.size() || ser == all.size() ||
            all[ser].eventsPerSec() <= 0.0)
            SLACKSIM_FATAL("perf_smoke: parallel/serial gate needs "
                           "both bounded runs");
        // Best-of comparisons on a noisy shared host can land a few
        // percent either side of the true ratio; when the gate would
        // fail, grant up to two extra interleaved rounds to *both*
        // sides (still best-of, still fair) before judging.
        double ratio =
            all[par].eventsPerSec() / all[ser].eventsPerSec();
        for (std::uint64_t retry = 0; ratio < floor && retry < 2;
             ++retry) {
            std::cout << "parallel/serial: " << ratio
                      << " below floor; tiebreak round "
                      << (retry + 1) << "\n";
            measureOnce(runs[par], repeat + retry, &all[par]);
            measureOnce(runs[ser], repeat + retry, &all[ser]);
            ratio = all[par].eventsPerSec() / all[ser].eventsPerSec();
        }
        std::cout << "parallel/serial: " << ratio << " (floor " << floor
                  << ")\n";
        if (ratio < floor) {
            SLACKSIM_FATAL("perf_smoke: bounded parallel delivered ",
                           ratio, "x the serial control (floor ", floor,
                           "x); the parallel engine must not lose to "
                           "the serial one");
        }
    }

    std::ofstream os(out);
    if (!os)
        SLACKSIM_FATAL("perf_smoke: cannot write ", out);
    writeJson(os, kernel, uops, repeat, all);
    std::cout << "wrote " << out << "\n";

    if (opts.has("baseline")) {
        enforceBaseline(opts.get("baseline"),
                        opts.getDouble("min-ratio", 0.5), all);
    }
    return 0;
}
