/**
 * @file
 * Figure 3 reproduction: bus and cache-map simulation violation rates
 * as a function of the slack bound, for the four Splash benchmarks on
 * the 8-core snooping-bus target.
 *
 * Expected shape (paper Section 3):
 *  - bus violations exceed map violations by >= an order of magnitude;
 *  - the bus rate grows with the bound and then plateaus;
 *  - the map rate is negligible for small bounds and then grows.
 *
 * Flags: --kernel=NAME --uops=N --serial --bounds=csv
 */

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "table_io.hh"
#include "common.hh"
#include "stats/table.hh"
#include "util/logging.hh"

using namespace slacksim;
using namespace slacksim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    checkFlags(opts, "fig3_violations: violation rates vs slack bound",
               {{"bounds", "LIST", "comma-separated slack bounds to sweep"}});
    const std::uint64_t uops = uopBudget(opts, 40000);
    banner("Figure 3: violation rates of bus and cache map vs slack "
           "bound",
           opts, uops);

    std::vector<Tick> bounds = {2, 5, 10, 20, 40, 60, 100, 150, 200,
                                300};
    if (opts.has("bounds")) {
        bounds.clear();
        std::stringstream ss(opts.get("bounds"));
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            // std::stoull would accept "5x" (and throw on ""): parse
            // strictly so a typo fails instead of sweeping garbage.
            char *end = nullptr;
            const std::uint64_t v =
                tok.empty() || tok[0] == '-'
                    ? 0
                    : std::strtoull(tok.c_str(), &end, 10);
            if (!end || end == tok.c_str() || *end != '\0')
                SLACKSIM_FATAL("--bounds: bad slack bound '", tok, "'");
            bounds.push_back(v);
        }
    }

    Table bus_table("Fig 3(a): bus violation rate (% per cycle)");
    Table map_table("Fig 3(b): cache map violation rate (% per cycle)");
    std::vector<std::string> header = {"slack bound"};
    for (const auto &kernel : kernelList(opts))
        header.push_back(kernel);
    bus_table.setHeader(header);
    map_table.setHeader(header);

    for (const Tick bound : bounds) {
        bus_table.cell(std::to_string(bound));
        map_table.cell(std::to_string(bound));
        for (const auto &kernel : kernelList(opts)) {
            SimConfig config = paperSetup(kernel, uops);
            applyCommonFlags(opts, config);
            config.engine.scheme = SchemeKind::Bounded;
            config.engine.slackBound = bound;
            const RunResult r = runSimulation(config);
            bus_table.cell(formatPercent(r.busViolationRate(), 4));
            map_table.cell(formatPercent(r.mapViolationRate(), 4));
        }
        bus_table.endRow();
        map_table.endRow();
    }

    bus_table.print(std::cout);
    std::cout << "\n";
    map_table.print(std::cout);
    emitCsv(opts, {&bus_table, &map_table});
    return 0;
}
