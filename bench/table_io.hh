/**
 * @file
 * Optional CSV emission for the bench harnesses: pass --csv=PREFIX to
 * also write each printed table to PREFIX_<n>.csv.
 */

#ifndef SLACKSIM_BENCH_TABLE_IO_HH
#define SLACKSIM_BENCH_TABLE_IO_HH

#include <fstream>
#include <initializer_list>
#include <iostream>

#include "stats/table.hh"
#include "util/options.hh"

namespace slacksim::bench {

inline void
emitCsv(const Options &opts, std::initializer_list<const Table *> tables)
{
    const std::string prefix = opts.get("csv", "");
    if (prefix.empty())
        return;
    int index = 0;
    for (const Table *table : tables) {
        const std::string path =
            prefix + "_" + std::to_string(index++) + ".csv";
        std::ofstream out(path);
        table->printCsv(out);
        std::cout << "csv written: " << path << "\n";
    }
}

} // namespace slacksim::bench

#endif // SLACKSIM_BENCH_TABLE_IO_HH
