/**
 * @file
 * Coherence-protocol ablation: MESI (the paper's target, with silent
 * E->M upgrades) vs MSI (every first store to a clean line pays an
 * upgrade transaction). The E state trims bus requests and upgrade
 * traffic for mostly-private data; this sweep quantifies how much of
 * the target's bus load — and therefore of the slack machinery's
 * violation surface — the design choice is responsible for.
 *
 * Flags: --kernel=NAME --uops=N --serial
 */

#include <iostream>

#include "common.hh"
#include "stats/table.hh"
#include "table_io.hh"

using namespace slacksim;
using namespace slacksim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    checkFlags(opts, "ablation_protocol: MESI vs MSI coherence ablation");
    const std::uint64_t uops = uopBudget(opts, 50000);
    banner("Ablation: MESI vs MSI coherence protocol", opts, uops);

    Table table("protocol ablation (bounded slack 10)");
    table.setHeader({"workload", "protocol", "bus requests", "upgrades",
                     "exec cycles", "bus viol rate %/cyc",
                     "sim time (s)"});

    for (const auto &kernel : kernelList(opts)) {
        for (const CoherenceProtocol protocol :
             {CoherenceProtocol::MESI, CoherenceProtocol::MSI}) {
            SimConfig config = paperSetup(kernel, uops);
            applyCommonFlags(opts, config);
            config.target.protocol = protocol;
            config.engine.scheme = SchemeKind::Bounded;
            config.engine.slackBound = 10;
            const RunResult r = runSimulation(config);
            table.cell(kernel)
                .cell(protocolName(protocol))
                .cell(r.uncore.busRequests)
                .cell(r.coreTotal.l1dUpgrades)
                .cell(r.execCycles)
                .cell(formatDouble(r.busViolationRate() * 100.0, 4))
                .cell(r.host.wallSeconds, 3)
                .endRow();
        }
    }

    table.print(std::cout);
    emitCsv(opts, {&table});
    return 0;
}
