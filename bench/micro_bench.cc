/**
 * @file
 * google-benchmark microbenchmarks of the engine primitives that
 * determine simulation speed: the SPSC event queues, L1 access, the
 * manager's service path, whole-world snapshots (checkpoint cost),
 * and raw core-cycle throughput.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "cache/l1_cache.hh"
#include "core/core_complex.hh"
#include "core/sim_system.hh"
#include "uncore/uncore.hh"
#include "util/logging.hh"
#include "util/spsc_queue.hh"

using namespace slacksim;

namespace {

void
BM_SpscPushPop(benchmark::State &state)
{
    SpscQueue<BusMsg> q(1024);
    BusMsg msg;
    for (auto _ : state) {
        q.push(msg);
        BusMsg out;
        q.pop(out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscPushPop);

void
BM_L1LoadHit(benchmark::State &state)
{
    CoreStats stats;
    L1Params params;
    L1Cache cache(params, 0, &stats);
    std::vector<BusMsg> out;
    std::vector<L1Waiter> waiters;
    BusMsg fill;
    fill.type = MsgType::Fill;
    fill.addr = 0x1000;
    fill.grantState = static_cast<std::uint8_t>(MesiState::Exclusive);
    cache.applyFill(fill, 0, out, waiters);
    L1Waiter w;
    Tick t = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.accessLoad(0x1000, w, t++, out));
        out.clear();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L1LoadHit);

void
BM_UncoreServiceGetS(benchmark::State &state)
{
    UncoreStats stats;
    ViolationStats violations;
    UncoreParams params;
    params.numLocks = 1;
    params.numBarriers = 1;
    Uncore uncore(params, &stats, &violations);
    std::vector<Outbound> out;
    Tick t = 0;
    Addr a = 0;
    for (auto _ : state) {
        BusMsg msg;
        msg.type = MsgType::GetS;
        msg.src = static_cast<CoreId>(t % 8);
        msg.addr = (a += 64) & 0xfffff;
        msg.ts = ++t;
        uncore.service(msg, out);
        out.clear();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UncoreServiceGetS);

SimConfig
microConfig()
{
    SimConfig config;
    config.workload.kernel = "uniform";
    config.workload.numThreads = config.target.numCores;
    config.workload.iters = 20000;
    config.workload.footprintBytes = 128 * 1024;
    return config;
}

void
BM_WorldSnapshot(benchmark::State &state)
{
    setQuietLogging(true);
    SimSystem sys(microConfig());
    std::size_t bytes = 0;
    for (auto _ : state) {
        SnapshotWriter w;
        sys.save(w);
        bytes = w.size();
        SnapshotReader r(w.bytes());
        sys.restore(r);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(bytes * state.iterations()));
    state.counters["snapshot_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_WorldSnapshot);

void
BM_CoreCycleThroughput(benchmark::State &state)
{
    setQuietLogging(true);
    SimSystem sys(microConfig());
    CoreComplex &cc = sys.core(0);
    std::vector<Outbound> scratch;
    for (auto _ : state) {
        if (cc.finished())
            state.SkipWithError("trace ended; enlarge iters");
        cc.cycle(cc.localTime());
        // Play a trivial manager so queues never fill.
        BusMsg msg;
        while (cc.outQ().pop(msg)) {
            scratch.clear();
            sys.uncore().service(msg, scratch);
            for (const auto &o : scratch)
                sys.core(o.dst).inQ().push(o.msg);
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoreCycleThroughput);

void
BM_AtomicWaitNotifyRoundTrip(benchmark::State &state)
{
    // The cost that dominates cycle-by-cycle mode: a futex wake with
    // no waiter (the common notify path in the pacing protocol).
    std::atomic<std::uint32_t> word{0};
    for (auto _ : state) {
        word.fetch_add(1, std::memory_order_release);
        word.notify_one();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtomicWaitNotifyRoundTrip);

} // namespace

BENCHMARK_MAIN();
