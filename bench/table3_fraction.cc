/**
 * @file
 * Table 3 reproduction: fraction of checkpoint intervals containing
 * at least one tracked simulation violation, for checkpoint intervals
 * of 10k, 50k and 100k simulated cycles, under the baseline adaptive
 * scheme (0.01% target rate, 5% band).
 *
 * Two variants are reported:
 *  - all violations tracked (bus + map), the paper's default. On this
 *    1-CPU host the bus-violation floor is high, so most intervals
 *    violate;
 *  - cache-map violations only — the class the paper suggests
 *    focusing on (Section 5.2), rare enough here to show the paper's
 *    trend: the fraction grows with the interval and varies strongly
 *    across benchmarks.
 *
 * Flags: --kernel=NAME --uops=N --serial
 */

#include <iostream>

#include "common.hh"
#include "stats/table.hh"
#include "table_io.hh"

using namespace slacksim;
using namespace slacksim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    checkFlags(opts, "table3_fraction: intervals with at least one violation");
    const std::uint64_t uops = uopBudget(opts, 400000);
    banner("Table 3: fraction of checkpoint intervals with at least "
           "one violation",
           opts, uops);

    for (const bool track_bus : {true, false}) {
        Table table(track_bus
                        ? "Table 3: fraction of intervals that violate "
                          "(bus+map tracked)"
                        : "Table 3 variant: map violations only");
        table.setHeader({"", "10K", "50K", "100K", "(intervals)"});

        for (const auto &kernel : kernelList(opts)) {
            table.cell(kernel);
            std::string counts;
            for (const Tick interval : {10000u, 50000u, 100000u}) {
                SimConfig config = paperSetup(kernel, uops);
                applyCommonFlags(opts, config);
                config.engine.scheme = SchemeKind::Adaptive;
                config.engine.adaptive.targetViolationRate = 1e-4;
                config.engine.adaptive.violationBand = 0.05;
                config.engine.checkpoint.mode = CheckpointMode::Measure;
                config.engine.checkpoint.interval = interval;
                config.engine.checkpoint.rollbackOnBus = track_bus;
                config.engine.warmupUops = uops / 5;
                const RunResult r = runSimulation(config);
                table.cell(formatDouble(
                               r.fractionIntervalsViolated() * 100.0,
                               0) +
                           "%");
                counts += (counts.empty() ? "" : "/") +
                          std::to_string(r.intervals.size());
            }
            table.cell(counts);
            table.endRow();
        }

        table.print(std::cout);
        std::cout << "\n";
        emitCsv(opts, {&table});
    }
    return 0;
}
