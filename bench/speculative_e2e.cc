/**
 * @file
 * End-to-end speculative slack simulation (the machinery the paper
 * describes in Section 5 but only modeled analytically): periodic
 * global checkpoints, rollback on detected violations, and
 * cycle-by-cycle replay to the next checkpoint. Compares measured
 * wall-clock time of the full mechanism against cycle-by-cycle and
 * against the paper's analytical estimate from measurement-mode runs,
 * while sweeping the checkpoint interval and the violation classes
 * that trigger rollback.
 *
 * Flags: --kernel=NAME --uops=N --serial
 */

#include <iostream>

#include "common.hh"
#include "core/spec_model.hh"
#include "stats/table.hh"
#include "table_io.hh"

using namespace slacksim;
using namespace slacksim::bench;

namespace {

SimConfig
specBase(const Options &opts, const std::string &kernel,
         std::uint64_t uops)
{
    SimConfig config = paperSetup(kernel, uops);
    applyCommonFlags(opts, config);
    config.engine.scheme = SchemeKind::Adaptive;
    config.engine.adaptive.targetViolationRate = 1e-4;
    config.engine.adaptive.violationBand = 0.05;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    checkFlags(opts, "speculative_e2e: real rollbacks vs the analytical model");
    const std::uint64_t uops = uopBudget(opts, 120000);
    banner("Speculative slack end-to-end: real rollbacks vs the "
           "analytical model",
           opts, uops);

    for (const auto &kernel : kernelList(opts)) {
        SimConfig cc = paperSetup(kernel, uops);
        applyCommonFlags(opts, cc);
        cc.engine.scheme = SchemeKind::CycleByCycle;
        const RunResult r_cc = runSimulation(cc);

        Table table("Speculative e2e [" + kernel + "] (CC = " +
                    formatDouble(r_cc.host.wallSeconds, 2) + " s)");
        table.setHeader({"config", "sim time (s)", "model est (s)",
                         "rollbacks", "wasted cyc", "replay cyc",
                         "ckpts"});

        for (const Tick interval : {10000u, 50000u}) {
            // Measurement run feeds the model...
            SimConfig measure = specBase(opts, kernel, uops);
            measure.engine.checkpoint.mode = CheckpointMode::Measure;
            measure.engine.checkpoint.interval = interval;
            const RunResult r_m = runSimulation(measure);
            SpecModelInputs in;
            in.tCc = r_cc.host.wallSeconds;
            in.tCpt = r_m.host.wallSeconds;
            in.fraction = r_m.fractionIntervalsViolated();
            in.rollbackDistance = r_m.meanFirstViolationDistance();
            in.interval = static_cast<double>(interval);
            const double est = speculativeTimeEstimate(in);

            // ...and the real thing rolls back on every violation.
            SimConfig spec = specBase(opts, kernel, uops);
            spec.engine.checkpoint.mode = CheckpointMode::Speculative;
            spec.engine.checkpoint.interval = interval;
            const RunResult r_s = runSimulation(spec);
            table.cell("all-violations @" + formatCycles(interval))
                .cell(r_s.host.wallSeconds, 2)
                .cell(est, 2)
                .cell(r_s.host.rollbacks)
                .cell(r_s.host.wastedCycles)
                .cell(r_s.host.replayCycles)
                .cell(r_s.host.checkpointsTaken)
                .endRow();

            // Paper Section 5.2's suggestion: roll back only on the
            // rare map violations.
            SimConfig map_only = spec;
            map_only.engine.checkpoint.rollbackOnBus = false;
            const RunResult r_map = runSimulation(map_only);
            table.cell("map-only @" + formatCycles(interval))
                .cell(r_map.host.wallSeconds, 2)
                .cell("-")
                .cell(r_map.host.rollbacks)
                .cell(r_map.host.wastedCycles)
                .cell(r_map.host.replayCycles)
                .cell(r_map.host.checkpointsTaken)
                .endRow();
        }

        table.print(std::cout);
        std::cout << "\n";
        emitCsv(opts, {&table});
    }
    return 0;
}
