/**
 * @file
 * Timing model of one target core: a 4-wide out-of-order pipeline in
 * the style of the paper's NetBurst-like target (fetch/dispatch,
 * dataflow issue, execute-at-execute, in-order commit) with a 64-entry
 * ROB, a store buffer that drains at commit, and non-blocking L1
 * access through MSHRs. The core consumes a workload TraceProgram and
 * expands its records into micro-ops.
 */

#ifndef SLACKSIM_CPU_OOO_CORE_HH
#define SLACKSIM_CPU_OOO_CORE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "cache/l1_cache.hh"
#include "stats/stats.hh"
#include "uncore/msg.hh"
#include "util/snapshot.hh"
#include "util/types.hh"
#include "workload/trace.hh"

namespace slacksim {

/** Pipeline configuration for one core. */
struct CoreParams
{
    std::uint32_t fetchWidth = 4;
    std::uint32_t issueWidth = 4;
    std::uint32_t commitWidth = 4;
    std::uint32_t robSize = 64;
    std::uint32_t sbSize = 8;
    std::uint32_t loadPorts = 2;
    Tick aluLatency = 1;
};

/**
 * One out-of-order core. The caller drives cycle() once per target
 * clock and routes inbound manager messages to handleInbound();
 * outbound bus traffic is appended to the vector passed to cycle().
 */
class OooCore : public Snapshotable
{
  public:
    /**
     * @param params pipeline configuration
     * @param id this core's index
     * @param trace the workload thread to execute (not owned)
     * @param l1d data cache (not owned)
     * @param l1i instruction cache (not owned)
     * @param stats statistics sink (not owned)
     * @param code_base base target address of this thread's code
     */
    OooCore(const CoreParams &params, CoreId id,
            const TraceProgram *trace, L1Cache *l1d, L1Cache *l1i,
            CoreStats *stats, Addr code_base);

    /**
     * Simulate one target cycle at local time @p now.
     * @return true when any architectural state changed (something
     * fetched, issued, completed, committed, drained, or a message
     * was emitted). A false return means the core is *inert*: with no
     * inbound message it will behave identically every cycle until
     * earliestSelfWake(), enabling the caller to skip stall cycles.
     */
    bool cycle(Tick now, std::vector<BusMsg> &out);

    /**
     * @return the earliest future tick at which an already-issued
     * operation completes by itself, or maxTick when the core can
     * only be woken by an inbound message.
     */
    Tick earliestSelfWake() const;

    /** Apply one manager->core message (fill, snoop, sync grant). */
    void handleInbound(const BusMsg &msg, Tick now,
                       std::vector<BusMsg> &out);

    /** @return true once the trace is fully committed. */
    bool finished() const { return finished_; }

    /** @return committed micro-op count so far. */
    std::uint64_t committedUops() const { return stats_->committedInstrs; }

    /** @return number of in-flight ROB entries (tests). */
    std::uint32_t robOccupancy() const
    {
        return static_cast<std::uint32_t>(tailSeq_ - headSeq_);
    }

    /** @return number of buffered stores (tests). */
    std::uint32_t storeBufferOccupancy() const
    {
        return static_cast<std::uint32_t>(sbTail_ - sbHead_);
    }

    void save(SnapshotWriter &writer) const override;
    void restore(SnapshotReader &reader) override;

  private:
    /** Micro-op kinds the trace expands into. */
    enum class UopKind : std::uint8_t {
        Alu, Load, Store, Lock, Unlock, Barrier,
    };

    /** One reorder-buffer slot. */
    struct RobEntry
    {
        Addr addr = 0;
        SeqNum seq = 0;
        SeqNum depSeq = 0;  //!< producing load's seq, 0 = none
        Tick doneAt = 0;
        UopKind kind = UopKind::Alu;
        std::uint8_t issued = 0;
        std::uint8_t done = 0;
        std::uint8_t waitingFill = 0;
        std::uint16_t sync = 0;
    };

    /** One store-buffer slot. */
    struct SbEntry
    {
        Addr addr = 0;
    };

    /** Compact digest of all progress-relevant state. */
    struct Fingerprint
    {
        SeqNum headSeq, tailSeq;
        std::uint64_t sbHead, sbTail, traceIndex;
        std::uint64_t issuedCount, doneCount;
        std::uint32_t intraOffset;
        std::uint8_t flags;

        bool
        operator==(const Fingerprint &o) const = default;
    };

    Fingerprint fingerprint() const;

    RobEntry &slot(SeqNum seq) { return rob_[seq % params_.robSize]; }
    const RobEntry &
    slot(SeqNum seq) const
    {
        return rob_[seq % params_.robSize];
    }

    bool robFull() const { return tailSeq_ - headSeq_ >= params_.robSize; }
    bool robEmpty() const { return tailSeq_ == headSeq_; }
    bool sbFull() const { return sbTail_ - sbHead_ >= params_.sbSize; }
    bool sbEmpty() const { return sbTail_ == sbHead_; }

    void writeback(Tick now);
    void pushPending(Tick done_at, SeqNum seq);
    void rebuildPending();
    void commit(Tick now);
    void drainStoreBuffer(Tick now, std::vector<BusMsg> &out);
    void handleHeadSync(Tick now, std::vector<BusMsg> &out);
    void issue(Tick now, std::vector<BusMsg> &out);
    void fetch(Tick now, std::vector<BusMsg> &out);
    bool dispatchUop(UopKind kind, Addr addr, std::uint16_t sync,
                     SeqNum dep_seq);
    void updateFinished();

    CoreParams params_;
    CoreId id_;
    const TraceProgram *trace_;
    L1Cache *l1d_;
    L1Cache *l1i_;
    CoreStats *stats_;
    Addr codeBase_;

    std::vector<RobEntry> rob_;
    SeqNum headSeq_ = 1;
    SeqNum tailSeq_ = 1;

    /**
     * Min-heap of (doneAt, seq) for every issued-but-incomplete uop
     * whose completion is a pure timer (Alu, Store address-gen, Load
     * hits). Load misses (completed by fills) and sync ops (completed
     * by grants) are never pushed, so a popped entry is always live:
     * writeback() pops ripe entries instead of scanning the ROB, and
     * earliestSelfWake() reads the top in O(1). Rebuilt on restore.
     */
    std::vector<std::pair<Tick, SeqNum>> pending_;

    /**
     * Issue-scan cursor: every ROB entry older than this is issued.
     * issue() resumes here instead of rescanning from the head (the
     * skipped prefix would be `continue`d anyway). Derived state:
     * reset to headSeq_ on restore.
     */
    SeqNum firstUnissued_ = 1;

    std::vector<SbEntry> sb_;
    std::uint64_t sbHead_ = 0;
    std::uint64_t sbTail_ = 0;
    std::uint8_t sbWaitingFill_ = 0;

    std::uint64_t traceIndex_ = 0;
    std::uint32_t intraOffset_ = 0;
    std::uint64_t pcCursor_ = 0;
    std::uint8_t fetchWaitingFill_ = 0;
    SeqNum lastLoadSeq_ = 0;

    std::uint8_t syncSent_ = 0;
    std::uint8_t syncGranted_ = 0;

    std::uint8_t finished_ = 0;
    SeqNum nextMsgSeq_ = 0;
    std::uint64_t issuedCount_ = 0; //!< monotone issue transitions
    std::uint64_t doneCount_ = 0;   //!< monotone completion transitions
};

} // namespace slacksim

#endif // SLACKSIM_CPU_OOO_CORE_HH
