/**
 * @file
 * OooCore implementation. Stage order within one cycle: writeback,
 * commit, store-buffer drain, head-of-ROB sync handling, issue, fetch.
 */

#include "cpu/ooo_core.hh"

#include <algorithm>
#include <functional>

#include "util/logging.hh"

namespace slacksim {

OooCore::OooCore(const CoreParams &params, CoreId id,
                 const TraceProgram *trace, L1Cache *l1d, L1Cache *l1i,
                 CoreStats *stats, Addr code_base)
    : params_(params),
      id_(id),
      trace_(trace),
      l1d_(l1d),
      l1i_(l1i),
      stats_(stats),
      codeBase_(code_base),
      rob_(params.robSize),
      sb_(params.sbSize)
{
    SLACKSIM_ASSERT(trace_ && l1d_ && l1i_ && stats_,
                    "OooCore missing a collaborator");
    SLACKSIM_ASSERT(params_.robSize >= 4 && params_.sbSize >= 1,
                    "degenerate core geometry");
    SLACKSIM_ASSERT(!trace_->instrs.empty(), "empty trace program");
    pending_.reserve(params_.robSize);
}

bool
OooCore::cycle(Tick now, std::vector<BusMsg> &out)
{
    if (finished_)
        return false;
    const std::size_t out0 = out.size();
    const Fingerprint before = fingerprint();
    writeback(now);
    commit(now);
    drainStoreBuffer(now, out);
    handleHeadSync(now, out);
    issue(now, out);
    fetch(now, out);
    updateFinished();
    return out.size() != out0 || !(fingerprint() == before) ||
           finished_;
}

OooCore::Fingerprint
OooCore::fingerprint() const
{
    Fingerprint f;
    f.headSeq = headSeq_;
    f.tailSeq = tailSeq_;
    f.sbHead = sbHead_;
    f.sbTail = sbTail_;
    f.traceIndex = traceIndex_;
    f.issuedCount = issuedCount_;
    f.doneCount = doneCount_;
    f.intraOffset = intraOffset_;
    f.flags = static_cast<std::uint8_t>(
        fetchWaitingFill_ | (sbWaitingFill_ << 1) | (syncSent_ << 2) |
        (syncGranted_ << 3) | (finished_ << 4));
    return f;
}

Tick
OooCore::earliestSelfWake() const
{
    // pending_ holds exactly the timer-completed uops still in
    // flight; every ripe entry was popped by this cycle's writeback,
    // so the top is the earliest strictly-future completion.
    return pending_.empty() ? maxTick : pending_.front().first;
}

void
OooCore::pushPending(Tick done_at, SeqNum seq)
{
    pending_.emplace_back(done_at, seq);
    std::push_heap(pending_.begin(), pending_.end(),
                   std::greater<>{});
}

void
OooCore::rebuildPending()
{
    pending_.clear();
    for (SeqNum s = headSeq_; s != tailSeq_; ++s) {
        const RobEntry &e = slot(s);
        if (e.issued && !e.done && !e.waitingFill &&
            e.doneAt != maxTick) {
            pending_.emplace_back(e.doneAt, e.seq);
        }
    }
    std::make_heap(pending_.begin(), pending_.end(),
                   std::greater<>{});
}

void
OooCore::writeback(Tick now)
{
    while (!pending_.empty() && pending_.front().first <= now) {
        const SeqNum seq = pending_.front().second;
        std::pop_heap(pending_.begin(), pending_.end(),
                      std::greater<>{});
        pending_.pop_back();
        RobEntry &e = slot(seq);
        SLACKSIM_ASSERT(e.seq == seq && e.issued && !e.done &&
                            !e.waitingFill,
                        "stale completion-heap entry");
        e.done = 1;
        ++doneCount_;
    }
}

void
OooCore::commit(Tick)
{
    for (std::uint32_t n = 0; n < params_.commitWidth; ++n) {
        if (robEmpty())
            return;
        RobEntry &e = slot(headSeq_);
        if (!e.done)
            return;
        if (e.kind == UopKind::Store) {
            if (sbFull()) {
                ++stats_->sbFullCycles;
                return;
            }
            sb_[sbTail_ % params_.sbSize].addr = e.addr;
            ++sbTail_;
            ++stats_->committedStores;
        } else if (e.kind == UopKind::Load) {
            ++stats_->committedLoads;
        } else if (e.kind != UopKind::Alu) {
            ++stats_->committedSyncOps;
        }
        ++stats_->committedInstrs;
        ++headSeq_;
    }
}

void
OooCore::drainStoreBuffer(Tick now, std::vector<BusMsg> &out)
{
    if (sbEmpty() || sbWaitingFill_)
        return;
    const Addr addr = sb_[sbHead_ % params_.sbSize].addr;
    switch (l1d_->accessStore(addr, now, out)) {
      case L1Result::Hit:
        ++sbHead_;
        break;
      case L1Result::Miss:
        sbWaitingFill_ = 1;
        break;
      case L1Result::Merged:
      case L1Result::Blocked:
        // A request for the line is already in flight, or no MSHR is
        // free: retry next cycle.
        break;
    }
}

void
OooCore::handleHeadSync(Tick now, std::vector<BusMsg> &out)
{
    if (robEmpty())
        return;
    RobEntry &e = slot(headSeq_);
    if (e.kind != UopKind::Lock && e.kind != UopKind::Unlock &&
        e.kind != UopKind::Barrier) {
        return;
    }
    if (e.done)
        return;
    // Sync operations act as memory fences: all older stores must be
    // globally visible (drained) first.
    if (!sbEmpty()) {
        ++stats_->syncStallCycles;
        return;
    }
    if (!syncSent_) {
        BusMsg msg;
        msg.type = e.kind == UopKind::Lock
                       ? MsgType::LockAcq
                       : (e.kind == UopKind::Unlock ? MsgType::LockRel
                                                    : MsgType::BarArrive);
        msg.src = id_;
        msg.sync = e.sync;
        msg.ts = now;
        msg.seq = nextMsgSeq_++;
        out.push_back(msg);
        syncSent_ = 1;
        if (e.kind == UopKind::Unlock) {
            // Releases complete without waiting for a response.
            e.done = 1;
            ++doneCount_;
            syncSent_ = 0;
            return;
        }
    }
    if (syncGranted_) {
        e.done = 1;
        ++doneCount_;
        syncSent_ = 0;
        syncGranted_ = 0;
    } else {
        ++stats_->syncStallCycles;
    }
}

void
OooCore::issue(Tick now, std::vector<BusMsg> &out)
{
    std::uint32_t issued = 0;
    std::uint32_t load_ports = params_.loadPorts;
    // Everything older than the cursor is already issued and would be
    // skipped by the scan below; resume from it instead of the head.
    if (firstUnissued_ < headSeq_)
        firstUnissued_ = headSeq_;
    while (firstUnissued_ != tailSeq_ && slot(firstUnissued_).issued)
        ++firstUnissued_;
    for (SeqNum s = firstUnissued_; s != tailSeq_; ++s) {
        if (issued >= params_.issueWidth)
            return;
        RobEntry &e = slot(s);
        if (e.issued)
            continue;
        switch (e.kind) {
          case UopKind::Alu: {
            if (e.depSeq != 0 && e.depSeq >= headSeq_) {
                const RobEntry &dep = slot(e.depSeq);
                if (dep.seq == e.depSeq && !dep.done)
                    continue; // operand not ready yet
            }
            e.issued = 1;
            e.doneAt = now + params_.aluLatency;
            pushPending(e.doneAt, e.seq);
            ++issuedCount_;
            ++issued;
            break;
          }
          case UopKind::Load: {
            if (load_ports == 0)
                continue;
            L1Waiter waiter;
            waiter.kind = L1Waiter::Kind::LoadRob;
            waiter.index =
                static_cast<std::uint16_t>(s % params_.robSize);
            switch (l1d_->accessLoad(e.addr, waiter, now, out)) {
              case L1Result::Hit:
                e.issued = 1;
                e.doneAt = now + l1d_->hitLatency();
                pushPending(e.doneAt, e.seq);
                ++issuedCount_;
                ++issued;
                --load_ports;
                break;
              case L1Result::Miss:
              case L1Result::Merged:
                // Completed by the fill path, not a timer: stays out
                // of the completion heap.
                e.issued = 1;
                e.waitingFill = 1;
                ++issuedCount_;
                ++issued;
                --load_ports;
                break;
              case L1Result::Blocked:
                break; // retry next cycle
            }
            break;
          }
          case UopKind::Store:
            // Address generation only; the memory access happens when
            // the store drains from the store buffer after commit.
            e.issued = 1;
            e.doneAt = now + 1;
            pushPending(e.doneAt, e.seq);
            ++issuedCount_;
            ++issued;
            break;
          case UopKind::Lock:
          case UopKind::Unlock:
          case UopKind::Barrier:
            // Handled at the head of the ROB; mark issued so the
            // scheduler skips them, and park doneAt at infinity so
            // writeback() never completes them — only the sync grant
            // path may. Infinite doneAt also keeps them out of the
            // completion heap.
            e.issued = 1;
            e.doneAt = maxTick;
            ++issuedCount_;
            break;
        }
    }
}

void
OooCore::fetch(Tick now, std::vector<BusMsg> &out)
{
    if (fetchWaitingFill_) {
        ++stats_->fetchStallCycles;
        return;
    }
    if (traceIndex_ >= trace_->instrs.size())
        return;
    if (trace_->instrs[traceIndex_].op == TraceOp::End)
        return;

    // One instruction-cache probe per cycle for the current fetch
    // group's line.
    const Addr pc =
        codeBase_ + (pcCursor_ * 4) % trace_->codeFootprint;
    switch (l1i_->accessFetch(pc, now, out)) {
      case L1Result::Hit:
        break;
      case L1Result::Miss:
      case L1Result::Merged:
        fetchWaitingFill_ = 1;
        ++stats_->fetchStallCycles;
        return;
      case L1Result::Blocked:
        ++stats_->fetchStallCycles;
        return;
    }

    const Addr line = l1i_->lineAddr(pc);
    for (std::uint32_t n = 0; n < params_.fetchWidth; ++n) {
        if (robFull()) {
            ++stats_->robFullCycles;
            return;
        }
        // Stay within the fetched line.
        const Addr cur_pc =
            codeBase_ + (pcCursor_ * 4) % trace_->codeFootprint;
        if (l1i_->lineAddr(cur_pc) != line && n > 0)
            return;
        if (traceIndex_ >= trace_->instrs.size())
            return;
        const TraceInstr &instr = trace_->instrs[traceIndex_];
        bool advanced = false;
        switch (instr.op) {
          case TraceOp::End:
            return;
          case TraceOp::Compute: {
            SeqNum dep = 0;
            if (intraOffset_ == 0 &&
                (instr.flags & traceFlagDependsOnLoad)) {
                dep = lastLoadSeq_;
            }
            advanced = dispatchUop(UopKind::Alu, 0, 0, dep);
            if (advanced) {
                if (++intraOffset_ >= instr.count) {
                    intraOffset_ = 0;
                    ++traceIndex_;
                }
            }
            break;
          }
          case TraceOp::Load:
            advanced = dispatchUop(UopKind::Load, instr.addr, 0, 0);
            if (advanced) {
                lastLoadSeq_ = tailSeq_ - 1;
                ++traceIndex_;
            }
            break;
          case TraceOp::Store:
            advanced = dispatchUop(UopKind::Store, instr.addr, 0, 0);
            if (advanced)
                ++traceIndex_;
            break;
          case TraceOp::Lock:
            advanced = dispatchUop(UopKind::Lock, 0, instr.sync, 0);
            if (advanced)
                ++traceIndex_;
            break;
          case TraceOp::Unlock:
            advanced = dispatchUop(UopKind::Unlock, 0, instr.sync, 0);
            if (advanced)
                ++traceIndex_;
            break;
          case TraceOp::Barrier:
            advanced = dispatchUop(UopKind::Barrier, 0, instr.sync, 0);
            if (advanced)
                ++traceIndex_;
            break;
        }
        if (!advanced)
            return;
        ++pcCursor_;
    }
}

bool
OooCore::dispatchUop(UopKind kind, Addr addr, std::uint16_t sync,
                     SeqNum dep_seq)
{
    if (robFull())
        return false;
    RobEntry &e = slot(tailSeq_);
    e = RobEntry{};
    e.kind = kind;
    e.addr = addr;
    e.sync = sync;
    e.seq = tailSeq_;
    e.depSeq = dep_seq;
    ++tailSeq_;
    return true;
}

void
OooCore::updateFinished()
{
    if (finished_)
        return;
    const bool trace_done =
        traceIndex_ < trace_->instrs.size() &&
        trace_->instrs[traceIndex_].op == TraceOp::End;
    if (trace_done && robEmpty() && sbEmpty())
        finished_ = 1;
}

void
OooCore::handleInbound(const BusMsg &msg, Tick now,
                       std::vector<BusMsg> &out)
{
    switch (msg.type) {
      case MsgType::Fill:
      case MsgType::UpgradeAck: {
        L1Cache *cache =
            msg.cache == CacheKind::Instr ? l1i_ : l1d_;
        std::vector<L1Waiter> waiters;
        cache->applyFill(msg, now, out, waiters);
        for (const L1Waiter &w : waiters) {
            switch (w.kind) {
              case L1Waiter::Kind::LoadRob: {
                RobEntry &e = rob_[w.index];
                if (e.kind == UopKind::Load && e.waitingFill &&
                    e.seq >= headSeq_ && e.seq < tailSeq_) {
                    e.waitingFill = 0;
                    e.done = 1;
                    ++doneCount_;
                }
                break;
              }
              case L1Waiter::Kind::StoreBuffer: {
                sbWaitingFill_ = 0;
                // Perform the blocked store immediately: the miss was
                // initiated for this store, and in a real lockup-free
                // cache its data merges with the arriving line before
                // any later snoop can intervene. Without this, two
                // cores fighting over a line can invalidate each
                // other's fills forever (store livelock).
                if (!sbEmpty()) {
                    const Addr a = sb_[sbHead_ % params_.sbSize].addr;
                    if (l1d_->lineAddr(a) == msg.addr &&
                        l1d_->accessStore(a, now, out) ==
                            L1Result::Hit) {
                        ++sbHead_;
                    }
                }
                break;
              }
              case L1Waiter::Kind::Frontend:
                fetchWaitingFill_ = 0;
                break;
            }
        }
        break;
      }
      case MsgType::SnoopInv:
      case MsgType::SnoopDown: {
        L1Cache *cache =
            msg.cache == CacheKind::Instr ? l1i_ : l1d_;
        cache->applySnoop(msg);
        break;
      }
      case MsgType::SyncGrant:
        syncGranted_ = 1;
        break;
      default:
        SLACKSIM_PANIC("core ", id_, " received unexpected message ",
                       msgTypeName(msg.type));
    }
}

void
OooCore::save(SnapshotWriter &writer) const
{
    writer.putMarker(0xc04e);
    writer.putVector(rob_);
    writer.put(headSeq_);
    writer.put(tailSeq_);
    writer.putVector(sb_);
    writer.put(sbHead_);
    writer.put(sbTail_);
    writer.put(sbWaitingFill_);
    writer.put(traceIndex_);
    writer.put(intraOffset_);
    writer.put(pcCursor_);
    writer.put(fetchWaitingFill_);
    writer.put(lastLoadSeq_);
    writer.put(syncSent_);
    writer.put(syncGranted_);
    writer.put(finished_);
    writer.put(nextMsgSeq_);
    writer.put(issuedCount_);
    writer.put(doneCount_);
    writer.put(*stats_);
}

void
OooCore::restore(SnapshotReader &reader)
{
    reader.checkMarker(0xc04e);
    rob_ = reader.getVector<RobEntry>();
    headSeq_ = reader.get<SeqNum>();
    tailSeq_ = reader.get<SeqNum>();
    sb_ = reader.getVector<SbEntry>();
    sbHead_ = reader.get<std::uint64_t>();
    sbTail_ = reader.get<std::uint64_t>();
    sbWaitingFill_ = reader.get<std::uint8_t>();
    traceIndex_ = reader.get<std::uint64_t>();
    intraOffset_ = reader.get<std::uint32_t>();
    pcCursor_ = reader.get<std::uint64_t>();
    fetchWaitingFill_ = reader.get<std::uint8_t>();
    lastLoadSeq_ = reader.get<SeqNum>();
    syncSent_ = reader.get<std::uint8_t>();
    syncGranted_ = reader.get<std::uint8_t>();
    finished_ = reader.get<std::uint8_t>();
    nextMsgSeq_ = reader.get<SeqNum>();
    issuedCount_ = reader.get<std::uint64_t>();
    doneCount_ = reader.get<std::uint64_t>();
    *stats_ = reader.get<CoreStats>();
    SLACKSIM_ASSERT(rob_.size() == params_.robSize &&
                        sb_.size() == params_.sbSize,
                    "core snapshot geometry mismatch");
    // Derived accelerator state: rebuild rather than serialize.
    rebuildPending();
    firstUnissued_ = headSeq_;
}

} // namespace slacksim
