/**
 * @file
 * Lock-up free (non-blocking) L1 cache with MESI states, LRU
 * replacement and a small MSHR file, modeled after the paper's 16KB
 * L1 I/D caches kept coherent over the snooping bus.
 *
 * The cache is timing-only: it tracks tags and states, never data.
 * All bus traffic is emitted as BusMsg records the caller forwards to
 * the manager thread; fills and snoops arrive back the same way.
 */

#ifndef SLACKSIM_CACHE_L1_CACHE_HH
#define SLACKSIM_CACHE_L1_CACHE_HH

#include <cstdint>
#include <vector>

#include "cache/mesi.hh"
#include "stats/stats.hh"
#include "uncore/msg.hh"
#include "util/snapshot.hh"
#include "util/types.hh"

namespace slacksim {

/** Outcome of a core-side cache access. */
enum class L1Result : std::uint8_t {
    Hit,       //!< serviced locally; completes after hitLatency
    Miss,      //!< MSHR allocated, bus request emitted
    Merged,    //!< folded into an existing MSHR for the same line
    Blocked,   //!< cannot proceed now (no MSHR / waiter slots / conflict)
};

/** Who to wake when an outstanding miss completes. */
struct L1Waiter
{
    enum class Kind : std::uint8_t {
        LoadRob = 0,   //!< index = ROB slot of the waiting load
        StoreBuffer,   //!< store-buffer head retry
        Frontend,      //!< instruction fetch restart
    };
    Kind kind = Kind::LoadRob;
    std::uint16_t index = 0;
};

/** Configuration for one L1 cache instance. */
struct L1Params
{
    std::uint32_t sets = 64;
    std::uint32_t ways = 4;
    std::uint32_t lineBytes = 64;
    std::uint32_t mshrs = 8;
    Tick hitLatency = 1;
    bool instructionCache = false;
};

/**
 * One L1 cache. The owning core calls accessLoad/accessStore/
 * accessFetch during its cycle; the core's inbound-message handler
 * calls applyFill/applySnoop. All methods run on the core's thread.
 */
class L1Cache : public Snapshotable
{
  public:
    L1Cache(const L1Params &params, CoreId owner, CoreStats *stats);

    /** @return the line-aligned address containing @p a. */
    Addr
    lineAddr(Addr a) const
    {
        return a & ~static_cast<Addr>(params_.lineBytes - 1);
    }

    /**
     * Core load access. On a miss a GetS is appended to @p out and
     * @p waiter is registered; on Merged the waiter joins an existing
     * MSHR. @p now is the core's local time (request timestamp).
     */
    L1Result accessLoad(Addr addr, const L1Waiter &waiter, Tick now,
                        std::vector<BusMsg> &out);

    /**
     * Store-buffer head access. Hit requires M/E. A line in S emits
     * an Upgrade; an absent line emits GetM. The store buffer is the
     * implicit waiter.
     */
    L1Result accessStore(Addr addr, Tick now, std::vector<BusMsg> &out);

    /** Instruction fetch access (instruction caches only). */
    L1Result accessFetch(Addr addr, Tick now, std::vector<BusMsg> &out);

    /**
     * Apply a Fill or UpgradeAck. Dirty victims append PutM messages
     * to @p out. The woken waiters are appended to @p waiters.
     */
    void applyFill(const BusMsg &msg, Tick now, std::vector<BusMsg> &out,
                   std::vector<L1Waiter> &waiters);

    /** Apply SnoopInv / SnoopDown. Timing-only; never emits data. */
    void applySnoop(const BusMsg &msg);

    /** @return the state currently held for @p addr's line. */
    MesiState probe(Addr addr) const;

    /** @return number of MSHRs currently in use. */
    std::uint32_t mshrsInUse() const;

    /** @return true when an MSHR is outstanding for @p addr's line. */
    bool mshrPending(Addr addr) const;

    /** Hit latency configured for this cache. */
    Tick hitLatency() const { return params_.hitLatency; }

    /**
     * Invariant check used by tests: at most `ways` valid lines per
     * set, no duplicate tags within a set. Panics on violation.
     */
    void checkInvariants() const;

    void save(SnapshotWriter &writer) const override;
    void restore(SnapshotReader &reader) override;

  private:
    /** One tag-array entry. */
    struct Line
    {
        Addr tag = 0;             //!< full line address
        MesiState state = MesiState::Invalid;
        std::uint32_t lruStamp = 0;
    };

    /** One miss-status holding register. */
    struct Mshr
    {
        Addr line = 0;
        bool valid = false;
        MsgType request = MsgType::GetS;
        std::uint8_t numWaiters = 0;
        L1Waiter waiters[14];
    };

    std::uint32_t setIndex(Addr line_addr) const;
    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;
    Mshr *findMshr(Addr line_addr);
    Mshr *allocMshr(Addr line_addr, MsgType request);
    bool addWaiter(Mshr &mshr, const L1Waiter &waiter);
    /** Install a line, evicting if needed (may emit PutM). */
    Line &installLine(Addr line_addr, MesiState state, Tick now,
                      std::vector<BusMsg> &out);
    void touchLru(Line &line);

    L1Params params_;
    CoreId owner_;
    CoreStats *stats_;
    std::vector<Line> lines_;  //!< sets * ways entries, set-major
    std::vector<Mshr> mshrs_;
    std::uint32_t lruClock_ = 0;
    SeqNum nextSeq_ = 0;       //!< per-cache message sequence numbers
};

} // namespace slacksim

#endif // SLACKSIM_CACHE_L1_CACHE_HH
