/**
 * @file
 * L1Cache implementation.
 */

#include "cache/l1_cache.hh"

#include <algorithm>

#include "util/logging.hh"

namespace slacksim {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v && (v & (v - 1)) == 0;
}

} // namespace

L1Cache::L1Cache(const L1Params &params, CoreId owner, CoreStats *stats)
    : params_(params),
      owner_(owner),
      stats_(stats),
      lines_(static_cast<std::size_t>(params.sets) * params.ways),
      mshrs_(params.mshrs)
{
    SLACKSIM_ASSERT(isPow2(params_.sets), "L1 sets must be a power of 2");
    SLACKSIM_ASSERT(isPow2(params_.lineBytes),
                    "L1 line size must be a power of 2");
    SLACKSIM_ASSERT(params_.ways >= 1 && params_.mshrs >= 1,
                    "L1 needs at least one way and one MSHR");
    SLACKSIM_ASSERT(stats_ != nullptr, "L1 needs a stats sink");
}

std::uint32_t
L1Cache::setIndex(Addr line_addr) const
{
    return static_cast<std::uint32_t>(
        (line_addr / params_.lineBytes) & (params_.sets - 1));
}

L1Cache::Line *
L1Cache::findLine(Addr line_addr)
{
    Line *base = &lines_[static_cast<std::size_t>(setIndex(line_addr)) *
                         params_.ways];
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        if (base[w].state != MesiState::Invalid &&
            base[w].tag == line_addr) {
            return &base[w];
        }
    }
    return nullptr;
}

const L1Cache::Line *
L1Cache::findLine(Addr line_addr) const
{
    return const_cast<L1Cache *>(this)->findLine(line_addr);
}

L1Cache::Mshr *
L1Cache::findMshr(Addr line_addr)
{
    for (auto &mshr : mshrs_)
        if (mshr.valid && mshr.line == line_addr)
            return &mshr;
    return nullptr;
}

L1Cache::Mshr *
L1Cache::allocMshr(Addr line_addr, MsgType request)
{
    for (auto &mshr : mshrs_) {
        if (!mshr.valid) {
            mshr.valid = true;
            mshr.line = line_addr;
            mshr.request = request;
            mshr.numWaiters = 0;
            return &mshr;
        }
    }
    return nullptr;
}

bool
L1Cache::addWaiter(Mshr &mshr, const L1Waiter &waiter)
{
    if (mshr.numWaiters >= sizeof(mshr.waiters) / sizeof(mshr.waiters[0]))
        return false;
    mshr.waiters[mshr.numWaiters++] = waiter;
    return true;
}

void
L1Cache::touchLru(Line &line)
{
    line.lruStamp = ++lruClock_;
}

L1Cache::Line &
L1Cache::installLine(Addr line_addr, MesiState state, Tick now,
                     std::vector<BusMsg> &out)
{
    Line *base = &lines_[static_cast<std::size_t>(setIndex(line_addr)) *
                         params_.ways];
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Line &line = base[w];
        if (line.state == MesiState::Invalid) {
            victim = &line;
            break;
        }
        if (!victim || line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    if (victim->state == MesiState::Modified) {
        // Dirty eviction: write the line back over the bus.
        BusMsg wb;
        wb.type = MsgType::PutM;
        wb.addr = victim->tag;
        wb.src = owner_;
        wb.cache = params_.instructionCache ? CacheKind::Instr
                                            : CacheKind::Data;
        wb.ts = now;
        wb.seq = nextSeq_++;
        out.push_back(wb);
        ++stats_->l1dWritebacks;
    }
    // Clean (S/E) victims are dropped silently, like a real snooping
    // L1: the manager's map keeps them as stale sharers, which is
    // conservative (extra invalidations, never missed ones).
    victim->tag = line_addr;
    victim->state = state;
    touchLru(*victim);
    return *victim;
}

L1Result
L1Cache::accessLoad(Addr addr, const L1Waiter &waiter, Tick now,
                    std::vector<BusMsg> &out)
{
    SLACKSIM_ASSERT(!params_.instructionCache,
                    "accessLoad on an instruction cache");
    const Addr line_addr = lineAddr(addr);
    if (Line *line = findLine(line_addr)) {
        touchLru(*line);
        ++stats_->l1dHits;
        return L1Result::Hit;
    }
    if (Mshr *mshr = findMshr(line_addr)) {
        // Loads can merge into any pending request for the line: the
        // fill provides readable data whether it is GetS or GetM.
        if (!addWaiter(*mshr, waiter))
            return L1Result::Blocked;
        ++stats_->l1dMshrMerges;
        return L1Result::Merged;
    }
    Mshr *mshr = allocMshr(line_addr, MsgType::GetS);
    if (!mshr) {
        ++stats_->l1dMshrFullEvents;
        return L1Result::Blocked;
    }
    if (!addWaiter(*mshr, waiter)) {
        mshr->valid = false;
        return L1Result::Blocked;
    }
    ++stats_->l1dMisses;
    BusMsg msg;
    msg.type = MsgType::GetS;
    msg.addr = line_addr;
    msg.src = owner_;
    msg.cache = CacheKind::Data;
    msg.ts = now;
    msg.seq = nextSeq_++;
    out.push_back(msg);
    return L1Result::Miss;
}

L1Result
L1Cache::accessStore(Addr addr, Tick now, std::vector<BusMsg> &out)
{
    SLACKSIM_ASSERT(!params_.instructionCache,
                    "accessStore on an instruction cache");
    const Addr line_addr = lineAddr(addr);
    Line *line = findLine(line_addr);
    if (line && canWrite(line->state)) {
        line->state = MesiState::Modified;
        touchLru(*line);
        ++stats_->l1dHits;
        return L1Result::Hit;
    }
    if (findMshr(line_addr)) {
        // An outstanding request for this line exists (a GetS issued
        // by an earlier load, or our own upgrade). The store buffer
        // retries after the fill lands.
        return L1Result::Blocked;
    }
    Mshr *mshr = nullptr;
    MsgType req;
    if (line && line->state == MesiState::Shared) {
        req = MsgType::Upgrade;
        ++stats_->l1dUpgrades;
    } else {
        req = MsgType::GetM;
        ++stats_->l1dMisses;
    }
    mshr = allocMshr(line_addr, req);
    if (!mshr) {
        ++stats_->l1dMshrFullEvents;
        return L1Result::Blocked;
    }
    L1Waiter waiter;
    waiter.kind = L1Waiter::Kind::StoreBuffer;
    addWaiter(*mshr, waiter);
    BusMsg msg;
    msg.type = req;
    msg.addr = line_addr;
    msg.src = owner_;
    msg.cache = CacheKind::Data;
    msg.ts = now;
    msg.seq = nextSeq_++;
    out.push_back(msg);
    return L1Result::Miss;
}

L1Result
L1Cache::accessFetch(Addr addr, Tick now, std::vector<BusMsg> &out)
{
    SLACKSIM_ASSERT(params_.instructionCache,
                    "accessFetch on a data cache");
    const Addr line_addr = lineAddr(addr);
    if (Line *line = findLine(line_addr)) {
        touchLru(*line);
        ++stats_->l1iHits;
        return L1Result::Hit;
    }
    if (Mshr *mshr = findMshr(line_addr)) {
        L1Waiter waiter;
        waiter.kind = L1Waiter::Kind::Frontend;
        if (!addWaiter(*mshr, waiter))
            return L1Result::Blocked;
        return L1Result::Merged;
    }
    Mshr *mshr = allocMshr(line_addr, MsgType::GetS);
    if (!mshr)
        return L1Result::Blocked;
    L1Waiter waiter;
    waiter.kind = L1Waiter::Kind::Frontend;
    addWaiter(*mshr, waiter);
    ++stats_->l1iMisses;
    BusMsg msg;
    msg.type = MsgType::GetS;
    msg.addr = line_addr;
    msg.src = owner_;
    msg.cache = CacheKind::Instr;
    msg.ts = now;
    msg.seq = nextSeq_++;
    out.push_back(msg);
    return L1Result::Miss;
}

void
L1Cache::applyFill(const BusMsg &msg, Tick now, std::vector<BusMsg> &out,
                   std::vector<L1Waiter> &waiters)
{
    const Addr line_addr = msg.addr;
    Mshr *mshr = findMshr(line_addr);
    // Under slack-induced distortions a fill can arrive for a line
    // whose MSHR situation no longer matches; the simulation must
    // "survive violations naturally", so handle every case.
    const auto granted = static_cast<MesiState>(msg.grantState);
    if (msg.type == MsgType::UpgradeAck) {
        if (Line *line = findLine(line_addr)) {
            line->state = MesiState::Modified;
            touchLru(*line);
        } else {
            // The line was snooped away between the upgrade request
            // and the ack; reinstall it with ownership.
            installLine(line_addr, MesiState::Modified, now, out);
        }
    } else {
        if (Line *line = findLine(line_addr)) {
            // Already present (e.g. refetched after a snoop race):
            // adopt the stronger of the two states.
            if (static_cast<int>(granted) >
                static_cast<int>(line->state)) {
                line->state = granted;
            }
            touchLru(*line);
        } else {
            installLine(line_addr, granted, now, out);
        }
    }
    if (mshr) {
        for (std::uint8_t i = 0; i < mshr->numWaiters; ++i)
            waiters.push_back(mshr->waiters[i]);
        mshr->valid = false;
    }
}

void
L1Cache::applySnoop(const BusMsg &msg)
{
    Line *line = findLine(msg.addr);
    if (!line)
        return; // stale snoop (silent eviction beat it): no-op
    if (msg.type == MsgType::SnoopInv) {
        line->state = MesiState::Invalid;
        ++stats_->snoopInvalidations;
    } else if (msg.type == MsgType::SnoopDown) {
        if (canWrite(line->state) || line->state == MesiState::Shared) {
            // Dirty data travels back implicitly (the manager already
            // accounted the transfer); just lose write permission.
            line->state = MesiState::Shared;
            ++stats_->snoopDowngrades;
        }
    } else {
        SLACKSIM_PANIC("unexpected snoop type ",
                       static_cast<int>(msg.type));
    }
}

MesiState
L1Cache::probe(Addr addr) const
{
    const Line *line = findLine(lineAddr(addr));
    return line ? line->state : MesiState::Invalid;
}

std::uint32_t
L1Cache::mshrsInUse() const
{
    std::uint32_t n = 0;
    for (const auto &mshr : mshrs_)
        n += mshr.valid ? 1 : 0;
    return n;
}

bool
L1Cache::mshrPending(Addr addr) const
{
    return const_cast<L1Cache *>(this)->findMshr(lineAddr(addr)) !=
           nullptr;
}

void
L1Cache::checkInvariants() const
{
    for (std::uint32_t s = 0; s < params_.sets; ++s) {
        const Line *base =
            &lines_[static_cast<std::size_t>(s) * params_.ways];
        for (std::uint32_t i = 0; i < params_.ways; ++i) {
            if (base[i].state == MesiState::Invalid)
                continue;
            SLACKSIM_ASSERT(setIndex(base[i].tag) == s,
                            "line in wrong set");
            for (std::uint32_t j = i + 1; j < params_.ways; ++j) {
                SLACKSIM_ASSERT(base[j].state == MesiState::Invalid ||
                                    base[j].tag != base[i].tag,
                                "duplicate tag in set ", s);
            }
        }
    }
}

void
L1Cache::save(SnapshotWriter &writer) const
{
    writer.putMarker(0x4c31); // "L1"
    writer.putVector(lines_);
    writer.putVector(mshrs_);
    writer.put(lruClock_);
    writer.put(nextSeq_);
}

void
L1Cache::restore(SnapshotReader &reader)
{
    reader.checkMarker(0x4c31);
    lines_ = reader.getVector<Line>();
    mshrs_ = reader.getVector<Mshr>();
    lruClock_ = reader.get<std::uint32_t>();
    nextSeq_ = reader.get<SeqNum>();
    SLACKSIM_ASSERT(lines_.size() ==
                        static_cast<std::size_t>(params_.sets) *
                            params_.ways &&
                        mshrs_.size() == params_.mshrs,
                    "L1 snapshot geometry mismatch");
}

} // namespace slacksim
