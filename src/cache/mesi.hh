/**
 * @file
 * MESI coherence states shared by the L1 caches and the manager's
 * global cache status map.
 */

#ifndef SLACKSIM_CACHE_MESI_HH
#define SLACKSIM_CACHE_MESI_HH

#include <cstdint>

namespace slacksim {

/** Coherence protocol variant implemented by the bus/map logic. */
enum class CoherenceProtocol : std::uint8_t {
    MSI,  //!< no Exclusive state: every first store pays an upgrade
    MESI, //!< silent E->M upgrades on unshared lines (paper default)
};

/** @return printable protocol name. */
constexpr const char *
protocolName(CoherenceProtocol p)
{
    return p == CoherenceProtocol::MSI ? "MSI" : "MESI";
}

/** The four MESI states. */
enum class MesiState : std::uint8_t {
    Invalid = 0,
    Shared = 1,
    Exclusive = 2,
    Modified = 3,
};

/** @return printable state name. */
constexpr const char *
mesiName(MesiState s)
{
    switch (s) {
      case MesiState::Invalid:
        return "I";
      case MesiState::Shared:
        return "S";
      case MesiState::Exclusive:
        return "E";
      case MesiState::Modified:
        return "M";
    }
    return "?";
}

/** @return true when the state permits reading without a bus request. */
constexpr bool
canRead(MesiState s)
{
    return s != MesiState::Invalid;
}

/** @return true when the state permits writing without a bus request. */
constexpr bool
canWrite(MesiState s)
{
    return s == MesiState::Exclusive || s == MesiState::Modified;
}

} // namespace slacksim

#endif // SLACKSIM_CACHE_MESI_HH
