/**
 * @file
 * Tiny fixed-width table / CSV emitter used by the bench harnesses to
 * print the paper's tables and figure series.
 */

#ifndef SLACKSIM_STATS_TABLE_HH
#define SLACKSIM_STATS_TABLE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace slacksim {

/**
 * A text table: a header row plus data rows; cells are strings so the
 * caller controls all numeric formatting.
 */
class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title);

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Start a row builder; use cell() then endRow(). */
    Table &cell(std::string value);

    /** Convenience numeric cells. */
    Table &cell(double value, int precision = 2);
    Table &cell(std::uint64_t value);
    Table &cell(std::int64_t value);
    Table &cell(int value);

    /** Finish the row started with cell(). */
    void endRow();

    /** Render with padded fixed-width columns. */
    void print(std::ostream &os) const;

    /** Render as CSV (no title line). */
    void printCsv(std::ostream &os) const;

    /** @return number of data rows. */
    std::size_t rowCount() const { return rows_.size(); }

    /** @return the table title. */
    const std::string &title() const { return title_; }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> pending_;
};

/** Format a double with fixed precision. */
std::string formatDouble(double value, int precision = 2);

/** Format a rate as a percentage string, e.g. 0.00123 -> "0.123%". */
std::string formatPercent(double fraction, int precision = 3);

/** Format a cycle count compactly, e.g. 50000 -> "50k". */
std::string formatCycles(std::uint64_t cycles);

} // namespace slacksim

#endif // SLACKSIM_STATS_TABLE_HH
