/**
 * @file
 * Implementation of the table / CSV emitter.
 */

#include "stats/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace slacksim {

Table::Table(std::string title)
    : title_(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    SLACKSIM_ASSERT(header_.empty() || row.size() == header_.size(),
                    "table row width mismatch in '", title_, "'");
    rows_.push_back(std::move(row));
}

Table &
Table::cell(std::string value)
{
    pending_.push_back(std::move(value));
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatDouble(value, precision));
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(std::int64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(int value)
{
    return cell(std::to_string(value));
}

void
Table::endRow()
{
    addRow(std::move(pending_));
    pending_.clear();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i] + 2))
               << row[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
    os.flush();
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    os.flush();
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
formatPercent(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision)
       << fraction * 100.0 << "%";
    return os.str();
}

std::string
formatCycles(std::uint64_t cycles)
{
    if (cycles % 1000000 == 0 && cycles > 0)
        return std::to_string(cycles / 1000000) + "M";
    if (cycles % 1000 == 0 && cycles > 0)
        return std::to_string(cycles / 1000) + "k";
    return std::to_string(cycles);
}

} // namespace slacksim
