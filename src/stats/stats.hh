/**
 * @file
 * Plain-old-data statistics records kept by the simulated components.
 *
 * Everything in here is part of the *simulated* state: on a rollback
 * the statistics of the wasted interval are discarded along with the
 * rest of the world, so these structs are trivially copyable and are
 * serialized into checkpoints. Host-side measurements (wall-clock
 * time, rollback counts, checkpoint costs) live in HostStats, which is
 * deliberately *not* snapshotable.
 */

#ifndef SLACKSIM_STATS_STATS_HH
#define SLACKSIM_STATS_STATS_HH

#include <cstdint>

#include "util/types.hh"

namespace slacksim {

/** Per-core pipeline and L1 statistics. */
struct CoreStats
{
    std::uint64_t committedInstrs = 0;  //!< committed micro-ops
    std::uint64_t committedLoads = 0;
    std::uint64_t committedStores = 0;
    std::uint64_t committedSyncOps = 0;
    std::uint64_t fetchStallCycles = 0; //!< front end blocked on L1I
    std::uint64_t robFullCycles = 0;
    std::uint64_t sbFullCycles = 0;     //!< commit blocked on store buffer
    std::uint64_t syncStallCycles = 0;  //!< head-of-ROB sync wait
    std::uint64_t idleCycles = 0;       //!< trace exhausted / not started

    std::uint64_t l1dHits = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1dMshrMerges = 0;    //!< secondary misses merged
    std::uint64_t l1dMshrFullEvents = 0;
    std::uint64_t l1dWritebacks = 0;
    std::uint64_t l1dUpgrades = 0;      //!< S->M upgrade requests
    std::uint64_t l1iHits = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t snoopInvalidations = 0;
    std::uint64_t snoopDowngrades = 0;

    /** Fold another record into this one. */
    void
    add(const CoreStats &o)
    {
        committedInstrs += o.committedInstrs;
        committedLoads += o.committedLoads;
        committedStores += o.committedStores;
        committedSyncOps += o.committedSyncOps;
        fetchStallCycles += o.fetchStallCycles;
        robFullCycles += o.robFullCycles;
        sbFullCycles += o.sbFullCycles;
        syncStallCycles += o.syncStallCycles;
        idleCycles += o.idleCycles;
        l1dHits += o.l1dHits;
        l1dMisses += o.l1dMisses;
        l1dMshrMerges += o.l1dMshrMerges;
        l1dMshrFullEvents += o.l1dMshrFullEvents;
        l1dWritebacks += o.l1dWritebacks;
        l1dUpgrades += o.l1dUpgrades;
        l1iHits += o.l1iHits;
        l1iMisses += o.l1iMisses;
        snoopInvalidations += o.snoopInvalidations;
        snoopDowngrades += o.snoopDowngrades;
    }
};

/** Manager-side bus / L2 / sync statistics. */
struct UncoreStats
{
    std::uint64_t busRequests = 0;      //!< request-bus grants
    std::uint64_t busQueueingCycles = 0; //!< total wait for the bus
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t l2Writebacks = 0;     //!< dirty L2 victims to memory
    std::uint64_t backInvalidations = 0; //!< L2 victim inclusive kills
    std::uint64_t cacheToCacheTransfers = 0;
    std::uint64_t invalidationsSent = 0;
    std::uint64_t downgradesSent = 0;
    std::uint64_t lockAcquires = 0;
    std::uint64_t lockQueued = 0;       //!< acquires that had to wait
    std::uint64_t barrierEpisodes = 0;  //!< completed whole barriers

    void
    add(const UncoreStats &o)
    {
        busRequests += o.busRequests;
        busQueueingCycles += o.busQueueingCycles;
        l2Hits += o.l2Hits;
        l2Misses += o.l2Misses;
        l2Writebacks += o.l2Writebacks;
        backInvalidations += o.backInvalidations;
        cacheToCacheTransfers += o.cacheToCacheTransfers;
        invalidationsSent += o.invalidationsSent;
        downgradesSent += o.downgradesSent;
        lockAcquires += o.lockAcquires;
        lockQueued += o.lockQueued;
        barrierEpisodes += o.barrierEpisodes;
    }
};

/** Simulation-violation counters (the paper's accuracy proxy). */
struct ViolationStats
{
    std::uint64_t busViolations = 0;    //!< bus serviced out of ts order
    std::uint64_t mapViolations = 0;    //!< cache-map transition o-o-o

    std::uint64_t total() const { return busViolations + mapViolations; }

    void
    add(const ViolationStats &o)
    {
        busViolations += o.busViolations;
        mapViolations += o.mapViolations;
    }
};

/** Host-side measurements; never rolled back. */
struct HostStats
{
    double wallSeconds = 0.0;           //!< engine run wall-clock time
    double checkpointSeconds = 0.0;     //!< critical-path snapshot time
    /** Snapshot seal/copy time overlapped with forward simulation on
     *  the async checkpoint thread; never on the critical path. */
    double checkpointAsyncSeconds = 0.0;
    std::uint64_t checkpointsTaken = 0;
    std::uint64_t checkpointBytes = 0;  //!< size of the last snapshot
    std::uint64_t rollbacks = 0;
    std::uint64_t wastedCycles = 0;     //!< simulated cycles re-done
    std::uint64_t replayCycles = 0;     //!< cycles replayed in CC mode
    std::uint64_t slackAdjustments = 0; //!< adaptive bound changes
    std::uint64_t managerWakeups = 0;
    std::uint64_t coreParkEvents = 0;
    /** Host threads the run actually used (manager + workers +
     *  relays); 1 for the serial engine and parallel inline mode. */
    std::uint32_t hostThreadsUsed = 1;
    Tick maxObservedSlack = 0;          //!< max clock spread seen
};

} // namespace slacksim

#endif // SLACKSIM_STATS_STATS_HH
