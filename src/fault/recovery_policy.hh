/**
 * @file
 * Graceful-degradation ladder (DESIGN.md §9).
 *
 * A speculative run that stops making progress must not crash and
 * must not livelock: it degrades, one rung at a time, toward the
 * always-correct quantum-equivalent configuration the paper builds on
 * (§3), and every transition is recorded in the decision ledger and
 * the run report.
 *
 *   speculative ──(rollback storm / checkpoint integrity)──► adaptive
 *   adaptive ──(pinned at min bound, rate still over band)──► fixed
 *   fixed-slack: forced bound 1, quantum-equivalent, cannot demote
 *
 * Re-promotion climbs back one rung after `repromoteAfter` demoted
 * cycles; the delay doubles with every demotion (capped at 8x) so a
 * workload that keeps collapsing backs off instead of oscillating.
 *
 * All calls happen on the manager thread while the simulation is
 * quiesced or between service rounds — no locking needed.
 */

#ifndef SLACKSIM_FAULT_RECOVERY_POLICY_HH
#define SLACKSIM_FAULT_RECOVERY_POLICY_HH

#include <cstdint>
#include <deque>

#include "core/config.hh"
#include "stats/stats.hh"
#include "util/types.hh"

namespace slacksim {

class Pacer;
class ManagerLogic;
class Checkpointer;

namespace obs {
class AdaptiveDecisionLog;
} // namespace obs

namespace fault {

/** Rungs of the degradation ladder, most capable first. */
enum class DegradationLevel : std::uint8_t {
    Speculative, //!< rollback + replay armed
    Adaptive,    //!< no speculation; pacing feedback still live
    FixedSlack,  //!< forced slack bound 1 (quantum-equivalent, §3)
};

/** @return stable lowercase name for a ladder rung. */
const char *degradationLevelName(DegradationLevel level);

/**
 * Watches rollback frequency and the adaptive controller, and walks
 * the run down (and optionally back up) the degradation ladder by
 * flipping the speculation / pacing switches on the Checkpointer,
 * ManagerLogic and Pacer it was built around.
 */
class RecoveryPolicy
{
  public:
    RecoveryPolicy(const EngineConfig &engine, Pacer &pacer,
                   ManagerLogic &mgr, Checkpointer &ckpt);

    /** Wire (or unwire, with nullptr) the forensics transition log. */
    void setDecisionLog(obs::AdaptiveDecisionLog *log)
    {
        decisionLog_ = log;
    }

    /**
     * One rollback just happened at global time @p global. Demotes
     * speculative → adaptive when `stormThreshold` rollbacks land
     * within `stormWindow` cycles.
     */
    void noteRollback(Tick global);

    /**
     * Periodic observation from the engine loop (same cadence as
     * Pacer::observe). Detects an adaptive controller pinned at its
     * minimum bound with the violation rate still over the band, and
     * drives backoff-gated re-promotion.
     */
    void observe(Tick global, const ViolationStats &violations);

    /**
     * The Checkpointer demoted itself because no checkpoint
     * generation passed integrity verification. Always honored, even
     * with every detection knob off.
     */
    void noteIntegrityDemotion(Tick global);

    /** @return the current ladder rung. */
    DegradationLevel level() const { return level_; }

    /** @return printable rung name, or "none" when the configuration
     *  has no ladder (neither speculative nor adaptive). */
    const char *levelName() const;

    std::uint64_t demotions() const { return demotions_; }
    std::uint64_t repromotions() const { return repromotions_; }

  private:
    void demote(Tick cycle, const char *reason);
    void promote(Tick cycle);
    void recordTransition(Tick cycle, DegradationLevel from,
                          DegradationLevel to, const char *reason);

    EngineConfig engine_;
    Pacer &pacer_;
    ManagerLogic &mgr_;
    Checkpointer &ckpt_;
    obs::AdaptiveDecisionLog *decisionLog_ = nullptr;

    bool applicable_ = false;      //!< config has a ladder at all
    DegradationLevel top_ = DegradationLevel::Adaptive;
    DegradationLevel level_ = DegradationLevel::Adaptive;

    std::deque<Tick> rollbackTimes_; //!< storm detection window
    Tick nextEpochCheck_ = 0;        //!< pinned-bound evaluation time
    std::uint32_t pinnedEpochs_ = 0; //!< consecutive pinned epochs
    Tick demotedAt_ = 0;             //!< when the last demotion landed
    std::uint64_t demotions_ = 0;
    std::uint64_t repromotions_ = 0;
};

} // namespace fault
} // namespace slacksim

#endif // SLACKSIM_FAULT_RECOVERY_POLICY_HH
