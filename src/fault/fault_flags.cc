/**
 * @file
 * Fault/recovery flag plumbing implementation.
 */

#include "fault/fault_flags.hh"

#include "core/config.hh"
#include "fault/fault_plan.hh"

namespace slacksim {
namespace fault {

const std::vector<OptionSpec> &
faultOptionSpecs()
{
    static const std::vector<OptionSpec> specs = {
        {"fault-spec", "SPEC",
         "inject a deterministic fault (kind@site:trigger[:args]; "
         "repeatable; grammar in fault/fault_plan.hh)"},
        {"fault-seed", "N",
         "seed for the fault plan's random choices (default 1)"},
        {"storm-threshold", "N",
         "rollbacks within the storm window that demote speculation "
         "(0 = off)"},
        {"storm-window", "CYCLES",
         "sliding window for rollback-storm detection"},
        {"pinned-epochs", "N",
         "adaptive epochs pinned at min slack above band before "
         "demoting to fixed slack=1 (0 = off)"},
        {"repromote-after", "CYCLES",
         "base backoff before re-promoting a demoted run (0 = never)"},
        {"child-timeout-ms", "MS",
         "fork checkpoints: kill+recover a silent child after MS "
         "host ms (0 = wait forever)"},
    };
    return specs;
}

void
applyFaultOptions(const Options &opts, EngineConfig &engine)
{
    for (const std::string &value : opts.getAll("fault-spec")) {
        for (const FaultSpec &spec : FaultPlan::parseSpecList(value)) {
            (void)spec; // parse-check only; the string is the config
        }
        engine.faultSpecs.push_back(value);
    }
    engine.faultSeed = opts.getUint("fault-seed", engine.faultSeed);
    engine.recovery.stormThreshold = static_cast<std::uint32_t>(
        opts.getUint("storm-threshold", engine.recovery.stormThreshold));
    engine.recovery.stormWindow =
        opts.getUint("storm-window", engine.recovery.stormWindow);
    engine.recovery.pinnedEpochLimit = static_cast<std::uint32_t>(
        opts.getUint("pinned-epochs", engine.recovery.pinnedEpochLimit));
    engine.recovery.repromoteAfter =
        opts.getUint("repromote-after", engine.recovery.repromoteAfter);
    engine.checkpoint.childTimeoutMs = opts.getUint(
        "child-timeout-ms", engine.checkpoint.childTimeoutMs);
}

} // namespace fault
} // namespace slacksim
