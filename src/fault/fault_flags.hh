/**
 * @file
 * Command-line plumbing for the fault-injection and recovery
 * subsystem, shared by the examples and the bench harnesses: the
 * --fault-spec / --fault-seed / --storm-threshold / --storm-window /
 * --pinned-epochs / --repromote-after / --child-timeout-ms flag specs
 * (for --help and unknown-flag rejection) and the helper that applies
 * them to an EngineConfig.
 */

#ifndef SLACKSIM_FAULT_FAULT_FLAGS_HH
#define SLACKSIM_FAULT_FAULT_FLAGS_HH

#include <vector>

#include "util/options.hh"

namespace slacksim {

struct EngineConfig;

namespace fault {

/** @return the fault/recovery flag specs (help text included). */
const std::vector<OptionSpec> &faultOptionSpecs();

/** Apply any given fault/recovery flags to @p engine. Fault specs
 *  are parse-checked here so a mistyped chaos flag dies at the
 *  command line, not mid-run. */
void applyFaultOptions(const Options &opts, EngineConfig &engine);

} // namespace fault
} // namespace slacksim

#endif // SLACKSIM_FAULT_FAULT_FLAGS_HH
