/**
 * @file
 * FaultPlan implementation.
 */

#include "fault/fault_plan.hh"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>

#include "util/checksum.hh"
#include "util/logging.hh"

namespace slacksim {
namespace fault {

thread_local FaultPlan *FaultPlan::activePlan_ = nullptr;

namespace {

struct KindEntry
{
    const char *name;
    FaultKind kind;
    const char *site; //!< required trigger site token
};

constexpr KindEntry kindTable[] = {
    {"snapshot-corrupt", FaultKind::SnapshotCorrupt, "ckpt"},
    {"snapshot-truncate", FaultKind::SnapshotTruncate, "ckpt"},
    {"spurious-rollback", FaultKind::SpuriousRollback, "ckpt"},
    {"child-kill", FaultKind::ChildKill, "ckpt"},
    {"child-exit", FaultKind::ChildExit, "ckpt"},
    {"worker-stall", FaultKind::WorkerStall, "cycle"},
    {"backpressure", FaultKind::Backpressure, "cycle"},
    {"io-fail", FaultKind::IoFail, "write"},
    {"job-crash", FaultKind::JobCrash, "cycle"},
    {"job-hang", FaultKind::JobHang, "cycle"},
    {"daemon-kill-window", FaultKind::DaemonKillWindow, "start"},
};

std::uint64_t
parseSpecUint(const std::string &text, const std::string &field)
{
    if (text.empty())
        SLACKSIM_FATAL("fault-spec: empty ", field, " field");
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || text[0] == '-')
        SLACKSIM_FATAL("fault-spec: bad ", field, " '", text, "'");
    return v;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    for (const auto &e : kindTable) {
        if (e.kind == kind)
            return e.name;
    }
    return "unknown";
}

FaultSpec
FaultPlan::parseSpec(const std::string &text)
{
    const auto at = text.find('@');
    if (at == std::string::npos) {
        SLACKSIM_FATAL("fault-spec '", text,
                       "' is not <kind>@<site>:<trigger>[:args]");
    }
    const std::string kind_name = text.substr(0, at);
    const KindEntry *entry = nullptr;
    for (const auto &e : kindTable) {
        if (kind_name == e.name) {
            entry = &e;
            break;
        }
    }
    if (!entry)
        SLACKSIM_FATAL("fault-spec: unknown fault kind '", kind_name,
                       "'");

    // Split the trigger part on ':' into site, trigger and args.
    std::vector<std::string> parts;
    std::string rest = text.substr(at + 1);
    for (std::size_t start = 0; start <= rest.size();) {
        const auto colon = rest.find(':', start);
        if (colon == std::string::npos) {
            parts.push_back(rest.substr(start));
            break;
        }
        parts.push_back(rest.substr(start, colon - start));
        start = colon + 1;
    }
    if (parts.size() < 2 || parts[0] != entry->site) {
        SLACKSIM_FATAL("fault-spec '", text, "': ", entry->name,
                       " needs trigger site '", entry->site, ":N'");
    }

    FaultSpec spec;
    spec.kind = entry->kind;
    spec.trigger = parseSpecUint(parts[1], "trigger");
    if (entry->kind == FaultKind::WorkerStall) {
        if (parts.size() < 3) {
            SLACKSIM_FATAL("fault-spec '", text,
                           "': worker-stall needs cycle:N:MS[:CORE]");
        }
        spec.arg0 = parseSpecUint(parts[2], "stall ms");
        spec.arg1 =
            parts.size() > 3 ? parseSpecUint(parts[3], "core") : 0;
    } else if (entry->kind == FaultKind::Backpressure) {
        if (parts.size() < 3) {
            SLACKSIM_FATAL("fault-spec '", text,
                           "': backpressure needs cycle:N:COUNT");
        }
        spec.arg0 = parseSpecUint(parts[2], "round count");
        // Stay well under the engines' livelock panic thresholds: the
        // burst must be recoverable, not a disguised hang.
        if (spec.arg0 < 1 || spec.arg0 > 50000) {
            SLACKSIM_FATAL("fault-spec '", text,
                           "': backpressure COUNT must be in "
                           "[1, 50000]");
        }
    } else if (entry->kind == FaultKind::JobHang) {
        // Default wedge: long enough that only the supervisor's
        // timeout/kill escalation can end the job.
        spec.arg0 = parts.size() > 2
                        ? parseSpecUint(parts[2], "hang ms")
                        : 600000;
    } else if (parts.size() > 2) {
        SLACKSIM_FATAL("fault-spec '", text, "': trailing args");
    }
    return spec;
}

std::vector<FaultSpec>
FaultPlan::parseSpecList(const std::string &text)
{
    std::vector<FaultSpec> specs;
    std::string cur;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == ',' || text[i] == ';') {
            if (!cur.empty())
                specs.push_back(parseSpec(cur));
            cur.clear();
        } else {
            cur.push_back(text[i]);
        }
    }
    return specs;
}

FaultPlan::FaultPlan(std::vector<FaultSpec> specs, std::uint64_t seed)
    : specs_(std::move(specs)), seed_(seed), rng_(seed)
{
    for (const FaultSpec &spec : specs_) {
        slots_.push_back({spec, false});
        switch (spec.kind) {
          case FaultKind::WorkerStall:
            pendingStalls_.fetch_add(1, std::memory_order_relaxed);
            break;
          case FaultKind::Backpressure:
            pendingBackpressure_.fetch_add(1,
                                           std::memory_order_relaxed);
            break;
          case FaultKind::IoFail:
            pendingIoFails_.fetch_add(1, std::memory_order_relaxed);
            break;
          case FaultKind::JobCrash:
          case FaultKind::JobHang:
            pendingServeFaults_.fetch_add(1,
                                          std::memory_order_relaxed);
            break;
          default:
            break;
        }
    }
}

void
FaultPlan::install()
{
    if (activePlan_ != nullptr && activePlan_ != this) {
        SLACKSIM_FATAL("a FaultPlan is already installed on this "
                       "thread; fault-injected runs cannot nest");
    }
    activePlan_ = this;
}

void
FaultPlan::uninstall()
{
    if (activePlan_ == this)
        activePlan_ = nullptr;
}

void
FaultPlan::record(const Slot &slot, Tick cycle, std::string detail)
{
    InjectionRecord rec;
    rec.kind = slot.spec.kind;
    rec.trigger = slot.spec.trigger;
    rec.cycle = cycle;
    rec.detail = std::move(detail);
    records_.push_back(std::move(rec));
    SLACKSIM_WARN("fault injected: ", faultKindName(rec.kind), "@",
                  rec.trigger, " cycle=", cycle, " (",
                  records_.back().detail, ")");
}

bool
FaultPlan::fireSnapshotFault(std::uint64_t ckpt_ordinal,
                             std::vector<std::uint8_t> &arena,
                             Tick now)
{
    std::lock_guard<std::mutex> lock(mu_);
    bool damaged = false;
    for (Slot &slot : slots_) {
        if (slot.fired || slot.spec.trigger != ckpt_ordinal)
            continue;
        if (slot.spec.kind == FaultKind::SnapshotCorrupt) {
            slot.fired = true;
            if (arena.empty())
                continue;
            const std::size_t byte =
                static_cast<std::size_t>(rng_.below(arena.size()));
            const std::uint8_t bit =
                static_cast<std::uint8_t>(1u << rng_.below(8));
            arena[byte] ^= bit;
            record(slot, now,
                   "bit-flip at byte " + std::to_string(byte) +
                       " of " + std::to_string(arena.size()));
            damaged = true;
        } else if (slot.spec.kind == FaultKind::SnapshotTruncate) {
            slot.fired = true;
            if (arena.empty())
                continue;
            // Cut somewhere in the arena (always at least one byte).
            const std::size_t keep =
                static_cast<std::size_t>(rng_.below(arena.size()));
            record(slot, now,
                   "truncated " + std::to_string(arena.size()) +
                       " -> " + std::to_string(keep) + " bytes");
            arena.resize(keep);
            damaged = true;
        }
    }
    return damaged;
}

bool
FaultPlan::fireSpuriousRollback(std::uint64_t ckpt_ordinal, Tick now)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (Slot &slot : slots_) {
        if (slot.fired ||
            slot.spec.kind != FaultKind::SpuriousRollback ||
            slot.spec.trigger != ckpt_ordinal) {
            continue;
        }
        slot.fired = true;
        record(slot, now, "forced rollback request");
        return true;
    }
    return false;
}

FaultPlan::ChildFault
FaultPlan::fireChildFault(std::uint64_t ckpt_ordinal, Tick now)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (Slot &slot : slots_) {
        if (slot.fired || slot.spec.trigger != ckpt_ordinal)
            continue;
        if (slot.spec.kind == FaultKind::ChildKill) {
            slot.fired = true;
            record(slot, now, "child SIGKILL after fork");
            return ChildFault::Kill;
        }
        if (slot.spec.kind == FaultKind::ChildExit) {
            slot.fired = true;
            record(slot, now, "child nonzero _exit after fork");
            return ChildFault::Exit;
        }
    }
    return ChildFault::None;
}

std::uint64_t
FaultPlan::fireWorkerStall(CoreId core, Tick local)
{
    if (pendingStalls_.load(std::memory_order_relaxed) == 0)
        return 0;
    std::lock_guard<std::mutex> lock(mu_);
    for (Slot &slot : slots_) {
        if (slot.fired || slot.spec.kind != FaultKind::WorkerStall)
            continue;
        if (slot.spec.arg1 != core || local < slot.spec.trigger)
            continue;
        slot.fired = true;
        pendingStalls_.fetch_sub(1, std::memory_order_relaxed);
        record(slot, local,
               "core " + std::to_string(core) + " stalled " +
                   std::to_string(slot.spec.arg0) + " ms");
        return slot.spec.arg0;
    }
    return 0;
}

std::uint64_t
FaultPlan::fireBackpressure(Tick global)
{
    if (pendingBackpressure_.load(std::memory_order_relaxed) == 0)
        return 0;
    std::lock_guard<std::mutex> lock(mu_);
    for (Slot &slot : slots_) {
        if (slot.fired || slot.spec.kind != FaultKind::Backpressure)
            continue;
        if (global < slot.spec.trigger)
            continue;
        slot.fired = true;
        pendingBackpressure_.fetch_sub(1, std::memory_order_relaxed);
        record(slot, global,
               "manager skipping " + std::to_string(slot.spec.arg0) +
                   " service rounds");
        return slot.spec.arg0;
    }
    return 0;
}

bool
FaultPlan::fireIoFail(const char *what)
{
    if (pendingIoFails_.load(std::memory_order_relaxed) == 0)
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t ordinal = ++ioOpens_;
    for (Slot &slot : slots_) {
        if (slot.fired || slot.spec.kind != FaultKind::IoFail)
            continue;
        if (slot.spec.trigger != ordinal)
            continue;
        slot.fired = true;
        pendingIoFails_.fetch_sub(1, std::memory_order_relaxed);
        record(slot, 0,
               std::string("transient open failure for ") + what);
        return true;
    }
    return false;
}

void
FaultPlan::fireServeFault(Tick global)
{
    if (pendingServeFaults_.load(std::memory_order_relaxed) == 0)
        return;
    std::uint64_t hang_ms = 0;
    bool crash = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (Slot &slot : slots_) {
            if (slot.fired || global < slot.spec.trigger)
                continue;
            if (slot.spec.kind == FaultKind::JobCrash) {
                slot.fired = true;
                pendingServeFaults_.fetch_sub(
                    1, std::memory_order_relaxed);
                record(slot, global, "raising SIGSEGV in this job");
                crash = true;
                break;
            }
            if (slot.spec.kind == FaultKind::JobHang) {
                slot.fired = true;
                pendingServeFaults_.fetch_sub(
                    1, std::memory_order_relaxed);
                record(slot, global,
                       "manager wedged for " +
                           std::to_string(slot.spec.arg0) + " ms");
                hang_ms = slot.spec.arg0;
                break;
            }
        }
    }
    // Crash and hang happen outside the plan mutex: the segfault must
    // not die holding a lock a sibling hook could want, and the wedge
    // must not block worker-stall hooks on other threads.
    if (crash)
        std::raise(SIGSEGV);
    if (hang_ms)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(hang_ms));
}

bool
FaultPlan::fireDaemonKill(std::uint64_t start_ordinal)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (Slot &slot : slots_) {
        if (slot.fired ||
            slot.spec.kind != FaultKind::DaemonKillWindow ||
            start_ordinal < slot.spec.trigger) {
            continue;
        }
        slot.fired = true;
        record(slot, 0,
               "daemon self-SIGKILL at job start " +
                   std::to_string(start_ordinal));
        return true;
    }
    return false;
}

void
FaultPlan::markLastHandled(const std::string &handled_by,
                           const char *replacing)
{
    // Attribute the most recent record still awaiting a handler, not
    // records_.back(): a snapshot fault is handled at rollback time,
    // by which point a later injection (e.g. the spurious rollback
    // that triggered the restore) may already sit behind it.
    std::lock_guard<std::mutex> lock(mu_);
    if (replacing) {
        for (auto it = records_.rbegin(); it != records_.rend();
             ++it) {
            if (it->handledBy == replacing) {
                it->handledBy = handled_by;
                return;
            }
        }
    }
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
        if (it->handledBy.empty()) {
            it->handledBy = handled_by;
            return;
        }
    }
}

std::vector<InjectionRecord>
FaultPlan::records() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
}

std::vector<FaultSpec>
resolveFaultSpecs(const std::vector<std::string> &config_specs,
                  std::uint64_t config_seed, std::uint64_t *seed_out)
{
    std::vector<FaultSpec> specs;
    for (const std::string &text : config_specs) {
        for (const FaultSpec &spec :
             FaultPlan::parseSpecList(text)) {
            specs.push_back(spec);
        }
    }
    std::uint64_t seed = config_seed;
    if (specs.empty()) {
        // Environment fallback: the CI chaos matrix injects into
        // unmodified binaries (gtest suites, examples) this way.
        if (const char *env = std::getenv("SLACKSIM_FAULT_SPEC"))
            specs = FaultPlan::parseSpecList(env);
        if (const char *env = std::getenv("SLACKSIM_FAULT_SEED")) {
            char *end = nullptr;
            const std::uint64_t v = std::strtoull(env, &end, 10);
            if (end != env && *end == '\0')
                seed = v;
        }
    }
    if (seed_out)
        *seed_out = seed;
    return specs;
}

} // namespace fault
} // namespace slacksim
