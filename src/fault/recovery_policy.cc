/**
 * @file
 * RecoveryPolicy implementation.
 */

#include "fault/recovery_policy.hh"

#include <algorithm>

#include "core/checkpointer.hh"
#include "core/manager_logic.hh"
#include "core/pacer.hh"
#include "obs/forensics.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace slacksim {
namespace fault {

const char *
degradationLevelName(DegradationLevel level)
{
    switch (level) {
      case DegradationLevel::Speculative:
        return "speculative";
      case DegradationLevel::Adaptive:
        return "adaptive";
      case DegradationLevel::FixedSlack:
        return "fixed-slack";
    }
    return "unknown";
}

RecoveryPolicy::RecoveryPolicy(const EngineConfig &engine, Pacer &pacer,
                               ManagerLogic &mgr, Checkpointer &ckpt)
    : engine_(engine), pacer_(pacer), mgr_(mgr), ckpt_(ckpt)
{
    if (engine_.checkpoint.mode == CheckpointMode::Speculative) {
        top_ = DegradationLevel::Speculative;
        applicable_ = true;
    } else if (engine_.scheme == SchemeKind::Adaptive) {
        top_ = DegradationLevel::Adaptive;
        applicable_ = true;
    }
    level_ = top_;
    nextEpochCheck_ = engine_.adaptive.epochCycles;
}

const char *
RecoveryPolicy::levelName() const
{
    return applicable_ ? degradationLevelName(level_) : "none";
}

void
RecoveryPolicy::recordTransition(Tick cycle, DegradationLevel from,
                                 DegradationLevel to,
                                 const char *reason)
{
    SLACKSIM_WARN("degradation: ", degradationLevelName(from), " -> ",
                  degradationLevelName(to), " at cycle ", cycle, " (",
                  reason, ")");
    if (decisionLog_) {
        obs::TransitionRecord t;
        t.cycle = cycle;
        t.from = degradationLevelName(from);
        t.to = degradationLevelName(to);
        t.reason = reason;
        decisionLog_->recordTransition(t);
    }
    obs::traceInstant(obs::TraceCategory::Checkpoint, "degradation",
                      cycle, static_cast<std::int64_t>(to),
                      static_cast<std::int64_t>(from));
}

void
RecoveryPolicy::demote(Tick cycle, const char *reason)
{
    const DegradationLevel from = level_;
    if (from == DegradationLevel::Speculative) {
        // Stop rolling back: disarm speculation at the source and
        // drop any rollback already requested. The pacing scheme
        // (adaptive or otherwise) keeps running untouched.
        ckpt_.setSpeculationSuppressed(true);
        mgr_.armRollback(false);
        mgr_.clearRollbackRequest();
        level_ = DegradationLevel::Adaptive;
    } else if (from == DegradationLevel::Adaptive) {
        // Pin slack at 1: quantum-equivalent pacing (paper §3) that
        // cannot produce violations faster than it retires them.
        pacer_.setForcedBound(1);
        level_ = DegradationLevel::FixedSlack;
    } else {
        return; // already at the bottom rung
    }
    ++demotions_;
    demotedAt_ = cycle;
    rollbackTimes_.clear();
    pinnedEpochs_ = 0;
    recordTransition(cycle, from, level_, reason);
}

void
RecoveryPolicy::promote(Tick cycle)
{
    const DegradationLevel from = level_;
    if (from == DegradationLevel::FixedSlack) {
        pacer_.clearForcedBound();
        level_ = DegradationLevel::Adaptive;
    } else if (from == DegradationLevel::Adaptive &&
               top_ == DegradationLevel::Speculative) {
        // Speculation re-arms at the next checkpoint boundary.
        ckpt_.setSpeculationSuppressed(false);
        level_ = DegradationLevel::Speculative;
    } else {
        return;
    }
    ++repromotions_;
    demotedAt_ = cycle; // climbing further waits out another delay
    recordTransition(cycle, from, level_, "backoff-elapsed");
}

void
RecoveryPolicy::noteRollback(Tick global)
{
    if (!applicable_ || engine_.recovery.stormThreshold == 0 ||
        level_ != DegradationLevel::Speculative) {
        return;
    }
    const Tick window = engine_.recovery.stormWindow;
    while (!rollbackTimes_.empty() &&
           rollbackTimes_.front() + window < global) {
        rollbackTimes_.pop_front();
    }
    rollbackTimes_.push_back(global);
    if (rollbackTimes_.size() >= engine_.recovery.stormThreshold)
        demote(global, "rollback-storm");
}

void
RecoveryPolicy::observe(Tick global, const ViolationStats &violations)
{
    if (!applicable_)
        return;

    // Backoff-gated re-promotion: one rung per elapsed delay, with
    // the delay doubling per demotion so far (capped at 8x).
    if (engine_.recovery.repromoteAfter > 0 && level_ != top_ &&
        demotions_ > 0) {
        const std::uint64_t backoff = std::min<std::uint64_t>(
            std::uint64_t(1) << std::min<std::uint64_t>(
                demotions_ - 1, 3),
            8);
        const Tick delay = engine_.recovery.repromoteAfter * backoff;
        if (global >= demotedAt_ + delay)
            promote(global);
    }

    // Pinned-at-minimum detection: the adaptive controller has given
    // all the slack back and the violation rate is still over the
    // band — bounded pacing cannot win here, demote to fixed slack.
    if (level_ != DegradationLevel::Adaptive ||
        engine_.scheme != SchemeKind::Adaptive ||
        engine_.recovery.pinnedEpochLimit == 0) {
        return;
    }
    if (global < nextEpochCheck_ || global == 0)
        return;
    const auto &p = engine_.adaptive;
    nextEpochCheck_ = global + p.epochCycles;
    std::uint64_t counted = 0;
    if (p.adaptOnBus)
        counted += violations.busViolations;
    if (p.adaptOnMap)
        counted += violations.mapViolations;
    const double rate = static_cast<double>(counted) /
                        static_cast<double>(global);
    const bool pinned =
        pacer_.currentBound() <= p.minBound &&
        rate > p.targetViolationRate * (1.0 + p.violationBand);
    pinnedEpochs_ = pinned ? pinnedEpochs_ + 1 : 0;
    if (pinnedEpochs_ >= engine_.recovery.pinnedEpochLimit)
        demote(global, "pinned-at-min");
}

void
RecoveryPolicy::noteIntegrityDemotion(Tick global)
{
    // Always honored: a run with no valid rollback image must not
    // keep speculating, whatever the detection knobs say.
    if (level_ == DegradationLevel::Speculative)
        demote(global, "checkpoint-integrity");
}

} // namespace fault
} // namespace slacksim
