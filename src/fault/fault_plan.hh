/**
 * @file
 * Deterministic fault injection (DESIGN.md §9).
 *
 * A FaultPlan is a seeded, repeatable schedule of injected failures
 * built from `--fault-spec=<kind>@<site>:<trigger>[:args]` flags (or
 * the SLACKSIM_FAULT_SPEC / SLACKSIM_FAULT_SEED environment, which is
 * how the CI chaos matrix drives unmodified test binaries). Every
 * firing is recorded with the simulated cycle and, once the handling
 * layer reacts, *how* it was handled — so a test can assert "fault X
 * was injected at cycle Y and handled by Z" straight from the run
 * report.
 *
 * Grammar (specs may also be comma/semicolon-separated in one flag):
 *
 *   snapshot-corrupt@ckpt:N        flip one seeded bit in the Nth
 *                                  checkpoint's sealed arena
 *   snapshot-truncate@ckpt:N      truncate the Nth checkpoint arena
 *   spurious-rollback@ckpt:N      force a rollback right after the
 *                                  Nth checkpoint (speculative mode)
 *   child-kill@ckpt:N             fork tech: SIGKILL the child after
 *                                  the Nth fork checkpoint
 *   child-exit@ckpt:N             fork tech: child _exit()s nonzero
 *   worker-stall@cycle:N:MS[:C]   core C (default 0) sleeps MS host
 *                                  ms once its clock reaches N
 *   backpressure@cycle:N:COUNT    the manager skips COUNT service
 *                                  rounds once global time reaches N
 *   io-fail@write:N               the Nth checked file open fails
 *   job-crash@cycle:N             serve: SIGSEGV the job's own
 *                                  process once global time hits N
 *                                  (process-isolated jobs only)
 *   job-hang@cycle:N[:MS]         serve: wedge the manager MS host ms
 *                                  (default 600000) once global time
 *                                  hits N — the supervisor's timeout
 *                                  and kill escalation end it
 *   daemon-kill-window@start:N    serve: the daemon SIGKILLs itself
 *                                  when it starts its Nth job (the
 *                                  deterministic `kill -9` for the
 *                                  recovery drill; daemon flag only)
 *
 * The plan is installed per *host thread* for the duration of one
 * run: layers with no path to a per-run object (the I/O layer's
 * CheckedOfstream hook, the fork-checkpoint child) read the calling
 * thread's binding. runSimulation binds the plan on its own (manager)
 * thread and the engines re-bind it on every worker thread they
 * borrow, so in a multi-tenant serve process job A's faults can never
 * leak into job B's concurrently-running engine — which is exactly
 * what a process-global slot used to allow. The fork-checkpoint
 * child still sees the plan because fork() clones the calling thread
 * together with its thread-locals. When no plan is installed every
 * hook is one thread-local pointer load — the zero-cost-when-disabled
 * property perf_smoke asserts.
 */

#ifndef SLACKSIM_FAULT_FAULT_PLAN_HH
#define SLACKSIM_FAULT_FAULT_PLAN_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/rng.hh"
#include "util/types.hh"

namespace slacksim {
namespace fault {

/** Injectable failure kinds. */
enum class FaultKind : std::uint8_t {
    SnapshotCorrupt,  //!< bit-flip in a sealed checkpoint arena
    SnapshotTruncate, //!< drop the tail of a checkpoint arena
    SpuriousRollback, //!< rollback with no violation behind it
    ChildKill,        //!< fork checkpoint child dies by SIGKILL
    ChildExit,        //!< fork checkpoint child exits nonzero
    WorkerStall,      //!< a core worker wedges for N host ms
    Backpressure,     //!< manager stops servicing, queues fill
    IoFail,           //!< transient open failure in a file writer
    JobCrash,         //!< serve: the job's process dies by SIGSEGV
    JobHang,          //!< serve: the job's manager wedges for N ms
    DaemonKillWindow, //!< serve: daemon SIGKILLs itself at job start N
};

/** @return stable spec-grammar name for a fault kind. */
const char *faultKindName(FaultKind kind);

/** One parsed `--fault-spec` entry. */
struct FaultSpec
{
    FaultKind kind = FaultKind::SnapshotCorrupt;
    std::uint64_t trigger = 0; //!< checkpoint ordinal / cycle / open #
    std::uint64_t arg0 = 0;    //!< stall ms / skipped service rounds
    std::uint64_t arg1 = 0;    //!< stall core id
};

/** One fault that actually fired. */
struct InjectionRecord
{
    FaultKind kind = FaultKind::SnapshotCorrupt;
    std::uint64_t trigger = 0;
    Tick cycle = 0;       //!< simulated time at injection (0: none)
    std::string detail;   //!< what exactly was injected
    std::string handledBy; //!< which layer contained it
};

/**
 * The seeded fault schedule for one run. Thread-safe: worker-stall
 * fires on core threads while everything else fires on the manager
 * (or in a fork-checkpoint child), so firing state is mutex-guarded
 * behind cheap atomic pre-filters.
 */
class FaultPlan
{
  public:
    FaultPlan(std::vector<FaultSpec> specs, std::uint64_t seed);

    FaultPlan(const FaultPlan &) = delete;
    FaultPlan &operator=(const FaultPlan &) = delete;

    /**
     * Parse one spec string. Fatal on bad grammar — a mistyped chaos
     * flag must fail loudly, not silently run fault-free.
     */
    static FaultSpec parseSpec(const std::string &text);

    /** Split a comma/semicolon-separated flag value into specs. */
    static std::vector<FaultSpec>
    parseSpecList(const std::string &text);

    /** @return the plan bound to the calling thread, or nullptr (the
     *  common case). */
    static FaultPlan *
    active()
    {
        return activePlan_;
    }

    /** Bind this plan to the calling thread (fatal on nesting). */
    void install();

    /** Unbind this plan from the calling thread (idempotent). */
    void uninstall();

    // ---- injection hooks (each spec fires at most once) ----

    /**
     * Checkpoint was just sealed as ordinal @p ckpt_ordinal (1-based).
     * Applies any snapshot-corrupt / snapshot-truncate spec due now
     * to @p arena in place. @return true when the arena was damaged.
     */
    bool fireSnapshotFault(std::uint64_t ckpt_ordinal,
                           std::vector<std::uint8_t> &arena, Tick now);

    /** @return true when a spurious rollback is due after checkpoint
     *  @p ckpt_ordinal. */
    bool fireSpuriousRollback(std::uint64_t ckpt_ordinal, Tick now);

    /** What a fork-checkpoint child should do to itself. */
    enum class ChildFault : std::uint8_t { None, Kill, Exit };

    /**
     * Queried in the parent *before* fork so the record (and the
     * fired flag) live in memory that survives the recovery rollback.
     */
    ChildFault fireChildFault(std::uint64_t ckpt_ordinal, Tick now);

    /** @return host-ms core @p core should stall now (0: none). */
    std::uint64_t fireWorkerStall(CoreId core, Tick local);

    /** @return manager service rounds to skip starting at @p global
     *  (0: none). */
    std::uint64_t fireBackpressure(Tick global);

    /** @return true when the next checked open of @p what should
     *  fail transiently. */
    bool fireIoFail(const char *what);

    /**
     * Serve-site faults at the manager loop, once global time reaches
     * the trigger. job-crash raises SIGSEGV on the calling thread and
     * does not return; job-hang sleeps arg0 host-ms (a wedge long
     * enough for the supervisor's timeout/kill escalation to be what
     * ends it). Only meaningful inside a process-isolated job — the
     * server refuses these kinds for inline jobs at submit time.
     */
    void fireServeFault(Tick global);

    /**
     * Daemon self-destruction for crash-recovery drills: @return true
     * when @p start_ordinal (1-based count of jobs started) hits a
     * daemon-kill-window trigger and the caller should SIGKILL its
     * own process — a deterministic stand-in for `kill -9` mid-batch.
     * Fired on a server-held plan, never a thread-installed one.
     */
    bool fireDaemonKill(std::uint64_t start_ordinal);

    /**
     * Attribute the most recent still-unhandled injection to the
     * layer that just contained it. When @p replacing is non-null and
     * a record already attributed to @p replacing exists, that record
     * is re-attributed instead — the restore loop marks a bad
     * generation "restore-fallback" before it can know whether a
     * later generation saves the run or the whole rollback demotes.
     */
    void markLastHandled(const std::string &handled_by,
                         const char *replacing = nullptr);

    /** @return a copy of everything injected so far. */
    std::vector<InjectionRecord> records() const;

    /** @return number of configured specs. */
    std::size_t specCount() const { return specs_.size(); }

    std::uint64_t seed() const { return seed_; }

  private:
    struct Slot
    {
        FaultSpec spec;
        bool fired = false;
    };

    void record(const Slot &slot, Tick cycle, std::string detail);

    friend class ScopedFaultPlan;
    static thread_local FaultPlan *activePlan_;

    std::vector<FaultSpec> specs_;
    std::uint64_t seed_;
    Rng rng_;

    mutable std::mutex mu_;
    std::vector<Slot> slots_;
    std::vector<InjectionRecord> records_;
    std::uint64_t ioOpens_ = 0; //!< checked opens seen so far

    // Lock-free pre-filters: hooks on hot paths bail before the mutex
    // when no matching spec can still fire.
    std::atomic<std::uint32_t> pendingStalls_{0};
    std::atomic<std::uint32_t> pendingBackpressure_{0};
    std::atomic<std::uint32_t> pendingIoFails_{0};
    std::atomic<std::uint32_t> pendingServeFaults_{0};
};

/**
 * Bind a (possibly null) plan to the calling thread for a scope,
 * saving and restoring the previous binding. This is how the engines
 * propagate the run's plan onto the worker threads they borrow from a
 * pool — the pool thread may carry a stale binding from a previous
 * task's crash-unwind, and restoring on exit keeps borrowed threads
 * clean for the next job.
 */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(FaultPlan *plan)
        : prev_(FaultPlan::activePlan_)
    {
        FaultPlan::activePlan_ = plan;
    }

    ~ScopedFaultPlan() { FaultPlan::activePlan_ = prev_; }

    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;

  private:
    FaultPlan *prev_;
};

/**
 * Build a plan from config specs with an environment fallback
 * (SLACKSIM_FAULT_SPEC / SLACKSIM_FAULT_SEED): the chaos CI matrix
 * injects faults into unmodified binaries through the environment.
 * @return nullptr when no faults are configured anywhere.
 */
std::vector<FaultSpec>
resolveFaultSpecs(const std::vector<std::string> &config_specs,
                  std::uint64_t config_seed, std::uint64_t *seed_out);

} // namespace fault
} // namespace slacksim

#endif // SLACKSIM_FAULT_FAULT_PLAN_HH
