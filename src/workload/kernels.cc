/**
 * @file
 * Workload registry and the micro-kernels.
 */

#include "workload/kernels.hh"

#include <functional>
#include <map>

#include "mem/address_space.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace slacksim {

namespace {

using Generator = std::function<Workload(const WorkloadParams &)>;

const std::map<std::string, Generator> &
registry()
{
    static const std::map<std::string, Generator> table = {
        {"barnes", makeBarnes},
        {"ocean", makeOcean},
        {"radix", makeRadix},
        {"fft", makeFft},
        {"lu", makeLu},
        {"water", makeWater},
        {"pingpong", makePingPong},
        {"falseshare", makeFalseShare},
        {"stream", makeStream},
        {"uniform", makeUniform},
        {"syncstorm", makeSyncStorm},
    };
    return table;
}

std::uint64_t
pick(std::uint64_t requested, std::uint64_t fallback)
{
    return requested ? requested : fallback;
}

} // namespace

Workload
makeWorkload(const WorkloadParams &params)
{
    auto it = registry().find(params.kernel);
    if (it == registry().end())
        SLACKSIM_FATAL("unknown workload kernel '", params.kernel, "'");
    if (params.numThreads == 0 || params.numThreads > 64)
        SLACKSIM_FATAL("numThreads must be in [1, 64], got ",
                       params.numThreads);
    Workload w = it->second(params);
    validateWorkload(w);
    return w;
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &[name, gen] : registry())
        names.push_back(name);
    return names;
}

std::vector<std::string>
splashNames()
{
    return {"barnes", "fft", "lu", "water"};
}

Workload
makePingPong(const WorkloadParams &params)
{
    const unsigned T = params.numThreads;
    const std::uint64_t iters = pick(params.iters, 2000);
    const std::uint32_t grain = params.computeGrain;

    AddressSpace space(T);
    const Addr counter = space.allocShared(64, 64);

    Workload w;
    w.name = "pingpong";
    w.numLocks = 1;
    w.numBarriers = 1;
    w.threads.resize(T);
    w.sharedFootprintBytes = 64;

    for (unsigned t = 0; t < T; ++t) {
        TraceBuilder b(w.threads[t]);
        w.threads[t].codeFootprint = 1024;
        b.barrier(0);
        for (std::uint64_t i = 0; i < iters; ++i) {
            b.lock(0);
            b.load(counter, 2 * grain);
            b.store(counter);
            b.unlock(0);
            b.compute(8 * grain);
        }
        b.barrier(0);
        b.end();
    }
    return w;
}

Workload
makeFalseShare(const WorkloadParams &params)
{
    const unsigned T = params.numThreads;
    const std::uint64_t iters = pick(params.iters, 4000);
    const std::uint32_t grain = params.computeGrain;

    AddressSpace space(T);
    // All threads write disjoint words of the same handful of lines:
    // a classic coherence-traffic generator (heavy map transitions).
    const Addr base = space.allocShared(64 * 4, 64);

    Workload w;
    w.name = "falseshare";
    w.numLocks = 0;
    w.numBarriers = 1;
    w.threads.resize(T);
    w.sharedFootprintBytes = 64 * 4;

    for (unsigned t = 0; t < T; ++t) {
        TraceBuilder b(w.threads[t]);
        w.threads[t].codeFootprint = 1024;
        b.barrier(0);
        for (std::uint64_t i = 0; i < iters; ++i) {
            const Addr line = base + (i % 4) * 64;
            const Addr mine = line + (t % 8) * 8;
            b.store(mine);
            b.load(mine, grain);
            b.compute(4 * grain);
        }
        b.barrier(0);
        b.end();
    }
    return w;
}

Workload
makeStream(const WorkloadParams &params)
{
    const unsigned T = params.numThreads;
    const std::uint64_t iters = pick(params.iters, 3);
    const std::uint64_t bytes = pick(params.footprintBytes, 256 * 1024);
    const std::uint32_t grain = params.computeGrain;

    AddressSpace space(T);

    Workload w;
    w.name = "stream";
    w.numLocks = 0;
    w.numBarriers = 1;
    w.threads.resize(T);

    for (unsigned t = 0; t < T; ++t) {
        TraceBuilder b(w.threads[t]);
        w.threads[t].codeFootprint = 2048;
        const Addr src = space.allocPrivate(t, bytes, 64);
        const Addr dst = space.allocPrivate(t, bytes, 64);
        b.barrier(0);
        for (std::uint64_t pass = 0; pass < iters; ++pass) {
            for (std::uint64_t off = 0; off < bytes; off += 64) {
                b.load(src + off, grain);
                b.store(dst + off);
            }
        }
        b.barrier(0);
        b.end();
    }
    return w;
}

Workload
makeUniform(const WorkloadParams &params)
{
    const unsigned T = params.numThreads;
    const std::uint64_t iters = pick(params.iters, 20000);
    const std::uint64_t bytes = pick(params.footprintBytes, 512 * 1024);
    const std::uint32_t grain = params.computeGrain;

    AddressSpace space(T);
    const Addr shared = space.allocShared(bytes, 64);

    Workload w;
    w.name = "uniform";
    w.numLocks = 0;
    w.numBarriers = 1;
    w.threads.resize(T);
    w.sharedFootprintBytes = bytes;

    for (unsigned t = 0; t < T; ++t) {
        TraceBuilder b(w.threads[t]);
        w.threads[t].codeFootprint = 4096;
        const std::uint64_t priv_bytes = bytes / 4;
        const Addr priv = space.allocPrivate(t, priv_bytes, 64);
        Rng rng(params.seed * 1315423911u + t);
        b.barrier(0);
        for (std::uint64_t i = 0; i < iters; ++i) {
            const bool use_shared = rng.chance(params.sharedFraction);
            const Addr region = use_shared ? shared : priv;
            const std::uint64_t span = use_shared ? bytes : priv_bytes;
            const Addr a = region + (rng.below(span / 8)) * 8;
            if (rng.chance(params.storeFraction))
                b.store(a);
            else
                b.load(a, grain);
            b.compute(3 * grain);
        }
        b.barrier(0);
        b.end();
    }
    return w;
}

Workload
makeSyncStorm(const WorkloadParams &params)
{
    const unsigned T = params.numThreads;
    const std::uint64_t iters = pick(params.iters, 500);
    const std::uint32_t grain = params.computeGrain;

    AddressSpace space(T);
    const Addr scratch = space.allocShared(64 * T, 64);

    Workload w;
    w.name = "syncstorm";
    w.numLocks = 4;
    w.numBarriers = 2;
    w.threads.resize(T);
    w.sharedFootprintBytes = 64 * T;

    for (unsigned t = 0; t < T; ++t) {
        TraceBuilder b(w.threads[t]);
        w.threads[t].codeFootprint = 1024;
        b.barrier(0);
        for (std::uint64_t i = 0; i < iters; ++i) {
            b.compute((4 + (t % 3)) * grain);
            const SyncId lock = static_cast<SyncId>(i % 4);
            b.lock(lock);
            b.load(scratch + (i % T) * 64, grain);
            b.store(scratch + (i % T) * 64);
            b.unlock(lock);
            b.barrier(1);
        }
        b.barrier(0);
        b.end();
    }
    return w;
}

} // namespace slacksim
