/**
 * @file
 * Splash-2 LU equivalent: blocked right-looking dense LU factorization
 * with contiguous block allocation and a 2-D scatter block->thread
 * assignment. Per elimination step k: the owner factors the diagonal
 * block; owners update the perimeter row/column blocks against it; all
 * owners apply the rank-b update to their interior blocks. Barriers
 * separate the phases, exactly as in the Splash-2 program.
 *
 * The innermost daxpy loops are emitted at cache-line granularity for
 * streaming operands (one load per 64-byte line) — the reference
 * stream a compiled b-element vector loop actually produces.
 */

#include "workload/kernels.hh"

#include <cstdint>

#include "mem/address_space.hh"
#include "util/logging.hh"

namespace slacksim {

namespace {

constexpr std::uint64_t elemBytes = 8;
constexpr std::uint64_t elemsPerLine = 64 / elemBytes;

struct LuContext
{
    Addr base;
    std::uint64_t b;  // block dimension
    std::uint64_t nb; // blocks per matrix dimension
    std::uint32_t grain;

    Addr
    elem(std::uint64_t bi, std::uint64_t bj, std::uint64_t i,
         std::uint64_t j) const
    {
        const std::uint64_t block_index = bi * nb + bj;
        return base +
               (block_index * b * b + i * b + j) * elemBytes;
    }
};

/** Emit loads covering one b-element row of a block (line granular). */
void
emitRowTouch(TraceBuilder &tb, const LuContext &ctx, std::uint64_t bi,
             std::uint64_t bj, std::uint64_t i, bool store)
{
    for (std::uint64_t j = 0; j < ctx.b; j += elemsPerLine) {
        if (store)
            tb.store(ctx.elem(bi, bj, i, j));
        else
            tb.load(ctx.elem(bi, bj, i, j), 0);
    }
}

/**
 * dst -= A * B (all b x b blocks): the workhorse "bmod" update. The
 * same reference shape models the triangular solves (bdiv/bmodd),
 * whose flop count and stream are equivalent at this granularity.
 */
void
emitBlockUpdate(TraceBuilder &tb, const LuContext &ctx,
                std::uint64_t di, std::uint64_t dj,
                std::uint64_t ai, std::uint64_t aj,
                std::uint64_t bi, std::uint64_t bj)
{
    for (std::uint64_t i = 0; i < ctx.b; ++i) {
        emitRowTouch(tb, ctx, di, dj, i, false); // dst row in
        for (std::uint64_t kk = 0; kk < ctx.b; ++kk) {
            tb.load(ctx.elem(ai, aj, i, kk), 0);
            emitRowTouch(tb, ctx, bi, bj, kk, false); // B row stream
            tb.compute(static_cast<std::uint32_t>(
                           (ctx.b / 4) * ctx.grain),
                       true);
        }
        emitRowTouch(tb, ctx, di, dj, i, true); // dst row out
    }
}

/** In-place factorization of the diagonal block (k,k). */
void
emitDiagFactor(TraceBuilder &tb, const LuContext &ctx, std::uint64_t k)
{
    for (std::uint64_t j = 0; j < ctx.b; ++j) {
        tb.load(ctx.elem(k, k, j, j), 1 * ctx.grain);
        for (std::uint64_t i = j + 1; i < ctx.b; ++i) {
            tb.load(ctx.elem(k, k, i, j), 0);
            tb.compute(2 * ctx.grain, true);
            tb.store(ctx.elem(k, k, i, j));
        }
    }
}

} // namespace

Workload
makeLu(const WorkloadParams &params)
{
    const unsigned T = params.numThreads;
    const std::uint64_t n = params.matrixN ? params.matrixN : 256;
    const std::uint64_t b = params.blockB ? params.blockB : 16;

    if (n % b != 0)
        SLACKSIM_FATAL("lu: block size ", b, " must divide n=", n);
    const std::uint64_t nb = n / b;

    // 2-D scatter decomposition: pr x pc thread grid.
    unsigned pr = 1;
    for (unsigned d = 1; d * d <= T; ++d)
        if (T % d == 0)
            pr = d;
    const unsigned pc = T / pr;

    AddressSpace space(T);
    LuContext ctx;
    ctx.b = b;
    ctx.nb = nb;
    ctx.grain = params.computeGrain;
    ctx.base = space.allocShared(n * n * elemBytes, 64);

    Workload w;
    w.name = "lu";
    w.numLocks = 0;
    w.numBarriers = 1;
    w.threads.resize(T);
    w.sharedFootprintBytes = n * n * elemBytes;

    auto owner = [&](std::uint64_t bi, std::uint64_t bj) -> unsigned {
        return static_cast<unsigned>((bi % pr) * pc + (bj % pc));
    };

    for (unsigned t = 0; t < T; ++t) {
        TraceBuilder tb(w.threads[t]);
        w.threads[t].codeFootprint = 10 * 1024;
        tb.barrier(0);

        for (std::uint64_t k = 0; k < nb; ++k) {
            if (owner(k, k) == t)
                emitDiagFactor(tb, ctx, k);
            tb.barrier(0);

            // Perimeter: column blocks (i,k) and row blocks (k,j).
            for (std::uint64_t i = k + 1; i < nb; ++i) {
                if (owner(i, k) == t)
                    emitBlockUpdate(tb, ctx, i, k, i, k, k, k);
            }
            for (std::uint64_t j = k + 1; j < nb; ++j) {
                if (owner(k, j) == t)
                    emitBlockUpdate(tb, ctx, k, j, k, k, k, j);
            }
            tb.barrier(0);

            // Interior rank-b update.
            for (std::uint64_t i = k + 1; i < nb; ++i) {
                for (std::uint64_t j = k + 1; j < nb; ++j) {
                    if (owner(i, j) == t)
                        emitBlockUpdate(tb, ctx, i, j, i, k, k, j);
                }
            }
            tb.barrier(0);
        }
        tb.end();
    }
    return w;
}

} // namespace slacksim
