/**
 * @file
 * Splash-2 Ocean equivalent: iterative 5-point stencil relaxation on
 * an n x n grid partitioned into horizontal strips. Each sweep reads
 * the halo rows owned by the neighboring threads (the nearest-
 * neighbor sharing pattern that defines Ocean), updates the interior,
 * and joins a lock-protected global residual reduction followed by a
 * barrier. Red-black ordering alternates between two grids like the
 * original program's multigrid smoother.
 */

#include "workload/kernels.hh"

#include <cstdint>

#include "mem/address_space.hh"
#include "util/logging.hh"

namespace slacksim {

Workload
makeOcean(const WorkloadParams &params)
{
    const unsigned T = params.numThreads;
    // Reuse matrixN for the grid dimension; default 130 interior+halo
    // like the scaled-down Splash runs.
    const std::uint64_t n = params.matrixN ? params.matrixN : 128;
    const std::uint64_t sweeps = params.timesteps ? params.timesteps : 4;
    const std::uint32_t grain = params.computeGrain;
    SLACKSIM_ASSERT(n >= 2 * T, "ocean: grid too small for threads");

    constexpr std::uint64_t elemBytes = 8;
    constexpr std::uint64_t elemsPerLine = 64 / elemBytes;

    AddressSpace space(T);
    const Addr grid_a = space.allocShared(n * n * elemBytes, 64);
    const Addr grid_b = space.allocShared(n * n * elemBytes, 64);
    const Addr globals = space.allocShared(64, 64); // residual sum
    auto elem = [&](Addr base, std::uint64_t r, std::uint64_t c) {
        return base + (r * n + c) * elemBytes;
    };

    Workload w;
    w.name = "ocean";
    w.numLocks = 1;
    w.numBarriers = 1;
    w.threads.resize(T);
    w.sharedFootprintBytes = 2 * n * n * elemBytes + 64;

    const std::uint64_t rows_per = n / T;
    for (unsigned t = 0; t < T; ++t) {
        TraceBuilder b(w.threads[t]);
        w.threads[t].codeFootprint = 8 * 1024;
        const std::uint64_t row0 = t * rows_per;
        const std::uint64_t row1 =
            t + 1 == T ? n : row0 + rows_per;

        b.barrier(0);
        for (std::uint64_t sweep = 0; sweep < sweeps; ++sweep) {
            const Addr src = sweep % 2 ? grid_b : grid_a;
            const Addr dst = sweep % 2 ? grid_a : grid_b;
            for (std::uint64_t r = row0; r < row1; ++r) {
                if (r == 0 || r == n - 1)
                    continue; // fixed boundary rows
                for (std::uint64_t c = 0; c < n; c += elemsPerLine) {
                    // 5-point stencil at line granularity: center row
                    // line plus the rows above and below. The first /
                    // last rows of a strip read the neighbor thread's
                    // rows — the halo sharing.
                    b.load(elem(src, r, c), 0);
                    b.load(elem(src, r - 1, c), 0);
                    b.load(elem(src, r + 1, c), 0);
                    b.compute(
                        static_cast<std::uint32_t>(elemsPerLine) * 4 *
                            grain,
                        true);
                    b.store(elem(dst, r, c));
                }
            }
            // Global residual reduction under the lock.
            b.lock(0);
            b.load(globals, 2 * grain);
            b.store(globals);
            b.unlock(0);
            b.barrier(0);
        }
        b.end();
    }
    return w;
}

} // namespace slacksim
