/**
 * @file
 * Splash-2 Radix equivalent: parallel radix sort of N random integer
 * keys, r bits per digit pass. Each pass runs (1) a private local
 * histogram over the owned key block, (2) a rank phase where every
 * thread reads all other threads' histograms (the program's
 * all-to-all read), and (3) the permutation phase that scatters keys
 * into their destination positions across the whole array — Radix's
 * signature bus-saturating write traffic. The sort really executes
 * over RNG-generated keys at generation time, so the scatter
 * addresses are the true data-dependent ones.
 */

#include "workload/kernels.hh"

#include <cstdint>
#include <vector>

#include "mem/address_space.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace slacksim {

Workload
makeRadix(const WorkloadParams &params)
{
    const unsigned T = params.numThreads;
    // Reuse `iters` as the key count; paper-era runs sort 256K keys,
    // scaled down by default.
    std::uint64_t n = params.iters ? params.iters : 16384;
    constexpr std::uint32_t radixBits = 8;
    constexpr std::uint64_t buckets = 1u << radixBits;
    constexpr std::uint32_t passes = 2; // low 16 bits sorted
    const std::uint32_t grain = params.computeGrain;
    n = ((n + T - 1) / T) * T; // round up to a whole block per thread

    constexpr std::uint64_t keyBytes = 8;

    AddressSpace space(T);
    const Addr keys_a = space.allocShared(n * keyBytes, 64);
    const Addr keys_b = space.allocShared(n * keyBytes, 64);
    const Addr histo_base =
        space.allocShared(T * buckets * keyBytes, 64);
    auto keyAddr = [&](Addr base, std::uint64_t i) {
        return base + i * keyBytes;
    };
    auto histoAddr = [&](unsigned t, std::uint64_t b) {
        return histo_base + (t * buckets + b) * keyBytes;
    };

    // Generate and actually sort the keys so the permutation uses the
    // genuine destinations.
    Rng rng(params.seed ^ 0x5ad1ull);
    std::vector<std::uint32_t> keys(n);
    for (auto &k : keys)
        k = static_cast<std::uint32_t>(rng.next64());

    Workload w;
    w.name = "radix";
    w.numLocks = 0;
    w.numBarriers = 1;
    w.threads.resize(T);
    w.sharedFootprintBytes =
        2 * n * keyBytes + T * buckets * keyBytes;

    std::vector<TraceBuilder> builders;
    builders.reserve(T);
    for (unsigned t = 0; t < T; ++t) {
        w.threads[t].codeFootprint = 10 * 1024;
        builders.emplace_back(w.threads[t]);
        builders[t].barrier(0);
    }

    const std::uint64_t per = n / T;
    std::vector<std::uint32_t> next(n);
    for (std::uint32_t pass = 0; pass < passes; ++pass) {
        const std::uint32_t shift = pass * radixBits;
        const Addr src = pass % 2 ? keys_b : keys_a;
        const Addr dst = pass % 2 ? keys_a : keys_b;

        // Phase 1: local histograms.
        std::vector<std::vector<std::uint64_t>> histo(
            T, std::vector<std::uint64_t>(buckets, 0));
        for (unsigned t = 0; t < T; ++t) {
            for (std::uint64_t i = t * per; i < (t + 1) * per; ++i) {
                const std::uint64_t bucket =
                    (keys[i] >> shift) & (buckets - 1);
                ++histo[t][bucket];
                builders[t].load(keyAddr(src, i), 1 * grain);
                builders[t].load(histoAddr(t, bucket), 0);
                builders[t].store(histoAddr(t, bucket));
            }
            builders[t].barrier(0);
        }

        // Phase 2: global ranks — every thread scans all histograms
        // (all-to-all read at line granularity).
        std::vector<std::vector<std::uint64_t>> rank(
            T, std::vector<std::uint64_t>(buckets, 0));
        {
            std::uint64_t running = 0;
            for (std::uint64_t b = 0; b < buckets; ++b) {
                for (unsigned t = 0; t < T; ++t) {
                    rank[t][b] = running;
                    running += histo[t][b];
                }
            }
        }
        for (unsigned t = 0; t < T; ++t) {
            for (unsigned o = 0; o < T; ++o) {
                for (std::uint64_t b = 0; b < buckets;
                     b += 64 / keyBytes) {
                    builders[t].load(histoAddr(o, b), 0);
                }
            }
            builders[t].compute(
                static_cast<std::uint32_t>(buckets / 4) * grain, true);
            builders[t].barrier(0);
        }

        // Phase 3: permutation — scatter owned keys to their global
        // destinations.
        for (unsigned t = 0; t < T; ++t) {
            for (std::uint64_t i = t * per; i < (t + 1) * per; ++i) {
                const std::uint64_t bucket =
                    (keys[i] >> shift) & (buckets - 1);
                const std::uint64_t pos = rank[t][bucket]++;
                next[pos] = keys[i];
                builders[t].load(keyAddr(src, i), 1 * grain);
                builders[t].store(keyAddr(dst, pos));
            }
            builders[t].barrier(0);
        }
        for (std::uint64_t i = 0; i < n; ++i)
            keys[i] = next[i];
    }

    for (unsigned t = 0; t < T; ++t) {
        builders[t].barrier(0);
        builders[t].end();
    }

    // Sanity: the keys really are sorted on the low bits now.
    for (std::uint64_t i = 1; i < n; ++i) {
        SLACKSIM_ASSERT((keys[i - 1] & 0xffff) <= (keys[i] & 0xffff),
                        "radix generator failed to sort");
    }
    return w;
}

} // namespace slacksim
