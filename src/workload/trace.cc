/**
 * @file
 * Workload structural validation.
 */

#include "workload/trace.hh"

#include <map>
#include <set>

#include "util/logging.hh"

namespace slacksim {

void
validateWorkload(const Workload &workload)
{
    SLACKSIM_ASSERT(!workload.threads.empty(),
                    "workload '", workload.name, "' has no threads");

    // Barrier arrival counts must match across all threads so no
    // thread can be left waiting forever.
    std::map<SyncId, std::uint64_t> barrierCounts;
    bool first = true;

    for (std::size_t t = 0; t < workload.threads.size(); ++t) {
        const auto &trace = workload.threads[t].instrs;
        SLACKSIM_ASSERT(!trace.empty() &&
                            trace.back().op == TraceOp::End,
                        "thread ", t, " of '", workload.name,
                        "' does not end with End");

        std::set<SyncId> held;
        std::map<SyncId, std::uint64_t> barriers;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            const TraceInstr &instr = trace[i];
            switch (instr.op) {
              case TraceOp::Lock:
                SLACKSIM_ASSERT(instr.sync < workload.numLocks,
                                "lock id ", instr.sync, " out of range");
                SLACKSIM_ASSERT(!held.count(instr.sync),
                                "thread ", t, " re-acquires lock ",
                                instr.sync);
                held.insert(instr.sync);
                break;
              case TraceOp::Unlock:
                SLACKSIM_ASSERT(held.count(instr.sync),
                                "thread ", t, " releases unheld lock ",
                                instr.sync);
                held.erase(instr.sync);
                break;
              case TraceOp::Barrier:
                SLACKSIM_ASSERT(instr.sync < workload.numBarriers,
                                "barrier id ", instr.sync,
                                " out of range");
                SLACKSIM_ASSERT(held.empty(),
                                "thread ", t,
                                " enters barrier holding a lock");
                ++barriers[instr.sync];
                break;
              case TraceOp::End:
                SLACKSIM_ASSERT(i + 1 == trace.size(),
                                "End not last in thread ", t);
                break;
              case TraceOp::Compute:
                SLACKSIM_ASSERT(instr.count > 0,
                                "empty Compute in thread ", t);
                break;
              case TraceOp::Load:
              case TraceOp::Store:
                break;
            }
        }
        SLACKSIM_ASSERT(held.empty(),
                        "thread ", t, " ends holding a lock");

        if (first) {
            barrierCounts = barriers;
            first = false;
        } else {
            SLACKSIM_ASSERT(barriers == barrierCounts,
                            "barrier arrival counts differ in thread ",
                            t, " of '", workload.name, "'");
        }
    }
}

} // namespace slacksim
