/**
 * @file
 * Workload trace serialization: save a generated Workload to a binary
 * file and load it back, so expensive generations (full-scale LU/FFT)
 * can be reused across runs and shared between machines.
 *
 * Format: a small header (magic, version, thread count, sync object
 * counts), then per thread the code footprint and the raw TraceInstr
 * array. Integers are stored little-endian native (the format is a
 * cache, not an interchange standard).
 */

#ifndef SLACKSIM_WORKLOAD_TRACE_IO_HH
#define SLACKSIM_WORKLOAD_TRACE_IO_HH

#include <string>

#include "workload/trace.hh"

namespace slacksim {

/** Write @p workload to @p path. Fatal on I/O failure. */
void saveWorkload(const Workload &workload, const std::string &path);

/**
 * Read a workload from @p path. Fatal on I/O failure or format
 * mismatch; the loaded workload is re-validated structurally.
 */
Workload loadWorkload(const std::string &path);

} // namespace slacksim

#endif // SLACKSIM_WORKLOAD_TRACE_IO_HH
