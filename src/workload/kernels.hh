/**
 * @file
 * Workload kernel generators.
 *
 * Four Splash-2-equivalent kernels (Table 1 of the paper) plus a set
 * of micro-kernels used by tests and ablation benches. Each generator
 * runs the real algorithm at generation time over a simulated address
 * space and records the per-thread dynamic memory/sync stream.
 *
 * Paper input sets -> our defaults:
 *   Barnes  1024 bodies            -> 1024 bodies, 2 timesteps
 *   FFT     64K points             -> 16K points (64K available)
 *   LU      256x256 matrix         -> 256x256, block 16
 *   Water-N 216 molecules          -> 216 molecules, 1 timestep
 * plus two more Splash-2 applications beyond the paper's four
 * (ocean: strip-partitioned stencil; radix: all-to-all sort) and the
 * micro-kernels.
 */

#ifndef SLACKSIM_WORKLOAD_KERNELS_HH
#define SLACKSIM_WORKLOAD_KERNELS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.hh"

namespace slacksim {

/** Tunable workload parameters; 0 selects the kernel's default. */
struct WorkloadParams
{
    std::string kernel = "fft"; //!< kernel name, see workloadNames()
    unsigned numThreads = 8;
    std::uint64_t seed = 42;

    // Splash kernels.
    std::uint64_t bodies = 0;      //!< barnes: number of bodies
    std::uint64_t timesteps = 0;   //!< barnes/water: simulated steps
    std::uint64_t fftPoints = 0;   //!< fft: N (power of four)
    std::uint64_t matrixN = 0;     //!< lu: matrix dimension
    std::uint64_t blockB = 0;      //!< lu: block size
    std::uint64_t molecules = 0;   //!< water: molecule count

    // Micro kernels.
    std::uint64_t iters = 0;          //!< per-thread iterations
    std::uint64_t footprintBytes = 0; //!< uniform/stream working set
    double sharedFraction = 0.5;      //!< uniform: P(shared access)
    double storeFraction = 0.3;       //!< uniform: P(access is store)

    /** Multiplier applied to all Compute record counts. */
    std::uint32_t computeGrain = 1;
};

/** Build the workload selected by @p params. Fatal on unknown name. */
Workload makeWorkload(const WorkloadParams &params);

/** @return all registered kernel names. */
std::vector<std::string> workloadNames();

/** @return the four Splash benchmark names in paper order. */
std::vector<std::string> splashNames();

// Individual generators (exposed for targeted tests).
Workload makeBarnes(const WorkloadParams &params);
Workload makeOcean(const WorkloadParams &params);
Workload makeRadix(const WorkloadParams &params);
Workload makeFft(const WorkloadParams &params);
Workload makeLu(const WorkloadParams &params);
Workload makeWater(const WorkloadParams &params);
Workload makePingPong(const WorkloadParams &params);
Workload makeFalseShare(const WorkloadParams &params);
Workload makeStream(const WorkloadParams &params);
Workload makeUniform(const WorkloadParams &params);
Workload makeSyncStorm(const WorkloadParams &params);

} // namespace slacksim

#endif // SLACKSIM_WORKLOAD_KERNELS_HH
