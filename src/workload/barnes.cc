/**
 * @file
 * Splash-2 Barnes equivalent: Barnes-Hut N-body. Each timestep
 * (1) rebuilds the octree by concurrent insertion with per-cell locks,
 * (2) computes cell centers of mass bottom-up over a cell partition,
 * (3) computes forces by tree traversal with the opening criterion
 * size/dist < theta, and (4) advances the bodies; barriers separate
 * phases. The tree is *really* built over random body positions at
 * generation time, so the reference stream has the genuine
 * data-dependent, irregular sharing pattern of the original program.
 */

#include "workload/kernels.hh"

#include <cmath>
#include <cstdint>
#include <vector>

#include "mem/address_space.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace slacksim {

namespace {

constexpr std::uint64_t nodeBytes = 64;  // one cache line per cell
constexpr std::uint64_t bodyBytes = 128; // two lines per body
constexpr unsigned numCellLocks = 64;
constexpr double theta = 1.0;            // Splash-2 default tolerance
constexpr int maxDepth = 24;

struct Vec3
{
    double x = 0, y = 0, z = 0;
};

double
dist(const Vec3 &a, const Vec3 &b)
{
    const double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
    return std::sqrt(dx * dx + dy * dy + dz * dz);
}

struct Cell
{
    Vec3 center;
    double halfSize = 0.5;
    int children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    int body = -1;     // leaf payload (-1 while internal/empty)
    bool isLeaf = true;
    Vec3 com;          // center of mass (filled in phase 2)
};

struct Tree
{
    std::vector<Cell> cells;

    int
    alloc(const Vec3 &center, double half_size)
    {
        Cell c;
        c.center = center;
        c.halfSize = half_size;
        cells.push_back(c);
        return static_cast<int>(cells.size()) - 1;
    }

    static int
    octant(const Cell &c, const Vec3 &p)
    {
        return (p.x >= c.center.x ? 1 : 0) |
               (p.y >= c.center.y ? 2 : 0) |
               (p.z >= c.center.z ? 4 : 0);
    }

    static Vec3
    childCenter(const Cell &c, int oct)
    {
        const double q = c.halfSize / 2;
        return {c.center.x + ((oct & 1) ? q : -q),
                c.center.y + ((oct & 2) ? q : -q),
                c.center.z + ((oct & 4) ? q : -q)};
    }
};

struct BarnesContext
{
    Addr treeBase;
    Addr bodyBase;
    std::uint32_t grain;

    Addr node(int i) const { return treeBase + i * nodeBytes; }
    Addr body(std::uint64_t i) const { return bodyBase + i * bodyBytes; }
    static SyncId cellLock(int i) { return i % numCellLocks; }
};

/**
 * Insert body `bi` at position `p`, emitting the descent loads and the
 * locked cell mutations into `tb`. Returns nothing; grows the tree.
 */
void
insertBody(Tree &tree, TraceBuilder &tb, const BarnesContext &ctx,
           int bi, const Vec3 &p, const std::vector<Vec3> &pos)
{
    int cur = 0;
    int depth = 0;
    tb.load(ctx.body(bi), 0);
    while (true) {
        SLACKSIM_ASSERT(++depth < maxDepth,
                        "barnes: octree too deep (coincident bodies?)");
        tb.load(ctx.node(cur), 2 * ctx.grain);
        Cell &c = tree.cells[cur];
        if (!c.isLeaf) {
            const int oct = Tree::octant(c, p);
            if (c.children[oct] < 0) {
                // Claim the empty slot under the cell lock.
                tb.lock(BarnesContext::cellLock(cur));
                const int leaf =
                    tree.alloc(Tree::childCenter(c, oct), c.halfSize / 2);
                tree.cells[leaf].body = bi;
                tree.cells[cur].children[oct] = leaf;
                tb.store(ctx.node(leaf));
                tb.store(ctx.node(cur));
                tb.unlock(BarnesContext::cellLock(cur));
                return;
            }
            cur = c.children[oct];
            continue;
        }
        if (c.body < 0) {
            // Empty leaf (root before first insertion).
            tb.lock(BarnesContext::cellLock(cur));
            tree.cells[cur].body = bi;
            tb.store(ctx.node(cur));
            tb.unlock(BarnesContext::cellLock(cur));
            return;
        }
        // Occupied leaf: split it and push the old body down, then
        // retry from this (now internal) cell.
        tb.lock(BarnesContext::cellLock(cur));
        const int old_body = c.body;
        tree.cells[cur].isLeaf = false;
        tree.cells[cur].body = -1;
        const int old_oct = Tree::octant(tree.cells[cur], pos[old_body]);
        const int child = tree.alloc(
            Tree::childCenter(tree.cells[cur], old_oct),
            tree.cells[cur].halfSize / 2);
        tree.cells[child].body = old_body;
        tree.cells[cur].children[old_oct] = child;
        tb.store(ctx.node(child));
        tb.store(ctx.node(cur));
        tb.unlock(BarnesContext::cellLock(cur));
    }
}

/** Emit the force traversal for one body over the finished tree. */
void
emitForce(const Tree &tree, TraceBuilder &tb, const BarnesContext &ctx,
          const Vec3 &p, std::vector<int> &stack)
{
    stack.clear();
    stack.push_back(0);
    while (!stack.empty()) {
        const int ni = stack.back();
        stack.pop_back();
        const Cell &c = tree.cells[ni];
        tb.load(ctx.node(ni), 0);
        if (c.isLeaf) {
            if (c.body >= 0) {
                tb.load(ctx.body(c.body), 0);
                tb.compute(10 * ctx.grain, true); // pairwise kernel
            }
            continue;
        }
        const double d = dist(c.com, p);
        if (d > 1e-9 && (2 * c.halfSize) / d < theta) {
            tb.compute(10 * ctx.grain, true); // accept cell as a mass
            continue;
        }
        tb.compute(3 * ctx.grain, true); // opening test arithmetic
        for (int child : c.children)
            if (child >= 0)
                stack.push_back(child);
    }
}

} // namespace

Workload
makeBarnes(const WorkloadParams &params)
{
    const unsigned T = params.numThreads;
    const std::uint64_t n = params.bodies ? params.bodies : 1024;
    const std::uint64_t steps = params.timesteps ? params.timesteps : 2;
    SLACKSIM_ASSERT(n >= T, "barnes: fewer bodies than threads");

    AddressSpace space(T);
    BarnesContext ctx;
    ctx.grain = params.computeGrain;
    // Generous arena: a Barnes-Hut tree has < 2N internal cells.
    const std::uint64_t max_cells = 4 * n + 64;
    ctx.treeBase = space.allocShared(max_cells * nodeBytes, 64);
    ctx.bodyBase = space.allocShared(n * bodyBytes, 64);

    Workload w;
    w.name = "barnes";
    w.numLocks = numCellLocks;
    w.numBarriers = 1;
    w.threads.resize(T);
    w.sharedFootprintBytes = max_cells * nodeBytes + n * bodyBytes;

    for (unsigned t = 0; t < T; ++t)
        w.threads[t].codeFootprint = 14 * 1024;

    Rng rng(params.seed ^ 0xba27e5ull);
    std::vector<Vec3> pos(n);
    for (auto &p : pos) {
        // Mildly clustered distribution: half the bodies in a tight
        // clump, so the tree is uneven like a Plummer model's.
        if (rng.chance(0.5)) {
            p = {0.3 + rng.uniform() * 0.1, 0.3 + rng.uniform() * 0.1,
                 0.3 + rng.uniform() * 0.1};
        } else {
            p = {rng.uniform(), rng.uniform(), rng.uniform()};
        }
    }

    std::vector<TraceBuilder> builders;
    builders.reserve(T);
    for (unsigned t = 0; t < T; ++t)
        builders.emplace_back(w.threads[t]);

    std::vector<int> stack;
    for (std::uint64_t step = 0; step < steps; ++step) {
        for (unsigned t = 0; t < T; ++t)
            builders[t].barrier(0);

        // Phase 1: concurrent tree build. The global insertion order
        // interleaves threads round-robin, mirroring the concurrent
        // lock-protected insertions of the original program.
        Tree tree;
        tree.alloc({0.5, 0.5, 0.5}, 0.5); // root
        const std::uint64_t per = (n + T - 1) / T;
        for (std::uint64_t k = 0; k < per; ++k) {
            for (unsigned t = 0; t < T; ++t) {
                const std::uint64_t bi = t * per + k;
                if (bi < n) {
                    insertBody(tree, builders[t], ctx,
                               static_cast<int>(bi), pos[bi], pos);
                }
            }
        }
        SLACKSIM_ASSERT(tree.cells.size() <= max_cells,
                        "barnes: tree arena overflow");
        for (unsigned t = 0; t < T; ++t)
            builders[t].barrier(0);

        // Phase 2: centers of mass, cells partitioned round-robin.
        // Compute real COMs bottom-up (children have larger indices
        // only for leaves created later, so walk in reverse order).
        for (int ci = static_cast<int>(tree.cells.size()) - 1;
             ci >= 0; --ci) {
            Cell &c = tree.cells[ci];
            if (c.isLeaf) {
                c.com = c.body >= 0 ? pos[c.body] : c.center;
            } else {
                Vec3 acc;
                int cnt = 0;
                for (int ch : c.children) {
                    if (ch >= 0) {
                        acc.x += tree.cells[ch].com.x;
                        acc.y += tree.cells[ch].com.y;
                        acc.z += tree.cells[ch].com.z;
                        ++cnt;
                    }
                }
                c.com = {acc.x / cnt, acc.y / cnt, acc.z / cnt};
            }
            TraceBuilder &tb = builders[ci % T];
            tb.load(ctx.node(ci), 0);
            if (!c.isLeaf) {
                for (int ch : c.children)
                    if (ch >= 0)
                        tb.load(ctx.node(ch), 0);
                tb.compute(6 * ctx.grain, true);
                tb.store(ctx.node(ci));
            }
        }
        for (unsigned t = 0; t < T; ++t)
            builders[t].barrier(0);

        // Phase 3: force computation over owned bodies.
        for (unsigned t = 0; t < T; ++t) {
            for (std::uint64_t k = 0; k < per; ++k) {
                const std::uint64_t bi = t * per + k;
                if (bi >= n)
                    continue;
                builders[t].load(ctx.body(bi), 0);
                emitForce(tree, builders[t], ctx, pos[bi], stack);
                builders[t].store(ctx.body(bi) + 64);
            }
            builders[t].barrier(0);
        }

        // Phase 4: advance positions (and perturb them so the next
        // step rebuilds a slightly different tree).
        for (unsigned t = 0; t < T; ++t) {
            for (std::uint64_t k = 0; k < per; ++k) {
                const std::uint64_t bi = t * per + k;
                if (bi >= n)
                    continue;
                builders[t].load(ctx.body(bi), 0);
                builders[t].load(ctx.body(bi) + 64, 0);
                builders[t].compute(8 * ctx.grain, true);
                builders[t].store(ctx.body(bi));
            }
        }
        for (std::uint64_t bi = 0; bi < n; ++bi) {
            pos[bi].x += (rng.uniform() - 0.5) * 0.02;
            pos[bi].y += (rng.uniform() - 0.5) * 0.02;
            pos[bi].z += (rng.uniform() - 0.5) * 0.02;
            pos[bi].x = std::min(0.999, std::max(0.001, pos[bi].x));
            pos[bi].y = std::min(0.999, std::max(0.001, pos[bi].y));
            pos[bi].z = std::min(0.999, std::max(0.001, pos[bi].z));
        }
    }

    for (unsigned t = 0; t < T; ++t) {
        builders[t].barrier(0);
        builders[t].end();
    }
    return w;
}

} // namespace slacksim
