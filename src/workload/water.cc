/**
 * @file
 * Splash-2 Water-Nsquared equivalent: N water molecules on a perturbed
 * cubic lattice; each timestep runs predict, intra-molecular forces,
 * the O(N^2/2) inter-molecular force phase with cutoff tests and
 * per-molecule locks on the force accumulators, correct, and the
 * lock-protected global virial/energy reductions — with barriers
 * between phases, as in the original program.
 */

#include "workload/kernels.hh"

#include <cmath>
#include <cstdint>
#include <vector>

#include "mem/address_space.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace slacksim {

namespace {

constexpr std::uint64_t molBytes = 512; // VAR record: 3 atoms x derivs
constexpr std::uint64_t posOffset = 0;  // predicted positions part
constexpr std::uint64_t forceOffset = 256; // force accumulator part

struct Vec3
{
    double x = 0, y = 0, z = 0;
};

} // namespace

Workload
makeWater(const WorkloadParams &params)
{
    const unsigned T = params.numThreads;
    const std::uint64_t n = params.molecules ? params.molecules : 216;
    const std::uint64_t steps = params.timesteps ? params.timesteps : 1;
    const std::uint32_t grain = params.computeGrain;
    SLACKSIM_ASSERT(n >= T, "water: fewer molecules than threads");

    AddressSpace space(T);
    const Addr mol_base = space.allocShared(n * molBytes, 64);
    const Addr globals = space.allocShared(256, 64); // VIR/POT sums
    auto mol = [&](std::uint64_t i) { return mol_base + i * molBytes; };

    // Lattice positions with a small jitter; the box side is chosen
    // for liquid density so the cutoff (half the box) keeps roughly
    // half of all pairs interacting — as in the real program.
    const std::uint64_t side = static_cast<std::uint64_t>(
        std::ceil(std::cbrt(static_cast<double>(n))));
    const double box = static_cast<double>(side);
    const double cutoff = box / 2.0;
    Rng rng(params.seed ^ 0x3a7e12ull);
    std::vector<Vec3> pos(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        pos[i] = {
            (i % side) + 0.3 * rng.uniform(),
            ((i / side) % side) + 0.3 * rng.uniform(),
            (i / (side * side)) + 0.3 * rng.uniform(),
        };
    }
    auto withinCutoff = [&](std::uint64_t i, std::uint64_t j) {
        double dx = std::fabs(pos[i].x - pos[j].x);
        double dy = std::fabs(pos[i].y - pos[j].y);
        double dz = std::fabs(pos[i].z - pos[j].z);
        // Periodic minimum image.
        dx = std::min(dx, box - dx);
        dy = std::min(dy, box - dy);
        dz = std::min(dz, box - dz);
        return dx * dx + dy * dy + dz * dz < cutoff * cutoff;
    };

    // One lock per molecule (Splash MolLock array) + one global lock.
    const std::uint32_t num_locks = static_cast<std::uint32_t>(n) + 1;
    const SyncId global_lock = static_cast<SyncId>(n);

    Workload w;
    w.name = "water";
    w.numLocks = num_locks;
    w.numBarriers = 1;
    w.threads.resize(T);
    w.sharedFootprintBytes = n * molBytes + 256;

    const std::uint64_t per = (n + T - 1) / T;
    for (unsigned t = 0; t < T; ++t) {
        TraceBuilder b(w.threads[t]);
        w.threads[t].codeFootprint = 12 * 1024;
        const std::uint64_t lo = t * per;
        const std::uint64_t hi = std::min<std::uint64_t>(n, lo + per);
        b.barrier(0);

        for (std::uint64_t step = 0; step < steps; ++step) {
            // PREDIC: own molecules, private update.
            for (std::uint64_t i = lo; i < hi; ++i) {
                b.load(mol(i) + posOffset, 0);
                b.load(mol(i) + posOffset + 64, 0);
                b.compute(12 * grain, true);
                b.store(mol(i) + posOffset);
                b.store(mol(i) + posOffset + 64);
            }
            b.barrier(0);

            // INTRAF: intra-molecular forces + global VIR reduction.
            for (std::uint64_t i = lo; i < hi; ++i) {
                b.load(mol(i) + posOffset, 0);
                b.compute(24 * grain, true);
                b.store(mol(i) + forceOffset);
            }
            b.lock(global_lock);
            b.load(globals, 2 * grain);
            b.store(globals);
            b.unlock(global_lock);
            b.barrier(0);

            // INTERF: half of all pairs per owning thread. Remote
            // force accumulation goes through the molecule's lock.
            for (std::uint64_t i = lo; i < hi; ++i) {
                b.load(mol(i) + posOffset, 0);
                for (std::uint64_t j = i + 1; j < i + 1 + n / 2; ++j) {
                    const std::uint64_t jj = j % n;
                    b.load(mol(jj) + posOffset, 0);
                    b.compute(4 * grain, true); // cutoff distance test
                    if (!withinCutoff(i, jj))
                        continue;
                    b.compute(28 * grain, true); // pair interaction
                    b.lock(static_cast<SyncId>(jj));
                    b.load(mol(jj) + forceOffset, 0);
                    b.store(mol(jj) + forceOffset);
                    b.unlock(static_cast<SyncId>(jj));
                }
                // Own accumulator updated once per row, no lock held
                // by construction of the ownership partition... the
                // original still locks it because other rows hit it.
                b.lock(static_cast<SyncId>(i));
                b.load(mol(i) + forceOffset, 0);
                b.store(mol(i) + forceOffset);
                b.unlock(static_cast<SyncId>(i));
            }
            b.lock(global_lock);
            b.load(globals + 64, 2 * grain);
            b.store(globals + 64);
            b.unlock(global_lock);
            b.barrier(0);

            // CORREC + KINETI: own molecules + global energy sum.
            for (std::uint64_t i = lo; i < hi; ++i) {
                b.load(mol(i) + posOffset, 0);
                b.load(mol(i) + forceOffset, 0);
                b.compute(16 * grain, true);
                b.store(mol(i) + posOffset);
            }
            b.lock(global_lock);
            b.load(globals + 128, 2 * grain);
            b.store(globals + 128);
            b.unlock(global_lock);
            b.barrier(0);
        }
        b.end();
    }
    return w;
}

} // namespace slacksim
