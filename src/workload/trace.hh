/**
 * @file
 * The workload trace "ISA" and per-thread trace programs.
 *
 * SlackSim ran Splash-2 PISA binaries through a SimpleScalar-derived
 * functional front end. Our substitution (DESIGN.md S6) runs the same
 * algorithms at *generation* time and captures their dynamic memory
 * reference and synchronization stream as a compact trace; the timing
 * core then replays the trace. Because all synchronization operations
 * (locks/barriers) are embedded in the trace and arbitrated inside
 * the simulator, simulated-workload-state violations cannot occur —
 * exactly the property the paper gets from MP_Simplesim's APIs.
 */

#ifndef SLACKSIM_WORKLOAD_TRACE_HH
#define SLACKSIM_WORKLOAD_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace slacksim {

/** Trace operation kinds. */
enum class TraceOp : std::uint8_t {
    Compute, //!< a run of `count` single-cycle ALU micro-ops
    Load,    //!< one load from `addr`
    Store,   //!< one store to `addr`
    Lock,    //!< acquire lock `sync` (blocks until granted)
    Unlock,  //!< release lock `sync`
    Barrier, //!< arrive at barrier `sync`, block until all arrive
    End,     //!< end of trace
};

/** Flag bits on a trace instruction. */
enum TraceFlags : std::uint8_t {
    /** First ALU op of this Compute group consumes the last load. */
    traceFlagDependsOnLoad = 1u << 0,
};

/** One trace record; 16 bytes packed. */
struct TraceInstr
{
    Addr addr = 0;           //!< load/store target address
    std::uint32_t count = 1; //!< Compute: number of ALU micro-ops
    std::uint16_t sync = 0;  //!< lock/barrier identifier
    TraceOp op = TraceOp::End;
    std::uint8_t flags = 0;

    /** @return number of committed micro-ops this record expands to. */
    std::uint64_t
    microOps() const
    {
        return op == TraceOp::Compute ? count : 1;
    }
};

static_assert(sizeof(TraceInstr) == 16, "TraceInstr must stay compact");

/** A full dynamic trace for one workload thread. */
struct TraceProgram
{
    std::vector<TraceInstr> instrs;
    /** Synthetic static-code footprint in bytes (drives L1I behavior). */
    std::uint64_t codeFootprint = 4096;

    /** Total committed micro-ops the trace expands to. */
    std::uint64_t
    totalMicroOps() const
    {
        std::uint64_t n = 0;
        for (const auto &instr : instrs)
            if (instr.op != TraceOp::End)
                n += instr.microOps();
        return n;
    }
};

/**
 * Convenience emitter used by the kernel generators. Consecutive
 * compute ops are coalesced into one record.
 */
class TraceBuilder
{
  public:
    explicit TraceBuilder(TraceProgram &program)
        : program_(program)
    {
    }

    /** Emit @p n ALU micro-ops. */
    void
    compute(std::uint32_t n, bool depends_on_load = false)
    {
        if (n == 0)
            return;
        auto &instrs = program_.instrs;
        if (!depends_on_load && !instrs.empty() &&
            instrs.back().op == TraceOp::Compute &&
            instrs.back().count <= 0xffffff) {
            instrs.back().count += n;
            return;
        }
        TraceInstr instr;
        instr.op = TraceOp::Compute;
        instr.count = n;
        if (depends_on_load)
            instr.flags |= traceFlagDependsOnLoad;
        instrs.push_back(instr);
    }

    /** Emit a load of @p addr, optionally followed by dependent work. */
    void
    load(Addr addr, std::uint32_t dependent_work = 0)
    {
        TraceInstr instr;
        instr.op = TraceOp::Load;
        instr.addr = addr;
        program_.instrs.push_back(instr);
        if (dependent_work)
            compute(dependent_work, true);
    }

    /** Emit a store to @p addr. */
    void
    store(Addr addr)
    {
        TraceInstr instr;
        instr.op = TraceOp::Store;
        instr.addr = addr;
        program_.instrs.push_back(instr);
    }

    /** Emit a lock acquire. */
    void
    lock(SyncId id)
    {
        TraceInstr instr;
        instr.op = TraceOp::Lock;
        instr.sync = static_cast<std::uint16_t>(id);
        program_.instrs.push_back(instr);
    }

    /** Emit a lock release. */
    void
    unlock(SyncId id)
    {
        TraceInstr instr;
        instr.op = TraceOp::Unlock;
        instr.sync = static_cast<std::uint16_t>(id);
        program_.instrs.push_back(instr);
    }

    /** Emit a barrier arrival. */
    void
    barrier(SyncId id)
    {
        TraceInstr instr;
        instr.op = TraceOp::Barrier;
        instr.sync = static_cast<std::uint16_t>(id);
        program_.instrs.push_back(instr);
    }

    /** Finalize the trace with an End record. */
    void
    end()
    {
        TraceInstr instr;
        instr.op = TraceOp::End;
        program_.instrs.push_back(instr);
    }

    /** @return records emitted so far. */
    std::size_t size() const { return program_.instrs.size(); }

  private:
    TraceProgram &program_;
};

/** A complete multi-threaded workload: one trace per core. */
struct Workload
{
    std::string name;
    std::vector<TraceProgram> threads;
    std::uint32_t numLocks = 0;
    std::uint32_t numBarriers = 0;
    std::uint64_t sharedFootprintBytes = 0;

    /** Total committed micro-ops across all threads. */
    std::uint64_t
    totalMicroOps() const
    {
        std::uint64_t n = 0;
        for (const auto &t : threads)
            n += t.totalMicroOps();
        return n;
    }
};

/**
 * Check structural sanity of a workload: every thread's trace ends
 * with End, every Lock has a matching Unlock in program order, all
 * threads hit every barrier the same number of times, and sync ids
 * are within the declared ranges. Aborts via panic on failure (these
 * are generator bugs, not user errors).
 */
void validateWorkload(const Workload &workload);

} // namespace slacksim

#endif // SLACKSIM_WORKLOAD_TRACE_HH
