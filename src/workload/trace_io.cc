/**
 * @file
 * Workload trace serialization implementation.
 */

#include "workload/trace_io.hh"

#include <cstdio>
#include <memory>

#include "util/logging.hh"

namespace slacksim {

namespace {

constexpr std::uint64_t traceMagic = 0x534c4b54524330ull; // "SLKTRC0"
constexpr std::uint32_t traceVersion = 1;

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
writeAll(std::FILE *f, const void *data, std::size_t bytes,
         const std::string &path)
{
    if (std::fwrite(data, 1, bytes, f) != bytes)
        SLACKSIM_FATAL("short write to '", path, "'");
}

void
readAll(std::FILE *f, void *data, std::size_t bytes,
        const std::string &path)
{
    if (std::fread(data, 1, bytes, f) != bytes)
        SLACKSIM_FATAL("short read from '", path, "'");
}

template <typename T>
void
writeScalar(std::FILE *f, const T &v, const std::string &path)
{
    writeAll(f, &v, sizeof(T), path);
}

template <typename T>
T
readScalar(std::FILE *f, const std::string &path)
{
    T v;
    readAll(f, &v, sizeof(T), path);
    return v;
}

} // namespace

void
saveWorkload(const Workload &workload, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        SLACKSIM_FATAL("cannot open '", path, "' for writing");

    writeScalar(f.get(), traceMagic, path);
    writeScalar(f.get(), traceVersion, path);
    const std::uint32_t name_len =
        static_cast<std::uint32_t>(workload.name.size());
    writeScalar(f.get(), name_len, path);
    writeAll(f.get(), workload.name.data(), name_len, path);
    writeScalar(f.get(), workload.numLocks, path);
    writeScalar(f.get(), workload.numBarriers, path);
    writeScalar(f.get(), workload.sharedFootprintBytes, path);
    writeScalar(
        f.get(),
        static_cast<std::uint32_t>(workload.threads.size()), path);
    for (const TraceProgram &t : workload.threads) {
        writeScalar(f.get(), t.codeFootprint, path);
        writeScalar(
            f.get(),
            static_cast<std::uint64_t>(t.instrs.size()), path);
        if (!t.instrs.empty()) {
            writeAll(f.get(), t.instrs.data(),
                     t.instrs.size() * sizeof(TraceInstr), path);
        }
    }
}

Workload
loadWorkload(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        SLACKSIM_FATAL("cannot open '", path, "' for reading");

    if (readScalar<std::uint64_t>(f.get(), path) != traceMagic)
        SLACKSIM_FATAL("'", path, "' is not a slacksim trace file");
    const auto version = readScalar<std::uint32_t>(f.get(), path);
    if (version != traceVersion)
        SLACKSIM_FATAL("'", path, "' has unsupported trace version ",
                       version);

    Workload w;
    const auto name_len = readScalar<std::uint32_t>(f.get(), path);
    if (name_len > 4096)
        SLACKSIM_FATAL("'", path, "' has an implausible name length");
    w.name.resize(name_len);
    readAll(f.get(), w.name.data(), name_len, path);
    w.numLocks = readScalar<std::uint32_t>(f.get(), path);
    w.numBarriers = readScalar<std::uint32_t>(f.get(), path);
    w.sharedFootprintBytes = readScalar<std::uint64_t>(f.get(), path);
    const auto threads = readScalar<std::uint32_t>(f.get(), path);
    if (threads == 0 || threads > 64)
        SLACKSIM_FATAL("'", path, "' has a bad thread count ", threads);
    w.threads.resize(threads);
    for (TraceProgram &t : w.threads) {
        t.codeFootprint = readScalar<std::uint64_t>(f.get(), path);
        const auto count = readScalar<std::uint64_t>(f.get(), path);
        if (count > (1ull << 32))
            SLACKSIM_FATAL("'", path, "' has an implausible trace size");
        t.instrs.resize(count);
        if (count) {
            readAll(f.get(), t.instrs.data(),
                    count * sizeof(TraceInstr), path);
        }
    }
    validateWorkload(w);
    return w;
}

} // namespace slacksim
