/**
 * @file
 * Workload characterization implementation.
 */

#include "workload/trace_stats.hh"

#include <algorithm>
#include <ostream>
#include <unordered_map>

#include "util/logging.hh"

namespace slacksim {

WorkloadStats
analyzeWorkload(const Workload &workload)
{
    WorkloadStats stats;
    stats.threads = static_cast<std::uint32_t>(workload.threads.size());

    struct LineInfo
    {
        std::uint64_t touchers = 0; //!< bitmask of touching threads
        std::uint64_t writers = 0;  //!< bitmask of writing threads
    };
    std::unordered_map<Addr, LineInfo> lines;

    stats.minThreadUops = ~0ull;
    for (std::size_t t = 0; t < workload.threads.size(); ++t) {
        const std::uint64_t bit = 1ull << (t % 64);
        std::uint64_t uops = 0;
        for (const TraceInstr &instr : workload.threads[t].instrs) {
            switch (instr.op) {
              case TraceOp::Compute:
                stats.computeUops += instr.count;
                uops += instr.count;
                break;
              case TraceOp::Load: {
                ++stats.loads;
                ++uops;
                LineInfo &info = lines[instr.addr & ~Addr{63}];
                info.touchers |= bit;
                break;
              }
              case TraceOp::Store: {
                ++stats.stores;
                ++uops;
                LineInfo &info = lines[instr.addr & ~Addr{63}];
                info.touchers |= bit;
                info.writers |= bit;
                break;
              }
              case TraceOp::Lock:
                ++stats.lockPairs;
                uops += 2; // lock + its unlock
                break;
              case TraceOp::Unlock:
                break; // counted with the lock
              case TraceOp::Barrier:
                ++stats.barrierArrivals;
                ++uops;
                break;
              case TraceOp::End:
                break;
            }
        }
        stats.minThreadUops = std::min(stats.minThreadUops, uops);
        stats.maxThreadUops = std::max(stats.maxThreadUops, uops);
    }
    if (stats.minThreadUops == ~0ull)
        stats.minThreadUops = 0;

    stats.totalLines = lines.size();
    for (const auto &[addr, info] : lines) {
        const int sharers = __builtin_popcountll(info.touchers);
        stats.maxSharers = std::max<std::uint64_t>(
            stats.maxSharers, static_cast<std::uint64_t>(sharers));
        if (sharers >= 2) {
            ++stats.sharedLines;
            if (info.writers != 0 &&
                (info.touchers & ~info.writers) != 0) {
                ++stats.rwSharedLines;
            } else if (__builtin_popcountll(info.writers) >= 2) {
                ++stats.rwSharedLines;
            }
        }
    }
    return stats;
}

void
printWorkloadStats(std::ostream &os, const std::string &name,
                   const WorkloadStats &stats)
{
    os << name << ":\n"
       << "  threads            : " << stats.threads << "\n"
       << "  micro-ops          : " << stats.totalUops() << " ("
       << stats.computeUops << " compute, " << stats.loads << " loads, "
       << stats.stores << " stores, " << stats.lockPairs
       << " lock pairs, " << stats.barrierArrivals << " barriers)\n"
       << "  memory fraction    : " << stats.memoryFraction() << "\n"
       << "  data footprint     : " << stats.totalLines
       << " lines (" << (stats.totalLines * 64) / 1024 << " KB)\n"
       << "  shared lines       : " << stats.sharedLines << " ("
       << stats.sharedFraction() * 100.0 << "%), r/w-shared "
       << stats.rwSharedLines << ", max sharers " << stats.maxSharers
       << "\n"
       << "  per-thread balance : max/min = " << stats.imbalance()
       << "\n";
    os.flush();
}

} // namespace slacksim
