/**
 * @file
 * Static workload-trace characterization: operation mix, memory
 * footprints, and inter-thread sharing degree. Used by the
 * workload_report example to print a Table-1-style description of
 * each benchmark and by tests to pin the kernels' structural
 * properties.
 */

#ifndef SLACKSIM_WORKLOAD_TRACE_STATS_HH
#define SLACKSIM_WORKLOAD_TRACE_STATS_HH

#include <cstdint>
#include <iosfwd>

#include "workload/trace.hh"

namespace slacksim {

/** Aggregate characterization of one workload. */
struct WorkloadStats
{
    std::uint32_t threads = 0;

    // Dynamic operation mix (micro-ops).
    std::uint64_t computeUops = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t lockPairs = 0;      //!< lock+unlock pairs
    std::uint64_t barrierArrivals = 0;

    // Line-granular memory footprints (64-byte lines).
    std::uint64_t totalLines = 0;     //!< distinct lines touched
    std::uint64_t sharedLines = 0;    //!< touched by >= 2 threads
    std::uint64_t rwSharedLines = 0;  //!< written by one thread and
                                      //!< touched by another
    std::uint64_t maxSharers = 0;     //!< most threads on one line

    // Imbalance: max/min per-thread micro-ops.
    std::uint64_t minThreadUops = 0;
    std::uint64_t maxThreadUops = 0;

    /** Total committed micro-ops. */
    std::uint64_t
    totalUops() const
    {
        return computeUops + loads + stores + 2 * lockPairs +
               barrierArrivals;
    }

    /** Fraction of memory operations among all micro-ops. */
    double
    memoryFraction() const
    {
        const auto total = totalUops();
        return total ? static_cast<double>(loads + stores) / total
                     : 0.0;
    }

    /** Fraction of touched lines shared between threads. */
    double
    sharedFraction() const
    {
        return totalLines
                   ? static_cast<double>(sharedLines) / totalLines
                   : 0.0;
    }

    /** max/min per-thread work ratio (1.0 = perfectly balanced). */
    double
    imbalance() const
    {
        return minThreadUops
                   ? static_cast<double>(maxThreadUops) / minThreadUops
                   : 0.0;
    }
};

/** Analyze @p workload (line granularity = 64 bytes). */
WorkloadStats analyzeWorkload(const Workload &workload);

/** Print a one-workload characterization block. */
void printWorkloadStats(std::ostream &os, const std::string &name,
                        const WorkloadStats &stats);

} // namespace slacksim

#endif // SLACKSIM_WORKLOAD_TRACE_STATS_HH
