/**
 * @file
 * Splash-2 FFT equivalent: six-step 1-D FFT of N complex points laid
 * out as a sqrt(N) x sqrt(N) matrix (transpose, row FFTs, twiddle
 * scaling, row FFTs, transpose back), with blocked transposes and a
 * barrier between phases. Addresses are data-independent, so the
 * generator replays the exact loop nest of the algorithm.
 */

#include "workload/kernels.hh"

#include <cstdint>

#include "mem/address_space.hh"
#include "util/logging.hh"

namespace slacksim {

namespace {

constexpr std::uint64_t elemBytes = 16; // complex double

struct FftContext
{
    std::uint64_t n1;          // matrix dimension (sqrt of N)
    Addr x;                    // data matrix
    Addr trans;                // transpose scratch matrix
    Addr umain;                // twiddle factor matrix
    Addr upriv;                // shared root-of-unity table for row FFTs
    std::uint32_t grain;

    Addr
    elem(Addr base, std::uint64_t r, std::uint64_t c) const
    {
        return base + (r * n1 + c) * elemBytes;
    }
};

/** Blocked transpose of rows [row0,row1) of src into dst. */
void
emitTranspose(TraceBuilder &b, const FftContext &ctx, Addr src, Addr dst,
              std::uint64_t row0, std::uint64_t row1)
{
    constexpr std::uint64_t bs = 8; // transpose patch size
    for (std::uint64_t rb = row0; rb < row1; rb += bs) {
        for (std::uint64_t cb = 0; cb < ctx.n1; cb += bs) {
            for (std::uint64_t r = rb; r < rb + bs && r < row1; ++r) {
                for (std::uint64_t c = cb;
                     c < cb + bs && c < ctx.n1; ++c) {
                    // dst[r][c] = src[c][r]: the load walks a column
                    // of src, i.e. rows owned by other threads.
                    b.load(ctx.elem(src, c, r), ctx.grain);
                    b.store(ctx.elem(dst, r, c));
                }
            }
        }
    }
}

/** Iterative radix-2 FFT over one row of `base`. */
void
emitRowFft(TraceBuilder &b, const FftContext &ctx, Addr base,
           std::uint64_t row)
{
    std::uint64_t log_n = 0;
    while ((1ull << log_n) < ctx.n1)
        ++log_n;

    for (std::uint64_t stage = 0; stage < log_n; ++stage) {
        const std::uint64_t half = 1ull << stage;
        const std::uint64_t step = half << 1;
        for (std::uint64_t group = 0; group < ctx.n1; group += step) {
            for (std::uint64_t k = 0; k < half; ++k) {
                const std::uint64_t i = group + k;
                const std::uint64_t j = i + half;
                // twiddle = upriv[k * (n1 / step)]
                const Addr tw =
                    ctx.upriv + (k * (ctx.n1 / step)) * elemBytes;
                b.load(tw, 0);
                b.load(ctx.elem(base, row, i), 0);
                b.load(ctx.elem(base, row, j), 0);
                b.compute(8 * ctx.grain, true);
                b.store(ctx.elem(base, row, i));
                b.store(ctx.elem(base, row, j));
            }
        }
    }
}

/** Per-element twiddle scaling of my rows. */
void
emitTwiddle(TraceBuilder &b, const FftContext &ctx, Addr base,
            std::uint64_t row0, std::uint64_t row1)
{
    for (std::uint64_t r = row0; r < row1; ++r) {
        for (std::uint64_t c = 0; c < ctx.n1; ++c) {
            b.load(ctx.elem(ctx.umain, r, c), 0);
            b.load(ctx.elem(base, r, c), 0);
            b.compute(6 * ctx.grain, true);
            b.store(ctx.elem(base, r, c));
        }
    }
}

} // namespace

Workload
makeFft(const WorkloadParams &params)
{
    const unsigned T = params.numThreads;
    const std::uint64_t n = params.fftPoints ? params.fftPoints : 16384;

    // N must be a power of four so the matrix is square with a
    // power-of-two side, like the Splash-2 program requires.
    std::uint64_t n1 = 1;
    while (n1 * n1 < n)
        n1 <<= 1;
    if (n1 * n1 != n)
        SLACKSIM_FATAL("fft: point count ", n, " is not a power of 4");
    if (n1 % T != 0)
        SLACKSIM_FATAL("fft: sqrt(N)=", n1, " not divisible by ", T,
                       " threads");

    AddressSpace space(T);
    FftContext ctx;
    ctx.n1 = n1;
    ctx.grain = params.computeGrain;
    ctx.x = space.allocShared(n * elemBytes, 64);
    ctx.trans = space.allocShared(n * elemBytes, 64);
    ctx.umain = space.allocShared(n * elemBytes, 64);
    ctx.upriv = space.allocShared(n1 * elemBytes, 64);

    Workload w;
    w.name = "fft";
    w.numLocks = 0;
    w.numBarriers = 1;
    w.threads.resize(T);
    w.sharedFootprintBytes = (3 * n + n1) * elemBytes;

    const std::uint64_t rows_per = n1 / T;
    for (unsigned t = 0; t < T; ++t) {
        TraceBuilder b(w.threads[t]);
        w.threads[t].codeFootprint = 12 * 1024;
        const std::uint64_t row0 = t * rows_per;
        const std::uint64_t row1 = row0 + rows_per;

        b.barrier(0);
        emitTranspose(b, ctx, ctx.x, ctx.trans, row0, row1);
        b.barrier(0);
        for (std::uint64_t r = row0; r < row1; ++r)
            emitRowFft(b, ctx, ctx.trans, r);
        b.barrier(0);
        emitTwiddle(b, ctx, ctx.trans, row0, row1);
        b.barrier(0);
        for (std::uint64_t r = row0; r < row1; ++r)
            emitRowFft(b, ctx, ctx.trans, r);
        b.barrier(0);
        emitTranspose(b, ctx, ctx.trans, ctx.x, row0, row1);
        b.barrier(0);
        b.end();
    }
    return w;
}

} // namespace slacksim
