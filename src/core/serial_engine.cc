/**
 * @file
 * SerialEngine implementation.
 */

#include "core/serial_engine.hh"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "fault/fault_plan.hh"
#include "obs/obs_session.hh"
#include "obs/profiler.hh"
#include "obs/tracer.hh"
#include "util/cancel.hh"
#include "util/logging.hh"

namespace slacksim {

SerialEngine::SerialEngine(SimSystem &sys)
    : sys_(sys),
      engine_(sys.config().engine),
      pacer_(engine_, sys.numCores(), &host_),
      mgr_(sys, engine_, &host_),
      ckpt_(sys, pacer_, mgr_, engine_, &host_),
      maxLocal_(sys.numCores(), 0)
{
}

void
SerialEngine::updatePacing(bool monotone)
{
    const Tick global = sys_.globalTime();
    localsScratch_.resize(sys_.numCores());
    for (CoreId c = 0; c < sys_.numCores(); ++c)
        localsScratch_[c] = sys_.core(c).localTime();
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        Tick target = pacer_.maxLocalForCore(c, global, localsScratch_);
        if (ckpt_.enabled())
            target = std::min(target, ckpt_.nextCheckpointAt() - 1);
        maxLocal_[c] =
            monotone ? std::max(maxLocal_[c], target) : target;
    }
}

bool
SerialEngine::quiescedAtBoundary() const
{
    const Tick boundary = ckpt_.nextCheckpointAt();
    bool any_unfinished = false;
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        const auto &core = sys_.core(c);
        if (core.finished())
            continue;
        any_unfinished = true;
        if (core.localTime() != boundary)
            return false;
    }
    return any_unfinished;
}

RunResult
SerialEngine::run()
{
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();

    setLogThreadContext("manager");
    obs::ObsSession session(engine_.obs, sys_, pacer_, mgr_, ckpt_,
                            host_);
    session.begin("manager");
    recovery_.setDecisionLog(session.decisionLog());
    if (obs::StallWatchdog *wd = session.watchdog()) {
        // Single host thread: every simulated core is informational
        // only (the engine's own livelock panics cover real stalls,
        // and a paused core clock is normal round-robin scheduling).
        for (CoreId c = 0; c < sys_.numCores(); ++c) {
            wd->addWorker("core " + std::to_string(c),
                          &sys_.core(c).localClock(), nullptr,
                          /*stall_eligible=*/false);
        }
        wd->setProgressProbe([this] {
            return "global=" + std::to_string(sys_.globalTime()) +
                   " committed=" +
                   std::to_string(sys_.totalCommittedUops());
        });
        wd->start();
    }

    mgr_.setSorted(pacer_.sortedService());
    if (ckpt_.enabled()) {
        if (ckpt_.takeCheckpoint(0) ==
            Checkpointer::Event::ResumedFromRollback) {
            mgr_.setSorted(true);
        }
    }

    std::uint64_t idle_iters = 0;
    std::uint64_t last_committed = 0;
    Tick committed_stale_since = 0;
    bool warmup_pending = engine_.warmupUops > 0;
    bool cancelled = false;
    std::uint64_t round = 0;
    for (;;) {
        // Single host thread, never parked: polling once per round is
        // enough for prompt cooperative cancellation.
        if (engine_.cancel && engine_.cancel->cancelled()) {
            cancelled = true;
            break;
        }
        updatePacing(true);

        bool progress = false;
        // Rotate the per-round service order: a fixed order would
        // batch every core's requests at the same timestamps each
        // round, a resonance a real multi-threaded host does not have.
        ++round;
        for (CoreId i = 0; i < sys_.numCores(); ++i) {
            const CoreId c = static_cast<CoreId>(
                (i + round) % sys_.numCores());
            CoreComplex &cc = sys_.core(c);
            if (cc.finished()) {
                mgr_.pumpCore(c);
                continue;
            }
            if (auto *plan = fault::FaultPlan::active()) {
                if (const std::uint64_t ms =
                        plan->fireWorkerStall(c, cc.localTime())) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(ms));
                    plan->markLastHandled("serial-engine");
                }
            }
            Tick advanced = 0;
            const Tick local0 = cc.localTime();
            const std::uint64_t burst_wall = obs::traceWallNs();
            {
            obs::PhaseScope simulate(obs::Phase::Simulate);
            while (cc.localTime() <= maxLocal_[c] &&
                   advanced < engine_.burstCycles) {
                const Tick before = cc.localTime();
                const auto outcome = cc.cycle(
                    maxLocal_[c], engine_.burstCycles -
                                      static_cast<std::uint32_t>(
                                          advanced));
                if (outcome != CoreComplex::CycleOutcome::Progress)
                    break; // backpressure / inbound wait: pump below
                advanced += cc.localTime() - before;
                if (cc.finished())
                    break;
            }
            }
            progress |= advanced > 0;
            if (advanced > 0) {
                // All cores share the one host thread's track; the
                // core id rides in the span's arg.
                obs::traceSpanAt(burst_wall, obs::TraceCategory::Core,
                                 "core-run", local0, cc.localTime(),
                                 static_cast<std::int64_t>(c));
            }
            // Arrival order in the serial engine is the deterministic
            // round-robin order of these pumps.
            {
                obs::PhaseScope push(obs::Phase::QueuePush);
                mgr_.pumpCore(c);
                mgr_.flushOverflow();
            }
        }

        const Tick global = sys_.globalTime();
        if (auto *plan = fault::FaultPlan::active()) {
            // Serve-site faults first: job-crash never returns, and a
            // job-hang wedge should not be masked by a backpressure
            // burst scheduled for the same window.
            plan->fireServeFault(global);
            if (const std::uint64_t rounds =
                    plan->fireBackpressure(global)) {
                backpressureRounds_ += rounds;
            }
        }
        if (backpressureRounds_ > 0) {
            // Injected backpressure burst: the manager withholds
            // service, so cores stall against unanswered requests
            // until the burst drains. Bounded well under the livelock
            // panic threshold by FaultPlan grammar limits.
            if (--backpressureRounds_ == 0) {
                if (auto *plan = fault::FaultPlan::active())
                    plan->markLastHandled("manager-resumed");
            }
        } else {
            obs::PhaseScope drain(obs::Phase::Drain);
            const std::uint64_t service_wall = obs::traceWallNs();
            const std::size_t serviced = mgr_.serviceSorted(global);
            mgr_.flushOverflow();
            if (serviced > 0) {
                obs::traceSpanAt(service_wall,
                                 obs::TraceCategory::Manager,
                                 "manager-service", global, global,
                                 static_cast<std::int64_t>(serviced));
            }
        }
        pacer_.observe(global, sys_.violations());
        recovery_.observe(global, sys_.violations());
        session.maybeSample(global);
        {
            Tick max_unfinished = global;
            for (CoreId c = 0; c < sys_.numCores(); ++c) {
                if (!sys_.core(c).finished()) {
                    max_unfinished = std::max(
                        max_unfinished, sys_.core(c).localTime());
                }
            }
            host_.maxObservedSlack = std::max(host_.maxObservedSlack,
                                              max_unfinished - global);
        }

        if (ckpt_.enabled()) {
            if (mgr_.rollbackRequested()) {
                const auto rb = ckpt_.rollback(global);
                if (rb.status ==
                    Checkpointer::RollbackResult::Status::Demoted) {
                    // No valid checkpoint generation: keep running
                    // forward without speculation instead of dying.
                    recovery_.noteIntegrityDemotion(global);
                    updatePacing(true);
                    session.collectTrace();
                    continue;
                }
                recovery_.noteRollback(global);
                mgr_.setSorted(true); // replay is cycle-by-cycle
                updatePacing(false);  // pacing reset after restore
                session.forceSample(rb.resumedAt);
                session.collectTrace();
                continue;
            }
            if (quiescedAtBoundary()) {
                const bool was_replay = pacer_.replayMode();
                const Tick boundary = ckpt_.nextCheckpointAt();
                const auto event = ckpt_.takeCheckpoint(boundary);
                if (event ==
                    Checkpointer::Event::ResumedFromRollback) {
                    // Fork-technology rollback: this process just
                    // woke up as the checkpoint. Replay follows.
                    recovery_.noteRollback(boundary);
                    mgr_.setSorted(true);
                    updatePacing(false);
                    session.forceSample(sys_.globalTime());
                    session.collectTrace();
                    continue;
                }
                if (was_replay && !pacer_.sortedService()) {
                    // Leaving sorted replay: release anything the
                    // sorted heap still holds, then switch to
                    // arrival-order service.
                    mgr_.serviceSorted(maxTick);
                    mgr_.setSorted(false);
                    mgr_.flushOverflow();
                }
                updatePacing(true);
                session.forceSample(boundary);
                session.collectTrace();
                continue;
            }
        }

        if (warmup_pending &&
            sys_.totalCommittedUops() >= engine_.warmupUops) {
            // Paper methodology: discard everything measured during
            // initialization; the budget counts post-warmup work.
            sys_.resetSimStats();
            last_committed = 0;
            warmup_pending = false;
        }
        if (engine_.maxCommittedUops && !warmup_pending &&
            sys_.totalCommittedUops() >= engine_.maxCommittedUops) {
            break;
        }
        if (sys_.allFinished()) {
            mgr_.pumpAll();
            mgr_.serviceSorted(maxTick);
            mgr_.flushOverflow();
            break;
        }
        if (progress) {
            idle_iters = 0;
        } else if (++idle_iters > 100000) {
            SLACKSIM_PANIC("serial engine livelock: global=", global,
                           " scheme=", schemeName(engine_.scheme));
        }
        // A simulated deadlock shows up as clocks ticking forever with
        // no instructions committing: catch it instead of spinning.
        const std::uint64_t committed = sys_.totalCommittedUops();
        if (committed != last_committed) {
            last_committed = committed;
            committed_stale_since = global;
        } else if (global > committed_stale_since + 2000000) {
            std::string dump;
            for (CoreId c = 0; c < sys_.numCores(); ++c) {
                auto &cc = sys_.core(c);
                dump += " core" + std::to_string(c) + "{t=" +
                        std::to_string(cc.localTime()) + ",uops=" +
                        std::to_string(cc.stats().committedInstrs) +
                        ",inq=" + std::to_string(cc.inQ().size()) +
                        ",outq=" + std::to_string(cc.outQ().size()) +
                        ",l1iMiss=" +
                        std::to_string(cc.stats().l1iMisses) + "}";
            }
            SLACKSIM_PANIC("no commit progress for 2M cycles: global=",
                           global, " committed=", committed,
                           " scheme=", schemeName(engine_.scheme),
                           " busReq=", sys_.uncoreStats().busRequests,
                           dump);
        }
    }

    ckpt_.finalizeHostStats();
    session.finish(sys_.globalTime());
    clearLogThreadContext();
    const double wall =
        std::chrono::duration<double>(clock::now() - t0).count();
    RunResult r = collectResult(wall);
    r.cancelled = cancelled;
    r.forensics = session.takeForensics();
    return r;
}

RunResult
SerialEngine::collectResult(double wall_seconds) const
{
    RunResult r;
    r.workloadName = sys_.workload().name;
    r.scheme = engine_.scheme;
    r.parallelHost = false;
    r.execCycles = sys_.maxLocalTime();
    r.globalCycles = sys_.globalTime();
    r.committedUops = sys_.totalCommittedUops();
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        r.perCore.push_back(sys_.core(c).stats());
        r.coreTotal.add(sys_.core(c).stats());
    }
    r.uncore = sys_.uncoreStats();
    r.busQueueHistogram = sys_.uncore().busQueueHistogram();
    r.violations = sys_.violations();
    r.host = host_;
    r.host.wallSeconds = wall_seconds;
    r.intervals = mgr_.intervals();
    r.finalSlackBound = pacer_.currentBound();
    r.degradationLevel = recovery_.levelName();
    r.demotions = recovery_.demotions();
    r.repromotions = recovery_.repromotions();
    return r;
}

} // namespace slacksim
