/**
 * @file
 * ManagerLogic implementation.
 */

#include "core/manager_logic.hh"

#include "obs/profiler.hh"
#include "util/logging.hh"

namespace slacksim {

ManagerLogic::ManagerLogic(SimSystem &sys, const EngineConfig &engine,
                           HostStats *host)
    : sys_(sys),
      engine_(engine),
      host_(host),
      staging_(sys.numCores()),
      merge_(sys.numCores(), HeadLess{&staging_}),
      delivered_(sys.numCores()),
      overflow_(sys.numCores())
{
    SLACKSIM_ASSERT(host_ != nullptr, "ManagerLogic needs host stats");
    outboundScratch_.reserve(64);
}

std::size_t
ManagerLogic::pumpCore(CoreId c)
{
    auto &q = sys_.core(c).outQ();
    if (sorted_) {
        // The drain callback only touches the staging runs and the
        // merge tree, never the OutQ being drained.
        return q.consumeAll([this](const BusMsg &msg) { stash(msg); });
    }
    // serviceOne() delivers responses into InQs (possibly overflowing
    // to the side deques), never into any OutQ, so draining in one
    // batch is safe here too.
    return q.consumeAll([this](const BusMsg &msg) { serviceOne(msg); });
}

std::size_t
ManagerLogic::pumpAll()
{
    std::size_t pulled = 0;
    for (CoreId c = 0; c < sys_.numCores(); ++c)
        pulled += pumpCore(c);
    return pulled;
}

void
ManagerLogic::stash(const BusMsg &msg)
{
    SLACKSIM_ASSERT(msg.src < staging_.size(), "stash: bad source");
    auto &run = staging_[msg.src];
    // The whole merge rests on per-source runs being sorted: cores
    // stamp ts from their nondecreasing local clock, so arrival order
    // within one source *is* (ts, seq) order.
    SLACKSIM_ASSERT(run.empty() || run.back().ts <= msg.ts,
                    "per-source timestamp order violated");
    const bool wasEmpty = run.empty();
    run.push_back(msg);
    ++stagedCount_;
    // A push onto a non-empty run leaves its head — and therefore
    // every tournament match — unchanged: O(1).
    if (wasEmpty)
        merge_.update(msg.src);
}

std::size_t
ManagerLogic::serviceSorted(Tick safe_time)
{
    // Uncore event simulation: nested under the engine's drain scope,
    // so the flamegraph separates merge/service work ("drain;
    // simulate") from raw queue pumping. Per call, not per event —
    // one TSC pair amortized over the whole safe-time batch.
    obs::PhaseScope simulate(obs::Phase::Simulate);
    std::size_t serviced = 0;
    while (stagedCount_ != 0) {
        const std::uint32_t src = merge_.winner();
        auto &run = staging_[src];
        if (run.front().ts >= safe_time)
            break;
        const BusMsg msg = run.front();
        run.pop_front();
        --stagedCount_;
        merge_.update(src);
        serviceOne(msg);
        ++serviced;
    }
    return serviced;
}

void
ManagerLogic::serviceOne(const BusMsg &msg)
{
    outboundScratch_.clear();
    const ServiceResult r = sys_.uncore().service(msg, outboundScratch_);
    if (r.any() && sys_.uncore().violationCounting()) {
        // Interval records and rollback triggers follow the *tracked*
        // violation classes (the paper: "users may want to overlook
        // some types of violations").
        const bool tracked =
            (r.busViolation && engine_.checkpoint.rollbackOnBus) ||
            (r.mapViolation && engine_.checkpoint.rollbackOnMap);
        if (tracked && intervalOpen_) {
            ++current_.violations;
            if (current_.firstViolationOffset == maxTick) {
                current_.firstViolationOffset =
                    msg.ts >= current_.start ? msg.ts - current_.start
                                             : 0;
            }
        }
        if (tracked && rollbackArmed_)
            rollbackRequested_ = true;
    }
    for (const Outbound &o : outboundScratch_)
        deliver(o);
}

void
ManagerLogic::markDelivered(CoreId c)
{
    delivered_.set(c);
}

void
ManagerLogic::deliver(const Outbound &o)
{
    SLACKSIM_ASSERT(o.dst < sys_.numCores(), "bad delivery target");
    auto &ov = overflow_[o.dst];
    if (!ov.empty() || !sys_.core(o.dst).inQ().push(o.msg))
        ov.push_back(o.msg);
    else
        markDelivered(o.dst);
}

void
ManagerLogic::flushOverflow()
{
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        auto &ov = overflow_[c];
        auto &q = sys_.core(c).inQ();
        while (!ov.empty() && q.push(ov.front())) {
            ov.pop_front();
            markDelivered(c);
        }
    }
}

bool
ManagerLogic::drained() const
{
    if (stagedCount_ != 0)
        return false;
    for (const auto &ov : overflow_)
        if (!ov.empty())
            return false;
    return true;
}

void
ManagerLogic::beginInterval(Tick start)
{
    SLACKSIM_ASSERT(!intervalOpen_, "interval already open");
    current_ = IntervalRecord{};
    current_.start = start;
    intervalOpen_ = true;
}

void
ManagerLogic::closeInterval()
{
    if (!intervalOpen_)
        return;
    intervals_.push_back(current_);
    intervalOpen_ = false;
}

void
ManagerLogic::save(SnapshotWriter &writer) const
{
    writer.putMarker(0x3147);
    writer.put<std::uint64_t>(staging_.size());
    for (const auto &run : staging_) {
        writer.put<std::uint64_t>(run.size());
        for (const auto &msg : run)
            writer.put(msg);
    }
    writer.put<std::uint64_t>(overflow_.size());
    for (const auto &ov : overflow_) {
        writer.put<std::uint64_t>(ov.size());
        for (const auto &msg : ov)
            writer.put(msg);
    }
}

void
ManagerLogic::restore(SnapshotReader &reader)
{
    reader.checkMarker(0x3147);
    const auto runs = reader.get<std::uint64_t>();
    SLACKSIM_ASSERT(runs == staging_.size(),
                    "manager snapshot geometry mismatch");
    stagedCount_ = 0;
    for (auto &run : staging_) {
        run.clear();
        const auto n = reader.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < n; ++i)
            run.push_back(reader.get<BusMsg>());
        stagedCount_ += n;
    }
    merge_.rebuild();
    const auto cores = reader.get<std::uint64_t>();
    SLACKSIM_ASSERT(cores == overflow_.size(),
                    "manager snapshot geometry mismatch");
    for (auto &ov : overflow_) {
        ov.clear();
        const auto n = reader.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < n; ++i)
            ov.push_back(reader.get<BusMsg>());
    }
}

} // namespace slacksim
