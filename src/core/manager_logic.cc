/**
 * @file
 * ManagerLogic implementation.
 */

#include "core/manager_logic.hh"

#include <algorithm>

#include "obs/profiler.hh"
#include "util/logging.hh"

namespace slacksim {

ManagerLogic::ManagerLogic(SimSystem &sys, const EngineConfig &engine,
                           HostStats *host)
    : sys_(sys),
      engine_(engine),
      host_(host),
      banks_(std::max<std::uint32_t>(1, engine.managerBanks)),
      staging_(static_cast<std::size_t>(banks_) * sys.numCores()),
      bankCount_(banks_, 0),
      delivered_(sys.numCores()),
      overflow_(sys.numCores())
{
    SLACKSIM_ASSERT(host_ != nullptr, "ManagerLogic needs host stats");
    merge_.reserve(banks_);
    for (std::uint32_t b = 0; b < banks_; ++b) {
        merge_.emplace_back(sys_.numCores(),
                            HeadLess{&staging_, b * sys_.numCores()});
    }
    outboundScratch_.reserve(64);
    pumpScratch_.reserve(128);
}

std::size_t
ManagerLogic::pumpCore(CoreId c)
{
    auto &q = sys_.core(c).outQ();
    if (sorted_) {
        // Epoch-batched staging: pop whole chunks off the SPSC queue
        // and append them to the per-(bank, src) runs, deferring each
        // tree replay to the point a run actually turns non-empty —
        // appends onto a non-empty run leave every tournament match
        // unchanged, so a chunk costs O(n) appends plus one O(log C)
        // path per run the chunk revived.
        std::size_t pulled = 0;
        for (;;) {
            pumpScratch_.resize(128);
            const std::size_t n =
                q.popN(pumpScratch_.data(), pumpScratch_.size());
            if (n == 0)
                break;
            pulled += n;
            for (std::size_t i = 0; i < n; ++i)
                stash(pumpScratch_[i]);
            if (n < pumpScratch_.size())
                break;
        }
        return pulled;
    }
    // serviceOne() delivers responses into InQs (possibly overflowing
    // to the side deques), never into any OutQ, so draining in one
    // batch is safe here too.
    return q.consumeAll([this](const BusMsg &msg) { serviceOne(msg); });
}

std::size_t
ManagerLogic::pumpAll()
{
    std::size_t pulled = 0;
    for (CoreId c = 0; c < sys_.numCores(); ++c)
        pulled += pumpCore(c);
    return pulled;
}

void
ManagerLogic::stash(const BusMsg &msg)
{
    SLACKSIM_ASSERT(msg.src < sys_.numCores(), "stash: bad source");
    const std::uint32_t b = bankOf(msg.addr);
    auto &run = staging_[static_cast<std::size_t>(b) *
                             sys_.numCores() +
                         msg.src];
    // The whole merge rests on per-source runs being sorted: cores
    // stamp ts from their nondecreasing local clock, so arrival order
    // within one source *is* (ts, seq) order — and any per-bank
    // subsequence of a monotone stream is monotone.
    SLACKSIM_ASSERT(run.empty() || run.back().ts <= msg.ts,
                    "per-source timestamp order violated");
    const bool wasEmpty = run.empty();
    run.push_back(msg);
    ++stagedCount_;
    ++bankCount_[b];
    // A push onto a non-empty run leaves its head — and therefore
    // every tournament match — unchanged: O(1).
    if (wasEmpty)
        merge_[b].update(msg.src);
}

std::size_t
ManagerLogic::serviceSorted(Tick safe_time)
{
    // Uncore event simulation: nested under the engine's drain scope,
    // so the flamegraph separates merge/service work ("drain;
    // simulate") from raw queue pumping. Per call, not per event —
    // one TSC pair amortized over the whole safe-time batch.
    obs::PhaseScope simulate(obs::Phase::Simulate);
    std::size_t serviced = 0;
    while (stagedCount_ != 0) {
        // Top-level tournament over the bank heads: each bank's tree
        // yields its least (ts, src) head, and across banks the full
        // (ts, src, seq) key decides — two banks can hold the same
        // source at the same timestamp, where seq (the per-source
        // emission counter) restores the original arrival order.
        std::uint32_t win_bank = banks_;
        const BusMsg *win = nullptr;
        for (std::uint32_t b = 0; b < banks_; ++b) {
            if (bankCount_[b] == 0)
                continue;
            const auto &head =
                staging_[static_cast<std::size_t>(b) *
                             sys_.numCores() +
                         merge_[b].winner()]
                    .front();
            if (!win || head.ts < win->ts ||
                (head.ts == win->ts &&
                 (head.src < win->src ||
                  (head.src == win->src && head.seq < win->seq)))) {
                win = &head;
                win_bank = b;
            }
        }
        if (win->ts >= safe_time)
            break;
        const BusMsg msg = *win;
        auto &run = staging_[static_cast<std::size_t>(win_bank) *
                                 sys_.numCores() +
                             msg.src];
        run.pop_front();
        --stagedCount_;
        --bankCount_[win_bank];
        merge_[win_bank].update(msg.src);
        serviceOne(msg);
        ++serviced;
    }
    return serviced;
}

void
ManagerLogic::serviceOne(const BusMsg &msg)
{
    outboundScratch_.clear();
    const ServiceResult r = sys_.uncore().service(msg, outboundScratch_);
    if (r.any() && sys_.uncore().violationCounting()) {
        // Interval records and rollback triggers follow the *tracked*
        // violation classes (the paper: "users may want to overlook
        // some types of violations").
        const bool tracked =
            (r.busViolation && engine_.checkpoint.rollbackOnBus) ||
            (r.mapViolation && engine_.checkpoint.rollbackOnMap);
        if (tracked && intervalOpen_) {
            ++current_.violations;
            if (current_.firstViolationOffset == maxTick) {
                current_.firstViolationOffset =
                    msg.ts >= current_.start ? msg.ts - current_.start
                                             : 0;
            }
        }
        if (tracked && rollbackArmed_)
            rollbackRequested_ = true;
    }
    for (const Outbound &o : outboundScratch_)
        deliver(o);
}

void
ManagerLogic::markDelivered(CoreId c)
{
    delivered_.set(c);
}

void
ManagerLogic::deliver(const Outbound &o)
{
    SLACKSIM_ASSERT(o.dst < sys_.numCores(), "bad delivery target");
    auto &ov = overflow_[o.dst];
    if (!ov.empty() || !sys_.core(o.dst).inQ().push(o.msg))
        ov.push_back(o.msg);
    else
        markDelivered(o.dst);
}

void
ManagerLogic::flushOverflow()
{
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        auto &ov = overflow_[c];
        auto &q = sys_.core(c).inQ();
        while (!ov.empty() && q.push(ov.front())) {
            ov.pop_front();
            markDelivered(c);
        }
    }
}

bool
ManagerLogic::drained() const
{
    if (stagedCount_ != 0)
        return false;
    for (const auto &ov : overflow_)
        if (!ov.empty())
            return false;
    return true;
}

void
ManagerLogic::beginInterval(Tick start)
{
    SLACKSIM_ASSERT(!intervalOpen_, "interval already open");
    current_ = IntervalRecord{};
    current_.start = start;
    intervalOpen_ = true;
}

void
ManagerLogic::closeInterval()
{
    if (!intervalOpen_)
        return;
    intervals_.push_back(current_);
    intervalOpen_ = false;
}

void
ManagerLogic::save(SnapshotWriter &writer) const
{
    writer.putMarker(0x3147);
    // Serialize per *source*, with each source's banks merged back
    // into arrival (seq) order: the snapshot layout — and therefore
    // every checkpoint byte — is identical for every bank count.
    writer.put<std::uint64_t>(sys_.numCores());
    std::vector<std::size_t> cursor(banks_);
    for (CoreId src = 0; src < sys_.numCores(); ++src) {
        std::uint64_t total = 0;
        for (std::uint32_t b = 0; b < banks_; ++b) {
            cursor[b] = 0;
            total += staging_[static_cast<std::size_t>(b) *
                                  sys_.numCores() +
                              src]
                         .size();
        }
        writer.put<std::uint64_t>(total);
        for (std::uint64_t i = 0; i < total; ++i) {
            // seq is the per-source emission counter: unique within
            // a source, so the minimum over bank heads reconstructs
            // the exact arrival order the banks partitioned.
            const BusMsg *next = nullptr;
            std::uint32_t next_bank = 0;
            for (std::uint32_t b = 0; b < banks_; ++b) {
                const auto &run =
                    staging_[static_cast<std::size_t>(b) *
                                 sys_.numCores() +
                             src];
                if (cursor[b] >= run.size())
                    continue;
                const BusMsg &head = run[cursor[b]];
                if (!next || head.seq < next->seq) {
                    next = &head;
                    next_bank = b;
                }
            }
            writer.put(*next);
            ++cursor[next_bank];
        }
    }
    writer.put<std::uint64_t>(overflow_.size());
    for (const auto &ov : overflow_) {
        writer.put<std::uint64_t>(ov.size());
        for (const auto &msg : ov)
            writer.put(msg);
    }
}

void
ManagerLogic::restore(SnapshotReader &reader)
{
    reader.checkMarker(0x3147);
    const auto runs = reader.get<std::uint64_t>();
    SLACKSIM_ASSERT(runs == sys_.numCores(),
                    "manager snapshot geometry mismatch");
    stagedCount_ = 0;
    for (auto &run : staging_)
        run.clear();
    std::fill(bankCount_.begin(), bankCount_.end(), 0);
    for (CoreId src = 0; src < sys_.numCores(); ++src) {
        const auto n = reader.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < n; ++i) {
            const BusMsg msg = reader.get<BusMsg>();
            const std::uint32_t b = bankOf(msg.addr);
            staging_[static_cast<std::size_t>(b) * sys_.numCores() +
                     src]
                .push_back(msg);
            ++stagedCount_;
            ++bankCount_[b];
        }
    }
    for (auto &tree : merge_)
        tree.rebuild();
    const auto cores = reader.get<std::uint64_t>();
    SLACKSIM_ASSERT(cores == overflow_.size(),
                    "manager snapshot geometry mismatch");
    for (auto &ov : overflow_) {
        ov.clear();
        const auto n = reader.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < n; ++i)
            ov.push_back(reader.get<BusMsg>());
    }
}

} // namespace slacksim
