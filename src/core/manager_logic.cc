/**
 * @file
 * ManagerLogic implementation.
 */

#include "core/manager_logic.hh"

#include <algorithm>

#include "util/logging.hh"

namespace slacksim {

ManagerLogic::ManagerLogic(SimSystem &sys, const EngineConfig &engine,
                           HostStats *host)
    : sys_(sys),
      engine_(engine),
      host_(host),
      overflow_(sys.numCores())
{
    SLACKSIM_ASSERT(host_ != nullptr, "ManagerLogic needs host stats");
    pending_.reserve(1024);
    outboundScratch_.reserve(64);
}

std::size_t
ManagerLogic::pumpCore(CoreId c)
{
    std::size_t pulled = 0;
    BusMsg msg;
    auto &q = sys_.core(c).outQ();
    while (q.pop(msg)) {
        ++pulled;
        if (sorted_) {
            pending_.push_back(msg);
            std::push_heap(pending_.begin(), pending_.end(),
                           PendingOrder{});
        } else {
            serviceOne(msg);
        }
    }
    return pulled;
}

std::size_t
ManagerLogic::pumpAll()
{
    std::size_t pulled = 0;
    for (CoreId c = 0; c < sys_.numCores(); ++c)
        pulled += pumpCore(c);
    return pulled;
}

std::size_t
ManagerLogic::serviceSorted(Tick safe_time)
{
    std::size_t serviced = 0;
    while (!pending_.empty() && pending_.front().ts < safe_time) {
        std::pop_heap(pending_.begin(), pending_.end(), PendingOrder{});
        const BusMsg msg = pending_.back();
        pending_.pop_back();
        serviceOne(msg);
        ++serviced;
    }
    return serviced;
}

void
ManagerLogic::serviceOne(const BusMsg &msg)
{
    outboundScratch_.clear();
    const ServiceResult r = sys_.uncore().service(msg, outboundScratch_);
    if (r.any() && sys_.uncore().violationCounting()) {
        // Interval records and rollback triggers follow the *tracked*
        // violation classes (the paper: "users may want to overlook
        // some types of violations").
        const bool tracked =
            (r.busViolation && engine_.checkpoint.rollbackOnBus) ||
            (r.mapViolation && engine_.checkpoint.rollbackOnMap);
        if (tracked && intervalOpen_) {
            ++current_.violations;
            if (current_.firstViolationOffset == maxTick) {
                current_.firstViolationOffset =
                    msg.ts >= current_.start ? msg.ts - current_.start
                                             : 0;
            }
        }
        if (tracked && rollbackArmed_)
            rollbackRequested_ = true;
    }
    for (const Outbound &o : outboundScratch_)
        deliver(o);
}

void
ManagerLogic::deliver(const Outbound &o)
{
    SLACKSIM_ASSERT(o.dst < sys_.numCores(), "bad delivery target");
    auto &ov = overflow_[o.dst];
    if (!ov.empty() || !sys_.core(o.dst).inQ().push(o.msg))
        ov.push_back(o.msg);
    else
        deliveredMask_ |= 1ull << o.dst;
}

void
ManagerLogic::flushOverflow()
{
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        auto &ov = overflow_[c];
        auto &q = sys_.core(c).inQ();
        while (!ov.empty() && q.push(ov.front())) {
            ov.pop_front();
            deliveredMask_ |= 1ull << c;
        }
    }
}

bool
ManagerLogic::drained() const
{
    if (!pending_.empty())
        return false;
    for (const auto &ov : overflow_)
        if (!ov.empty())
            return false;
    return true;
}

void
ManagerLogic::beginInterval(Tick start)
{
    SLACKSIM_ASSERT(!intervalOpen_, "interval already open");
    current_ = IntervalRecord{};
    current_.start = start;
    intervalOpen_ = true;
}

void
ManagerLogic::closeInterval()
{
    if (!intervalOpen_)
        return;
    intervals_.push_back(current_);
    intervalOpen_ = false;
}

void
ManagerLogic::save(SnapshotWriter &writer) const
{
    writer.putMarker(0x3147);
    writer.putVector(pending_);
    writer.put<std::uint64_t>(overflow_.size());
    for (const auto &ov : overflow_) {
        writer.put<std::uint64_t>(ov.size());
        for (const auto &msg : ov)
            writer.put(msg);
    }
}

void
ManagerLogic::restore(SnapshotReader &reader)
{
    reader.checkMarker(0x3147);
    pending_ = reader.getVector<BusMsg>();
    const auto cores = reader.get<std::uint64_t>();
    SLACKSIM_ASSERT(cores == overflow_.size(),
                    "manager snapshot geometry mismatch");
    for (auto &ov : overflow_) {
        ov.clear();
        const auto n = reader.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < n; ++i)
            ov.push_back(reader.get<BusMsg>());
    }
}

} // namespace slacksim
