/**
 * @file
 * The paper's analytical model for speculative slack simulation time
 * (Section 5.2):
 *
 *     Ts = (1 - F) * Tcpt  +  F * Dr * Tcpt / I  +  F * Tcc
 *
 * where Tcpt is the time of the slack simulation with checkpointing,
 * Tcc the cycle-by-cycle time, F the fraction of checkpoint intervals
 * with at least one violation, Dr the average rollback distance and I
 * the checkpoint interval length (both in simulated cycles).
 */

#ifndef SLACKSIM_CORE_SPEC_MODEL_HH
#define SLACKSIM_CORE_SPEC_MODEL_HH

#include "util/types.hh"

namespace slacksim {

/** Inputs of the speculative-time model. */
struct SpecModelInputs
{
    double tCc = 0.0;   //!< cycle-by-cycle simulation seconds
    double tCpt = 0.0;  //!< checkpointed slack simulation seconds
    double fraction = 0.0; //!< F: intervals with >= 1 violation
    double rollbackDistance = 0.0; //!< Dr, simulated cycles
    double interval = 0.0;         //!< I, simulated cycles
};

/** @return estimated speculative simulation seconds Ts. */
double speculativeTimeEstimate(const SpecModelInputs &in);

/**
 * Expected simulation seconds when the degradation ladder demotes a
 * fraction of the run out of speculation: the demoted portion runs as
 * plain checkpointed slack simulation (Tcpt) while the rest keeps the
 * speculative estimate Ts. Linear interpolation between Ts (nothing
 * demoted) and Tcpt (fully demoted); since Ts carries the rollback
 * and replay overhead on top of Tcpt, demotion hands back host time
 * in exchange for the accuracy speculation was buying.
 */
double degradedTimeEstimate(const SpecModelInputs &in,
                            double demoted_fraction);

} // namespace slacksim

#endif // SLACKSIM_CORE_SPEC_MODEL_HH
