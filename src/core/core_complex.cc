/**
 * @file
 * CoreComplex implementation.
 */

#include "core/core_complex.hh"

#include <algorithm>

#include "util/logging.hh"

namespace slacksim {

CoreComplex::CoreComplex(const SimConfig &config, CoreId id,
                         const TraceProgram *trace, Addr code_base)
    : id_(id),
      l1d_(config.target.l1d, id, &stats_),
      l1i_(config.target.l1i, id, &stats_),
      core_(config.target.core, id, trace, &l1d_, &l1i_, &stats_,
            code_base),
      outQ_(config.engine.queueCapacity),
      inQ_(config.engine.queueCapacity)
{
    scratch_.reserve(32);
}

CoreComplex::CycleOutcome
CoreComplex::cycle(Tick max_local, std::uint32_t skip_budget)
{
    if (skip_budget == 0)
        skip_budget = 1;
    if (finished())
        return CycleOutcome::Progress;
    // Reserve space for the worst-case message volume of one cycle so
    // the cycle never has to abort halfway through.
    if (!outQ_.hasFreeSpace(outboundHeadroom))
        return CycleOutcome::Backpressure;

    const Tick now = localTime_.load(std::memory_order_relaxed);

    // Apply inbound messages that have become visible at this local
    // time. The head may carry a future timestamp; it then waits
    // (later entries wait behind it — a slack-induced distortion the
    // simulation tolerates by design).
    std::uint32_t applied = 0;
    while (applied < inboundPerCycle) {
        const BusMsg *head = inQ_.front();
        if (!head || head->ts > now)
            break;
        core_.handleInbound(*head, now, scratch_);
        inQ_.popFront();
        ++applied;
    }

    const bool progressed = core_.cycle(now, scratch_) || applied > 0;

    if (!scratch_.empty()) {
        for (BusMsg &msg : scratch_) {
            msg.src = id_;
            msg.ts = now;
            msg.seq = nextSeq_++;
        }
        // One batched publication for the whole cycle's messages.
        const std::size_t pushed =
            outQ_.pushN(scratch_.data(), scratch_.size());
        SLACKSIM_ASSERT(pushed == scratch_.size(),
                        "OutQ overflow despite headroom check");
        scratch_.clear();
    }

    Tick next = now + 1;
    if (!progressed && !finished()) {
        // The core is inert: identical behavior every cycle until the
        // earliest of (a) an already-scheduled internal completion,
        // (b) the InQ head becoming applicable, (c) the pacing limit.
        Tick target = core_.earliestSelfWake();
        if (const BusMsg *head = inQ_.front())
            target = std::min(target, head->ts);
        if (target == maxTick) {
            // Only a future delivery can wake the core. With pacing
            // headroom we bulk-skip the stall cycles up to the limit;
            // a free-running (unbounded) core instead freezes until
            // the manager delivers something.
            if (max_local >= maxTick - 1)
                return CycleOutcome::WaitInbound;
            target = max_local + 1;
        }
        if (target > next) {
            next = std::min({target, max_local + 1,
                             now + static_cast<Tick>(skip_budget)});
            if (next <= now)
                return CycleOutcome::WaitInbound; // no headroom left
            stats_.idleCycles += next - (now + 1);
        }
    }

    // Publish the new local time only after the cycle's messages are
    // in the queue: once the manager observes localTime > T it may
    // assume every event of cycle T is visible.
    localTime_.store(next, std::memory_order_release);
    return CycleOutcome::Progress;
}

void
CoreComplex::save(SnapshotWriter &writer) const
{
    writer.putMarker(0xcc01);
    writer.put(stats_);
    l1d_.save(writer);
    l1i_.save(writer);
    core_.save(writer);
    writer.putVector(outQ_.quiescedContents());
    writer.putVector(inQ_.quiescedContents());
    writer.put(nextSeq_);
    writer.put(localTime_.load(std::memory_order_acquire));
}

void
CoreComplex::restore(SnapshotReader &reader)
{
    reader.checkMarker(0xcc01);
    stats_ = reader.get<CoreStats>();
    l1d_.restore(reader);
    l1i_.restore(reader);
    core_.restore(reader);
    outQ_.quiescedAssign(reader.getVector<BusMsg>());
    inQ_.quiescedAssign(reader.getVector<BusMsg>());
    nextSeq_ = reader.get<SeqNum>();
    localTime_.store(reader.get<Tick>(), std::memory_order_release);
    scratch_.clear();
}

} // namespace slacksim
