/**
 * @file
 * One simulated core bundled with its L1 caches, workload trace
 * cursor, event queues and local clock — the unit a core thread (or
 * the serial engine) advances one target cycle at a time.
 */

#ifndef SLACKSIM_CORE_CORE_COMPLEX_HH
#define SLACKSIM_CORE_CORE_COMPLEX_HH

#include <atomic>
#include <vector>

#include "cache/l1_cache.hh"
#include "core/config.hh"
#include "cpu/ooo_core.hh"
#include "stats/stats.hh"
#include "uncore/msg.hh"
#include "util/snapshot.hh"
#include "util/spsc_queue.hh"
#include "util/types.hh"
#include "workload/trace.hh"

namespace slacksim {

/**
 * Core + L1I + L1D + queues. cycle() is called by exactly one thread;
 * the manager thread reads localTime() and uses outQ()/inQ() from the
 * other side.
 */
class CoreComplex : public Snapshotable
{
  public:
    /** Messages applied from the InQ per target cycle (bus width). */
    static constexpr std::uint32_t inboundPerCycle = 8;
    /** OutQ headroom required before a cycle may execute. */
    static constexpr std::uint32_t outboundHeadroom = 16;

    CoreComplex(const SimConfig &config, CoreId id,
                const TraceProgram *trace, Addr code_base);

    /** What happened when the core was asked to advance. */
    enum class CycleOutcome : std::uint8_t
    {
        Progress,     //!< executed; local time advanced
        Backpressure, //!< full OutQ; let the manager drain, retry
        WaitInbound,  //!< inert with empty InQ and no pacing headroom
                      //!< to skip into: only a delivery can wake it
    };

    /**
     * Execute one target cycle at the current local time.
     *
     * @param max_local pacing limit: the highest cycle index this
     * core may execute. When the core is *inert* (nothing can change
     * until an inbound message or a scheduled completion), its clock
     * jumps directly to the next relevant time instead of burning one
     * host iteration per stall cycle — the conservative-PDES idle
     * skip that makes unbounded/large-slack runs tractable. The jump
     * never passes max_local + 1, an InQ entry's timestamp, or an
     * internal completion time.
     *
     * @param skip_budget upper bound on how many cycles one call may
     * advance. Engines pass their burst budget so an inert core moves
     * at the same host-visible pace as a busy one; otherwise a core
     * waiting for a fill would leap the whole pacing window before
     * the manager could deliver it, inflating simulated time.
     */
    CycleOutcome cycle(Tick max_local,
                       std::uint32_t skip_budget = 0xffffffff);

    /** @return this core's current local clock. */
    Tick
    localTime() const
    {
        return localTime_.load(std::memory_order_acquire);
    }

    /** Manager-side override during rollback (core must be paused). */
    void
    setLocalTime(Tick t)
    {
        localTime_.store(t, std::memory_order_release);
    }

    /**
     * @return the local clock atomic itself, for observers that need
     * a stable address to poll (e.g. the log thread context).
     */
    const std::atomic<Tick> &localClock() const { return localTime_; }

    /** @return true once the core has committed its whole trace. */
    bool finished() const { return core_.finished(); }

    /** @return committed micro-ops so far (core-thread side). */
    std::uint64_t committedUops() const { return core_.committedUops(); }

    /** Zero this core's statistics (warmup discard). */
    void resetStats() { stats_ = CoreStats{}; }

    CoreId id() const { return id_; }
    SpscQueue<BusMsg> &outQ() { return outQ_; }
    SpscQueue<BusMsg> &inQ() { return inQ_; }
    const CoreStats &stats() const { return stats_; }
    OooCore &core() { return core_; }
    L1Cache &l1d() { return l1d_; }
    L1Cache &l1i() { return l1i_; }

    void save(SnapshotWriter &writer) const override;
    void restore(SnapshotReader &reader) override;

  private:
    CoreId id_;
    CoreStats stats_;
    L1Cache l1d_;
    L1Cache l1i_;
    OooCore core_;
    SpscQueue<BusMsg> outQ_;
    SpscQueue<BusMsg> inQ_;
    std::vector<BusMsg> scratch_;
    SeqNum nextSeq_ = 0;
    std::atomic<Tick> localTime_{0};
};

} // namespace slacksim

#endif // SLACKSIM_CORE_CORE_COMPLEX_HH
