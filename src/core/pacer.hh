/**
 * @file
 * Pacing policy: computes how far each core may run ahead of the
 * global time under the active scheme, and hosts the adaptive-slack
 * feedback controller (the paper's "slack throttling").
 */

#ifndef SLACKSIM_CORE_PACER_HH
#define SLACKSIM_CORE_PACER_HH

#include <vector>

#include "core/config.hh"
#include "stats/stats.hh"
#include "util/rng.hh"
#include "util/snapshot.hh"
#include "util/types.hh"

namespace slacksim {

namespace obs {
class AdaptiveDecisionLog;
} // namespace obs

/**
 * Scheme pacing + adaptive controller. maxLocalFor() returns the
 * highest cycle index a core may *execute* given the current global
 * time; a core with localTime L may run while L <= maxLocal.
 */
class Pacer : public Snapshotable
{
  public:
    /**
     * @param engine engine configuration (scheme + knobs)
     * @param num_cores core count (needed by per-core schemes)
     * @param host host-statistics sink
     */
    Pacer(const EngineConfig &engine, std::uint32_t num_cores,
          HostStats *host);

    /** @return the scheme's core pacing limit at @p global_time. */
    Tick maxLocalFor(Tick global_time) const;

    /**
     * Per-core pacing limit. Global schemes ignore @p core and
     * @p locals; Lax-P2P paces core i against its current random
     * peer's local clock (@p locals) instead of the global minimum,
     * re-pairing every p2pShufflePeriod cycles.
     */
    Tick maxLocalForCore(CoreId core, Tick global_time,
                         const std::vector<Tick> &locals);

    /** @return true when the manager must service events in
     *  timestamp-sorted order (cycle-by-cycle accuracy). */
    bool sortedService() const;

    /**
     * Adaptive feedback: called as global time advances with the
     * cumulative violation counts; adjusts the slack bound once per
     * epoch. No-op for non-adaptive schemes.
     */
    void observe(Tick global_time, const ViolationStats &violations);

    /** @return the current slack bound (adaptive/bounded schemes). */
    Tick currentBound() const { return forcedBound_ ? forcedBound_ : bound_; }

    /**
     * Degradation override (fault/recovery_policy.hh): clamp every
     * scheme's pacing to @p bound and freeze the adaptive controller.
     * Host-side policy — deliberately *not* part of save()/restore(),
     * so a rollback cannot resurrect a revoked slack bound.
     */
    void setForcedBound(Tick bound) { forcedBound_ = bound; }

    /** Lift the degradation override. */
    void clearForcedBound() { forcedBound_ = 0; }

    /** @return the forced bound, or 0 when none is active. */
    Tick forcedBound() const { return forcedBound_; }

    /** Force cycle-by-cycle pacing (speculative replay). */
    void setReplayMode(bool replay) { replayMode_ = replay; }

    /** @return true while in forced cycle-by-cycle replay. */
    bool replayMode() const { return replayMode_; }

    /**
     * Wire (or unwire, with nullptr) the forensics decision log.
     * Every adaptive epoch evaluation is recorded, and a restore()
     * that rewinds the bound logs a "restored" entry so the
     * old→new chain stays contiguous across rollbacks.
     */
    void setDecisionLog(obs::AdaptiveDecisionLog *log)
    {
        decisionLog_ = log;
    }

    void save(SnapshotWriter &writer) const override;
    void restore(SnapshotReader &reader) override;

  private:
    void shufflePeers(Tick global_time);

    /** Scheme pacing with no replay/degradation override applied. */
    Tick nativeMaxLocalFor(Tick global_time) const;

    EngineConfig engine_;
    std::uint32_t numCores_;
    HostStats *host_;
    obs::AdaptiveDecisionLog *decisionLog_ = nullptr;
    Tick bound_ = 0;      //!< live slack bound (adaptive/bounded/p2p)
    Tick forcedBound_ = 0; //!< degradation clamp (0: none)
    Tick nextEpoch_ = 0;  //!< next adaptive evaluation time
    bool replayMode_ = false;
    std::uint64_t lastCounted_ = 0; //!< windowed rate: last total
    Tick lastGlobal_ = 0;           //!< windowed rate: last epoch end

    // Lax-P2P state.
    std::vector<CoreId> peers_;
    Tick nextShuffleAt_ = 0;
    Rng p2pRng_;
};

} // namespace slacksim

#endif // SLACKSIM_CORE_PACER_HH
