/**
 * @file
 * RunResult implementation.
 */

#include "core/run_result.hh"

#include <iomanip>
#include <ostream>

#include "stats/table.hh"

namespace slacksim {

double
RunResult::fractionIntervalsViolated() const
{
    if (intervals.empty())
        return 0.0;
    std::uint64_t violated = 0;
    for (const auto &iv : intervals)
        violated += iv.violated() ? 1 : 0;
    return static_cast<double>(violated) / intervals.size();
}

double
RunResult::meanFirstViolationDistance() const
{
    std::uint64_t violated = 0;
    double sum = 0.0;
    for (const auto &iv : intervals) {
        if (iv.violated()) {
            ++violated;
            sum += static_cast<double>(iv.firstViolationOffset);
        }
    }
    return violated ? sum / violated : 0.0;
}

void
RunResult::printSummary(std::ostream &os) const
{
    os << "run: workload=" << workloadName
       << " scheme=" << schemeName(scheme)
       << " host=" << (parallelHost ? "parallel" : "serial") << "\n";
    os << "  exec cycles      : " << execCycles << "\n";
    os << "  committed uops   : " << committedUops << "\n";
    os << "  CPI              : " << std::fixed << std::setprecision(3)
       << cpi() << "\n";
    os << "  wall seconds     : " << std::setprecision(3)
       << host.wallSeconds << "\n";
    os << "  bus violations   : " << violations.busViolations << " ("
       << std::setprecision(5) << busViolationRate() * 100.0
       << "%/cycle)\n";
    os << "  map violations   : " << violations.mapViolations << " ("
       << std::setprecision(5) << mapViolationRate() * 100.0
       << "%/cycle)\n";
    os << "  L1D hits/misses  : " << coreTotal.l1dHits << "/"
       << coreTotal.l1dMisses << "\n";
    os << "  L2 hits/misses   : " << uncore.l2Hits << "/"
       << uncore.l2Misses << "\n";
    os << "  bus requests     : " << uncore.busRequests << "\n";
    os << "  lock acq/queued  : " << uncore.lockAcquires << "/"
       << uncore.lockQueued << "\n";
    os << "  barrier episodes : " << uncore.barrierEpisodes << "\n";
    if (!intervals.empty()) {
        os << "  checkpoints      : " << host.checkpointsTaken
           << " (bytes=" << host.checkpointBytes
           << ", sec=" << std::setprecision(3) << host.checkpointSeconds
           << ")\n";
        os << "  intervals viol.  : " << std::setprecision(1)
           << fractionIntervalsViolated() * 100.0 << "%\n";
        os << "  mean 1st viol.   : " << std::setprecision(0)
           << meanFirstViolationDistance() << " cycles\n";
    }
    if (host.rollbacks) {
        os << "  rollbacks        : " << host.rollbacks
           << " (wasted=" << host.wastedCycles
           << ", replay=" << host.replayCycles << " cycles)\n";
    }
    if (scheme == SchemeKind::Adaptive) {
        os << "  final slack bound: " << finalSlackBound
           << " (adjustments=" << host.slackAdjustments << ")\n";
    }
    if (demotions || repromotions) {
        os << "  degradation      : level=" << degradationLevel
           << " demotions=" << demotions
           << " repromotions=" << repromotions << "\n";
    }
    if (!faultInjections.empty()) {
        os << "  faults injected  : " << faultInjections.size()
           << " (seed=" << faultSeed << ")\n";
    }
    os.flush();
}

void
RunResult::printPerCore(std::ostream &os) const
{
    Table table("per-core breakdown");
    table.setHeader({"core", "uops", "CPI", "l1d miss%", "l1i miss%",
                     "fetch stall", "sync stall", "sb full", "idle"});
    for (std::size_t c = 0; c < perCore.size(); ++c) {
        const CoreStats &s = perCore[c];
        const double cpi =
            s.committedInstrs
                ? static_cast<double>(execCycles) / s.committedInstrs
                : 0.0;
        const double d_acc =
            static_cast<double>(s.l1dHits + s.l1dMisses);
        const double i_acc =
            static_cast<double>(s.l1iHits + s.l1iMisses);
        table.cell(static_cast<std::uint64_t>(c))
            .cell(s.committedInstrs)
            .cell(cpi, 2)
            .cell(d_acc ? 100.0 * s.l1dMisses / d_acc : 0.0, 1)
            .cell(i_acc ? 100.0 * s.l1iMisses / i_acc : 0.0, 1)
            .cell(s.fetchStallCycles)
            .cell(s.syncStallCycles)
            .cell(s.sbFullCycles)
            .cell(s.idleCycles)
            .endRow();
    }
    table.print(os);
}

namespace {

/** Minimal JSON string escaping (names are ASCII identifiers). */
std::string
jsonEscape(const std::string &in)
{
    std::string out;
    for (const char c : in) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

void
RunResult::printJson(std::ostream &os) const
{
    os << "{";
    os << "\"workload\":\"" << jsonEscape(workloadName) << "\",";
    os << "\"scheme\":\"" << schemeName(scheme) << "\",";
    os << "\"parallelHost\":" << (parallelHost ? "true" : "false")
       << ",";
    os << "\"execCycles\":" << execCycles << ",";
    os << "\"globalCycles\":" << globalCycles << ",";
    os << "\"committedUops\":" << committedUops << ",";
    os << "\"ipc\":" << ipc() << ",";
    os << "\"cpi\":" << cpi() << ",";
    os << "\"wallSeconds\":" << host.wallSeconds << ",";
    os << "\"violations\":{\"bus\":" << violations.busViolations
       << ",\"map\":" << violations.mapViolations
       << ",\"busRate\":" << busViolationRate()
       << ",\"mapRate\":" << mapViolationRate() << "},";
    os << "\"uncore\":{\"busRequests\":" << uncore.busRequests
       << ",\"busQueueingCycles\":" << uncore.busQueueingCycles
       << ",\"l2Hits\":" << uncore.l2Hits << ",\"l2Misses\":"
       << uncore.l2Misses << ",\"c2c\":"
       << uncore.cacheToCacheTransfers << ",\"lockAcquires\":"
       << uncore.lockAcquires << ",\"barrierEpisodes\":"
       << uncore.barrierEpisodes << "},";
    os << "\"checkpointing\":{\"taken\":" << host.checkpointsTaken
       << ",\"bytes\":" << host.checkpointBytes << ",\"seconds\":"
       << host.checkpointSeconds << ",\"rollbacks\":"
       << host.rollbacks << ",\"wastedCycles\":" << host.wastedCycles
       << ",\"replayCycles\":" << host.replayCycles << "},";
    os << "\"adaptive\":{\"finalBound\":" << finalSlackBound
       << ",\"adjustments\":" << host.slackAdjustments << "},";
    os << "\"degradation\":{\"level\":\"" << jsonEscape(degradationLevel)
       << "\",\"demotions\":" << demotions
       << ",\"repromotions\":" << repromotions << "},";
    os << "\"faults\":{\"specs\":" << faultSpecCount
       << ",\"injections\":" << faultInjections.size() << "},";
    os << "\"maxObservedSlack\":" << host.maxObservedSlack << ",";
    os << "\"intervals\":[";
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"start\":" << intervals[i].start
           << ",\"violations\":" << intervals[i].violations
           << ",\"firstOffset\":";
        if (intervals[i].violated())
            os << intervals[i].firstViolationOffset;
        else
            os << "null";
        os << "}";
    }
    os << "],";
    os << "\"perCore\":[";
    for (std::size_t c = 0; c < perCore.size(); ++c) {
        if (c)
            os << ",";
        os << "{\"uops\":" << perCore[c].committedInstrs
           << ",\"l1dMisses\":" << perCore[c].l1dMisses
           << ",\"l1iMisses\":" << perCore[c].l1iMisses
           << ",\"idleCycles\":" << perCore[c].idleCycles << "}";
    }
    os << "]}";
    os.flush();
}

} // namespace slacksim
