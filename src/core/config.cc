/**
 * @file
 * Configuration helpers.
 */

#include "core/config.hh"

#include "util/logging.hh"

namespace slacksim {

const char *
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::CycleByCycle:
        return "cc";
      case SchemeKind::Quantum:
        return "quantum";
      case SchemeKind::Bounded:
        return "bounded";
      case SchemeKind::Unbounded:
        return "unbounded";
      case SchemeKind::Adaptive:
        return "adaptive";
      case SchemeKind::LaxP2P:
        return "lax-p2p";
    }
    return "unknown";
}

SchemeKind
parseScheme(const std::string &name)
{
    if (name == "cc" || name == "cycle" || name == "cycle-by-cycle")
        return SchemeKind::CycleByCycle;
    if (name == "quantum")
        return SchemeKind::Quantum;
    if (name == "bounded" || name == "slack")
        return SchemeKind::Bounded;
    if (name == "unbounded" || name == "free")
        return SchemeKind::Unbounded;
    if (name == "adaptive")
        return SchemeKind::Adaptive;
    if (name == "lax-p2p" || name == "laxp2p" || name == "p2p")
        return SchemeKind::LaxP2P;
    SLACKSIM_FATAL("unknown scheme '", name,
                   "' (expected cc|quantum|bounded|unbounded|adaptive)");
}

void
SimConfig::validate() const
{
    // Hard width limit: the uncore's directory/sync sharer vectors
    // (GlobalMap presence masks, dSharers, barrier arrivedMask) are
    // single 64-bit words indexed by core id, and shifting by >= 64
    // is silent wraparound. Enforce the limit here, at config load,
    // so no mask arithmetic anywhere downstream can overflow.
    if (target.numCores < 1 || target.numCores > 64)
        SLACKSIM_FATAL("numCores must be in [1, 64] (uncore sharer ",
                       "masks are 64-bit words)");
    if (workload.numThreads != target.numCores)
        SLACKSIM_FATAL("workload threads (", workload.numThreads,
                       ") must match target cores (", target.numCores,
                       ")");
    if ((engine.scheme == SchemeKind::Bounded ||
         engine.scheme == SchemeKind::LaxP2P) &&
        engine.slackBound < 1) {
        SLACKSIM_FATAL("bounded/lax-p2p slack requires slackBound >= 1");
    }
    if (engine.scheme == SchemeKind::LaxP2P &&
        engine.p2pShufflePeriod < 1) {
        SLACKSIM_FATAL("lax-p2p requires p2pShufflePeriod >= 1");
    }
    if (engine.scheme == SchemeKind::Quantum && engine.quantum < 1)
        SLACKSIM_FATAL("quantum scheme requires quantum >= 1");
    if (engine.scheme == SchemeKind::Adaptive) {
        const auto &a = engine.adaptive;
        if (a.targetViolationRate <= 0.0)
            SLACKSIM_FATAL("adaptive target rate must be positive");
        if (a.minBound < 1 || a.minBound > a.maxBound)
            SLACKSIM_FATAL("adaptive bound range invalid");
        if (a.initialBound < a.minBound || a.initialBound > a.maxBound)
            SLACKSIM_FATAL("adaptive initial bound out of range");
        if (a.epochCycles < 1)
            SLACKSIM_FATAL("adaptive epoch must be >= 1 cycle");
    }
    if (engine.checkpoint.mode != CheckpointMode::Off &&
        engine.checkpoint.interval < 100) {
        SLACKSIM_FATAL("checkpoint interval must be >= 100 cycles");
    }
    if (engine.checkpoint.mode != CheckpointMode::Off &&
        engine.checkpoint.tech == CheckpointTech::ForkProcess &&
        engine.parallelHost) {
        SLACKSIM_FATAL("fork() checkpoints require the serial host "
                       "engine (fork clones only one thread)");
    }
    if (engine.burstCycles < 1)
        SLACKSIM_FATAL("burstCycles must be >= 1");
    if (engine.managerClusters > 0) {
        if (!engine.parallelHost)
            SLACKSIM_FATAL("hierarchical manager requires the "
                           "parallel host engine");
        if (engine.managerClusters > target.numCores)
            SLACKSIM_FATAL("more manager clusters than cores");
        if (engine.checkpoint.mode != CheckpointMode::Off)
            SLACKSIM_FATAL("hierarchical manager does not support "
                           "checkpointing yet");
    }
    if (engine.queueCapacity < 64)
        SLACKSIM_FATAL("queueCapacity must be >= 64");
    if (engine.hostThreads > 0 && !engine.parallelHost)
        SLACKSIM_FATAL("hostThreads applies to the parallel host "
                       "engine only");
    if (engine.managerBanks > 64)
        SLACKSIM_FATAL("managerBanks must be in [0, 64]");
    if (engine.recovery.stormThreshold > 0 &&
        engine.recovery.stormWindow < 1) {
        SLACKSIM_FATAL("rollback-storm detection requires "
                       "stormWindow >= 1 cycle");
    }
    if (engine.obs.bufferKb < 1 || engine.obs.bufferKb > (1u << 20))
        SLACKSIM_FATAL("obs bufferKb must be in [1, 1048576]");
    if (target.l1d.lineBytes != target.l1i.lineBytes ||
        target.l1d.lineBytes != target.l2.lineBytes) {
        SLACKSIM_FATAL("L1/L2 line sizes must match");
    }
}

} // namespace slacksim
