/**
 * @file
 * SimSystem implementation.
 */

#include "core/sim_system.hh"

#include <algorithm>

#include "util/logging.hh"
#include "workload/kernels.hh"

namespace slacksim {

SimSystem::SimSystem(const SimConfig &config)
    : config_(config)
{
    config_.validate();
    workload_ = makeWorkload(config_.workload);
    SLACKSIM_ASSERT(workload_.threads.size() == config_.target.numCores,
                    "workload/core count mismatch");

    UncoreParams up;
    up.numCores = config_.target.numCores;
    up.protocol = config_.target.protocol;
    up.l2 = config_.target.l2;
    up.c2cLatency = config_.target.c2cLatency;
    up.syncLatency = config_.target.syncLatency;
    up.busRequestCycles = config_.target.busRequestCycles;
    up.busResponseCycles = config_.target.busResponseCycles;
    up.numLocks = workload_.numLocks;
    up.numBarriers = workload_.numBarriers;
    up.mapBanks =
        std::max<std::uint32_t>(1, config_.engine.managerBanks);
    uncore_ = std::make_unique<Uncore>(up, &uncoreStats_, &violations_);

    AddressSpace space(config_.target.numCores);
    cores_.reserve(config_.target.numCores);
    for (CoreId c = 0; c < config_.target.numCores; ++c) {
        cores_.push_back(std::make_unique<CoreComplex>(
            config_, c, &workload_.threads[c], space.codeBase(c)));
    }
}

std::uint64_t
SimSystem::totalCommittedUops() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->stats().committedInstrs;
    return total;
}

void
SimSystem::resetSimStats()
{
    for (auto &core : cores_)
        core->resetStats();
    uncoreStats_ = UncoreStats{};
    violations_ = ViolationStats{};
    uncore_->resetStats();
}

bool
SimSystem::allFinished() const
{
    for (const auto &core : cores_)
        if (!core->finished())
            return false;
    return true;
}

Tick
SimSystem::globalTime() const
{
    Tick min_unfinished = maxTick;
    Tick max_any = 0;
    for (const auto &core : cores_) {
        const Tick t = core->localTime();
        max_any = std::max(max_any, t);
        if (!core->finished())
            min_unfinished = std::min(min_unfinished, t);
    }
    return min_unfinished == maxTick ? max_any : min_unfinished;
}

Tick
SimSystem::maxLocalTime() const
{
    Tick max_any = 0;
    for (const auto &core : cores_)
        max_any = std::max(max_any, core->localTime());
    return max_any;
}

void
SimSystem::save(SnapshotWriter &writer) const
{
    writer.putMarker(0x5757);
    for (const auto &core : cores_)
        core->save(writer);
    uncore_->save(writer);
}

void
SimSystem::restore(SnapshotReader &reader)
{
    reader.checkMarker(0x5757);
    for (auto &core : cores_)
        core->restore(reader);
    uncore_->restore(reader);
}

} // namespace slacksim
