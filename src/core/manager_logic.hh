/**
 * @file
 * Manager-side event plumbing shared by the serial and parallel
 * engines: pulling OutQ entries (the paper's GQ consolidation),
 * servicing them in arrival or timestamp-sorted order, delivering the
 * responses with overflow handling, tracking per-checkpoint-interval
 * violation data, and raising rollback requests in speculative mode.
 *
 * Sorted (CC-accurate) service is a k-way merge: every source's
 * events arrive timestamp-monotone (cores stamp ts with their
 * nondecreasing local clock and seq with a per-core counter), so the
 * manager keeps one staging run per source and a tournament tree over
 * the run heads. Pumping an event into a non-empty run is O(1);
 * servicing the global minimum replays one O(log C) tree path. The
 * service order is exactly the (ts, src, seq) order of the old global
 * heap: within a run (fixed src) events are already (ts, seq)-sorted,
 * and across runs the tree picks the least (ts, src) head.
 *
 * Banked layout (EngineConfig::managerBanks): staging runs are split
 * into per-address-range banks — one run per (bank, source), one
 * tournament tree per bank, and a top-level selection over the bank
 * heads. Because a source's events stay (ts, seq)-monotone within
 * each bank (a subsequence of a monotone stream is monotone) and the
 * top level breaks (ts, src) ties by seq, the pop order is *exactly*
 * the global (ts, src, seq) order of the single-bank layout: CC
 * results are bit-identical for every bank count. Snapshots serialize
 * the banks merged back into per-source arrival order, so checkpoint
 * bytes are identical across bank counts too.
 *
 * All methods run on the manager's thread.
 */

#ifndef SLACKSIM_CORE_MANAGER_LOGIC_HH
#define SLACKSIM_CORE_MANAGER_LOGIC_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "core/config.hh"
#include "core/run_result.hh"
#include "core/sim_system.hh"
#include "util/core_bitset.hh"
#include "util/merge_tree.hh"
#include "util/snapshot.hh"

namespace slacksim {

/** Manager event-flow logic. */
class ManagerLogic : public Snapshotable
{
  public:
    ManagerLogic(SimSystem &sys, const EngineConfig &engine,
                 HostStats *host);

    /** Select sorted (CC-accurate) vs arrival-order servicing. */
    void setSorted(bool sorted) { sorted_ = sorted; }

    /**
     * Pull every visible OutQ entry of core @p c. Arrival order:
     * service immediately. Sorted: stash into the per-source staging
     * run until serviceSorted() releases it. @return events pulled.
     */
    std::size_t pumpCore(CoreId c);

    /** pumpCore() over all cores. @return events pulled. */
    std::size_t pumpAll();

    /**
     * Feed one event that arrived through a relay (hierarchical
     * manager): stashed for sorted service or serviced immediately,
     * exactly like a directly pumped event.
     */
    void
    ingest(const BusMsg &msg)
    {
        if (sorted_)
            stash(msg);
        else
            serviceOne(msg);
    }

    /**
     * Sorted mode: service staged events with ts < @p safe_time in
     * (ts, src, seq) order. @return events serviced.
     */
    std::size_t serviceSorted(Tick safe_time);

    /** Retry overflowed InQ deliveries. */
    void flushOverflow();

    /**
     * Invoke @p fn(CoreId) for every core that received an InQ
     * delivery since the last drain, then clear the set. The parallel
     * engine wakes these cores: an inert free-running core parks
     * until a delivery arrives.
     */
    template <typename Fn>
    void
    drainDelivered(Fn &&fn)
    {
        delivered_.drain(static_cast<Fn &&>(fn));
    }

    /** @return true when no staged events or overflow remain. */
    bool drained() const;

    /** @return sorted-service staging depth (metrics sampling). */
    std::size_t pendingDepth() const { return stagedCount_; }

    /** Arm/disarm violation-triggered rollback requests. */
    void armRollback(bool armed) { rollbackArmed_ = armed; }

    /** @return true when a tracked violation requested a rollback. */
    bool rollbackRequested() const { return rollbackRequested_; }

    /** Request a rollback from outside the violation monitors (fault
     *  injection's spurious-rollback). Honors the arming gate. */
    void requestRollback()
    {
        if (rollbackArmed_)
            rollbackRequested_ = true;
    }

    /** Clear the rollback request (after acting on it). */
    void clearRollbackRequest() { rollbackRequested_ = false; }

    /** Begin a new checkpoint interval at simulated time @p start. */
    void beginInterval(Tick start);

    /** Close the open interval and record it. */
    void closeInterval();

    /** Discard the open interval without recording (rollback path). */
    void abortInterval() { intervalOpen_ = false; }

    /** @return per-interval measurement records (host-side). */
    const std::vector<IntervalRecord> &intervals() const
    {
        return intervals_;
    }

    /** Sorted-mode staged events + delivery overflow are simulated
     *  state and participate in checkpoints. */
    void save(SnapshotWriter &writer) const override;
    void restore(SnapshotReader &reader) override;

    /** @return the service bank of address @p addr (line granules). */
    std::uint32_t
    bankOf(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr >> 6) % banks_);
    }

  private:
    /**
     * Orders one bank's staging runs by their head event's (ts, src)
     * key; the per-run seq order supplies the final tie-break for
     * free. Empty runs sort last (exhausted stream = infinite key).
     * `base` addresses the bank's slice of the flat run array.
     */
    struct HeadLess
    {
        const std::vector<std::deque<BusMsg>> *runs;
        std::uint32_t base;

        bool
        operator()(std::uint32_t a, std::uint32_t b) const
        {
            const auto &ra = (*runs)[base + a];
            const auto &rb = (*runs)[base + b];
            if (ra.empty())
                return false;
            if (rb.empty())
                return true;
            if (ra.front().ts != rb.front().ts)
                return ra.front().ts < rb.front().ts;
            return a < b;
        }
    };

    void stash(const BusMsg &msg);
    void serviceOne(const BusMsg &msg);
    void deliver(const Outbound &o);
    void markDelivered(CoreId c);

    SimSystem &sys_;
    EngineConfig engine_;
    HostStats *host_;
    bool sorted_ = false;

    /** Service banks (>= 1); addresses hash to banks by line range. */
    std::uint32_t banks_ = 1;

    /** Per-(bank, source) timestamp-monotone staging runs (sorted
     *  mode), flat-indexed bank * numCores + src. */
    std::vector<std::deque<BusMsg>> staging_;
    std::size_t stagedCount_ = 0;
    /** Per-bank staged-event counts (skip empty banks in O(1)). */
    std::vector<std::size_t> bankCount_;
    /** One tournament tree per bank over that bank's source runs. */
    std::vector<MergeTree<HeadLess>> merge_;
    /** Batch-pump scratch (pumpCore sorted path). */
    std::vector<BusMsg> pumpScratch_;

    CoreBitset delivered_;
    std::vector<std::deque<BusMsg>> overflow_;
    std::vector<Outbound> outboundScratch_;

    bool rollbackArmed_ = false;
    bool rollbackRequested_ = false;

    bool intervalOpen_ = false;
    IntervalRecord current_;
    std::vector<IntervalRecord> intervals_;
};

} // namespace slacksim

#endif // SLACKSIM_CORE_MANAGER_LOGIC_HH
