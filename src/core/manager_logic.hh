/**
 * @file
 * Manager-side event plumbing shared by the serial and parallel
 * engines: pulling OutQ entries (the paper's GQ consolidation),
 * servicing them in arrival or timestamp-sorted order, delivering the
 * responses with overflow handling, tracking per-checkpoint-interval
 * violation data, and raising rollback requests in speculative mode.
 *
 * All methods run on the manager's thread.
 */

#ifndef SLACKSIM_CORE_MANAGER_LOGIC_HH
#define SLACKSIM_CORE_MANAGER_LOGIC_HH

#include <algorithm>
#include <deque>
#include <vector>

#include "core/config.hh"
#include "core/run_result.hh"
#include "core/sim_system.hh"
#include "util/snapshot.hh"

namespace slacksim {

/** Manager event-flow logic. */
class ManagerLogic : public Snapshotable
{
  public:
    ManagerLogic(SimSystem &sys, const EngineConfig &engine,
                 HostStats *host);

    /** Select sorted (CC-accurate) vs arrival-order servicing. */
    void setSorted(bool sorted) { sorted_ = sorted; }

    /**
     * Pull every visible OutQ entry of core @p c. Arrival order:
     * service immediately. Sorted: stash into the pending heap until
     * serviceSorted() releases it. @return events pulled.
     */
    std::size_t pumpCore(CoreId c);

    /** pumpCore() over all cores. @return events pulled. */
    std::size_t pumpAll();

    /**
     * Feed one event that arrived through a relay (hierarchical
     * manager): stashed for sorted service or serviced immediately,
     * exactly like a directly pumped event.
     */
    void
    ingest(const BusMsg &msg)
    {
        if (sorted_) {
            pending_.push_back(msg);
            std::push_heap(pending_.begin(), pending_.end(),
                           PendingOrder{});
        } else {
            serviceOne(msg);
        }
    }

    /**
     * Sorted mode: service pending events with ts < @p safe_time in
     * (ts, src, seq) order. @return events serviced.
     */
    std::size_t serviceSorted(Tick safe_time);

    /** Retry overflowed InQ deliveries. */
    void flushOverflow();

    /**
     * Bitmask of cores that received an InQ delivery since the last
     * call (cleared on read). The parallel engine wakes these cores:
     * an inert free-running core parks until a delivery arrives.
     */
    std::uint64_t takeDeliveredMask()
    {
        const std::uint64_t mask = deliveredMask_;
        deliveredMask_ = 0;
        return mask;
    }

    /** @return true when no pending events or overflow remain. */
    bool drained() const;

    /** @return sorted-service heap depth (metrics sampling). */
    std::size_t pendingDepth() const { return pending_.size(); }

    /** Arm/disarm violation-triggered rollback requests. */
    void armRollback(bool armed) { rollbackArmed_ = armed; }

    /** @return true when a tracked violation requested a rollback. */
    bool rollbackRequested() const { return rollbackRequested_; }

    /** Clear the rollback request (after acting on it). */
    void clearRollbackRequest() { rollbackRequested_ = false; }

    /** Begin a new checkpoint interval at simulated time @p start. */
    void beginInterval(Tick start);

    /** Close the open interval and record it. */
    void closeInterval();

    /** Discard the open interval without recording (rollback path). */
    void abortInterval() { intervalOpen_ = false; }

    /** @return per-interval measurement records (host-side). */
    const std::vector<IntervalRecord> &intervals() const
    {
        return intervals_;
    }

    /** Sorted-mode pending events + delivery overflow are simulated
     *  state and participate in checkpoints. */
    void save(SnapshotWriter &writer) const override;
    void restore(SnapshotReader &reader) override;

  private:
    struct PendingOrder
    {
        bool
        operator()(const BusMsg &a, const BusMsg &b) const
        {
            // Max-heap adapter: "greater" means lower priority, so
            // invert to pop the smallest (ts, src, seq) first.
            if (a.ts != b.ts)
                return a.ts > b.ts;
            if (a.src != b.src)
                return a.src > b.src;
            return a.seq > b.seq;
        }
    };

    void serviceOne(const BusMsg &msg);
    void deliver(const Outbound &o);

    SimSystem &sys_;
    EngineConfig engine_;
    HostStats *host_;
    bool sorted_ = false;

    std::vector<BusMsg> pending_; //!< heap (PendingOrder)
    std::uint64_t deliveredMask_ = 0;
    std::vector<std::deque<BusMsg>> overflow_;
    std::vector<Outbound> outboundScratch_;

    bool rollbackArmed_ = false;
    bool rollbackRequested_ = false;

    bool intervalOpen_ = false;
    IntervalRecord current_;
    std::vector<IntervalRecord> intervals_;
};

} // namespace slacksim

#endif // SLACKSIM_CORE_MANAGER_LOGIC_HH
