/**
 * @file
 * ForkCheckpointer implementation.
 */

#include "core/fork_checkpoint.hh"

#include <sys/mman.h>
#include <sys/wait.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>
#include <unistd.h>

#include "util/logging.hh"

namespace slacksim {

namespace {

// Distinguished exit statuses flowing up the holder chain.
constexpr int exitRollback = 42;
// An injected child-exit fault: unlike an application error this one
// is *recovered* by the suspended parent, not propagated.
constexpr int exitInjectedChild = 77;

} // namespace

ForkCheckpointer::ForkCheckpointer(std::uint64_t child_timeout_ms)
    : childTimeoutMs_(child_timeout_ms)
{
    void *page =
        mmap(nullptr, sizeof(SharedPage), PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (page == MAP_FAILED)
        SLACKSIM_FATAL("mmap for fork-checkpoint state failed: ",
                       errno);
    shared_ = new (page) SharedPage();
}

ForkCheckpointer::~ForkCheckpointer()
{
    if (shared_) {
        shared_->~SharedPage();
        munmap(shared_, sizeof(SharedPage));
    }
}

ForkCheckpointer::Outcome
ForkCheckpointer::checkpoint(ChildFault inject)
{
    // Keep inherited stdio buffers from replaying into descendants.
    std::fflush(nullptr);

    const auto t0 = std::chrono::steady_clock::now();
    const pid_t child = fork();
    if (child < 0)
        SLACKSIM_FATAL("fork-checkpoint fork() failed: ", errno);

    if (child > 0) {
        // Parent: this address space is now the checkpoint. Suspend
        // until the running child finishes or requests a rollback.
        // An unexpected child death (signal, injected fault, timeout
        // kill) is absorbed as a rollback a bounded number of times:
        // this process *is* the last checkpoint, so resuming here is
        // exactly the recovery the paper's mechanism affords.
        const auto recover = [this](const char *cause) -> Outcome {
            const std::uint64_t deaths =
                shared_->recoveredDeaths.fetch_add(
                    1, std::memory_order_relaxed) +
                1;
            if (deaths > maxRecoveredDeaths) {
                SLACKSIM_WARN("fork-checkpoint child died (", cause,
                              ") ", deaths,
                              " times; giving up");
                _exit(70);
            }
            SLACKSIM_WARN("fork-checkpoint child died (", cause,
                          "); recovering from the suspended "
                          "checkpoint (attempt ",
                          deaths, "/", maxRecoveredDeaths, ")");
            shared_->rollbacks.fetch_add(1,
                                         std::memory_order_relaxed);
            return Outcome::RolledBack;
        };

        const auto started = std::chrono::steady_clock::now();
        for (;;) {
            int status = 0;
            const int flags = childTimeoutMs_ ? WNOHANG : 0;
            const pid_t waited = waitpid(child, &status, flags);
            if (waited < 0) {
                if (errno == EINTR)
                    continue;
                SLACKSIM_FATAL("fork-checkpoint waitpid failed: ",
                               errno);
            }
            if (waited == 0) {
                // Child still running under a timeout: poll, and
                // kill + reap once the deadline passes.
                const auto elapsed =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - started)
                        .count();
                if (static_cast<std::uint64_t>(elapsed) >=
                    childTimeoutMs_) {
                    kill(child, SIGKILL);
                    while (waitpid(child, &status, 0) < 0 &&
                           errno == EINTR) {
                    }
                    return recover("timeout");
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                continue;
            }
            if (WIFEXITED(status)) {
                if (WEXITSTATUS(status) == exitRollback) {
                    // Wake up as the restored simulation state.
                    shared_->rollbacks.fetch_add(
                        1, std::memory_order_relaxed);
                    return Outcome::RolledBack;
                }
                if (WEXITSTATUS(status) == exitInjectedChild)
                    return recover("injected exit");
                // Normal completion (or application error):
                // propagate the status up the chain of suspended
                // checkpoint holders.
                _exit(WEXITSTATUS(status));
            }
            if (WIFSIGNALED(status))
                return recover("signal");
        }
    }

    // Child: apply any injected self-destruction first — the point is
    // to die *after* the parent became a valid checkpoint.
    if (inject == ChildFault::Kill) {
        raise(SIGKILL);
    } else if (inject == ChildFault::Exit) {
        std::fflush(nullptr);
        _exit(exitInjectedChild);
    }

    // Child: the simulation continues here. Release the previous
    // (now obsolete) checkpoint holder, as in the paper: "removal of
    // an old checkpoint begins in the child process".
    const std::int32_t my_parent = static_cast<std::int32_t>(getppid());
    const std::int32_t old_holder =
        shared_->obsoleteHolder.exchange(my_parent,
                                         std::memory_order_acq_rel);
    if (old_holder > 0 && old_holder != my_parent)
        kill(old_holder, SIGKILL);

    shared_->checkpoints.fetch_add(1, std::memory_order_relaxed);
    const auto dt = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    shared_->checkpointMicros.fetch_add(
        static_cast<std::uint64_t>(dt), std::memory_order_relaxed);
    return Outcome::Continue;
}

void
ForkCheckpointer::rollback()
{
    std::fflush(nullptr);
    _exit(exitRollback);
}

std::uint64_t
ForkCheckpointer::rollbackCount() const
{
    return shared_->rollbacks.load(std::memory_order_relaxed);
}

std::uint64_t
ForkCheckpointer::checkpointCount() const
{
    return shared_->checkpoints.load(std::memory_order_relaxed);
}

void
ForkCheckpointer::addWastedCycles(std::uint64_t cycles)
{
    shared_->wastedCycles.fetch_add(cycles, std::memory_order_relaxed);
}

std::uint64_t
ForkCheckpointer::wastedCycles() const
{
    return shared_->wastedCycles.load(std::memory_order_relaxed);
}

std::uint64_t
ForkCheckpointer::recoveredDeaths() const
{
    return shared_->recoveredDeaths.load(std::memory_order_relaxed);
}

double
ForkCheckpointer::checkpointSeconds() const
{
    return static_cast<double>(shared_->checkpointMicros.load(
               std::memory_order_relaxed)) /
           1e6;
}

} // namespace slacksim
