/**
 * @file
 * The paper's Section 5.1 checkpoint mechanism, implemented for real:
 * memory-based process checkpoints built on fork().
 *
 * At a checkpoint the running process forks; the parent suspends in
 * waitpid() and *is* the checkpoint (its entire address space). The
 * child continues the simulation. On a rollback the child _exit()s
 * with a distinguished status and the parent wakes up and resumes
 * from the point where the checkpoint was made. When a newer
 * checkpoint is established, the now-obsolete older checkpoint holder
 * is released with kill(), exactly as the paper describes.
 *
 * Restrictions: fork() only clones the calling thread, so this
 * technology is only legal with the single-threaded serial engine
 * (SimConfig::validate enforces it). Completion propagates by exit
 * status through the chain of holders, so the final results must be
 * emitted by the finishing process (print them, or write them to a
 * pipe created before the first checkpoint) — see
 * examples/fork_checkpoint_demo.cpp.
 *
 * Cross-rollback bookkeeping (rollback and checkpoint counters,
 * wasted cycles) lives in a MAP_SHARED page that survives rollbacks.
 */

#ifndef SLACKSIM_CORE_FORK_CHECKPOINT_HH
#define SLACKSIM_CORE_FORK_CHECKPOINT_HH

#include <atomic>
#include <cstdint>

#include "util/types.hh"

namespace slacksim {

/** fork()-based process checkpointing. */
class ForkCheckpointer
{
  public:
    /** What checkpoint() reports to the caller. */
    enum class Outcome : std::uint8_t
    {
        Continue,   //!< fresh checkpoint taken; keep simulating
        RolledBack, //!< this process just woke up as the checkpoint:
                    //!< all memory is back at checkpoint state
    };

    /**
     * @param child_timeout_ms kill and recover a child that produces
     *        no exit status within this many host ms (0: wait
     *        forever, the historical behavior)
     */
    explicit ForkCheckpointer(std::uint64_t child_timeout_ms = 0);
    ~ForkCheckpointer();

    ForkCheckpointer(const ForkCheckpointer &) = delete;
    ForkCheckpointer &operator=(const ForkCheckpointer &) = delete;

    /** Injected child self-destruction (fault/fault_plan.hh). */
    enum class ChildFault : std::uint8_t
    {
        None, //!< run normally
        Kill, //!< raise(SIGKILL) right after fork
        Exit, //!< _exit() with a distinguished nonzero status
    };

    /**
     * Establish a checkpoint here. The caller's process forks: the
     * parent becomes the suspended checkpoint holder and the child
     * returns Continue. If the simulation later rolls back, control
     * returns from this very call in the (former) parent with
     * RolledBack and pre-fork memory contents.
     *
     * A child that dies by signal (including an injected @p inject
     * fault or a child-timeout kill) is *recovered*: the suspended
     * parent counts it in recoveredDeaths and resumes as if a
     * rollback had been requested, up to a bounded number of times
     * before propagating the failure up the holder chain. Ordinary
     * nonzero child exits still propagate unchanged — an application
     * error is not a crash to retry.
     */
    Outcome checkpoint(ChildFault inject = ChildFault::None);

    /**
     * Abandon the current execution and resume from the last
     * checkpoint. Never returns: the calling process exits and the
     * checkpoint holder wakes up inside its checkpoint() call.
     */
    [[noreturn]] void rollback();

    /** @return rollbacks performed so far (survives rollbacks). */
    std::uint64_t rollbackCount() const;

    /** @return checkpoints established so far (survives rollbacks). */
    std::uint64_t checkpointCount() const;

    /** Accumulate simulated cycles wasted by an upcoming rollback. */
    void addWastedCycles(std::uint64_t cycles);

    /** @return accumulated wasted cycles (survives rollbacks). */
    std::uint64_t wastedCycles() const;

    /** @return accumulated fork() call time in seconds. */
    double checkpointSeconds() const;

    /** @return child deaths absorbed as rollbacks so far. */
    std::uint64_t recoveredDeaths() const;

    /** Unexpected child deaths recovered before giving up. */
    static constexpr std::uint64_t maxRecoveredDeaths = 3;

  private:
    struct SharedPage
    {
        std::atomic<std::uint64_t> rollbacks{0};
        std::atomic<std::uint64_t> checkpoints{0};
        std::atomic<std::uint64_t> wastedCycles{0};
        std::atomic<std::uint64_t> checkpointMicros{0};
        std::atomic<std::uint64_t> recoveredDeaths{0};
        std::atomic<std::int32_t> obsoleteHolder{0};
    };

    SharedPage *shared_ = nullptr;
    std::uint64_t childTimeoutMs_ = 0;
};

} // namespace slacksim

#endif // SLACKSIM_CORE_FORK_CHECKPOINT_HH
