/**
 * @file
 * The paper's Section 5.1 checkpoint mechanism, implemented for real:
 * memory-based process checkpoints built on fork().
 *
 * At a checkpoint the running process forks; the parent suspends in
 * waitpid() and *is* the checkpoint (its entire address space). The
 * child continues the simulation. On a rollback the child _exit()s
 * with a distinguished status and the parent wakes up and resumes
 * from the point where the checkpoint was made. When a newer
 * checkpoint is established, the now-obsolete older checkpoint holder
 * is released with kill(), exactly as the paper describes.
 *
 * Restrictions: fork() only clones the calling thread, so this
 * technology is only legal with the single-threaded serial engine
 * (SimConfig::validate enforces it). Completion propagates by exit
 * status through the chain of holders, so the final results must be
 * emitted by the finishing process (print them, or write them to a
 * pipe created before the first checkpoint) — see
 * examples/fork_checkpoint_demo.cpp.
 *
 * Cross-rollback bookkeeping (rollback and checkpoint counters,
 * wasted cycles) lives in a MAP_SHARED page that survives rollbacks.
 */

#ifndef SLACKSIM_CORE_FORK_CHECKPOINT_HH
#define SLACKSIM_CORE_FORK_CHECKPOINT_HH

#include <atomic>
#include <cstdint>

#include "util/types.hh"

namespace slacksim {

/** fork()-based process checkpointing. */
class ForkCheckpointer
{
  public:
    /** What checkpoint() reports to the caller. */
    enum class Outcome : std::uint8_t
    {
        Continue,   //!< fresh checkpoint taken; keep simulating
        RolledBack, //!< this process just woke up as the checkpoint:
                    //!< all memory is back at checkpoint state
    };

    ForkCheckpointer();
    ~ForkCheckpointer();

    ForkCheckpointer(const ForkCheckpointer &) = delete;
    ForkCheckpointer &operator=(const ForkCheckpointer &) = delete;

    /**
     * Establish a checkpoint here. The caller's process forks: the
     * parent becomes the suspended checkpoint holder and the child
     * returns Continue. If the simulation later rolls back, control
     * returns from this very call in the (former) parent with
     * RolledBack and pre-fork memory contents.
     */
    Outcome checkpoint();

    /**
     * Abandon the current execution and resume from the last
     * checkpoint. Never returns: the calling process exits and the
     * checkpoint holder wakes up inside its checkpoint() call.
     */
    [[noreturn]] void rollback();

    /** @return rollbacks performed so far (survives rollbacks). */
    std::uint64_t rollbackCount() const;

    /** @return checkpoints established so far (survives rollbacks). */
    std::uint64_t checkpointCount() const;

    /** Accumulate simulated cycles wasted by an upcoming rollback. */
    void addWastedCycles(std::uint64_t cycles);

    /** @return accumulated wasted cycles (survives rollbacks). */
    std::uint64_t wastedCycles() const;

    /** @return accumulated fork() call time in seconds. */
    double checkpointSeconds() const;

  private:
    struct SharedPage
    {
        std::atomic<std::uint64_t> rollbacks{0};
        std::atomic<std::uint64_t> checkpoints{0};
        std::atomic<std::uint64_t> wastedCycles{0};
        std::atomic<std::uint64_t> checkpointMicros{0};
        std::atomic<std::int32_t> obsoleteHolder{0};
    };

    SharedPage *shared_ = nullptr;
};

} // namespace slacksim

#endif // SLACKSIM_CORE_FORK_CHECKPOINT_HH
