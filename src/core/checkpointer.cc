/**
 * @file
 * Checkpointer implementation.
 */

#include "core/checkpointer.hh"

#include <chrono>
#include <cstring>

#include "fault/fault_plan.hh"
#include "obs/forensics.hh"
#include "obs/profiler.hh"
#include "obs/tracer.hh"
#include "util/checksum.hh"
#include "util/logging.hh"

namespace slacksim {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

std::uint64_t
nowNs()
{
    using clock = std::chrono::steady_clock;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now().time_since_epoch())
            .count());
}

} // namespace

Checkpointer::Checkpointer(SimSystem &sys, Pacer &pacer,
                           ManagerLogic &mgr, const EngineConfig &engine,
                           HostStats *host)
    : sys_(sys),
      pacer_(pacer),
      mgr_(mgr),
      engine_(engine),
      host_(host)
{
    SLACKSIM_ASSERT(host_ != nullptr, "Checkpointer needs host stats");
    nextCheckpointAt_ = 0; // the first checkpoint happens at t = 0
    if (engine_.checkpoint.extraCopyBytes)
        extraCopyArena_.resize(engine_.checkpoint.extraCopyBytes, 1);
    if (enabled() &&
        engine_.checkpoint.tech == CheckpointTech::ForkProcess) {
        fork_ = std::make_unique<ForkCheckpointer>(
            engine_.checkpoint.childTimeoutMs);
    }
}

Checkpointer::~Checkpointer()
{
    if (!sealThread_)
        return;
    {
        std::lock_guard<std::mutex> lk(sealMutex_);
        sealStop_ = true;
    }
    sealCv_.notify_all();
    sealThread_->join();
}

double
Checkpointer::sealAndCopy(std::uint32_t idx)
{
    const double t0 = nowSeconds();
    sealSnapshot(gens_[idx].buf);
    // Optionally emulate a heavier checkpoint technology (fork()
    // pays copy-on-write page faults across the whole virtual
    // space) by actually copying an arena of configured size. The
    // scratch destination is persistent so the emulated Tcpt term
    // measures copy bandwidth, not allocator churn.
    if (!extraCopyArena_.empty()) {
        extraCopyScratch_.resize(extraCopyArena_.size());
        std::memcpy(extraCopyScratch_.data(), extraCopyArena_.data(),
                    extraCopyScratch_.size());
        extraCopyArena_[0] = static_cast<std::uint8_t>(
            extraCopyScratch_[extraCopyScratch_.size() / 2] + 1);
    }
    return nowSeconds() - t0;
}

void
Checkpointer::sealThreadMain()
{
    std::unique_lock<std::mutex> lk(sealMutex_);
    for (;;) {
        sealCv_.wait(lk,
                     [this] { return sealJobPending_ || sealStop_; });
        if (!sealJobPending_) // stop with nothing queued
            return;
        sealJobPending_ = false;
        const std::uint32_t idx = sealIdx_;
        lk.unlock();
        const double busy = sealAndCopy(idx);
        lk.lock();
        sealBusySeconds_ = busy;
        sealJobDone_ = true;
        sealCv_.notify_all();
        if (sealStop_)
            return;
    }
}

void
Checkpointer::waitAsync()
{
    if (!sealOutstanding_)
        return;
    // Only the time the manager actually spends blocked here is
    // critical path; the seal thread's busy time already overlapped
    // with forward simulation and is accounted separately.
    const double t0 = nowSeconds();
    {
        std::unique_lock<std::mutex> lk(sealMutex_);
        sealCv_.wait(lk, [this] { return sealJobDone_; });
        sealJobDone_ = false;
    }
    host_->checkpointSeconds += nowSeconds() - t0;
    host_->checkpointAsyncSeconds += sealBusySeconds_;
    sealOutstanding_ = false;

    Generation &g = gens_[sealIdx_];
    g.takenAt = sealTakenAt_;
    g.valid = true;
    active_ = sealIdx_;
    haveCheckpoint_ = true;
    host_->checkpointBytes = g.buf.size();
    // Snapshot faults stay deferred to this join: they must land
    // *after* sealing (the damage is exactly what the integrity
    // trailer exists to catch) and they must fire on the manager
    // thread, where the run's fault plan is bound.
    if (auto *plan = fault::FaultPlan::active())
        plan->fireSnapshotFault(sealCheckpointNo_, g.buf,
                                sealTakenAt_);
}

Checkpointer::Event
Checkpointer::takeCheckpoint(Tick now)
{
    SLACKSIM_ASSERT(enabled(), "takeCheckpoint with checkpointing off");
    // Fork-technology note: a fork child resuming from rollback never
    // returns through this scope's destructor in the parent image;
    // the child's slot simply shows the scope as still open, and
    // endSession() closes it at collection time.
    obs::PhaseScope checkpoint(obs::Phase::Checkpoint);

    mgr_.closeInterval();

    // End a completed replay window *before* capturing the state so
    // the checkpoint itself records normal (non-replay) operation.
    if (pacer_.replayMode()) {
        host_->replayCycles += now - lastCheckpointAt_;
        pacer_.setReplayMode(false);
        sys_.uncore().setViolationCounting(true);
        obs::traceEnd(obs::TraceCategory::Checkpoint, "replay", now,
                      static_cast<std::int64_t>(now - lastCheckpointAt_));
        if (decisionLog_) {
            const std::uint64_t end = nowNs();
            obs::EpisodeRecord ep;
            ep.kind = obs::EpisodeKind::Replay;
            ep.cycle = now;
            ep.detail = now - lastCheckpointAt_;
            ep.hostNs = end > replayStartNs_ ? end - replayStartNs_ : 0;
            decisionLog_->recordEpisode(ep);
        }
    }

    const std::uint64_t ckpt_wall = obs::traceWallNs();
    auto *plan = fault::FaultPlan::active();
    Event event = Event::Taken;
    if (fork_) {
        // The paper's mechanism: this very process image becomes the
        // checkpoint; execution continues in a child. After a future
        // rollback, control re-emerges right here in the parent.
        // Child faults are decided *before* fork so the injection
        // record lives in parent memory and survives the recovery.
        auto child_fault = ForkCheckpointer::ChildFault::None;
        if (plan) {
            switch (plan->fireChildFault(fork_->checkpointCount() + 1,
                                         now)) {
              case fault::FaultPlan::ChildFault::Kill:
                child_fault = ForkCheckpointer::ChildFault::Kill;
                break;
              case fault::FaultPlan::ChildFault::Exit:
                child_fault = ForkCheckpointer::ChildFault::Exit;
                break;
              case fault::FaultPlan::ChildFault::None:
                break;
            }
        }
        const auto outcome = fork_->checkpoint(child_fault);
        if (plan &&
            child_fault != ForkCheckpointer::ChildFault::None &&
            outcome == ForkCheckpointer::Outcome::RolledBack) {
            plan->markLastHandled("parent-recovery");
        }
        haveCheckpoint_ = true;
        host_->checkpointsTaken = fork_->checkpointCount();
        host_->checkpointSeconds = fork_->checkpointSeconds();
        host_->checkpointBytes = 0; // a whole address space
        host_->rollbacks = fork_->rollbackCount();
        host_->wastedCycles = fork_->wastedCycles();
        if (outcome == ForkCheckpointer::Outcome::RolledBack)
            event = Event::ResumedFromRollback;
    } else {
        // A seal still in flight must land first: its generation is
        // about to become the spare this serialization overwrites.
        waitAsync();
        const double t0 = nowSeconds();
        // Serialize into the spare generation (reusing its capacity)
        // and only then promote it: gens_[active_] stays a valid
        // rollback image even if save() throws halfway through, and
        // then stays around as the last-good fallback. Serialization
        // itself is always synchronous — it reads the live quiesced
        // world — only the seal/copy tail may go to the background.
        const std::uint32_t spare = active_ ^ 1;
        SnapshotWriter writer(std::move(gens_[spare].buf));
        sys_.save(writer);
        pacer_.save(writer);
        mgr_.save(writer);
        gens_[spare].buf = writer.release();
        ++host_->checkpointsTaken;
        if (asyncSeal()) {
            // Hand the seal to the background thread and return to
            // forward simulation; waitAsync() promotes the generation
            // (and fires any deferred snapshot fault) at the next
            // join point. Until then the previous generation stays
            // the active rollback image.
            gens_[spare].valid = false;
            sealIdx_ = spare;
            sealTakenAt_ = now;
            sealCheckpointNo_ = host_->checkpointsTaken;
            host_->checkpointBytes = gens_[spare].buf.size();
            if (!sealThread_) {
                sealThread_ = sealRunner_.launch(
                    [this] { sealThreadMain(); });
            }
            {
                std::lock_guard<std::mutex> lk(sealMutex_);
                sealJobPending_ = true;
                sealJobDone_ = false;
            }
            sealCv_.notify_all();
            sealOutstanding_ = true;
        } else {
            sealAndCopy(spare);
            gens_[spare].takenAt = now;
            gens_[spare].valid = true;
            active_ = spare;
            haveCheckpoint_ = true;
            host_->checkpointBytes = gens_[active_].buf.size();
            // Snapshot faults land *after* sealing: the damage is
            // exactly what the integrity trailer exists to catch.
            if (plan) {
                plan->fireSnapshotFault(host_->checkpointsTaken,
                                        gens_[active_].buf, now);
            }
        }
        const double dt = nowSeconds() - t0;
        host_->checkpointSeconds += dt;
        if (decisionLog_) {
            obs::EpisodeRecord ep;
            ep.kind = obs::EpisodeKind::Checkpoint;
            ep.cycle = now;
            ep.detail = host_->checkpointBytes;
            ep.hostNs = static_cast<std::uint64_t>(dt * 1e9);
            decisionLog_->recordEpisode(ep);
        }
    }

    obs::traceSpanAt(ckpt_wall, obs::TraceCategory::Checkpoint,
                     "checkpoint", now, now,
                     static_cast<std::int64_t>(host_->checkpointBytes));

    lastCheckpointAt_ = now;
    nextCheckpointAt_ = now + engine_.checkpoint.interval;
    mgr_.beginInterval(now);

    if (event == Event::ResumedFromRollback) {
        // Forward progress: replay this interval cycle-by-cycle with
        // rollback disarmed and violation counting off.
        mgr_.clearRollbackRequest();
        mgr_.armRollback(false);
        pacer_.setReplayMode(true);
        sys_.uncore().setViolationCounting(false);
        replayStartNs_ = nowNs();
        if (decisionLog_) {
            // The in-memory rollback path records its episode in
            // rollback(); with fork() the rolled-back process is gone,
            // so the resumed parent marks the rollback here instead.
            obs::EpisodeRecord ep;
            ep.kind = obs::EpisodeKind::Rollback;
            ep.cycle = now;
            ep.detail = host_->wastedCycles;
            ep.hostNs = 0;
            decisionLog_->recordEpisode(ep);
        }
        obs::traceBegin(obs::TraceCategory::Checkpoint, "replay", now);
    } else {
        mgr_.armRollback(speculative() && !speculationSuppressed_);
        if (plan && speculative() && !speculationSuppressed_ &&
            plan->fireSpuriousRollback(host_->checkpointsTaken, now)) {
            mgr_.requestRollback();
            plan->markLastHandled("manager-rollback");
        }
    }
    return event;
}

void
Checkpointer::finalizeHostStats()
{
    waitAsync();
    // A run that stops inside a replay window (uop cap hit, workload
    // finished mid-interval) would otherwise leak the open "replay"
    // span into the Chrome trace; close it at the final global time
    // so rewound epochs always export balanced begin/end pairs.
    if (pacer_.replayMode()) {
        const Tick now = sys_.globalTime();
        host_->replayCycles +=
            now >= lastCheckpointAt_ ? now - lastCheckpointAt_ : 0;
        pacer_.setReplayMode(false);
        obs::traceEnd(obs::TraceCategory::Checkpoint, "replay", now,
                      static_cast<std::int64_t>(
                          now >= lastCheckpointAt_
                              ? now - lastCheckpointAt_
                              : 0));
    }
    if (fork_) {
        host_->checkpointsTaken = fork_->checkpointCount();
        host_->checkpointSeconds = fork_->checkpointSeconds();
        host_->rollbacks = fork_->rollbackCount();
        host_->wastedCycles = fork_->wastedCycles();
    }
}

Checkpointer::RollbackResult
Checkpointer::rollback(Tick current_global)
{
    // A just-taken checkpoint may still be sealing; join it so the
    // freshest generation is eligible for this restore.
    waitAsync();
    SLACKSIM_ASSERT(haveCheckpoint_, "rollback without a checkpoint");
    obs::PhaseScope rollback(obs::Phase::RollbackReplay);

    if (fork_) {
        fork_->addWastedCycles(current_global >= lastCheckpointAt_
                                   ? current_global - lastCheckpointAt_
                                   : 0);
        // Never returns: the checkpoint-holder process wakes up
        // inside its takeCheckpoint() call and reports
        // ResumedFromRollback to the engine.
        fork_->rollback();
    }

    obs::traceInstant(obs::TraceCategory::Checkpoint,
                      "violation-rollback", current_global,
                      static_cast<std::int64_t>(current_global -
                                                lastCheckpointAt_));
    const std::uint64_t rb_wall = obs::traceWallNs();
    const std::uint64_t rb_t0 = nowNs();

    mgr_.abortInterval();
    mgr_.clearRollbackRequest();
    mgr_.armRollback(false);

    // Try the active generation first, then the previous last-good
    // one. A generation that fails its integrity trailer is discarded
    // for good; verification happens *before* any restore() touches
    // component state, so a bad arena never trashes the world halfway
    // through.
    auto *plan = fault::FaultPlan::active();
    for (std::uint32_t attempt = 0; attempt < 2; ++attempt) {
        const std::uint32_t idx = active_ ^ attempt;
        Generation &g = gens_[idx];
        if (!g.valid)
            continue;
        const auto payload = verifySnapshot(g.buf);
        if (!payload) {
            g.valid = false;
            SLACKSIM_WARN("checkpoint from cycle ", g.takenAt,
                          " failed integrity verification (",
                          g.buf.size(), " bytes); discarding it");
            if (plan)
                plan->markLastHandled("restore-fallback");
            continue;
        }
        const bool fell_back = attempt != 0;
        if (fell_back) {
            active_ = idx;
            SLACKSIM_WARN("restoring last-good checkpoint from cycle ",
                          g.takenAt, " instead");
        }

        SnapshotReader reader(g.buf, *payload);
        sys_.restore(reader);
        pacer_.restore(reader);
        mgr_.restore(reader);
        SLACKSIM_ASSERT(reader.exhausted(),
                        "checkpoint not fully consumed on rollback");

        ++host_->rollbacks;
        host_->wastedCycles +=
            current_global >= g.takenAt ? current_global - g.takenAt
                                        : 0;
        lastCheckpointAt_ = g.takenAt;
        nextCheckpointAt_ = g.takenAt + engine_.checkpoint.interval;

        obs::traceSpanAt(rb_wall, obs::TraceCategory::Checkpoint,
                         "rollback", current_global, g.takenAt);
        if (decisionLog_) {
            obs::EpisodeRecord ep;
            ep.kind = obs::EpisodeKind::Rollback;
            ep.cycle = current_global;
            ep.detail = current_global >= g.takenAt
                            ? current_global - g.takenAt
                            : 0;
            ep.hostNs = nowNs() - rb_t0;
            decisionLog_->recordEpisode(ep);
        }

        // Forward progress: replay the interval cycle-by-cycle with
        // violation counting off; the next boundary re-checkpoints.
        pacer_.setReplayMode(true);
        sys_.uncore().setViolationCounting(false);
        replayStartNs_ = nowNs();
        mgr_.beginInterval(g.takenAt);
        obs::traceBegin(obs::TraceCategory::Checkpoint, "replay",
                        g.takenAt);
        return {fell_back ? RollbackResult::Status::FellBack
                          : RollbackResult::Status::Restored,
                g.takenAt};
    }

    // No generation verified: the run demotes instead of crashing.
    // Speculation stays suppressed (the policy layer records the
    // transition); execution continues forward from where it is, and
    // the next boundary takes a fresh, verifiable checkpoint.
    speculationSuppressed_ = true;
    haveCheckpoint_ = false;
    SLACKSIM_WARN("no checkpoint generation passed verification; "
                  "suppressing speculation and continuing forward");
    if (plan)
        plan->markLastHandled("demoted", "restore-fallback");
    mgr_.beginInterval(current_global);
    return {RollbackResult::Status::Demoted, current_global};
}

} // namespace slacksim
