/**
 * @file
 * Checkpointer implementation.
 */

#include "core/checkpointer.hh"

#include <chrono>
#include <cstring>

#include "obs/forensics.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace slacksim {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

std::uint64_t
nowNs()
{
    using clock = std::chrono::steady_clock;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now().time_since_epoch())
            .count());
}

} // namespace

Checkpointer::Checkpointer(SimSystem &sys, Pacer &pacer,
                           ManagerLogic &mgr, const EngineConfig &engine,
                           HostStats *host)
    : sys_(sys),
      pacer_(pacer),
      mgr_(mgr),
      engine_(engine),
      host_(host)
{
    SLACKSIM_ASSERT(host_ != nullptr, "Checkpointer needs host stats");
    nextCheckpointAt_ = 0; // the first checkpoint happens at t = 0
    if (engine_.checkpoint.extraCopyBytes)
        extraCopyArena_.resize(engine_.checkpoint.extraCopyBytes, 1);
    if (enabled() &&
        engine_.checkpoint.tech == CheckpointTech::ForkProcess) {
        fork_ = std::make_unique<ForkCheckpointer>();
    }
}

Checkpointer::Event
Checkpointer::takeCheckpoint(Tick now)
{
    SLACKSIM_ASSERT(enabled(), "takeCheckpoint with checkpointing off");

    mgr_.closeInterval();

    // End a completed replay window *before* capturing the state so
    // the checkpoint itself records normal (non-replay) operation.
    if (pacer_.replayMode()) {
        host_->replayCycles += now - lastCheckpointAt_;
        pacer_.setReplayMode(false);
        sys_.uncore().setViolationCounting(true);
        obs::traceEnd(obs::TraceCategory::Checkpoint, "replay", now,
                      static_cast<std::int64_t>(now - lastCheckpointAt_));
        if (decisionLog_) {
            const std::uint64_t end = nowNs();
            obs::EpisodeRecord ep;
            ep.kind = obs::EpisodeKind::Replay;
            ep.cycle = now;
            ep.detail = now - lastCheckpointAt_;
            ep.hostNs = end > replayStartNs_ ? end - replayStartNs_ : 0;
            decisionLog_->recordEpisode(ep);
        }
    }

    const std::uint64_t ckpt_wall = obs::traceWallNs();
    Event event = Event::Taken;
    if (fork_) {
        // The paper's mechanism: this very process image becomes the
        // checkpoint; execution continues in a child. After a future
        // rollback, control re-emerges right here in the parent.
        const auto outcome = fork_->checkpoint();
        haveCheckpoint_ = true;
        host_->checkpointsTaken = fork_->checkpointCount();
        host_->checkpointSeconds = fork_->checkpointSeconds();
        host_->checkpointBytes = 0; // a whole address space
        host_->rollbacks = fork_->rollbackCount();
        host_->wastedCycles = fork_->wastedCycles();
        if (outcome == ForkCheckpointer::Outcome::RolledBack)
            event = Event::ResumedFromRollback;
    } else {
        const double t0 = nowSeconds();
        // Serialize into the spare buffer (reusing its capacity) and
        // only then promote it: buffers_[active_] stays a valid
        // rollback image even if save() throws halfway through.
        const std::uint32_t spare = active_ ^ 1;
        SnapshotWriter writer(std::move(buffers_[spare]));
        sys_.save(writer);
        pacer_.save(writer);
        mgr_.save(writer);
        buffers_[spare] = writer.release();
        active_ = spare;
        haveCheckpoint_ = true;

        // Optionally emulate a heavier checkpoint technology (fork()
        // pays copy-on-write page faults across the whole virtual
        // space) by actually copying an arena of configured size. The
        // scratch destination is persistent so the emulated Tcpt term
        // measures copy bandwidth, not allocator churn.
        if (!extraCopyArena_.empty()) {
            extraCopyScratch_.resize(extraCopyArena_.size());
            std::memcpy(extraCopyScratch_.data(),
                        extraCopyArena_.data(),
                        extraCopyScratch_.size());
            extraCopyArena_[0] = static_cast<std::uint8_t>(
                extraCopyScratch_[extraCopyScratch_.size() / 2] + 1);
        }
        ++host_->checkpointsTaken;
        host_->checkpointBytes = buffers_[active_].size();
        const double dt = nowSeconds() - t0;
        host_->checkpointSeconds += dt;
        if (decisionLog_) {
            obs::EpisodeRecord ep;
            ep.kind = obs::EpisodeKind::Checkpoint;
            ep.cycle = now;
            ep.detail = host_->checkpointBytes;
            ep.hostNs = static_cast<std::uint64_t>(dt * 1e9);
            decisionLog_->recordEpisode(ep);
        }
    }

    obs::traceSpanAt(ckpt_wall, obs::TraceCategory::Checkpoint,
                     "checkpoint", now, now,
                     static_cast<std::int64_t>(host_->checkpointBytes));

    lastCheckpointAt_ = now;
    nextCheckpointAt_ = now + engine_.checkpoint.interval;
    mgr_.beginInterval(now);

    if (event == Event::ResumedFromRollback) {
        // Forward progress: replay this interval cycle-by-cycle with
        // rollback disarmed and violation counting off.
        mgr_.clearRollbackRequest();
        mgr_.armRollback(false);
        pacer_.setReplayMode(true);
        sys_.uncore().setViolationCounting(false);
        replayStartNs_ = nowNs();
        if (decisionLog_) {
            // The in-memory rollback path records its episode in
            // rollback(); with fork() the rolled-back process is gone,
            // so the resumed parent marks the rollback here instead.
            obs::EpisodeRecord ep;
            ep.kind = obs::EpisodeKind::Rollback;
            ep.cycle = now;
            ep.detail = host_->wastedCycles;
            ep.hostNs = 0;
            decisionLog_->recordEpisode(ep);
        }
        obs::traceBegin(obs::TraceCategory::Checkpoint, "replay", now);
    } else {
        mgr_.armRollback(speculative());
    }
    return event;
}

void
Checkpointer::finalizeHostStats()
{
    if (fork_) {
        host_->checkpointsTaken = fork_->checkpointCount();
        host_->checkpointSeconds = fork_->checkpointSeconds();
        host_->rollbacks = fork_->rollbackCount();
        host_->wastedCycles = fork_->wastedCycles();
    }
}

Tick
Checkpointer::rollback(Tick current_global)
{
    SLACKSIM_ASSERT(haveCheckpoint_, "rollback without a checkpoint");

    if (fork_) {
        fork_->addWastedCycles(current_global >= lastCheckpointAt_
                                   ? current_global - lastCheckpointAt_
                                   : 0);
        // Never returns: the checkpoint-holder process wakes up
        // inside its takeCheckpoint() call and reports
        // ResumedFromRollback to the engine.
        fork_->rollback();
    }

    ++host_->rollbacks;
    host_->wastedCycles += current_global >= lastCheckpointAt_
                               ? current_global - lastCheckpointAt_
                               : 0;

    obs::traceInstant(obs::TraceCategory::Checkpoint,
                      "violation-rollback", current_global,
                      static_cast<std::int64_t>(current_global -
                                                lastCheckpointAt_));
    const std::uint64_t rb_wall = obs::traceWallNs();
    const std::uint64_t rb_t0 = nowNs();

    mgr_.abortInterval();
    mgr_.clearRollbackRequest();
    mgr_.armRollback(false);

    SnapshotReader reader(buffers_[active_]);
    sys_.restore(reader);
    pacer_.restore(reader);
    mgr_.restore(reader);
    SLACKSIM_ASSERT(reader.exhausted(),
                    "checkpoint not fully consumed on rollback");

    obs::traceSpanAt(rb_wall, obs::TraceCategory::Checkpoint, "rollback",
                     current_global, lastCheckpointAt_);
    if (decisionLog_) {
        obs::EpisodeRecord ep;
        ep.kind = obs::EpisodeKind::Rollback;
        ep.cycle = current_global;
        ep.detail = current_global >= lastCheckpointAt_
                        ? current_global - lastCheckpointAt_
                        : 0;
        ep.hostNs = nowNs() - rb_t0;
        decisionLog_->recordEpisode(ep);
    }

    // Forward progress: replay the interval cycle-by-cycle with
    // violation counting off; the next boundary re-checkpoints.
    pacer_.setReplayMode(true);
    sys_.uncore().setViolationCounting(false);
    replayStartNs_ = nowNs();
    mgr_.beginInterval(lastCheckpointAt_);
    obs::traceBegin(obs::TraceCategory::Checkpoint, "replay",
                    lastCheckpointAt_);
    return lastCheckpointAt_;
}

} // namespace slacksim
