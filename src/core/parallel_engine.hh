/**
 * @file
 * The threaded SlackSim engine: one host thread per simulated core
 * plus the simulation manager on the calling thread (paper Section 2).
 *
 * Pacing protocol: each core owns an atomic local clock; the manager
 * publishes a per-core max-local-time. A core runs bursts while
 * local <= max and parks on a per-core wake word (C++20 atomic wait)
 * otherwise; the manager bumps the wake word whenever it raises the
 * limit. Progress notifications flow the other way through a global
 * progress counter the manager can sleep on. Checkpoints are taken
 * when all unfinished cores quiesce at the boundary (pacing clamps
 * them there); rollbacks use a stop-the-world pause handshake.
 */

#ifndef SLACKSIM_CORE_PARALLEL_ENGINE_HH
#define SLACKSIM_CORE_PARALLEL_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/checkpointer.hh"
#include "core/config.hh"
#include "core/manager_logic.hh"
#include "core/pacer.hh"
#include "core/run_result.hh"
#include "core/sim_system.hh"
#include "fault/recovery_policy.hh"
#include "util/progress_board.hh"
#include "util/spsc_queue.hh"
#include "util/task_runner.hh"

namespace slacksim {

namespace obs {
class StallWatchdog;
} // namespace obs

/** The multi-threaded engine. */
class ParallelEngine
{
  public:
    explicit ParallelEngine(SimSystem &sys);

    /** Run to completion (or to the configured uop budget). */
    RunResult run();

  private:
    /** Per-core shared control block (core thread <-> manager). */
    struct CoreControl
    {
        alignas(64) std::atomic<Tick> maxLocal{0};
        alignas(64) std::atomic<std::uint32_t> wakeWord{0};
        alignas(64) std::atomic<bool> finished{false};
        std::atomic<std::uint64_t> committed{0};
    };

    enum Phase : std::uint32_t { phaseRunning = 0, phasePaused = 1 };

    /** One consistent pass over every core clock (see sampleClocks). */
    struct ClockSample
    {
        Tick global = 0;          //!< min unfinished (max when done)
        Tick minUnfinished = maxTick;
        Tick maxUnfinished = 0;
    };

    void coreThreadMain(CoreId c);
    void relayThreadMain(std::uint32_t cluster);
    void wakeCore(CoreId c);
    /**
     * Scan every core clock exactly once: fills localsScratch_ and
     * returns the global time plus the unfinished min/max (slack
     * spread). Replaces the separate computeGlobal / pacing / spread
     * rescans the manager loop used to do per iteration.
     */
    ClockSample sampleClocks();
    /** Publish new pacing limits from an existing clock sample. */
    void updatePacing(bool monotone, const ClockSample &sample);
    /** Publish new pacing limits from a fresh scan; @p monotone false
     *  only while the cores are paused (rollback). */
    void updatePacing(bool monotone);
    Tick computeGlobal() const;
    bool quiescedAtBoundary(Tick boundary) const;
    void pauseWorld();
    void resumeWorld();
    void refreshControlAfterRestore();
    RunResult collectResult(double wall_seconds) const;

    SimSystem &sys_;
    EngineConfig engine_;
    HostStats host_;
    Pacer pacer_;
    ManagerLogic mgr_;
    Checkpointer ckpt_;
    fault::RecoveryPolicy recovery_{engine_, pacer_, mgr_, ckpt_};
    std::uint64_t backpressureRounds_ = 0; //!< injected service skips

    /** Hierarchical-manager relay: consolidates one cluster's OutQs
     *  toward the root manager (paper Section 2's scaling note). */
    struct Relay
    {
        explicit Relay(std::uint32_t capacity)
            : queue(capacity)
        {
        }
        SpscQueue<BusMsg> queue;
        alignas(64) std::atomic<Tick> watermark{0};
        CoreId first = 0;
        CoreId last = 0; //!< exclusive
        /** Events popped from an OutQ but not yet pushed when the
         *  relay was stopped; drained post-join by the manager. */
        std::vector<BusMsg> carry;
    };

    std::vector<std::unique_ptr<CoreControl>> controls_;
    std::vector<std::unique_ptr<Relay>> relays_;
    std::vector<Tick> localsScratch_;
    /** Worker handles from the configured TaskRunner: pool threads
     *  under the job server, plain spawned threads otherwise. */
    std::vector<std::unique_ptr<TaskRunner::Handle>> threads_;
    std::vector<std::unique_ptr<TaskRunner::Handle>> relayThreads_;
    /** Used when EngineConfig::runner is null (single-run tools). */
    ThreadSpawnRunner fallbackRunner_;

    std::atomic<std::uint32_t> phase_{phaseRunning};
    std::atomic<std::uint32_t> pauseGen_{0};
    std::atomic<std::uint32_t> resumeEpoch_{0};
    std::atomic<std::uint32_t> ackCount_{0};
    /** Sharded progress: slot c per core, slot numCores+r per relay.
     *  Constructed once the relay count is known. */
    std::unique_ptr<ProgressBoard> board_;
    std::atomic<bool> stop_{false};

    /** Stall watchdog for this run, or nullptr (--watchdog-ms=0).
     *  Owned by the ObsSession; set for the duration of run().
     *  Worker indices: core c -> c, relay r -> numCores + r. */
    obs::StallWatchdog *watchdog_ = nullptr;
};

} // namespace slacksim

#endif // SLACKSIM_CORE_PARALLEL_ENGINE_HH
