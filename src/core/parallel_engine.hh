/**
 * @file
 * The threaded SlackSim engine: worker host threads driving the
 * simulated cores plus the simulation manager on the calling thread
 * (paper Section 2, generalized to host-topology-aware scheduling).
 *
 * Host-thread multiplexing: instead of the paper's fixed one-thread-
 * per-core mapping, the simulated cores are partitioned across
 * EngineConfig::hostThreads - 1 worker threads (auto-sized from the
 * host when 0), parti-gem5-style. Each worker round-robins bursts
 * over its owned cores and only parks when *every* owned core is
 * blocked, which collapses the per-core park/wake storms the profiler
 * attributed most parallel host time to. The degenerate inline mode
 * (hostThreads = 1, or an auto-detected single-CPU host) launches no
 * workers at all: the manager drives every core burst itself, so a
 * host with nothing to gain from concurrency pays zero park/wake
 * cost — the honest configuration in which parallel >= serial.
 *
 * Pacing protocol: each core owns an atomic local clock; the manager
 * publishes a per-core max-local-time. Wakes are coalesced: pacing
 * changes and deliveries mark pending cores in a bitset, and one
 * sweep per manager iteration bumps each affected worker's wake word
 * once. A worker announces itself in a `parked` flag before waiting,
 * so the sweep skips the futex syscall entirely for running workers
 * (the Dekker-style store-buffering argument in wakeWorker() makes
 * the skip lost-wake-free). Workers spin/yield a few idle rounds
 * before parking — on oversubscribed hosts the yield usually hands
 * the CPU to the manager, whose next service round unblocks them
 * without any futex round trip. Progress notifications flow the other
 * way through a sharded progress board the manager can sleep on.
 * Checkpoints are taken when all unfinished cores quiesce at the
 * boundary (pacing clamps them there); rollbacks use a stop-the-world
 * pause handshake acknowledged once per worker.
 */

#ifndef SLACKSIM_CORE_PARALLEL_ENGINE_HH
#define SLACKSIM_CORE_PARALLEL_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/checkpointer.hh"
#include "core/config.hh"
#include "core/manager_logic.hh"
#include "core/pacer.hh"
#include "core/run_result.hh"
#include "core/sim_system.hh"
#include "fault/recovery_policy.hh"
#include "util/core_bitset.hh"
#include "util/progress_board.hh"
#include "util/spsc_queue.hh"
#include "util/task_runner.hh"

namespace slacksim {

namespace obs {
class StallWatchdog;
} // namespace obs

/** The multi-threaded engine. */
class ParallelEngine
{
  public:
    explicit ParallelEngine(SimSystem &sys);

    /** Run to completion (or to the configured uop budget). */
    RunResult run();

    /** @return worker threads the run will use (0 = inline mode:
     *  the manager drives every core burst itself). */
    std::uint32_t workerCount() const { return workerCount_; }

  private:
    /** Per-core shared control block (worker <-> manager). */
    struct CoreControl
    {
        alignas(64) std::atomic<Tick> maxLocal{0};
        alignas(64) std::atomic<bool> finished{false};
        std::atomic<std::uint64_t> committed{0};
    };

    /** Per-worker park/wake block. One wake word per *worker*: a
     *  worker parks only when all its owned cores are blocked, and
     *  the manager's coalesced sweep bumps it at most once per
     *  iteration regardless of how many owned cores changed. */
    struct WorkerControl
    {
        alignas(64) std::atomic<std::uint32_t> wakeWord{0};
        alignas(64) std::atomic<bool> parked{false};
        CoreId first = 0;
        CoreId last = 0; //!< exclusive
        std::uint64_t parks = 0; //!< futex parks (worker-local)
    };

    enum Phase : std::uint32_t { phaseRunning = 0, phasePaused = 1 };

    /** What one core's burst attempt amounted to (worker + inline). */
    enum class CoreRun : std::uint8_t
    {
        Progress,     //!< advanced >= 1 cycle (or just finished)
        Paced,        //!< at the pacing limit
        Inbound,      //!< inert, awaiting an InQ delivery
        Backpressure, //!< OutQ full, needs a manager drain
        Finished      //!< trace complete
    };

    /** One consistent pass over every core clock (see sampleClocks). */
    struct ClockSample
    {
        Tick global = 0;          //!< min unfinished (max when done)
        Tick minUnfinished = maxTick;
        Tick maxUnfinished = 0;
    };

    void workerThreadMain(std::uint32_t w);
    void relayThreadMain(std::uint32_t cluster);
    /** Run one burst for core @p c (worker threads and inline mode
     *  share this path). Updates the core's control block, progress
     *  board and trace spans. */
    CoreRun runCoreBurst(CoreId c);
    /** Drive every core one scan in inline mode. @return true when
     *  any core advanced. */
    bool driveInline();
    /** Mark core @p c's worker for the next coalesced wake sweep. */
    void requestWake(CoreId c);
    /** Bump + (if parked) futex-wake every marked worker, at most
     *  once each, then clear the marks. */
    void flushWakes();
    /** Unconditionally bump + wake one worker (pause/shutdown). */
    void wakeWorkerNow(std::uint32_t w);
    /**
     * Scan every core clock exactly once: fills localsScratch_ and
     * returns the global time plus the unfinished min/max (slack
     * spread). Replaces the separate computeGlobal / pacing / spread
     * rescans the manager loop used to do per iteration.
     */
    ClockSample sampleClocks();
    /** Publish new pacing limits from an existing clock sample and
     *  flush the coalesced wake sweep. */
    void updatePacing(bool monotone, const ClockSample &sample);
    /** Publish new pacing limits from a fresh scan; @p monotone false
     *  only while the cores are paused (rollback). */
    void updatePacing(bool monotone);
    Tick computeGlobal() const;
    bool quiescedAtBoundary(Tick boundary) const;
    void pauseWorld();
    void resumeWorld();
    void refreshControlAfterRestore();
    RunResult collectResult(double wall_seconds) const;

    SimSystem &sys_;
    EngineConfig engine_;
    HostStats host_;
    Pacer pacer_;
    ManagerLogic mgr_;
    Checkpointer ckpt_;
    fault::RecoveryPolicy recovery_{engine_, pacer_, mgr_, ckpt_};
    std::uint64_t backpressureRounds_ = 0; //!< injected service skips

    /** Hierarchical-manager relay: consolidates one cluster's OutQs
     *  toward the root manager (paper Section 2's scaling note). */
    struct Relay
    {
        explicit Relay(std::uint32_t capacity)
            : queue(capacity)
        {
        }
        SpscQueue<BusMsg> queue;
        alignas(64) std::atomic<Tick> watermark{0};
        CoreId first = 0;
        CoreId last = 0; //!< exclusive
        /** Events popped from an OutQ but not yet pushed when the
         *  relay was stopped; drained post-join by the manager. */
        std::vector<BusMsg> carry;
    };

    std::vector<std::unique_ptr<CoreControl>> controls_;
    std::vector<std::unique_ptr<WorkerControl>> workers_;
    std::uint32_t workerCount_ = 0; //!< 0 = inline mode
    /** Core -> owning worker (meaningless in inline mode). */
    std::vector<std::uint32_t> workerOf_;
    /** Coalesced wake sweep: cores marked since the last flush. */
    CoreBitset wakePending_;
    /** Scratch: workers already bumped in the current flush. */
    std::vector<std::uint8_t> workerWoken_;
    /** Last burst outcome per core (worker park recheck). */
    std::vector<std::uint8_t> lastRun_;
    /** Inline-mode scan start, rotated like the serial engine's so no
     *  core is systematically serviced first. */
    CoreId inlineRotate_ = 0;
    /** Inline mode with no relays: the manager is the only thread in
     *  the run, so cross-thread signalling (board bumps, seq_cst
     *  pacing stores, wake bookkeeping) is pure overhead and skipped
     *  on the hot path. */
    bool inlineLean_ = false;
    std::vector<std::unique_ptr<Relay>> relays_;
    std::vector<Tick> localsScratch_;
    /** Worker handles from the configured TaskRunner: pool threads
     *  under the job server, plain spawned threads otherwise. */
    std::vector<std::unique_ptr<TaskRunner::Handle>> threads_;
    std::vector<std::unique_ptr<TaskRunner::Handle>> relayThreads_;
    /** Used when EngineConfig::runner is null (single-run tools). */
    ThreadSpawnRunner fallbackRunner_;

    std::atomic<std::uint32_t> phase_{phaseRunning};
    std::atomic<std::uint32_t> pauseGen_{0};
    std::atomic<std::uint32_t> resumeEpoch_{0};
    std::atomic<std::uint32_t> ackCount_{0};
    /** Sharded progress: slot c per core, slot numCores+r per relay.
     *  Constructed once the relay count is known. */
    std::unique_ptr<ProgressBoard> board_;
    std::atomic<bool> stop_{false};

    /** Stall watchdog for this run, or nullptr (--watchdog-ms=0).
     *  Owned by the ObsSession; set for the duration of run().
     *  Worker indices: core c -> c, relay r -> numCores + r. */
    obs::StallWatchdog *watchdog_ = nullptr;
};

} // namespace slacksim

#endif // SLACKSIM_CORE_PARALLEL_ENGINE_HH
