/**
 * @file
 * Deterministic single-threaded reference engine. Drives the same
 * component graph as the parallel engine with a fixed round-robin
 * host schedule:
 *  - cycle-by-cycle: each core runs one cycle, then events are
 *    serviced in (ts, src, seq) order — the accuracy gold standard;
 *  - slack schemes: cores run bursts up to their pacing limit and
 *    their events are serviced in (deterministic) arrival order, so
 *    violation machinery can be unit-tested reproducibly.
 */

#ifndef SLACKSIM_CORE_SERIAL_ENGINE_HH
#define SLACKSIM_CORE_SERIAL_ENGINE_HH

#include "core/checkpointer.hh"
#include "core/config.hh"
#include "core/manager_logic.hh"
#include "core/pacer.hh"
#include "core/run_result.hh"
#include "core/sim_system.hh"
#include "fault/recovery_policy.hh"

namespace slacksim {

/** The single-threaded engine. */
class SerialEngine
{
  public:
    /** @param sys a freshly built system (the engine mutates it). */
    SerialEngine(SimSystem &sys);

    /** Run to completion (or to the configured uop budget). */
    RunResult run();

  private:
    void updatePacing(bool monotone);
    bool quiescedAtBoundary() const;
    RunResult collectResult(double wall_seconds) const;

    SimSystem &sys_;
    EngineConfig engine_;
    HostStats host_;
    Pacer pacer_;
    ManagerLogic mgr_;
    Checkpointer ckpt_;
    fault::RecoveryPolicy recovery_{engine_, pacer_, mgr_, ckpt_};
    std::vector<Tick> maxLocal_;
    std::vector<Tick> localsScratch_;
    std::uint64_t backpressureRounds_ = 0; //!< injected service skips
};

} // namespace slacksim

#endif // SLACKSIM_CORE_SERIAL_ENGINE_HH
