/**
 * @file
 * One-call entry point: build the world from a SimConfig and run it
 * on the configured host engine. This is the main public API of the
 * library (see examples/quickstart.cpp).
 */

#ifndef SLACKSIM_CORE_RUN_HH
#define SLACKSIM_CORE_RUN_HH

#include "core/config.hh"
#include "core/run_result.hh"

namespace slacksim {

/** Build a SimSystem from @p config and simulate it to completion. */
RunResult runSimulation(const SimConfig &config);

/**
 * Convenience preset: the paper's experimental setup (8-core CMP,
 * Section 2.1 parameters) running @p kernel, stopping after
 * @p max_uops committed micro-ops (0 = run the trace to the end).
 */
SimConfig paperConfig(const std::string &kernel,
                      std::uint64_t max_uops = 0);

} // namespace slacksim

#endif // SLACKSIM_CORE_RUN_HH
