/**
 * @file
 * The complete simulated world: all core complexes plus the uncore,
 * built from one SimConfig. Engines drive it; the checkpoint
 * machinery serializes it wholesale.
 */

#ifndef SLACKSIM_CORE_SIM_SYSTEM_HH
#define SLACKSIM_CORE_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/core_complex.hh"
#include "mem/address_space.hh"
#include "stats/stats.hh"
#include "uncore/uncore.hh"
#include "util/snapshot.hh"
#include "workload/trace.hh"

namespace slacksim {

namespace fault {
class FaultPlan;
}

/** The target machine + workload instantiated and ready to run. */
class SimSystem : public Snapshotable
{
  public:
    /** Build the world: generates the workload and all components. */
    explicit SimSystem(const SimConfig &config);

    SimSystem(const SimSystem &) = delete;
    SimSystem &operator=(const SimSystem &) = delete;

    const SimConfig &config() const { return config_; }
    const Workload &workload() const { return workload_; }

    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }

    CoreComplex &core(CoreId i) { return *cores_[i]; }
    const CoreComplex &core(CoreId i) const { return *cores_[i]; }
    Uncore &uncore() { return *uncore_; }
    const Uncore &uncore() const { return *uncore_; }

    const UncoreStats &uncoreStats() const { return uncoreStats_; }
    const ViolationStats &violations() const { return violations_; }

    /** @return sum of committed micro-ops over all cores. */
    std::uint64_t totalCommittedUops() const;

    /**
     * Zero every simulated statistic (core, uncore, violation
     * counters, histograms) without touching architectural state —
     * the warmup-discard operation. Caller must guarantee no core
     * thread is running (serial engine, or parallel engine paused).
     */
    void resetSimStats();

    /** @return true when every core finished its trace. */
    bool allFinished() const;

    /** @return the smallest local time among unfinished cores, or
     *  the largest local time when all cores finished. */
    Tick globalTime() const;

    /** @return the largest local time among all cores. */
    Tick maxLocalTime() const;

    void save(SnapshotWriter &writer) const override;
    void restore(SnapshotReader &reader) override;

    /**
     * Bind this world to its run: the token runSimulation() minted
     * and the (possibly null) fault plan it installed. The engines
     * read the binding to replicate both onto every worker thread
     * they borrow (ScopedRunToken + ScopedFaultPlan), which is what
     * keeps concurrent runs in one process from cross-registering
     * obs threads or firing each other's faults.
     */
    void
    setRunBinding(std::uint64_t token, fault::FaultPlan *plan)
    {
        runToken_ = token;
        faultPlan_ = plan;
    }

    /** @return the run token bound by runSimulation() (0: unbound). */
    std::uint64_t runToken() const { return runToken_; }

    /** @return the fault plan of this run, or nullptr. */
    fault::FaultPlan *faultPlan() const { return faultPlan_; }

  private:
    SimConfig config_;
    std::uint64_t runToken_ = 0;
    fault::FaultPlan *faultPlan_ = nullptr;
    Workload workload_;
    UncoreStats uncoreStats_;
    ViolationStats violations_;
    std::vector<std::unique_ptr<CoreComplex>> cores_;
    std::unique_ptr<Uncore> uncore_;
};

} // namespace slacksim

#endif // SLACKSIM_CORE_SIM_SYSTEM_HH
