/**
 * @file
 * Pacer implementation.
 */

#include "core/pacer.hh"

#include <algorithm>

#include "obs/forensics.hh"
#include "obs/profiler.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace slacksim {

Pacer::Pacer(const EngineConfig &engine, std::uint32_t num_cores,
             HostStats *host)
    : engine_(engine),
      numCores_(num_cores),
      host_(host),
      p2pRng_(engine.p2pSeed)
{
    SLACKSIM_ASSERT(host_ != nullptr, "Pacer needs host stats");
    SLACKSIM_ASSERT(numCores_ >= 1, "Pacer needs at least one core");
    switch (engine_.scheme) {
      case SchemeKind::Bounded:
        bound_ = engine_.slackBound;
        break;
      case SchemeKind::Adaptive:
        bound_ = engine_.adaptive.initialBound;
        nextEpoch_ = engine_.adaptive.epochCycles;
        break;
      case SchemeKind::LaxP2P:
        bound_ = engine_.slackBound;
        peers_.resize(numCores_);
        shufflePeers(0);
        break;
      default:
        break;
    }
}

void
Pacer::shufflePeers(Tick global_time)
{
    // Pair every core with a uniformly random *other* core, like
    // Graphite's Lax-P2P picks a random partner per synchronization.
    for (CoreId c = 0; c < numCores_; ++c) {
        if (numCores_ == 1) {
            peers_[c] = c;
            continue;
        }
        CoreId peer =
            static_cast<CoreId>(p2pRng_.below(numCores_ - 1));
        if (peer >= c)
            ++peer;
        peers_[c] = peer;
    }
    nextShuffleAt_ = global_time + engine_.p2pShufflePeriod;
}

Tick
Pacer::maxLocalFor(Tick global_time) const
{
    if (replayMode_)
        return global_time; // forced cycle-by-cycle during replay
    // A degradation clamp never loosens a scheme, only tightens it
    // (quantum/cc already pace at least this strictly).
    if (forcedBound_) {
        return std::min(nativeMaxLocalFor(global_time),
                        global_time + forcedBound_);
    }
    return nativeMaxLocalFor(global_time);
}

Tick
Pacer::nativeMaxLocalFor(Tick global_time) const
{
    switch (engine_.scheme) {
      case SchemeKind::CycleByCycle:
        return global_time;
      case SchemeKind::Quantum: {
        // Barrier at every multiple of the quantum: a core may run up
        // to (but not past) the next boundary.
        const Tick q = engine_.quantum;
        return (global_time / q + 1) * q - 1;
      }
      case SchemeKind::Bounded:
      case SchemeKind::Adaptive:
        return global_time + bound_;
      case SchemeKind::LaxP2P:
        // Per-core limits come from maxLocalForCore(); the global
        // form is only used as a conservative fallback.
        return global_time + bound_;
      case SchemeKind::Unbounded:
        return maxTick - 1;
    }
    return global_time;
}

Tick
Pacer::maxLocalForCore(CoreId core, Tick global_time,
                       const std::vector<Tick> &locals)
{
    if (engine_.scheme != SchemeKind::LaxP2P || replayMode_ ||
        forcedBound_) {
        return maxLocalFor(global_time);
    }
    SLACKSIM_ASSERT(core < peers_.size() &&
                        locals.size() == peers_.size(),
                    "lax-p2p pacing geometry mismatch");
    if (global_time >= nextShuffleAt_)
        shufflePeers(global_time);
    // A core may run ahead of its randomly chosen peer by at most the
    // slack bound. The slowest core's peer is always >= the global
    // minimum, so the slowest core can always run: deadlock-free.
    return locals[peers_[core]] + bound_;
}

bool
Pacer::sortedService() const
{
    return replayMode_ || engine_.scheme == SchemeKind::CycleByCycle;
}

void
Pacer::observe(Tick global_time, const ViolationStats &violations)
{
    if (engine_.scheme != SchemeKind::Adaptive || replayMode_ ||
        forcedBound_) {
        return;
    }
    if (global_time < nextEpoch_ || global_time == 0)
        return;
    // Past the early-outs: this iteration actually evaluates an
    // epoch, which is the part worth attributing.
    obs::PhaseScope epoch(obs::Phase::PacerEpoch);
    const auto &p = engine_.adaptive;
    nextEpoch_ = global_time + p.epochCycles;

    std::uint64_t counted = 0;
    if (p.adaptOnBus)
        counted += violations.busViolations;
    if (p.adaptOnMap)
        counted += violations.mapViolations;
    double rate;
    if (p.windowedRate) {
        const std::uint64_t dv =
            counted >= lastCounted_ ? counted - lastCounted_ : 0;
        const Tick dt =
            global_time > lastGlobal_ ? global_time - lastGlobal_ : 1;
        rate = static_cast<double>(dv) / static_cast<double>(dt);
        lastCounted_ = counted;
        lastGlobal_ = global_time;
    } else {
        // The paper's definition: total violations / total cycles.
        rate = static_cast<double>(counted) /
               static_cast<double>(global_time);
    }

    // Dead zone: leave the bound alone while the running rate stays
    // within the violation band around the target.
    const Tick old_bound = bound_;
    obs::BandVerdict verdict = obs::BandVerdict::Hold;
    if (rate > p.targetViolationRate * (1.0 + p.violationBand)) {
        const Tick step = std::max<Tick>(1, bound_ / 4);
        bound_ = bound_ > p.minBound + step ? bound_ - step : p.minBound;
        verdict = obs::BandVerdict::Shrink;
    } else if (rate < p.targetViolationRate * (1.0 - p.violationBand)) {
        const Tick step = std::max<Tick>(1, bound_ / 4);
        bound_ = std::min(p.maxBound, bound_ + step);
        verdict = obs::BandVerdict::Grow;
    }
    if (decisionLog_) {
        obs::DecisionRecord d;
        d.cycle = global_time;
        d.rate = rate;
        d.verdict = verdict;
        d.oldBound = old_bound;
        d.newBound = bound_;
        decisionLog_->recordDecision(d);
    }
    if (bound_ != old_bound) {
        ++host_->slackAdjustments;
        obs::traceInstant(obs::TraceCategory::Adaptive, "adaptive-bound",
                          global_time, static_cast<std::int64_t>(bound_),
                          static_cast<std::int64_t>(old_bound));
        obs::traceCounter(obs::TraceCategory::Adaptive, "slack-bound",
                          global_time, static_cast<std::int64_t>(bound_));
    }
}

void
Pacer::save(SnapshotWriter &writer) const
{
    writer.putMarker(0x9ace);
    writer.put(bound_);
    writer.put(nextEpoch_);
    writer.put(replayMode_);
    writer.putVector(peers_);
    writer.put(nextShuffleAt_);
    writer.put(p2pRng_.rawState());
    writer.put(lastCounted_);
    writer.put(lastGlobal_);
}

void
Pacer::restore(SnapshotReader &reader)
{
    reader.checkMarker(0x9ace);
    const Tick before = bound_;
    bound_ = reader.get<Tick>();
    nextEpoch_ = reader.get<Tick>();
    replayMode_ = reader.get<bool>();
    peers_ = reader.getVector<CoreId>();
    nextShuffleAt_ = reader.get<Tick>();
    p2pRng_.setRawState(
        reader.get<std::array<std::uint64_t, 4>>());
    lastCounted_ = reader.get<std::uint64_t>();
    lastGlobal_ = reader.get<Tick>();
    // A rollback rewinds the bound without an observe() decision; log
    // it so the old->new chain in the report stays contiguous. The
    // cycle recorded is the next evaluation time restored with the
    // snapshot — the closest notion of "when" the rewound bound takes
    // effect.
    if (decisionLog_ && bound_ != before) {
        obs::DecisionRecord d;
        d.cycle = nextEpoch_;
        d.rate = 0.0;
        d.verdict = obs::BandVerdict::Restored;
        d.oldBound = before;
        d.newBound = bound_;
        decisionLog_->recordDecision(d);
    }
}

} // namespace slacksim
