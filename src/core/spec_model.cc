/**
 * @file
 * Speculative-time model implementation.
 */

#include "core/spec_model.hh"

#include "util/logging.hh"

namespace slacksim {

double
speculativeTimeEstimate(const SpecModelInputs &in)
{
    SLACKSIM_ASSERT(in.interval > 0.0, "model needs a positive interval");
    SLACKSIM_ASSERT(in.fraction >= 0.0 && in.fraction <= 1.0,
                    "F must be a fraction");
    const double normal = (1.0 - in.fraction) * in.tCpt;
    const double wasted =
        in.fraction * in.rollbackDistance * in.tCpt / in.interval;
    const double replay = in.fraction * in.tCc;
    return normal + wasted + replay;
}

double
degradedTimeEstimate(const SpecModelInputs &in, double demoted_fraction)
{
    SLACKSIM_ASSERT(demoted_fraction >= 0.0 && demoted_fraction <= 1.0,
                    "demoted fraction must be a fraction");
    const double ts = speculativeTimeEstimate(in);
    return demoted_fraction * in.tCpt + (1.0 - demoted_fraction) * ts;
}

} // namespace slacksim
