/**
 * @file
 * ParallelEngine implementation.
 */

#include "core/parallel_engine.hh"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <string>
#include <thread>

#include "fault/fault_plan.hh"
#include "obs/obs_session.hh"
#include "obs/profiler.hh"
#include "obs/tracer.hh"
#include "util/cancel.hh"
#include "util/logging.hh"
#include "util/run_token.hh"

namespace slacksim {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

// core-park span arg: why the core thread went to sleep.
constexpr std::int64_t parkPaced = 0;   //!< at the pacing limit
constexpr std::int64_t parkInbound = 1; //!< inert, awaiting delivery

// Park spans shorter than this are dropped: an atomic wait that
// returned immediately is scheduler noise, not a park worth a record.
constexpr std::uint64_t parkSpanMinNs = 1000;

} // namespace

ParallelEngine::ParallelEngine(SimSystem &sys)
    : sys_(sys),
      engine_(sys.config().engine),
      pacer_(engine_, sys.numCores(), &host_),
      mgr_(sys, engine_, &host_),
      ckpt_(sys, pacer_, mgr_, engine_, &host_)
{
    for (CoreId c = 0; c < sys_.numCores(); ++c)
        controls_.push_back(std::make_unique<CoreControl>());
    if (engine_.managerClusters > 0) {
        const std::uint32_t clusters = engine_.managerClusters;
        const CoreId per =
            (sys_.numCores() + clusters - 1) / clusters;
        for (std::uint32_t r = 0; r < clusters; ++r) {
            auto relay = std::make_unique<Relay>(
                engine_.queueCapacity * 4);
            relay->first = static_cast<CoreId>(r * per);
            relay->last = static_cast<CoreId>(
                std::min<std::uint64_t>(sys_.numCores(),
                                        std::uint64_t{r + 1} * per));
            if (relay->first < relay->last)
                relays_.push_back(std::move(relay));
        }
    }
    board_ = std::make_unique<ProgressBoard>(
        sys_.numCores() + static_cast<std::uint32_t>(relays_.size()));
}

void
ParallelEngine::wakeCore(CoreId c)
{
    controls_[c]->wakeWord.fetch_add(1, std::memory_order_release);
    controls_[c]->wakeWord.notify_one();
}

void
ParallelEngine::coreThreadMain(CoreId c)
{
    CoreComplex &cc = sys_.core(c);
    CoreControl &ctl = *controls_[c];
    std::uint32_t acked_gen = 0;

    // Adopt the run's identity on this (possibly pool-borrowed) host
    // thread: the token gates obs registration to our own run's
    // sessions, the fault-plan binding scopes injected faults to us.
    ScopedRunToken token_scope(sys_.runToken());
    fault::ScopedFaultPlan plan_scope(sys_.faultPlan());

    const std::string role = "core " + std::to_string(c);
    setLogThreadContext(role, &cc.localClock());
    obs::Tracer::instance().registerThread(role);
    obs::Profiler::instance().registerThread(role);

    while (!stop_.load(std::memory_order_acquire)) {
        if (phase_.load(std::memory_order_acquire) != phaseRunning) {
            // Stop-the-world pause: acknowledge exactly once per
            // pause generation (atomic waits may wake spuriously),
            // then sleep until resumed.
            const std::uint32_t gen =
                pauseGen_.load(std::memory_order_acquire);
            if (gen != acked_gen) {
                acked_gen = gen;
                ackCount_.fetch_add(1, std::memory_order_seq_cst);
                ackCount_.notify_one();
                if (watchdog_)
                    watchdog_->note(c, "pause-ack", cc.localTime());
            }
            const std::uint32_t e =
                resumeEpoch_.load(std::memory_order_acquire);
            if (phase_.load(std::memory_order_acquire) !=
                    phaseRunning &&
                !stop_.load(std::memory_order_acquire)) {
                obs::PhaseScope barrier(obs::Phase::Barrier);
                resumeEpoch_.wait(e, std::memory_order_acquire);
            }
            continue;
        }

        if (cc.finished()) {
            if (!ctl.finished.load(std::memory_order_relaxed)) {
                ctl.finished.store(true, std::memory_order_release);
                ctl.committed.store(cc.committedUops(),
                                    std::memory_order_release);
                board_->bump(c);
                if (watchdog_)
                    watchdog_->note(c, "finished", cc.localTime());
            }
            // Dormant until something changes (stop, pause, restore).
            const std::uint32_t w =
                ctl.wakeWord.load(std::memory_order_acquire);
            if (cc.finished() &&
                phase_.load(std::memory_order_acquire) == phaseRunning &&
                !stop_.load(std::memory_order_acquire)) {
                obs::PhaseScope wait(obs::Phase::WaitInbound);
                ctl.wakeWord.wait(w, std::memory_order_acquire);
            }
            continue;
        }
        ctl.finished.store(false, std::memory_order_relaxed);

        const Tick local = cc.localTime();
        const std::uint32_t w =
            ctl.wakeWord.load(std::memory_order_acquire);
        if (local > ctl.maxLocal.load(std::memory_order_acquire)) {
            board_->bump(c);
            // Re-check after loading the wake word (the manager bumps
            // it after every pacing change, so no wakeup can be lost).
            if (cc.localTime() >
                    ctl.maxLocal.load(std::memory_order_acquire) &&
                phase_.load(std::memory_order_acquire) == phaseRunning &&
                !stop_.load(std::memory_order_acquire)) {
                if (watchdog_)
                    watchdog_->note(c, "park-paced", local);
                const std::uint64_t park_wall = obs::traceWallNs();
                {
                    obs::PhaseScope wait(obs::Phase::WaitSlack);
                    ctl.wakeWord.wait(w, std::memory_order_acquire);
                }
                if (watchdog_)
                    watchdog_->note(c, "resume", cc.localTime());
                // Retroactive span, skipping waits that returned at
                // once — futex misses would otherwise flood the ring.
                if (obs::traceWallNs() - park_wall >= parkSpanMinNs) {
                    obs::traceSpanAt(park_wall,
                                     obs::TraceCategory::Core,
                                     "core-park", local, cc.localTime(),
                                     parkPaced);
                }
            }
            continue;
        }

        if (auto *plan = fault::FaultPlan::active()) {
            if (const std::uint64_t ms =
                    plan->fireWorkerStall(c, cc.localTime())) {
                // Injected wedge: this worker goes dark for a while.
                // The stall watchdog (if armed) is what notices.
                if (watchdog_)
                    watchdog_->note(c, "fault-stall", cc.localTime());
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(ms));
                plan->markLastHandled(watchdog_ ? "stall-watchdog"
                                                : "bounded-stall");
            }
        }

        bool backpressured = false;
        bool wait_inbound = false;
        Tick advanced = 0;
        const std::uint64_t burst_wall = obs::traceWallNs();
        {
        obs::PhaseScope simulate(obs::Phase::Simulate);
        while (advanced < engine_.burstCycles) {
            const Tick max_local =
                ctl.maxLocal.load(std::memory_order_acquire);
            if (cc.localTime() > max_local)
                break;
            if (phase_.load(std::memory_order_relaxed) != phaseRunning ||
                stop_.load(std::memory_order_relaxed)) {
                break;
            }
            const Tick before = cc.localTime();
            const auto outcome = cc.cycle(
                max_local,
                engine_.burstCycles -
                    static_cast<std::uint32_t>(advanced));
            if (outcome == CoreComplex::CycleOutcome::Backpressure) {
                backpressured = true;
                break;
            }
            if (outcome == CoreComplex::CycleOutcome::WaitInbound) {
                wait_inbound = true;
                break;
            }
            advanced += cc.localTime() - before;
            if (cc.finished())
                break;
        }
        }
        ctl.committed.store(cc.committedUops(),
                            std::memory_order_release);
        if (advanced > 0) {
            obs::traceSpanAt(burst_wall, obs::TraceCategory::Core,
                             "core-run", local, cc.localTime(),
                             static_cast<std::int64_t>(advanced));
        }
        if (advanced > 0 || backpressured || wait_inbound)
            board_->bump(c);
        if (backpressured) {
            // Give the manager a chance to drain our OutQ.
            obs::PhaseScope push(obs::Phase::QueuePush);
            std::this_thread::yield();
        } else if (wait_inbound) {
            // Inert free-running core: sleep until the manager
            // delivers something (it bumps our wake word after every
            // delivery) or the world changes.
            const std::uint32_t w =
                ctl.wakeWord.load(std::memory_order_acquire);
            if (cc.inQ().empty() &&
                phase_.load(std::memory_order_acquire) ==
                    phaseRunning &&
                !stop_.load(std::memory_order_acquire)) {
                if (watchdog_)
                    watchdog_->note(c, "park-inbound", cc.localTime());
                const std::uint64_t park_wall = obs::traceWallNs();
                const Tick park_cycle = cc.localTime();
                {
                    obs::PhaseScope wait(obs::Phase::WaitInbound);
                    ctl.wakeWord.wait(w, std::memory_order_acquire);
                }
                if (watchdog_)
                    watchdog_->note(c, "resume", cc.localTime());
                if (obs::traceWallNs() - park_wall >= parkSpanMinNs) {
                    obs::traceSpanAt(park_wall,
                                     obs::TraceCategory::Core,
                                     "core-park", park_cycle,
                                     cc.localTime(), parkInbound);
                }
            }
        }
    }

    obs::Profiler::instance().unregisterThread();
    obs::Tracer::instance().unregisterThread();
    clearLogThreadContext();
}

void
ParallelEngine::relayThreadMain(std::uint32_t cluster)
{
    Relay &relay = *relays_[cluster];
    std::uint32_t acked_gen = 0;
    ScopedRunToken token_scope(sys_.runToken());
    fault::ScopedFaultPlan plan_scope(sys_.faultPlan());
    const std::string role = "relay " + std::to_string(cluster);
    setLogThreadContext(role);
    obs::Tracer::instance().registerThread(role);
    obs::Profiler::instance().registerThread(role);
    while (!stop_.load(std::memory_order_acquire)) {
        if (phase_.load(std::memory_order_acquire) != phaseRunning) {
            const std::uint32_t gen =
                pauseGen_.load(std::memory_order_acquire);
            if (gen != acked_gen) {
                acked_gen = gen;
                ackCount_.fetch_add(1, std::memory_order_seq_cst);
                ackCount_.notify_one();
                if (watchdog_) {
                    watchdog_->note(sys_.numCores() + cluster,
                                    "pause-ack", 0);
                }
            }
            const std::uint32_t e =
                resumeEpoch_.load(std::memory_order_acquire);
            if (phase_.load(std::memory_order_acquire) !=
                    phaseRunning &&
                !stop_.load(std::memory_order_acquire)) {
                obs::PhaseScope barrier(obs::Phase::Barrier);
                resumeEpoch_.wait(e, std::memory_order_acquire);
            }
            continue;
        }

        const std::uint64_t p0 = board_->sum();
        bool moved = false;
        Tick watermark = maxTick;
        {
        obs::PhaseScope pump(obs::Phase::QueuePush);
        BusMsg buf[64];
        for (CoreId c = relay.first; c < relay.last; ++c) {
            // Read the clock *before* pumping: every event this core
            // produced up to that clock is then guaranteed to be in
            // the relay queue once the pump completes — the basis of
            // the root manager's sorted-service safe time.
            const Tick local = sys_.core(c).localTime();
            auto &outQ = sys_.core(c).outQ();
            for (;;) {
                const std::size_t n =
                    outQ.popN(buf, std::size(buf));
                if (n == 0)
                    break;
                moved = true;
                std::size_t pushed = 0;
                while (pushed < n) {
                    pushed += relay.queue.pushN(buf + pushed,
                                                n - pushed);
                    if (pushed < n) {
                        // Root manager backpressure: let it drain.
                        std::this_thread::yield();
                        if (stop_.load(std::memory_order_acquire)) {
                            // Park the popped-but-unpushed tail for
                            // the post-join drain so no event is lost.
                            relay.carry.insert(relay.carry.end(),
                                               buf + pushed, buf + n);
                            return;
                        }
                    }
                }
                if (n < std::size(buf))
                    break;
            }
            if (!controls_[c]->finished.load(std::memory_order_acquire))
                watermark = std::min(watermark, local);
        }
        }
        relay.watermark.store(watermark, std::memory_order_release);

        if (moved) {
            board_->bump(sys_.numCores() + cluster);
        } else {
            // Nothing to move: sleep until some core makes progress.
            // The note keeps an idle-but-live relay off the stall
            // watchdog's radar (its watermark may legitimately stop
            // moving once its whole cluster finished).
            if (watchdog_) {
                watchdog_->note(sys_.numCores() + cluster,
                                "relay-idle", watermark);
            }
            obs::PhaseScope wait(obs::Phase::WaitInbound);
            board_->sleep(p0, [this] {
                return phase_.load(std::memory_order_acquire) ==
                           phaseRunning &&
                       !stop_.load(std::memory_order_acquire);
            });
        }
    }
    obs::Profiler::instance().unregisterThread();
    obs::Tracer::instance().unregisterThread();
    clearLogThreadContext();
}

Tick
ParallelEngine::computeGlobal() const
{
    Tick min_unfinished = maxTick;
    Tick max_any = 0;
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        const Tick t = sys_.core(c).localTime();
        max_any = std::max(max_any, t);
        if (!controls_[c]->finished.load(std::memory_order_acquire))
            min_unfinished = std::min(min_unfinished, t);
    }
    return min_unfinished == maxTick ? max_any : min_unfinished;
}

ParallelEngine::ClockSample
ParallelEngine::sampleClocks()
{
    ClockSample s;
    Tick max_any = 0;
    localsScratch_.resize(sys_.numCores());
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        const Tick t = sys_.core(c).localTime();
        localsScratch_[c] = t;
        max_any = std::max(max_any, t);
        if (!controls_[c]->finished.load(std::memory_order_acquire)) {
            s.minUnfinished = std::min(s.minUnfinished, t);
            s.maxUnfinished = std::max(s.maxUnfinished, t);
        }
    }
    s.global = s.minUnfinished == maxTick ? max_any : s.minUnfinished;
    return s;
}

void
ParallelEngine::updatePacing(bool monotone, const ClockSample &sample)
{
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        Tick target =
            pacer_.maxLocalForCore(c, sample.global, localsScratch_);
        if (ckpt_.enabled())
            target = std::min(target, ckpt_.nextCheckpointAt() - 1);
        CoreControl &ctl = *controls_[c];
        const Tick cur = ctl.maxLocal.load(std::memory_order_relaxed);
        if (monotone ? target > cur : target != cur) {
            ctl.maxLocal.store(target, std::memory_order_seq_cst);
            wakeCore(c);
        }
    }
}

void
ParallelEngine::updatePacing(bool monotone)
{
    updatePacing(monotone, sampleClocks());
}

bool
ParallelEngine::quiescedAtBoundary(Tick boundary) const
{
    bool any_unfinished = false;
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        if (controls_[c]->finished.load(std::memory_order_acquire))
            continue;
        any_unfinished = true;
        if (sys_.core(c).localTime() != boundary)
            return false;
    }
    return any_unfinished;
}

void
ParallelEngine::pauseWorld()
{
    // The manager side of the stop-the-world handshake: request,
    // wake, then wait for every ack.
    obs::PhaseScope barrier(obs::Phase::Barrier);
    pauseGen_.fetch_add(1, std::memory_order_seq_cst);
    phase_.store(phasePaused, std::memory_order_seq_cst);
    for (CoreId c = 0; c < sys_.numCores(); ++c)
        wakeCore(c);
    // Wake any relay sleeping on the progress board so it sees the
    // pause promptly.
    board_->wakeAll();
    // Wait until every core thread and relay acknowledged the pause.
    const std::uint32_t expected =
        sys_.numCores() + static_cast<std::uint32_t>(relays_.size());
    std::uint32_t acked = ackCount_.load(std::memory_order_acquire);
    while (acked < expected) {
        ackCount_.wait(acked, std::memory_order_acquire);
        acked = ackCount_.load(std::memory_order_acquire);
    }
}

void
ParallelEngine::resumeWorld()
{
    ackCount_.store(0, std::memory_order_seq_cst);
    phase_.store(phaseRunning, std::memory_order_seq_cst);
    resumeEpoch_.fetch_add(1, std::memory_order_seq_cst);
    resumeEpoch_.notify_all();
}

void
ParallelEngine::refreshControlAfterRestore()
{
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        CoreControl &ctl = *controls_[c];
        ctl.finished.store(sys_.core(c).finished(),
                           std::memory_order_release);
        ctl.committed.store(sys_.core(c).committedUops(),
                            std::memory_order_release);
    }
}

RunResult
ParallelEngine::run()
{
    const auto t0 = std::chrono::steady_clock::now();
    setLogThreadContext("manager");
    obs::ObsSession session(engine_.obs, sys_, pacer_, mgr_, ckpt_,
                            host_);
    session.begin("manager");
    recovery_.setDecisionLog(session.decisionLog());
    if (obs::StallWatchdog *wd = session.watchdog()) {
        // Registration order fixes the worker indices the hot-path
        // note() calls use: cores first, then relays, manager last.
        for (CoreId c = 0; c < sys_.numCores(); ++c) {
            wd->addWorker("core " + std::to_string(c),
                          &sys_.core(c).localClock(),
                          &controls_[c]->finished,
                          /*stall_eligible=*/true);
        }
        for (std::uint32_t r = 0; r < relays_.size(); ++r) {
            wd->addWorker("relay " + std::to_string(r),
                          &relays_[r]->watermark, nullptr,
                          /*stall_eligible=*/true);
        }
        // The manager blocks legitimately (all cores finished, uop
        // budget races); keep it informational only.
        wd->addWorker("manager", nullptr, nullptr,
                      /*stall_eligible=*/false);
        wd->setProgressProbe([this] {
            return "progress-sum=" + std::to_string(board_->sum()) +
                   " generation=" +
                   std::to_string(board_->generation());
        });
        wd->start();
        watchdog_ = wd;
    }
    mgr_.setSorted(pacer_.sortedService());
    if (ckpt_.enabled()) {
        const auto event = ckpt_.takeCheckpoint(0);
        SLACKSIM_ASSERT(event == Checkpointer::Event::Taken,
                        "fork checkpoints are serial-only");
    }
    updatePacing(true);

    TaskRunner &runner =
        engine_.runner ? *engine_.runner : fallbackRunner_;
    threads_.reserve(sys_.numCores());
    for (CoreId c = 0; c < sys_.numCores(); ++c)
        threads_.push_back(
            runner.launch([this, c] { coreThreadMain(c); }));
    for (std::uint32_t r = 0; r < relays_.size(); ++r)
        relayThreads_.push_back(
            runner.launch([this, r] { relayThreadMain(r); }));

    // A cancel request may arrive while the manager is parked on the
    // progress board; the waker is a pure futex kick (wakers must not
    // block — they run under the token's registry lock).
    ScopedWaker cancel_waker(engine_.cancel,
                             [this] { board_->wakeAll(); });
    bool cancelled = false;

    double last_progress_wall = 0.0;
    Tick last_global = 0;
    bool warmup_pending = engine_.warmupUops > 0;

    for (;;) {
        if (engine_.cancel && engine_.cancel->cancelled()) {
            cancelled = true;
            break;
        }
        const std::uint64_t p0 = board_->sum();

        // Read local clocks *before* pumping: every event with a
        // timestamp below the resulting safe time is then guaranteed
        // to already be in its OutQ, which makes sorted service
        // deterministic and identical to the serial reference. With
        // a hierarchical manager the relays publish the equivalent
        // per-cluster watermark. One scan serves the safe time, the
        // pacing targets, and the slack-spread stat below.
        const ClockSample clocks = sampleClocks();
        const Tick global = clocks.global;
        Tick safe = global;
        std::size_t activity = 0;
        if (auto *plan = fault::FaultPlan::active()) {
            if (const std::uint64_t rounds =
                    plan->fireBackpressure(global)) {
                backpressureRounds_ += rounds;
            }
        }
        if (backpressureRounds_ > 0) {
            // Injected backpressure burst: the manager withholds
            // pumping and service, so the SPSC OutQs fill and cores
            // hit their backpressure path (yield + retry) until the
            // burst drains.
            if (--backpressureRounds_ == 0) {
                if (auto *plan = fault::FaultPlan::active())
                    plan->markLastHandled("manager-resumed");
            }
            // Count the skip as activity so the manager keeps
            // iterating (and draining the burst) instead of sleeping
            // on the progress board with service suspended.
            ++activity;
        } else {
            obs::PhaseScope drain(obs::Phase::Drain);
            const std::uint64_t service_wall = obs::traceWallNs();
            if (relays_.empty()) {
                activity += mgr_.pumpAll();
            } else {
                safe = maxTick;
                for (const auto &relay : relays_) {
                    safe = std::min(
                        safe, relay->watermark.load(
                                  std::memory_order_acquire));
                }
                if (safe == maxTick)
                    safe = global; // all cores finished
                for (const auto &relay : relays_) {
                    activity += relay->queue.consumeAll(
                        [this](const BusMsg &msg) {
                            mgr_.ingest(msg);
                        });
                }
            }
            activity += mgr_.serviceSorted(safe);
            mgr_.flushOverflow();
            if (activity > 0) {
                obs::traceSpanAt(service_wall,
                                 obs::TraceCategory::Manager,
                                 "manager-service", global, safe,
                                 static_cast<std::int64_t>(activity));
            }
            // Wake any core that just received a delivery: inert
            // free-running cores sleep until their InQ gets
            // something.
            mgr_.drainDelivered([this](CoreId c) { wakeCore(c); });
        }
        pacer_.observe(global, sys_.violations());
        recovery_.observe(global, sys_.violations());
        updatePacing(true, clocks);
        session.maybeSample(global);
        if (clocks.minUnfinished != maxTick &&
            clocks.maxUnfinished > clocks.minUnfinished) {
            host_.maxObservedSlack =
                std::max(host_.maxObservedSlack,
                         clocks.maxUnfinished - clocks.minUnfinished);
        }

        if (ckpt_.enabled()) {
            if (mgr_.rollbackRequested()) {
                pauseWorld();
                const Tick rb_global = computeGlobal();
                const auto rb = ckpt_.rollback(rb_global);
                if (rb.status ==
                    Checkpointer::RollbackResult::Status::Demoted) {
                    // No valid checkpoint generation: nothing was
                    // restored; keep running forward without
                    // speculation instead of dying.
                    recovery_.noteIntegrityDemotion(rb_global);
                    updatePacing(true);
                    session.collectTrace();
                    resumeWorld();
                    ++activity;
                    continue;
                }
                recovery_.noteRollback(rb_global);
                refreshControlAfterRestore();
                mgr_.setSorted(true);
                updatePacing(false);
                session.forceSample(rb.resumedAt);
                session.collectTrace();
                resumeWorld();
                ++activity;
                continue;
            }
            const Tick boundary = ckpt_.nextCheckpointAt();
            if (quiescedAtBoundary(boundary) && mgr_.pumpAll() == 0) {
                // All unfinished cores are parked exactly at the
                // boundary and no stragglers remain in the OutQs:
                // the world is stable, snapshot it directly.
                const bool was_replay = pacer_.replayMode();
                const auto event = ckpt_.takeCheckpoint(boundary);
                SLACKSIM_ASSERT(event == Checkpointer::Event::Taken,
                                "fork checkpoints are serial-only");
                if (was_replay && !pacer_.sortedService()) {
                    mgr_.serviceSorted(maxTick);
                    mgr_.setSorted(false);
                    mgr_.flushOverflow();
                }
                updatePacing(true);
                session.forceSample(boundary);
                session.collectTrace();
                ++activity;
                continue;
            }
        }

        if (warmup_pending) {
            std::uint64_t committed = 0;
            for (const auto &ctl : controls_)
                committed +=
                    ctl->committed.load(std::memory_order_acquire);
            if (committed >= engine_.warmupUops) {
                // Stop the world so no core mutates its stats while
                // the warmup measurements are discarded.
                pauseWorld();
                sys_.resetSimStats();
                refreshControlAfterRestore();
                resumeWorld();
                warmup_pending = false;
                ++activity;
            }
        }

        // Stop conditions.
        if (engine_.maxCommittedUops && !warmup_pending) {
            std::uint64_t committed = 0;
            for (const auto &ctl : controls_)
                committed +=
                    ctl->committed.load(std::memory_order_acquire);
            if (committed >= engine_.maxCommittedUops)
                break;
        }
        {
            bool all_finished = true;
            for (const auto &ctl : controls_)
                all_finished &=
                    ctl->finished.load(std::memory_order_acquire);
            if (all_finished) {
                // With relays active the OutQs belong to the relay
                // threads; the post-join drain below collects any
                // stragglers instead.
                if (relays_.empty()) {
                    mgr_.pumpAll();
                    mgr_.serviceSorted(maxTick);
                    mgr_.flushOverflow();
                }
                break;
            }
        }

        // Watchdog on stalled global time.
        if (global != last_global) {
            last_global = global;
            last_progress_wall = secondsSince(t0);
        } else if (secondsSince(t0) - last_progress_wall >
                   engine_.watchdogSeconds) {
            SLACKSIM_PANIC("parallel engine watchdog: no global ",
                           "progress, global=", global,
                           " scheme=", schemeName(engine_.scheme));
        }

        if (activity == 0 && board_->sum() == p0) {
            obs::PhaseScope wait(obs::Phase::WaitInbound);
            // The eligibility re-check (after sleeper registration)
            // closes the race with a cancel that fired its wakeAll
            // kick before we parked.
            board_->sleep(p0, [this] {
                return !engine_.cancel || !engine_.cancel->cancelled();
            });
            ++host_.managerWakeups;
        }
    }

    // Shut the core and relay threads down.
    stop_.store(true, std::memory_order_seq_cst);
    resumeEpoch_.fetch_add(1, std::memory_order_seq_cst);
    resumeEpoch_.notify_all();
    board_->wakeAll();
    for (CoreId c = 0; c < sys_.numCores(); ++c)
        wakeCore(c);
    for (auto &t : threads_)
        t->join();
    threads_.clear();
    for (auto &t : relayThreads_)
        t->join();
    relayThreads_.clear();
    // Drain any events still in transit (relay queues, popped-but-
    // unpushed carry tails, and OutQs the relays had not pumped when
    // they stopped) so final statistics match the flat manager's.
    // Queue before carry before OutQ preserves per-source FIFO order.
    if (!relays_.empty()) {
        for (const auto &relay : relays_) {
            relay->queue.consumeAll(
                [this](const BusMsg &msg) { mgr_.ingest(msg); });
            for (const BusMsg &msg : relay->carry)
                mgr_.ingest(msg);
            relay->carry.clear();
        }
        mgr_.pumpAll();
        mgr_.serviceSorted(maxTick);
        mgr_.flushOverflow();
    }

    session.finish(computeGlobal());
    watchdog_ = nullptr; // owned by the session; run is over
    clearLogThreadContext();
    RunResult r = collectResult(secondsSince(t0));
    r.cancelled = cancelled;
    r.forensics = session.takeForensics();
    return r;
}

RunResult
ParallelEngine::collectResult(double wall_seconds) const
{
    RunResult r;
    r.workloadName = sys_.workload().name;
    r.scheme = engine_.scheme;
    r.parallelHost = true;
    r.execCycles = sys_.maxLocalTime();
    r.globalCycles = sys_.globalTime();
    r.committedUops = sys_.totalCommittedUops();
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        r.perCore.push_back(sys_.core(c).stats());
        r.coreTotal.add(sys_.core(c).stats());
    }
    r.uncore = sys_.uncoreStats();
    r.busQueueHistogram = sys_.uncore().busQueueHistogram();
    r.violations = sys_.violations();
    r.host = host_;
    r.host.wallSeconds = wall_seconds;
    r.intervals = mgr_.intervals();
    r.finalSlackBound = pacer_.currentBound();
    r.degradationLevel = recovery_.levelName();
    r.demotions = recovery_.demotions();
    r.repromotions = recovery_.repromotions();
    return r;
}

} // namespace slacksim
