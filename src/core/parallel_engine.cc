/**
 * @file
 * ParallelEngine implementation.
 */

#include "core/parallel_engine.hh"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <string>
#include <thread>

#include "fault/fault_plan.hh"
#include "obs/obs_session.hh"
#include "obs/profiler.hh"
#include "obs/tracer.hh"
#include "util/cancel.hh"
#include "util/logging.hh"
#include "util/run_token.hh"

namespace slacksim {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

// core-park span arg: why the worker went to sleep.
constexpr std::int64_t parkPaced = 0;   //!< at the pacing limit
constexpr std::int64_t parkInbound = 1; //!< inert, awaiting delivery

// Park spans shorter than this are dropped: an atomic wait that
// returned immediately is scheduler noise, not a park worth a record.
constexpr std::uint64_t parkSpanMinNs = 1000;

// Idle scans a worker yields through before parking. On an
// oversubscribed host the yield usually schedules the manager, whose
// next service round unblocks us without any futex round trip.
constexpr std::uint32_t spinRoundsBeforePark = 4;

} // namespace

ParallelEngine::ParallelEngine(SimSystem &sys)
    : sys_(sys),
      engine_(sys.config().engine),
      pacer_(engine_, sys.numCores(), &host_),
      mgr_(sys, engine_, &host_),
      ckpt_(sys, pacer_, mgr_, engine_, &host_),
      wakePending_(sys.numCores())
{
    for (CoreId c = 0; c < sys_.numCores(); ++c)
        controls_.push_back(std::make_unique<CoreControl>());
    if (engine_.managerClusters > 0) {
        const std::uint32_t clusters = engine_.managerClusters;
        const CoreId per =
            (sys_.numCores() + clusters - 1) / clusters;
        for (std::uint32_t r = 0; r < clusters; ++r) {
            auto relay = std::make_unique<Relay>(
                engine_.queueCapacity * 4);
            relay->first = static_cast<CoreId>(r * per);
            relay->last = static_cast<CoreId>(
                std::min<std::uint64_t>(sys_.numCores(),
                                        std::uint64_t{r + 1} * per));
            if (relay->first < relay->last)
                relays_.push_back(std::move(relay));
        }
    }
    board_ = std::make_unique<ProgressBoard>(
        sys_.numCores() + static_cast<std::uint32_t>(relays_.size()));

    // Worker topology. EngineConfig::hostThreads counts the manager,
    // so W = hostThreads - 1 workers share the simulated cores; the
    // auto policy (hostThreads = 0) sizes from the machine so a
    // single-CPU host lands in inline mode (W = 0) where concurrency
    // could only ever add park/wake overhead.
    std::uint32_t requested = engine_.hostThreads;
    if (requested == 0) {
        requested =
            std::max(1u, std::thread::hardware_concurrency());
    }
    const std::uint32_t want =
        std::min<std::uint32_t>(sys_.numCores(), requested - 1);
    if (want > 0) {
        const CoreId per = (sys_.numCores() + want - 1) / want;
        for (std::uint32_t w = 0; w < want; ++w) {
            auto wc = std::make_unique<WorkerControl>();
            wc->first = static_cast<CoreId>(w * per);
            wc->last = static_cast<CoreId>(
                std::min<std::uint64_t>(sys_.numCores(),
                                        std::uint64_t{w + 1} * per));
            if (wc->first < wc->last)
                workers_.push_back(std::move(wc));
        }
    }
    workerCount_ = static_cast<std::uint32_t>(workers_.size());
    workerOf_.assign(sys_.numCores(), 0);
    for (std::uint32_t w = 0; w < workerCount_; ++w)
        for (CoreId c = workers_[w]->first; c < workers_[w]->last; ++c)
            workerOf_[c] = w;
    workerWoken_.assign(workerCount_, 0);
    lastRun_.assign(sys_.numCores(),
                    static_cast<std::uint8_t>(CoreRun::Progress));
    inlineLean_ = workerCount_ == 0 && relays_.empty();
}

void
ParallelEngine::requestWake(CoreId c)
{
    wakePending_.set(c);
}

void
ParallelEngine::wakeWorkerNow(std::uint32_t w)
{
    WorkerControl &wc = *workers_[w];
    wc.wakeWord.fetch_add(1, std::memory_order_seq_cst);
    // Skip the futex syscall for a running worker. Store-buffering
    // argument for why the skip cannot lose a wake: the worker stores
    // `parked = true` (seq_cst) *before* re-reading the wake word it
    // captured ahead of its scan. If we read `parked == false` here,
    // our word bump is ordered before the worker's parked-store in
    // the single total order, so coherence forces the worker's
    // subsequent word read (the atomic-wait value check) to observe
    // the bump and return immediately.
    if (wc.parked.load(std::memory_order_seq_cst))
        wc.wakeWord.notify_one();
}

void
ParallelEngine::flushWakes()
{
    if (!wakePending_.any())
        return;
    if (workerCount_ == 0) {
        // Inline mode: the manager is the "worker"; just clear.
        wakePending_.drain([](std::uint32_t) {});
        return;
    }
    std::fill(workerWoken_.begin(), workerWoken_.end(), 0);
    wakePending_.drain([this](std::uint32_t c) {
        const std::uint32_t w = workerOf_[c];
        if (!workerWoken_[w]) {
            workerWoken_[w] = 1;
            wakeWorkerNow(w);
        }
    });
}

ParallelEngine::CoreRun
ParallelEngine::runCoreBurst(CoreId c)
{
    CoreComplex &cc = sys_.core(c);
    CoreControl &ctl = *controls_[c];

    if (cc.finished()) {
        if (!ctl.finished.load(std::memory_order_relaxed)) {
            ctl.finished.store(true, std::memory_order_release);
            ctl.committed.store(cc.committedUops(),
                                std::memory_order_release);
            if (inlineLean_) {
                // Final drain at the transition; a finished core
                // emits nothing more, so later rounds skip it
                // entirely (the serial engine rescans every round).
                mgr_.pumpCore(c);
            } else {
                board_->bump(c);
            }
            if (watchdog_)
                watchdog_->note(c, "finished", cc.localTime());
        }
        return CoreRun::Finished;
    }
    ctl.finished.store(false, std::memory_order_relaxed);

    const Tick local = cc.localTime();
    if (local > ctl.maxLocal.load(std::memory_order_acquire))
        return CoreRun::Paced;

    if (auto *plan = fault::FaultPlan::active()) {
        if (const std::uint64_t ms =
                plan->fireWorkerStall(c, cc.localTime())) {
            // Injected wedge: this worker goes dark for a while.
            // The stall watchdog (if armed) is what notices.
            if (watchdog_)
                watchdog_->note(c, "fault-stall", cc.localTime());
            std::this_thread::sleep_for(
                std::chrono::milliseconds(ms));
            plan->markLastHandled(watchdog_ ? "stall-watchdog"
                                            : "bounded-stall");
        }
    }

    bool backpressured = false;
    bool wait_inbound = false;
    Tick advanced = 0;
    const std::uint64_t burst_wall = obs::traceWallNs();
    {
        obs::PhaseScope simulate(obs::Phase::Simulate);
        // Inline mode: the manager is the only writer of maxLocal and
        // phase/stop, and it cannot change them mid-burst — load once
        // and run the same tight loop the serial engine runs.
        const Tick pinned_max_local =
            ctl.maxLocal.load(std::memory_order_acquire);
        while (advanced < engine_.burstCycles) {
            Tick max_local = pinned_max_local;
            if (!inlineLean_) {
                max_local =
                    ctl.maxLocal.load(std::memory_order_acquire);
                if (phase_.load(std::memory_order_relaxed) !=
                        phaseRunning ||
                    stop_.load(std::memory_order_relaxed)) {
                    break;
                }
            }
            if (cc.localTime() > max_local)
                break;
            const Tick before = cc.localTime();
            const auto outcome = cc.cycle(
                max_local,
                engine_.burstCycles -
                    static_cast<std::uint32_t>(advanced));
            if (outcome == CoreComplex::CycleOutcome::Backpressure) {
                backpressured = true;
                break;
            }
            if (outcome == CoreComplex::CycleOutcome::WaitInbound) {
                wait_inbound = true;
                break;
            }
            advanced += cc.localTime() - before;
            if (cc.finished())
                break;
        }
    }
    ctl.committed.store(cc.committedUops(),
                        std::memory_order_release);
    if (advanced > 0) {
        obs::traceSpanAt(burst_wall, obs::TraceCategory::Core,
                         "core-run", local, cc.localTime(),
                         static_cast<std::int64_t>(advanced));
    }
    if (inlineLean_) {
        // Single-thread run: pump this core's OutQ while its lines
        // are cache-hot, exactly the serial engine's queue-push
        // cadence. A burst that advanced nothing emitted nothing
        // (backpressure excepted: there the queue is *full*), so the
        // pump is skipped where the serial engine rescans. Nobody
        // sleeps on the board, so skip the bump too.
        if (advanced > 0 || backpressured) {
            obs::PhaseScope push(obs::Phase::QueuePush);
            mgr_.pumpCore(c);
        }
    } else if (advanced > 0 || backpressured || wait_inbound) {
        board_->bump(c);
    }

    if (advanced > 0)
        return CoreRun::Progress;
    if (backpressured)
        return CoreRun::Backpressure;
    if (wait_inbound)
        return CoreRun::Inbound;
    return CoreRun::Paced;
}

bool
ParallelEngine::driveInline()
{
    const CoreId n = sys_.numCores();
    const CoreId start = inlineRotate_;
    inlineRotate_ = (inlineRotate_ + 1) % n;
    bool progress = false;
    for (CoreId i = 0; i < n; ++i) {
        const CoreId c = static_cast<CoreId>((start + i) % n);
        const CoreRun r = runCoreBurst(c);
        lastRun_[c] = static_cast<std::uint8_t>(r);
        if (r == CoreRun::Progress)
            progress = true;
    }
    return progress;
}

void
ParallelEngine::workerThreadMain(std::uint32_t w)
{
    WorkerControl &wc = *workers_[w];
    std::uint32_t acked_gen = 0;
    std::uint32_t idle_rounds = 0;

    // Adopt the run's identity on this (possibly pool-borrowed) host
    // thread: the token gates obs registration to our own run's
    // sessions, the fault-plan binding scopes injected faults to us.
    ScopedRunToken token_scope(sys_.runToken());
    fault::ScopedFaultPlan plan_scope(sys_.faultPlan());

    const std::string role = "worker " + std::to_string(w);
    setLogThreadContext(role, &sys_.core(wc.first).localClock());
    obs::Tracer::instance().registerThread(role);
    obs::Profiler::instance().registerThread(role);

    while (!stop_.load(std::memory_order_acquire)) {
        if (phase_.load(std::memory_order_acquire) != phaseRunning) {
            // Stop-the-world pause: acknowledge exactly once per
            // pause generation (atomic waits may wake spuriously),
            // then sleep until resumed.
            const std::uint32_t gen =
                pauseGen_.load(std::memory_order_acquire);
            if (gen != acked_gen) {
                acked_gen = gen;
                ackCount_.fetch_add(1, std::memory_order_seq_cst);
                ackCount_.notify_one();
                if (watchdog_)
                    watchdog_->note(wc.first, "pause-ack", 0);
            }
            const std::uint32_t e =
                resumeEpoch_.load(std::memory_order_acquire);
            if (phase_.load(std::memory_order_acquire) !=
                    phaseRunning &&
                !stop_.load(std::memory_order_acquire)) {
                obs::PhaseScope barrier(obs::Phase::Barrier);
                resumeEpoch_.wait(e, std::memory_order_acquire);
            }
            continue;
        }

        // Capture the wake word *before* scanning: every manager-side
        // state change after this point bumps the word, so the park
        // below cannot sleep through it.
        const std::uint32_t word =
            wc.wakeWord.load(std::memory_order_acquire);

        bool progress = false;
        bool retry = false;
        bool any_paced = false;
        for (CoreId c = wc.first;
             c < wc.last &&
             phase_.load(std::memory_order_relaxed) == phaseRunning &&
             !stop_.load(std::memory_order_relaxed);
             ++c) {
            const CoreRun r = runCoreBurst(c);
            lastRun_[c] = static_cast<std::uint8_t>(r);
            if (r == CoreRun::Progress)
                progress = true;
            else if (r == CoreRun::Backpressure)
                retry = true;
            else if (r == CoreRun::Paced)
                any_paced = true;
        }
        if (progress) {
            idle_rounds = 0;
            continue;
        }
        if (retry || ++idle_rounds <= spinRoundsBeforePark) {
            // Backpressure wants the manager scheduled to drain our
            // OutQs; a freshly idle scan usually resolves within a
            // service round or two. Either way, yield beats a futex.
            obs::PhaseScope wait(any_paced ? obs::Phase::WaitSlack
                                           : obs::Phase::WaitInbound);
            std::this_thread::yield();
            continue;
        }
        idle_rounds = 0;

        // Every owned core is blocked: announce the park, then
        // re-verify blockage *and* the wake word. The manager's
        // paired load in wakeWorkerNow() makes the announce-first
        // order lost-wake-free.
        wc.parked.store(true, std::memory_order_seq_cst);
        bool still_blocked = true;
        for (CoreId c = wc.first; c < wc.last; ++c) {
            CoreComplex &cc = sys_.core(c);
            if (cc.finished())
                continue;
            if (cc.localTime() >
                controls_[c]->maxLocal.load(std::memory_order_seq_cst))
                continue;
            if (lastRun_[c] ==
                    static_cast<std::uint8_t>(CoreRun::Inbound) &&
                cc.inQ().empty())
                continue;
            still_blocked = false;
            break;
        }
        if (still_blocked &&
            wc.wakeWord.load(std::memory_order_seq_cst) == word &&
            phase_.load(std::memory_order_acquire) == phaseRunning &&
            !stop_.load(std::memory_order_acquire)) {
            const Tick park_cycle = sys_.core(wc.first).localTime();
            if (watchdog_) {
                watchdog_->note(wc.first,
                                any_paced ? "park-paced"
                                          : "park-inbound",
                                park_cycle);
            }
            const std::uint64_t park_wall = obs::traceWallNs();
            {
                obs::PhaseScope wait(any_paced
                                         ? obs::Phase::WaitSlack
                                         : obs::Phase::WaitInbound);
                wc.wakeWord.wait(word, std::memory_order_acquire);
            }
            ++wc.parks;
            if (watchdog_) {
                watchdog_->note(wc.first, "resume",
                                sys_.core(wc.first).localTime());
            }
            // Retroactive span, skipping waits that returned at
            // once — futex misses would otherwise flood the ring.
            if (obs::traceWallNs() - park_wall >= parkSpanMinNs) {
                obs::traceSpanAt(park_wall, obs::TraceCategory::Core,
                                 "core-park", park_cycle,
                                 sys_.core(wc.first).localTime(),
                                 any_paced ? parkPaced : parkInbound);
            }
        }
        wc.parked.store(false, std::memory_order_seq_cst);
    }

    obs::Profiler::instance().unregisterThread();
    obs::Tracer::instance().unregisterThread();
    clearLogThreadContext();
}

void
ParallelEngine::relayThreadMain(std::uint32_t cluster)
{
    Relay &relay = *relays_[cluster];
    std::uint32_t acked_gen = 0;
    ScopedRunToken token_scope(sys_.runToken());
    fault::ScopedFaultPlan plan_scope(sys_.faultPlan());
    const std::string role = "relay " + std::to_string(cluster);
    setLogThreadContext(role);
    obs::Tracer::instance().registerThread(role);
    obs::Profiler::instance().registerThread(role);
    while (!stop_.load(std::memory_order_acquire)) {
        if (phase_.load(std::memory_order_acquire) != phaseRunning) {
            const std::uint32_t gen =
                pauseGen_.load(std::memory_order_acquire);
            if (gen != acked_gen) {
                acked_gen = gen;
                ackCount_.fetch_add(1, std::memory_order_seq_cst);
                ackCount_.notify_one();
                if (watchdog_) {
                    watchdog_->note(sys_.numCores() + cluster,
                                    "pause-ack", 0);
                }
            }
            const std::uint32_t e =
                resumeEpoch_.load(std::memory_order_acquire);
            if (phase_.load(std::memory_order_acquire) !=
                    phaseRunning &&
                !stop_.load(std::memory_order_acquire)) {
                obs::PhaseScope barrier(obs::Phase::Barrier);
                resumeEpoch_.wait(e, std::memory_order_acquire);
            }
            continue;
        }

        const std::uint64_t p0 = board_->sum();
        bool moved = false;
        Tick watermark = maxTick;
        {
        obs::PhaseScope pump(obs::Phase::QueuePush);
        BusMsg buf[64];
        for (CoreId c = relay.first; c < relay.last; ++c) {
            // Read the clock *before* pumping: every event this core
            // produced up to that clock is then guaranteed to be in
            // the relay queue once the pump completes — the basis of
            // the root manager's sorted-service safe time.
            const Tick local = sys_.core(c).localTime();
            auto &outQ = sys_.core(c).outQ();
            for (;;) {
                const std::size_t n =
                    outQ.popN(buf, std::size(buf));
                if (n == 0)
                    break;
                moved = true;
                std::size_t pushed = 0;
                while (pushed < n) {
                    pushed += relay.queue.pushN(buf + pushed,
                                                n - pushed);
                    if (pushed < n) {
                        // Root manager backpressure: let it drain.
                        std::this_thread::yield();
                        if (stop_.load(std::memory_order_acquire)) {
                            // Park the popped-but-unpushed tail for
                            // the post-join drain so no event is lost.
                            relay.carry.insert(relay.carry.end(),
                                               buf + pushed, buf + n);
                            return;
                        }
                    }
                }
                if (n < std::size(buf))
                    break;
            }
            if (!controls_[c]->finished.load(std::memory_order_acquire))
                watermark = std::min(watermark, local);
        }
        }
        relay.watermark.store(watermark, std::memory_order_release);

        if (moved) {
            board_->bump(sys_.numCores() + cluster);
        } else {
            // Nothing to move: sleep until some core makes progress.
            // The note keeps an idle-but-live relay off the stall
            // watchdog's radar (its watermark may legitimately stop
            // moving once its whole cluster finished).
            if (watchdog_) {
                watchdog_->note(sys_.numCores() + cluster,
                                "relay-idle", watermark);
            }
            obs::PhaseScope wait(obs::Phase::WaitInbound);
            board_->sleep(p0, [this] {
                return phase_.load(std::memory_order_acquire) ==
                           phaseRunning &&
                       !stop_.load(std::memory_order_acquire);
            });
        }
    }
    obs::Profiler::instance().unregisterThread();
    obs::Tracer::instance().unregisterThread();
    clearLogThreadContext();
}

Tick
ParallelEngine::computeGlobal() const
{
    Tick min_unfinished = maxTick;
    Tick max_any = 0;
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        const Tick t = sys_.core(c).localTime();
        max_any = std::max(max_any, t);
        if (!controls_[c]->finished.load(std::memory_order_acquire))
            min_unfinished = std::min(min_unfinished, t);
    }
    return min_unfinished == maxTick ? max_any : min_unfinished;
}

ParallelEngine::ClockSample
ParallelEngine::sampleClocks()
{
    ClockSample s;
    Tick max_any = 0;
    localsScratch_.resize(sys_.numCores());
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        const Tick t = sys_.core(c).localTime();
        localsScratch_[c] = t;
        max_any = std::max(max_any, t);
        if (!controls_[c]->finished.load(std::memory_order_acquire)) {
            s.minUnfinished = std::min(s.minUnfinished, t);
            s.maxUnfinished = std::max(s.maxUnfinished, t);
        }
    }
    s.global = s.minUnfinished == maxTick ? max_any : s.minUnfinished;
    return s;
}

void
ParallelEngine::updatePacing(bool monotone, const ClockSample &sample)
{
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        Tick target =
            pacer_.maxLocalForCore(c, sample.global, localsScratch_);
        if (ckpt_.enabled())
            target = std::min(target, ckpt_.nextCheckpointAt() - 1);
        CoreControl &ctl = *controls_[c];
        const Tick cur = ctl.maxLocal.load(std::memory_order_relaxed);
        if (monotone ? target > cur : target != cur) {
            // With no worker threads the store has no reader to race
            // with; seq_cst (needed for the parked-recheck protocol)
            // would cost a full fence per core per iteration.
            ctl.maxLocal.store(target, inlineLean_
                                           ? std::memory_order_relaxed
                                           : std::memory_order_seq_cst);
            if (!inlineLean_)
                requestWake(c);
        }
    }
    // One coalesced sweep covers the pacing changes above *and* the
    // deliveries drainDelivered() marked earlier in the iteration:
    // at most one bump + futex per worker per manager round.
    flushWakes();
}

void
ParallelEngine::updatePacing(bool monotone)
{
    updatePacing(monotone, sampleClocks());
}

bool
ParallelEngine::quiescedAtBoundary(Tick boundary) const
{
    bool any_unfinished = false;
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        if (controls_[c]->finished.load(std::memory_order_acquire))
            continue;
        any_unfinished = true;
        if (sys_.core(c).localTime() != boundary)
            return false;
    }
    return any_unfinished;
}

void
ParallelEngine::pauseWorld()
{
    // The manager side of the stop-the-world handshake: request,
    // wake, then wait for every ack.
    obs::PhaseScope barrier(obs::Phase::Barrier);
    pauseGen_.fetch_add(1, std::memory_order_seq_cst);
    phase_.store(phasePaused, std::memory_order_seq_cst);
    for (std::uint32_t w = 0; w < workerCount_; ++w)
        wakeWorkerNow(w);
    // Wake any relay sleeping on the progress board so it sees the
    // pause promptly.
    board_->wakeAll();
    // Wait until every worker thread and relay acknowledged the pause.
    const std::uint32_t expected =
        workerCount_ + static_cast<std::uint32_t>(relays_.size());
    std::uint32_t acked = ackCount_.load(std::memory_order_acquire);
    while (acked < expected) {
        ackCount_.wait(acked, std::memory_order_acquire);
        acked = ackCount_.load(std::memory_order_acquire);
    }
}

void
ParallelEngine::resumeWorld()
{
    ackCount_.store(0, std::memory_order_seq_cst);
    phase_.store(phaseRunning, std::memory_order_seq_cst);
    resumeEpoch_.fetch_add(1, std::memory_order_seq_cst);
    resumeEpoch_.notify_all();
}

void
ParallelEngine::refreshControlAfterRestore()
{
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        CoreControl &ctl = *controls_[c];
        ctl.finished.store(sys_.core(c).finished(),
                           std::memory_order_release);
        ctl.committed.store(sys_.core(c).committedUops(),
                            std::memory_order_release);
    }
}

RunResult
ParallelEngine::run()
{
    const auto t0 = std::chrono::steady_clock::now();
    setLogThreadContext("manager");
    obs::ObsSession session(engine_.obs, sys_, pacer_, mgr_, ckpt_,
                            host_);
    session.begin("manager");
    recovery_.setDecisionLog(session.decisionLog());
    if (obs::StallWatchdog *wd = session.watchdog()) {
        // Registration order fixes the worker indices the hot-path
        // note() calls use: cores first, then relays, manager last.
        for (CoreId c = 0; c < sys_.numCores(); ++c) {
            wd->addWorker("core " + std::to_string(c),
                          &sys_.core(c).localClock(),
                          &controls_[c]->finished,
                          /*stall_eligible=*/true);
        }
        for (std::uint32_t r = 0; r < relays_.size(); ++r) {
            wd->addWorker("relay " + std::to_string(r),
                          &relays_[r]->watermark, nullptr,
                          /*stall_eligible=*/true);
        }
        // The manager blocks legitimately (all cores finished, uop
        // budget races); keep it informational only.
        wd->addWorker("manager", nullptr, nullptr,
                      /*stall_eligible=*/false);
        wd->setProgressProbe([this] {
            return "progress-sum=" + std::to_string(board_->sum()) +
                   " generation=" +
                   std::to_string(board_->generation());
        });
        wd->start();
        watchdog_ = wd;
    }
    mgr_.setSorted(pacer_.sortedService());
    if (ckpt_.enabled()) {
        const auto event = ckpt_.takeCheckpoint(0);
        SLACKSIM_ASSERT(event == Checkpointer::Event::Taken,
                        "fork checkpoints are serial-only");
    }
    updatePacing(true);

    TaskRunner &runner =
        engine_.runner ? *engine_.runner : fallbackRunner_;
    threads_.reserve(workerCount_);
    for (std::uint32_t w = 0; w < workerCount_; ++w)
        threads_.push_back(
            runner.launch([this, w] { workerThreadMain(w); }));
    for (std::uint32_t r = 0; r < relays_.size(); ++r)
        relayThreads_.push_back(
            runner.launch([this, r] { relayThreadMain(r); }));
    host_.hostThreadsUsed = 1 + workerCount_ +
                            static_cast<std::uint32_t>(relays_.size());

    // A cancel request may arrive while the manager is parked on the
    // progress board; the waker is a pure futex kick (wakers must not
    // block — they run under the token's registry lock).
    ScopedWaker cancel_waker(engine_.cancel,
                             [this] { board_->wakeAll(); });
    bool cancelled = false;

    double last_progress_wall = 0.0;
    Tick last_global = 0;
    bool warmup_pending = engine_.warmupUops > 0;

    for (;;) {
        if (engine_.cancel && engine_.cancel->cancelled()) {
            cancelled = true;
            break;
        }
        // The board only matters as a sleep/wake channel; a lean
        // inline run never sleeps, so skip the two sharded sums.
        const std::uint64_t p0 = inlineLean_ ? 0 : board_->sum();

        // Read local clocks *before* pumping: every event with a
        // timestamp below the resulting safe time is then guaranteed
        // to already be in its OutQ, which makes sorted service
        // deterministic and identical to the serial reference. With
        // a hierarchical manager the relays publish the equivalent
        // per-cluster watermark. One scan serves the safe time, the
        // pacing targets, and the slack-spread stat below.
        //
        // Inline mode drives the core bursts *after* this sample, so
        // every event a burst emits carries a timestamp at or above
        // its core's sampled clock — the same safe-time invariant,
        // with zero cross-thread handoff.
        ClockSample clocks;
        std::size_t activity = 0;
        if (inlineLean_) {
            // Lean inline runs burst-then-sample, the serial engine's
            // own cadence: the bursts pump their OutQs synchronously,
            // so sampling *after* them is just as safe (any future
            // event from a core is stamped at or above that core's
            // current clock) — and it paces the next round a full
            // slack window ahead of where the cores actually are, not
            // where they were a round ago. One scan per round, like
            // the serial engine.
            if (driveInline())
                ++activity;
            clocks = sampleClocks();
        } else {
            clocks = sampleClocks();
            if (workerCount_ == 0) {
                // Inline with relays: the relays pump asynchronously,
                // so the safe time must come from the pre-burst
                // sample, same as the threaded topologies.
                if (driveInline())
                    ++activity;
            }
        }
        const Tick global = clocks.global;
        Tick safe = global;
        if (auto *plan = fault::FaultPlan::active()) {
            // Serve-site faults before backpressure: job-crash never
            // returns, job-hang wedges the manager right here.
            plan->fireServeFault(global);
            if (const std::uint64_t rounds =
                    plan->fireBackpressure(global)) {
                backpressureRounds_ += rounds;
            }
        }
        if (backpressureRounds_ > 0) {
            // Injected backpressure burst: the manager withholds
            // pumping and service, so the SPSC OutQs fill and cores
            // hit their backpressure path (yield + retry) until the
            // burst drains.
            if (--backpressureRounds_ == 0) {
                if (auto *plan = fault::FaultPlan::active())
                    plan->markLastHandled("manager-resumed");
            }
            // Count the skip as activity so the manager keeps
            // iterating (and draining the burst) instead of sleeping
            // on the progress board with service suspended.
            ++activity;
        } else {
            obs::PhaseScope drain(obs::Phase::Drain);
            const std::uint64_t service_wall = obs::traceWallNs();
            if (inlineLean_) {
                // The bursts pumped their own OutQs already; a second
                // all-core scan would find them empty.
            } else if (relays_.empty()) {
                activity += mgr_.pumpAll();
            } else {
                safe = maxTick;
                for (const auto &relay : relays_) {
                    safe = std::min(
                        safe, relay->watermark.load(
                                  std::memory_order_acquire));
                }
                if (safe == maxTick)
                    safe = global; // all cores finished
                for (const auto &relay : relays_) {
                    activity += relay->queue.consumeAll(
                        [this](const BusMsg &msg) {
                            mgr_.ingest(msg);
                        });
                }
            }
            activity += mgr_.serviceSorted(safe);
            mgr_.flushOverflow();
            if (activity > 0) {
                obs::traceSpanAt(service_wall,
                                 obs::TraceCategory::Manager,
                                 "manager-service", global, safe,
                                 static_cast<std::int64_t>(activity));
            }
            // Mark any core that just received a delivery for the
            // coalesced wake sweep: inert free-running cores sleep
            // until their InQ gets something. updatePacing() below
            // flushes the sweep. Inline mode has nobody to wake; the
            // marks still need clearing.
            if (inlineLean_)
                mgr_.drainDelivered([](CoreId) {});
            else
                mgr_.drainDelivered([this](CoreId c) {
                    requestWake(c);
                });
        }
        pacer_.observe(global, sys_.violations());
        recovery_.observe(global, sys_.violations());
        updatePacing(true, clocks);
        session.maybeSample(global);
        if (clocks.minUnfinished != maxTick &&
            clocks.maxUnfinished > clocks.minUnfinished) {
            host_.maxObservedSlack =
                std::max(host_.maxObservedSlack,
                         clocks.maxUnfinished - clocks.minUnfinished);
        }

        if (ckpt_.enabled()) {
            if (mgr_.rollbackRequested()) {
                pauseWorld();
                const Tick rb_global = computeGlobal();
                const auto rb = ckpt_.rollback(rb_global);
                if (rb.status ==
                    Checkpointer::RollbackResult::Status::Demoted) {
                    // No valid checkpoint generation: nothing was
                    // restored; keep running forward without
                    // speculation instead of dying.
                    recovery_.noteIntegrityDemotion(rb_global);
                    updatePacing(true);
                    session.collectTrace();
                    resumeWorld();
                    ++activity;
                    continue;
                }
                recovery_.noteRollback(rb_global);
                refreshControlAfterRestore();
                mgr_.setSorted(true);
                updatePacing(false);
                session.forceSample(rb.resumedAt);
                session.collectTrace();
                resumeWorld();
                ++activity;
                continue;
            }
            const Tick boundary = ckpt_.nextCheckpointAt();
            if (quiescedAtBoundary(boundary) && mgr_.pumpAll() == 0) {
                // All unfinished cores are parked exactly at the
                // boundary and no stragglers remain in the OutQs:
                // the world is stable, snapshot it directly.
                const bool was_replay = pacer_.replayMode();
                const auto event = ckpt_.takeCheckpoint(boundary);
                SLACKSIM_ASSERT(event == Checkpointer::Event::Taken,
                                "fork checkpoints are serial-only");
                if (was_replay && !pacer_.sortedService()) {
                    mgr_.serviceSorted(maxTick);
                    mgr_.setSorted(false);
                    mgr_.flushOverflow();
                }
                updatePacing(true);
                session.forceSample(boundary);
                session.collectTrace();
                ++activity;
                continue;
            }
        }

        if (warmup_pending) {
            std::uint64_t committed = 0;
            for (const auto &ctl : controls_)
                committed +=
                    ctl->committed.load(std::memory_order_acquire);
            if (committed >= engine_.warmupUops) {
                // Stop the world so no core mutates its stats while
                // the warmup measurements are discarded.
                pauseWorld();
                sys_.resetSimStats();
                refreshControlAfterRestore();
                resumeWorld();
                warmup_pending = false;
                ++activity;
            }
        }

        // Stop conditions.
        if (engine_.maxCommittedUops && !warmup_pending) {
            std::uint64_t committed = 0;
            for (const auto &ctl : controls_)
                committed +=
                    ctl->committed.load(std::memory_order_acquire);
            if (committed >= engine_.maxCommittedUops)
                break;
        }
        {
            bool all_finished = true;
            for (const auto &ctl : controls_)
                all_finished &=
                    ctl->finished.load(std::memory_order_acquire);
            if (all_finished) {
                // With relays active the OutQs belong to the relay
                // threads; the post-join drain below collects any
                // stragglers instead.
                if (relays_.empty()) {
                    mgr_.pumpAll();
                    mgr_.serviceSorted(maxTick);
                    mgr_.flushOverflow();
                }
                break;
            }
        }

        // Watchdog on stalled global time.
        if (global != last_global) {
            last_global = global;
            last_progress_wall = secondsSince(t0);
        } else if (secondsSince(t0) - last_progress_wall >
                   engine_.watchdogSeconds) {
            SLACKSIM_PANIC("parallel engine watchdog: no global ",
                           "progress, global=", global,
                           " scheme=", schemeName(engine_.scheme));
        }

        if (activity == 0 && (inlineLean_ || board_->sum() == p0)) {
            // Inline mode: the manager itself is the only thread that
            // drives the cores, so sleeping on the board would
            // deadlock — any relays downstream only forward events
            // this thread produces. Yield so relay threads get a
            // chance to advance their watermarks, then re-drive (the
            // stalled-global watchdog above still catches a true
            // deadlock).
            if (workerCount_ == 0) {
                std::this_thread::yield();
                continue;
            }
            obs::PhaseScope wait(obs::Phase::WaitInbound);
            // The eligibility re-check (after sleeper registration)
            // closes the race with a cancel that fired its wakeAll
            // kick before we parked.
            board_->sleep(p0, [this] {
                return !engine_.cancel || !engine_.cancel->cancelled();
            });
            ++host_.managerWakeups;
        }
    }

    // Shut the worker and relay threads down.
    stop_.store(true, std::memory_order_seq_cst);
    resumeEpoch_.fetch_add(1, std::memory_order_seq_cst);
    resumeEpoch_.notify_all();
    board_->wakeAll();
    for (std::uint32_t w = 0; w < workerCount_; ++w)
        wakeWorkerNow(w);
    for (auto &t : threads_)
        t->join();
    threads_.clear();
    for (auto &t : relayThreads_)
        t->join();
    relayThreads_.clear();
    for (const auto &wc : workers_)
        host_.coreParkEvents += wc->parks;
    // Drain any events still in transit (relay queues, popped-but-
    // unpushed carry tails, and OutQs the relays had not pumped when
    // they stopped) so final statistics match the flat manager's.
    // Queue before carry before OutQ preserves per-source FIFO order.
    if (!relays_.empty()) {
        for (const auto &relay : relays_) {
            relay->queue.consumeAll(
                [this](const BusMsg &msg) { mgr_.ingest(msg); });
            for (const BusMsg &msg : relay->carry)
                mgr_.ingest(msg);
            relay->carry.clear();
        }
        mgr_.pumpAll();
        mgr_.serviceSorted(maxTick);
        mgr_.flushOverflow();
    }

    ckpt_.finalizeHostStats();
    session.finish(computeGlobal());
    watchdog_ = nullptr; // owned by the session; run is over
    clearLogThreadContext();
    RunResult r = collectResult(secondsSince(t0));
    r.cancelled = cancelled;
    r.forensics = session.takeForensics();
    return r;
}

RunResult
ParallelEngine::collectResult(double wall_seconds) const
{
    RunResult r;
    r.workloadName = sys_.workload().name;
    r.scheme = engine_.scheme;
    r.parallelHost = true;
    r.execCycles = sys_.maxLocalTime();
    r.globalCycles = sys_.globalTime();
    r.committedUops = sys_.totalCommittedUops();
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        r.perCore.push_back(sys_.core(c).stats());
        r.coreTotal.add(sys_.core(c).stats());
    }
    r.uncore = sys_.uncoreStats();
    r.busQueueHistogram = sys_.uncore().busQueueHistogram();
    r.violations = sys_.violations();
    r.host = host_;
    r.host.wallSeconds = wall_seconds;
    r.intervals = mgr_.intervals();
    r.finalSlackBound = pacer_.currentBound();
    r.degradationLevel = recovery_.levelName();
    r.demotions = recovery_.demotions();
    r.repromotions = recovery_.repromotions();
    return r;
}

} // namespace slacksim
