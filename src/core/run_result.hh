/**
 * @file
 * Aggregated results of one simulation run, plus the per-checkpoint-
 * interval measurements that feed the paper's Tables 3 and 4.
 */

#ifndef SLACKSIM_CORE_RUN_RESULT_HH
#define SLACKSIM_CORE_RUN_RESULT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hh"
#include "fault/fault_plan.hh"
#include "obs/forensics.hh"
#include "stats/stats.hh"
#include "util/histogram.hh"
#include "util/types.hh"

namespace slacksim {

/** Violation bookkeeping for one checkpoint interval. */
struct IntervalRecord
{
    Tick start = 0;                      //!< interval start (cycles)
    Tick firstViolationOffset = maxTick; //!< maxTick = no violation
    std::uint64_t violations = 0;        //!< violations in interval

    bool violated() const { return violations > 0; }
};

/** Everything measured during one run. */
struct RunResult
{
    std::string workloadName;
    SchemeKind scheme = SchemeKind::CycleByCycle;
    bool parallelHost = true;

    Tick execCycles = 0;   //!< target execution time (max local clock)
    Tick globalCycles = 0; //!< final global time
    std::uint64_t committedUops = 0;

    CoreStats coreTotal;
    std::vector<CoreStats> perCore;
    UncoreStats uncore;
    ViolationStats violations;
    HostStats host;
    Log2Histogram busQueueHistogram; //!< per-request bus wait (cycles)

    std::vector<IntervalRecord> intervals;
    Tick finalSlackBound = 0; //!< adaptive: bound at end of run

    /** Violation attribution, decision log and obs overhead collected
     *  by the run's ObsSession (see obs/forensics.hh and the
     *  slacksim.run_report.v4 document). */
    obs::ForensicsData forensics;

    /** Degradation-ladder outcome (see fault/recovery_policy.hh):
     *  the run's final level ("none" when the ladder does not apply)
     *  and how many demotions / re-promotions happened. */
    std::string degradationLevel = "none";
    std::uint64_t demotions = 0;
    std::uint64_t repromotions = 0;

    /** true: the run was cancelled cooperatively (CancelToken) and
     *  every aggregate below covers only the work done up to that
     *  point. The run report surfaces this as "status": "cancelled". */
    bool cancelled = false;

    /** Fault-injection attribution for chaos runs: every fault the
     *  installed FaultPlan fired, plus the plan's spec count and the
     *  seed that made the run repeatable (0 = no plan installed). */
    std::vector<fault::InjectionRecord> faultInjections;
    std::uint64_t faultSpecCount = 0;
    std::uint64_t faultSeed = 0;

    /** Committed micro-ops per cycle across the whole CMP. */
    double
    ipc() const
    {
        return execCycles
                   ? static_cast<double>(committedUops) / execCycles
                   : 0.0;
    }

    /** Cycles per committed micro-op (per core average). */
    double
    cpi() const
    {
        return committedUops
                   ? static_cast<double>(execCycles) * perCore.size() /
                         committedUops
                   : 0.0;
    }

    /** Total violations per simulated cycle. */
    double
    violationRate() const
    {
        return execCycles
                   ? static_cast<double>(violations.total()) / execCycles
                   : 0.0;
    }

    /** Bus violations per simulated cycle. */
    double
    busViolationRate() const
    {
        return execCycles ? static_cast<double>(
                                violations.busViolations) /
                                execCycles
                          : 0.0;
    }

    /** Map violations per simulated cycle. */
    double
    mapViolationRate() const
    {
        return execCycles ? static_cast<double>(
                                violations.mapViolations) /
                                execCycles
                          : 0.0;
    }

    /** Fraction of checkpoint intervals with >= 1 violation. */
    double fractionIntervalsViolated() const;

    /** Mean distance (cycles) from interval start to 1st violation,
     *  over intervals that violated. */
    double meanFirstViolationDistance() const;

    /** Human-readable multi-line summary. */
    void printSummary(std::ostream &os) const;

    /** Per-core breakdown table (CPI, stalls, cache behavior). */
    void printPerCore(std::ostream &os) const;

    /** Machine-readable JSON dump of every metric (one object). */
    void printJson(std::ostream &os) const;
};

} // namespace slacksim

#endif // SLACKSIM_CORE_RUN_RESULT_HH
