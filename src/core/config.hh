/**
 * @file
 * Top-level simulation configuration: target machine, slack scheme,
 * checkpointing, and run control. Defaults mirror the paper's
 * experimental setup (Section 2.1): 8-core CMP, 4-way OoO cores with
 * 64 in-flight instructions, 16KB L1 I/D, 256KB shared L2 with
 * 8-clock access, 100-clock L2 miss, MESI over a request/response
 * snooping bus.
 */

#ifndef SLACKSIM_CORE_CONFIG_HH
#define SLACKSIM_CORE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/l1_cache.hh"
#include "cpu/ooo_core.hh"
#include "obs/obs_config.hh"
#include "uncore/uncore.hh"
#include "util/types.hh"
#include "workload/kernels.hh"

namespace slacksim {

class CancelToken; // util/cancel.hh
class TaskRunner;  // util/task_runner.hh

/** The pacing scheme applied by the simulation manager. */
enum class SchemeKind : std::uint8_t {
    CycleByCycle, //!< lock-step, sorted event service (gold standard)
    Quantum,      //!< barrier every `quantum` cycles, sorted service
    Bounded,      //!< slack bound `slackBound`, arrival-order service
    Unbounded,    //!< free-running, arrival-order service
    Adaptive,     //!< bounded + violation-rate feedback control
    LaxP2P,       //!< Graphite-style peer-to-peer slack: each core is
                  //!< paced against one randomly chosen peer instead
                  //!< of the global minimum (the approach the paper
                  //!< cites from Graphite and plans to explore)
};

/** @return printable scheme name. */
const char *schemeName(SchemeKind kind);

/** Parse a scheme name ("cc", "quantum", ...). Fatal on failure. */
SchemeKind parseScheme(const std::string &name);

/** Checkpoint machinery mode. */
enum class CheckpointMode : std::uint8_t {
    Off,         //!< no checkpoints
    Measure,     //!< take checkpoints, record per-interval violation
                 //!< data (Tables 2-4), never roll back
    Speculative, //!< full speculation: roll back on violations and
                 //!< replay cycle-by-cycle to the next checkpoint
};

/** Adaptive-scheme controller parameters. */
struct AdaptiveParams
{
    double targetViolationRate = 1e-4; //!< paper baseline: 0.01%
    double violationBand = 0.05;       //!< +-5% dead zone around target
    Tick epochCycles = 1000;           //!< control-loop period
    /** false (paper): rate = total violations / total cycles.
     *  true: rate over the last epoch only (faster reaction, no
     *  startup-transient bias). */
    bool windowedRate = false;
    Tick initialBound = 8;
    Tick minBound = 1;
    Tick maxBound = 4096;
    bool adaptOnBus = true;            //!< count bus violations
    bool adaptOnMap = true;            //!< count map violations
};

/** How global checkpoints are materialized. */
enum class CheckpointTech : std::uint8_t {
    Memory,      //!< in-memory serialization of the quiesced world
    ForkProcess, //!< the paper's fork()-based process checkpoints;
                 //!< serial engine only (fork clones one thread), and
                 //!< rollback resumes in the *parent* process — see
                 //!< core/fork_checkpoint.hh
};

/** Checkpoint / speculation parameters. */
struct CheckpointParams
{
    CheckpointMode mode = CheckpointMode::Off;
    CheckpointTech tech = CheckpointTech::Memory;
    Tick interval = 50000;     //!< cycles between global checkpoints
    bool rollbackOnBus = true; //!< bus violations trigger rollback
    bool rollbackOnMap = true; //!< map violations trigger rollback
    /**
     * Emulated per-checkpoint host cost in bytes copied, on top of
     * the real snapshot, to model heavier checkpoint technology (the
     * paper's fork() checkpoints pay COW page-fault costs we do not).
     * 0 disables the emulation.
     */
    std::uint64_t extraCopyBytes = 0;

    /**
     * Fork technology only: kill and recover a checkpoint child that
     * produces no exit status within this many host ms (0 = wait
     * forever, the pre-fault-tolerance behavior).
     */
    std::uint64_t childTimeoutMs = 0;

    /**
     * Memory technology only: seal the serialized arena (integrity
     * trailer + emulated extra-copy cost) on a background host thread
     * so forward simulation overlaps with it. The serialization itself
     * stays synchronous (it reads live quiesced state); only the work
     * on the immutable arena moves off the critical path, and it is
     * reported as background host time (checkpointAsyncSeconds), not
     * critical-path checkpoint_seconds.
     */
    bool asyncSeal = true;
};

/**
 * Graceful-degradation ladder (DESIGN.md §9). All detection knobs
 * default to off so existing configurations behave exactly as before;
 * checkpoint-integrity demotion is always on (a run with no valid
 * rollback image must degrade rather than crash).
 */
struct RecoveryParams
{
    /**
     * Rollbacks within stormWindow cycles that count as a rollback
     * storm; a storm demotes speculative → adaptive (stop rolling
     * back, keep adapting). 0 disables storm detection.
     */
    std::uint32_t stormThreshold = 0;

    /** Sliding window (cycles) for storm detection. */
    Tick stormWindow = 100000;

    /**
     * Consecutive adaptive epochs pinned at minBound with the
     * violation rate still above band before demoting to fixed
     * slack=1 (quantum-equivalent, paper §3). 0 disables.
     */
    std::uint32_t pinnedEpochLimit = 0;

    /**
     * Cycles of demoted running before one re-promotion attempt; the
     * delay doubles after every demotion (capped at 8x). 0 = demote
     * permanently, never re-promote.
     */
    Tick repromoteAfter = 0;
};

/** Engine (simulation-layer) configuration. */
struct EngineConfig
{
    SchemeKind scheme = SchemeKind::CycleByCycle;
    Tick slackBound = 10;  //!< Bounded/LaxP2P: max drift vs min/peer
    Tick quantum = 8;      //!< Quantum: barrier period
    Tick p2pShufflePeriod = 1000; //!< LaxP2P: cycles between random
                                  //!< re-pairings
    std::uint64_t p2pSeed = 12345; //!< LaxP2P: pairing RNG seed
    AdaptiveParams adaptive;
    CheckpointParams checkpoint;
    RecoveryParams recovery;

    /**
     * Deterministic fault injection: parsed --fault-spec strings
     * (grammar in fault/fault_plan.hh) plus the seed that fixes every
     * random choice a fault makes (bit positions, truncation points).
     * Empty = no faults; runSimulation() also honors the
     * SLACKSIM_FAULT_SPEC environment as a fallback.
     */
    std::vector<std::string> faultSpecs;
    std::uint64_t faultSeed = 1;

    /** Stop after this many committed micro-ops in total (0: run to
     *  trace completion). */
    std::uint64_t maxCommittedUops = 0;

    /** Discard all simulated statistics once this many micro-ops have
     *  committed (0: off). Mirrors the paper's methodology of
     *  skipping benchmark initialization before measuring; the uop
     *  budget then counts post-warmup work only. */
    std::uint64_t warmupUops = 0;

    /** true: threaded engine (one thread per core + manager thread);
     *  false: deterministic single-threaded engine. */
    bool parallelHost = true;

    /** Cycles a core may run per scheduling burst (parallel host). */
    std::uint32_t burstCycles = 64;

    /**
     * Host threads the parallel engine may occupy, *including* the
     * manager thread: N-1 worker threads are launched and the
     * simulated cores are partitioned across them (parti-gem5-style
     * partitioned event servicing). 1 = inline mode: no workers at
     * all, the manager drives every core burst itself (the honest
     * configuration for a single-CPU host, where extra threads only
     * buy context switches). 0 = auto-size from
     * std::thread::hardware_concurrency().
     */
    std::uint32_t hostThreads = 0;

    /**
     * Manager service banks: the manager's staging runs and the
     * global cache map are split into this many per-address-range
     * banks (ROADMAP item 2's sharded-manager groundwork). Service
     * order stays the exact global (ts, src, seq) order — the k-way
     * tournament runs per bank with a top-level selection over bank
     * heads — so CC results are bit-identical for every bank count.
     * 0 or 1 = single bank (the classic layout).
     */
    std::uint32_t managerBanks = 0;

    /**
     * Hierarchical manager (paper Section 2: "if the manager thread
     * becomes a bottleneck, then it should be organized
     * hierarchically"). 0 = flat (the paper's evaluated setup);
     * N > 0 adds N relay threads, each consolidating a cluster of
     * core OutQs toward the root manager. Parallel host only, and
     * (currently) incompatible with checkpointing.
     */
    std::uint32_t managerClusters = 0;

    /** Queue capacity of each OutQ/InQ. */
    std::uint32_t queueCapacity = 4096;

    /** Abort if no global progress for this long (hang detection). */
    double watchdogSeconds = 120.0;

    /** Observability: event tracing + epoch metrics (off by default;
     *  see src/obs and the --trace-out/--metrics-out flags). */
    ObsConfig obs;

    /**
     * Cooperative cancellation channel (util/cancel.hh), or nullptr.
     * The engines poll it at their loop boundary and return a partial
     * result with `cancelled = true`; the job server uses this for
     * per-job timeouts, client cancels and shutdown drains. Non-owning
     * — must outlive the run.
     */
    CancelToken *cancel = nullptr;

    /**
     * Where engine worker threads execute (util/task_runner.hh), or
     * nullptr for the built-in spawn/join-per-run behavior. The serve
     * worker pool passes its persistent pool here so thousands of
     * jobs reuse one set of host threads. Non-owning.
     */
    TaskRunner *runner = nullptr;
};

/** Target-machine configuration. */
struct TargetConfig
{
    std::uint32_t numCores = 8;
    CoherenceProtocol protocol = CoherenceProtocol::MESI;
    CoreParams core;
    L1Params l1d{64, 4, 64, 8, 1, false}; //!< 16KB D-cache
    L1Params l1i{64, 4, 64, 2, 1, true};  //!< 16KB I-cache
    L2Params l2;
    Tick c2cLatency = 12;
    Tick syncLatency = 6;
    Tick busRequestCycles = 1;
    Tick busResponseCycles = 2;
};

/** Everything a run needs. */
struct SimConfig
{
    TargetConfig target;
    EngineConfig engine;
    WorkloadParams workload;

    /** Validate cross-field consistency; fatal on user error. */
    void validate() const;
};

} // namespace slacksim

#endif // SLACKSIM_CORE_CONFIG_HH
