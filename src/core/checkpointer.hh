/**
 * @file
 * Global checkpoint / rollback orchestration (paper Section 5).
 *
 * The paper's per-thread fork() checkpoints cannot be applied to a
 * thread-parallel simulator (fork clones only the calling thread), so
 * a global checkpoint here is an in-memory serialization of the whole
 * quiesced world: every core complex (pipeline, L1s, queues, clock),
 * the uncore (map, L2, sync, bus state, violation counters) and the
 * manager's in-flight event buffers. Rollback deserializes it and
 * replays in cycle-by-cycle mode until the next checkpoint boundary
 * to guarantee forward progress.
 */

#ifndef SLACKSIM_CORE_CHECKPOINTER_HH
#define SLACKSIM_CORE_CHECKPOINTER_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/config.hh"
#include "core/fork_checkpoint.hh"
#include "core/manager_logic.hh"
#include "core/pacer.hh"
#include "core/sim_system.hh"
#include "util/task_runner.hh"

namespace slacksim {

namespace obs {
class AdaptiveDecisionLog;
} // namespace obs

/** Checkpoint/rollback controller; all calls on the manager thread
 *  while the simulation is quiesced.
 *
 *  Async seal (CheckpointParams::asyncSeal, Memory technology only):
 *  serialization still runs synchronously on the manager — it reads
 *  the live quiesced world — but the integrity-trailer seal and the
 *  extra-copy emulation run on a dedicated persistent background
 *  thread, overlapped with forward simulation. The in-flight
 *  generation is promoted to the active rollback image at the next
 *  join point (the following checkpoint, a rollback, or stat
 *  finalization); until then the previous generation stays active
 *  and restorable. Seal-thread busy time is reported as
 *  HostStats::checkpointAsyncSeconds, never as critical-path
 *  checkpointSeconds — only time the manager actually spends blocked
 *  waiting on an unfinished seal lands on the critical path. */
class Checkpointer
{
  public:
    Checkpointer(SimSystem &sys, Pacer &pacer, ManagerLogic &mgr,
                 const EngineConfig &engine, HostStats *host);
    ~Checkpointer();

    /** @return true when checkpointing is configured on. */
    bool
    enabled() const
    {
        return engine_.checkpoint.mode != CheckpointMode::Off;
    }

    /** @return true when rollback-on-violation is configured. */
    bool
    speculative() const
    {
        return engine_.checkpoint.mode == CheckpointMode::Speculative;
    }

    /** @return the simulated time of the next checkpoint boundary. */
    Tick nextCheckpointAt() const { return nextCheckpointAt_; }

    /** @return the time of the last successful checkpoint. */
    Tick lastCheckpointAt() const { return lastCheckpointAt_; }

    /** What takeCheckpoint() reports back to the engine. */
    enum class Event : std::uint8_t
    {
        Taken,              //!< fresh checkpoint; keep going
        ResumedFromRollback //!< (fork tech) this process just woke up
                            //!< at the checkpoint after a rollback:
                            //!< the engine must enter replay pacing
    };

    /** What rollback() reports back to the engine. */
    struct RollbackResult
    {
        enum class Status : std::uint8_t
        {
            Restored, //!< active generation verified and restored
            FellBack, //!< active failed integrity; older last-good
                      //!< generation restored instead
            Demoted   //!< no generation verified: speculation is now
                      //!< suppressed, execution continues forward
        };

        Status status = Status::Restored;
        Tick resumedAt = 0; //!< simulated time execution resumes at
    };

    /**
     * Take a global checkpoint at quiesced time @p now: closes the
     * open measurement interval, captures the world (in-memory
     * serialization or a fork() process checkpoint, per the
     * configured technology), re-arms rollback and opens the next
     * interval. Ends a replay window.
     */
    Event takeCheckpoint(Tick now);

    /** Sync host statistics that live in fork-shared state (no-op
     *  for the in-memory technology). Call before collecting run
     *  results. */
    void finalizeHostStats();

    /**
     * Restore the newest checkpoint generation whose integrity
     * trailer verifies (system must be quiesced); a generation that
     * fails verification is discarded and the previous last-good one
     * is tried. With no valid generation left the run is demoted —
     * speculation suppressed, execution continues forward — instead
     * of crashing. On a restore, enters cycle-by-cycle replay until
     * the next boundary.
     * @param current_global global time when the violation hit
     */
    RollbackResult rollback(Tick current_global);

    /**
     * Degradation ladder switch (fault/recovery_policy.hh): while
     * suppressed, checkpoints are still taken (preserving interval
     * measurement) but rollback stays disarmed. Set internally when
     * every generation fails integrity verification.
     */
    void setSpeculationSuppressed(bool suppressed)
    {
        speculationSuppressed_ = suppressed;
    }

    /** @return true while speculation is suppressed. */
    bool speculationSuppressed() const
    {
        return speculationSuppressed_;
    }

    /** @return bytes of the most recent checkpoint (incl. trailer). */
    std::uint64_t
    lastCheckpointBytes() const
    {
        return gens_[active_].buf.size();
    }

    /** Wire (or unwire, with nullptr) the forensics episode log:
     *  each checkpoint/rollback/replay episode is recorded with its
     *  host-ns cost. */
    void setDecisionLog(obs::AdaptiveDecisionLog *log)
    {
        decisionLog_ = log;
    }

    /** Join the in-flight async seal, if any: blocks until the seal
     *  thread finished, then promotes the sealed generation to the
     *  active rollback image and fires any deferred snapshot fault
     *  (on the calling manager thread, where the fault plan is
     *  bound). No-op when nothing is outstanding. */
    void waitAsync();

  private:
    /** @return true when this run seals snapshots asynchronously. */
    bool
    asyncSeal() const
    {
        return engine_.checkpoint.asyncSeal && !fork_;
    }

    void sealThreadMain();
    /** Seal + extra-copy for generation @p idx (both threads use
     *  this; the sync path calls it inline). @return seconds spent. */
    double sealAndCopy(std::uint32_t idx);

    SimSystem &sys_;
    Pacer &pacer_;
    ManagerLogic &mgr_;
    EngineConfig engine_;
    HostStats *host_;

    /** One retained checkpoint generation: a sealed arena (payload +
     *  integrity trailer, util/checksum.hh) and where it was taken. */
    struct Generation
    {
        std::vector<std::uint8_t> buf;
        Tick takenAt = 0;
        bool valid = false; //!< sealed and not yet failed verification
    };

    /**
     * Double-buffered retained snapshot storage: gens_[active_]
     * always holds the last *complete* checkpoint; a new one is
     * serialized into the spare (reusing its capacity) and the roles
     * swap only once the write finished and the arena is sealed. A
     * failure mid-serialization therefore never corrupts the rollback
     * image, and the out-going generation stays restorable as the
     * last-good fallback should the new one fail verification.
     */
    Generation gens_[2];
    std::uint32_t active_ = 0;
    std::vector<std::uint8_t> extraCopyArena_;
    std::vector<std::uint8_t> extraCopyScratch_;
    std::unique_ptr<ForkCheckpointer> fork_;
    Tick lastCheckpointAt_ = 0;
    Tick nextCheckpointAt_ = 0;
    bool haveCheckpoint_ = false;
    bool speculationSuppressed_ = false;
    obs::AdaptiveDecisionLog *decisionLog_ = nullptr;
    std::uint64_t replayStartNs_ = 0; //!< wall ns when replay began

    /** Async-seal machinery. The seal thread is spawned lazily on
     *  the first async checkpoint and lives for the Checkpointer's
     *  lifetime. It is deliberately *not* registered with the
     *  profiler/tracer: its busy time is off the simulation's
     *  critical path and is reported via checkpointAsyncSeconds. */
    ThreadSpawnRunner sealRunner_;
    std::unique_ptr<TaskRunner::Handle> sealThread_;
    std::mutex sealMutex_;
    std::condition_variable sealCv_;
    bool sealJobPending_ = false; //!< posted, seal thread not started
    bool sealJobDone_ = false;    //!< seal thread finished the job
    bool sealStop_ = false;       //!< destructor shutdown flag
    bool sealOutstanding_ = false; //!< manager owes a waitAsync()
    std::uint32_t sealIdx_ = 0;    //!< generation being sealed
    Tick sealTakenAt_ = 0;
    std::uint64_t sealCheckpointNo_ = 0; //!< deferred-fault ordinal
    double sealBusySeconds_ = 0.0; //!< seal-thread time for the job
};

} // namespace slacksim

#endif // SLACKSIM_CORE_CHECKPOINTER_HH
