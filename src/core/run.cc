/**
 * @file
 * Run facade implementation.
 */

#include "core/run.hh"

#include <memory>

#include "core/parallel_engine.hh"
#include "core/serial_engine.hh"
#include "core/sim_system.hh"
#include "fault/fault_plan.hh"
#include "obs/run_report.hh"
#include "obs/span.hh"
#include "util/io.hh"
#include "util/logging.hh"
#include "util/run_token.hh"

namespace slacksim {

namespace {

/** Emit the unified run report when --report-out is configured.
 *  Centralized here so every engine, bench and example that goes
 *  through runSimulation() gets the flag for free. */
void
maybeWriteReport(const SimConfig &config, const RunResult &result)
{
    const std::string &path = config.engine.obs.reportOut;
    if (path.empty())
        return;
    CheckedOfstream os(path, "run report");
    if (os.ok())
        obs::writeRunReport(os.stream(), config, result);
    // The report may be the only evidence an isolated child leaves
    // behind; fsync so it survives the process (and the power).
    os.sync();
    if (os.finish()) {
        SLACKSIM_INFORM("run report (", obs::runReportSchema, ") -> ",
                        path);
    }
}

} // namespace

RunResult
runSimulation(const SimConfig &run_config)
{
    // A submitter (the job server) propagates its trace id through
    // EngineConfig::obs; a standalone run with observability on mints
    // its own so every artifact still carries a joinable identity.
    SimConfig config = run_config;
    if (config.engine.obs.enabled() && config.engine.obs.traceId.empty())
        config.engine.obs.traceId = obs::mintTraceId();

    // Mint this run's identity and bind it to the calling (manager)
    // thread: token-aware registries (tracer, profiler) use it to
    // tell concurrent runs apart, and the engines replicate it onto
    // every worker thread via the SimSystem run binding below.
    const std::uint64_t token = newRunToken();
    ScopedRunToken token_scope(token);

    // Resolve and install the fault plan for the duration of this run
    // (flag or environment; nullptr in the common fault-free case).
    // The install is thread-local, so concurrent runs in one process
    // each see only their own plan.
    std::uint64_t fault_seed = 0;
    std::vector<fault::FaultSpec> specs = fault::resolveFaultSpecs(
        config.engine.faultSpecs, config.engine.faultSeed, &fault_seed);
    std::unique_ptr<fault::FaultPlan> plan;
    if (!specs.empty()) {
        plan = std::make_unique<fault::FaultPlan>(std::move(specs),
                                                  fault_seed);
        plan->install();
    }

    SimSystem sys(config);
    sys.setRunBinding(token, plan.get());
    RunResult result;
    if (config.engine.parallelHost) {
        ParallelEngine engine(sys);
        result = engine.run();
    } else {
        SerialEngine engine(sys);
        result = engine.run();
    }

    if (plan) {
        plan->uninstall();
        result.faultInjections = plan->records();
        result.faultSpecCount = plan->specCount();
        result.faultSeed = plan->seed();
    }
    maybeWriteReport(config, result);
    return result;
}

SimConfig
paperConfig(const std::string &kernel, std::uint64_t max_uops)
{
    SimConfig config;
    config.workload.kernel = kernel;
    config.workload.numThreads = config.target.numCores;
    config.engine.maxCommittedUops = max_uops;
    return config;
}

} // namespace slacksim
