/**
 * @file
 * Run facade implementation.
 */

#include "core/run.hh"

#include "core/parallel_engine.hh"
#include "core/serial_engine.hh"
#include "core/sim_system.hh"

namespace slacksim {

RunResult
runSimulation(const SimConfig &config)
{
    SimSystem sys(config);
    if (config.engine.parallelHost) {
        ParallelEngine engine(sys);
        return engine.run();
    }
    SerialEngine engine(sys);
    return engine.run();
}

SimConfig
paperConfig(const std::string &kernel, std::uint64_t max_uops)
{
    SimConfig config;
    config.workload.kernel = kernel;
    config.workload.numThreads = config.target.numCores;
    config.engine.maxCommittedUops = max_uops;
    return config;
}

} // namespace slacksim
