/**
 * @file
 * Run facade implementation.
 */

#include "core/run.hh"

#include <fstream>

#include "core/parallel_engine.hh"
#include "core/serial_engine.hh"
#include "core/sim_system.hh"
#include "obs/run_report.hh"
#include "util/logging.hh"

namespace slacksim {

namespace {

/** Emit the unified run report when --report-out is configured.
 *  Centralized here so every engine, bench and example that goes
 *  through runSimulation() gets the flag for free. */
void
maybeWriteReport(const SimConfig &config, const RunResult &result)
{
    const std::string &path = config.engine.obs.reportOut;
    if (path.empty())
        return;
    std::ofstream os(path);
    if (!os) {
        SLACKSIM_WARN("cannot write run report to ", path);
        return;
    }
    obs::writeRunReport(os, config, result);
    SLACKSIM_INFORM("run report (", obs::runReportSchema, ") -> ",
                    path);
}

} // namespace

RunResult
runSimulation(const SimConfig &config)
{
    SimSystem sys(config);
    RunResult result;
    if (config.engine.parallelHost) {
        ParallelEngine engine(sys);
        result = engine.run();
    } else {
        SerialEngine engine(sys);
        result = engine.run();
    }
    maybeWriteReport(config, result);
    return result;
}

SimConfig
paperConfig(const std::string &kernel, std::uint64_t max_uops)
{
    SimConfig config;
    config.workload.kernel = kernel;
    config.workload.numThreads = config.target.numCores;
    config.engine.maxCommittedUops = max_uops;
    return config;
}

} // namespace slacksim
