/**
 * @file
 * AddressSpace implementation.
 */

#include "mem/address_space.hh"

#include "util/logging.hh"

namespace slacksim {

AddressSpace::AddressSpace(unsigned num_threads)
    : sharedTop_(sharedBase_),
      privateTop_(num_threads)
{
    SLACKSIM_ASSERT(num_threads > 0, "AddressSpace needs >= 1 thread");
    for (unsigned t = 0; t < num_threads; ++t)
        privateTop_[t] = privateRegionBase_ + t * privateStride_;
}

Addr
AddressSpace::alignUp(Addr a, std::size_t align)
{
    SLACKSIM_ASSERT(align && (align & (align - 1)) == 0,
                    "alignment must be a power of two");
    return (a + align - 1) & ~static_cast<Addr>(align - 1);
}

Addr
AddressSpace::allocShared(std::size_t bytes, std::size_t align)
{
    const Addr base = alignUp(sharedTop_, align);
    sharedTop_ = base + bytes;
    SLACKSIM_ASSERT(sharedTop_ < privateRegionBase_,
                    "shared heap exhausted");
    return base;
}

Addr
AddressSpace::allocPrivate(CoreId t, std::size_t bytes, std::size_t align)
{
    SLACKSIM_ASSERT(t < privateTop_.size(), "bad thread id ", t);
    const Addr base = alignUp(privateTop_[t], align);
    privateTop_[t] = base + bytes;
    SLACKSIM_ASSERT(privateTop_[t] <
                        privateRegionBase_ + (t + 1) * privateStride_,
                    "private region exhausted for thread ", t);
    return base;
}

Addr
AddressSpace::codeBase(CoreId t) const
{
    SLACKSIM_ASSERT(t < privateTop_.size(), "bad thread id ", t);
    return codeRegionBase_ + t * codeStride_;
}

} // namespace slacksim
