/**
 * @file
 * Simulated (target) address-space layout.
 *
 * The workload kernels run at trace-generation time, so the simulator
 * never needs the target memory *contents* — only a consistent layout
 * of addresses. This module hands out code, shared-heap and per-thread
 * private regions with deterministic bump allocation, mirroring how
 * the Splash-2 programs lay out their G_MEM shared arena and
 * per-thread stacks.
 */

#ifndef SLACKSIM_MEM_ADDRESS_SPACE_HH
#define SLACKSIM_MEM_ADDRESS_SPACE_HH

#include <cstddef>
#include <vector>

#include "util/types.hh"

namespace slacksim {

/**
 * Deterministic bump allocator over fixed target regions.
 *
 * Layout (1 GiB apart so regions can never collide):
 *   code   region per thread at 0x0001'0000'0000 + t * codeStride
 *   shared heap            at 0x4000'0000'0000
 *   private region per thread at 0x8000'0000'0000 + t * privStride
 */
class AddressSpace
{
  public:
    /** @param num_threads number of workload threads to provision. */
    explicit AddressSpace(unsigned num_threads);

    /** Allocate @p bytes in the shared heap. @return base address. */
    Addr allocShared(std::size_t bytes, std::size_t align = 64);

    /** Allocate @p bytes in thread @p t's private region. */
    Addr allocPrivate(CoreId t, std::size_t bytes, std::size_t align = 64);

    /** @return base of thread @p t's code region. */
    Addr codeBase(CoreId t) const;

    /** @return total shared bytes allocated so far. */
    std::size_t sharedBytes() const { return sharedTop_ - sharedBase_; }

    /** @return number of provisioned threads. */
    unsigned numThreads() const
    {
        return static_cast<unsigned>(privateTop_.size());
    }

    /** @return true when @p a falls inside the shared heap region. */
    static bool
    isShared(Addr a)
    {
        return a >= sharedBase_ && a < privateRegionBase_;
    }

    static constexpr Addr codeRegionBase_ = 0x0001'0000'0000ull;
    static constexpr Addr codeStride_ = 0x0000'1000'0000ull;
    static constexpr Addr sharedBase_ = 0x4000'0000'0000ull;
    static constexpr Addr privateRegionBase_ = 0x8000'0000'0000ull;
    static constexpr Addr privateStride_ = 0x0000'4000'0000ull;

  private:
    static Addr alignUp(Addr a, std::size_t align);

    Addr sharedTop_;
    std::vector<Addr> privateTop_;
};

} // namespace slacksim

#endif // SLACKSIM_MEM_ADDRESS_SPACE_HH
