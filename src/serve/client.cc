/**
 * @file
 * Job-server client implementation: newline-JSON protocol plus the
 * transport retry / reconnect layer (see client.hh).
 */

#include "serve/client.hh"

#include <chrono>
#include <sstream>
#include <thread>

#include "util/json.hh"

namespace slacksim {
namespace serve {

namespace {

/** Replies may take as long as a slow simulation keeps the daemon's
 *  handler busy; be generous but never infinite. */
constexpr int kReplyTimeoutMs = 120000;

/** xorshift64* step for jitter — cheap, seedable, and keeps the
 *  client free of any dependence on global randomness (retry
 *  schedules stay reproducible under a fixed seed). */
std::uint64_t
nextJitter(std::uint64_t *state)
{
    std::uint64_t x = *state ? *state : 0x9e3779b97f4a7c15ull;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    return x * 0x2545f4914f6cdd1dull;
}

} // namespace

Client::Client(const std::string &socketPath, RetryPolicy policy)
    : socketPath_(socketPath),
      policy_(policy),
      jitterState_(policy.jitterSeed),
      conn_(UdsConn::connect(socketPath))
{
    if (!conn_.valid() && policy_.attempts > 1) {
        std::string ignored;
        ensureConnected(&ignored);
    }
}

void
Client::backoff(std::uint32_t attempt)
{
    // Capped exponential: base * 2^(attempt-1), then half fixed +
    // half jittered so a fleet of retrying clients never stampedes
    // the daemon in lockstep.
    std::uint64_t delay = policy_.baseMs;
    for (std::uint32_t i = 1; i < attempt && delay < policy_.maxMs;
         ++i) {
        delay *= 2;
    }
    if (delay > policy_.maxMs)
        delay = policy_.maxMs;
    const std::uint64_t half = delay / 2;
    const std::uint64_t jitter =
        half ? nextJitter(&jitterState_) % half : 0;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(half + jitter));
}

bool
Client::ensureConnected(std::string *error)
{
    if (conn_.valid())
        return true;
    for (std::uint32_t attempt = 1; attempt <= policy_.attempts;
         ++attempt) {
        conn_ = UdsConn::connect(socketPath_);
        if (conn_.valid())
            return true;
        if (attempt < policy_.attempts)
            backoff(attempt);
    }
    *error = "could not connect to " + socketPath_ + " after " +
             std::to_string(policy_.attempts) + " attempt(s)";
    return false;
}

bool
Client::request(const std::string &frame, json::Value *reply,
                std::string *error)
{
    for (std::uint32_t attempt = 1;; ++attempt) {
        std::string transport_error;
        if (!ensureConnected(&transport_error)) {
            *error = transport_error;
            return false;
        }
        bool transport_failed = false;
        if (!conn_.sendLine(frame)) {
            transport_error = "send failed";
            transport_failed = true;
        } else {
            std::string line;
            const UdsConn::Recv r =
                conn_.recvLine(line, kReplyTimeoutMs);
            if (r != UdsConn::Recv::Line) {
                transport_error = r == UdsConn::Recv::Timeout
                                      ? "reply timed out"
                                      : "connection closed";
                transport_failed = true;
            } else {
                json::Value doc;
                try {
                    doc = json::parse(line);
                    if (!doc.at("ok").asBool()) {
                        // Protocol-level refusal: a definitive
                        // answer, never retried.
                        *error = doc.has("error")
                                     ? doc.at("error").asString()
                                     : "request failed";
                        return false;
                    }
                } catch (const json::ParseError &e) {
                    *error = std::string("bad reply: ") + e.what();
                    return false;
                }
                if (reply)
                    *reply = std::move(doc);
                return true;
            }
        }
        if (transport_failed) {
            conn_ = UdsConn(); // drop the dead socket
            if (attempt >= policy_.attempts) {
                *error = transport_error + " (after " +
                         std::to_string(attempt) + " attempt(s))";
                return false;
            }
            backoff(attempt);
        }
    }
}

std::uint64_t
Client::submit(const std::string &specJson, std::string *error,
               const std::string &idempotencyKey, bool *duplicate)
{
    if (duplicate)
        *duplicate = false;
    // The spec rides inside the frame as a JSON value, not a string:
    // splice the already-serialized object in directly.
    json::Value spec;
    try {
        spec = json::parse(specJson);
        (void)spec;
    } catch (const json::ParseError &e) {
        *error = std::string("spec is not valid JSON: ") + e.what();
        return 0;
    }
    // The wire is newline-framed; flatten the (multi-line) spec file.
    // Strict JSON forbids raw newlines inside strings (they must be
    // escaped as \n), so every newline here is layout whitespace.
    std::string flat = specJson;
    for (char &c : flat) {
        if (c == '\n' || c == '\r')
            c = ' ';
    }
    std::string frame = "{\"op\": \"submit\"";
    if (!idempotencyKey.empty()) {
        std::ostringstream key;
        JsonWriter w(key, 0);
        w.beginObject();
        w.field("idempotency_key", idempotencyKey);
        w.endObject();
        const std::string obj = key.str();
        frame += ", " + obj.substr(1, obj.size() - 2);
    }
    frame += ", \"spec\": " + flat + "}";
    json::Value reply;
    if (!request(frame, &reply, error))
        return 0;
    try {
        if (duplicate && reply.has("duplicate"))
            *duplicate = reply.at("duplicate").asBool();
        return reply.at("id").asUint();
    } catch (const json::ParseError &e) {
        *error = std::string("bad reply: ") + e.what();
        return 0;
    }
}

bool
Client::cancel(std::uint64_t id, std::string *error)
{
    return request("{\"op\": \"cancel\", \"id\": " +
                       std::to_string(id) + "}",
                   nullptr, error);
}

bool
Client::status(std::uint64_t id, json::Value *reply,
               std::string *error)
{
    std::string frame = "{\"op\": \"status\"";
    if (id != 0)
        frame += ", \"id\": " + std::to_string(id);
    frame += "}";
    return request(frame, reply, error);
}

bool
Client::stats(json::Value *reply, std::string *error)
{
    return request("{\"op\": \"stats\"}", reply, error);
}

bool
Client::metricsText(std::string *text, std::string *error)
{
    json::Value reply;
    if (!request("{\"op\": \"metrics\"}", &reply, error))
        return false;
    try {
        *text = reply.at("text").asString();
    } catch (const json::ParseError &e) {
        *error = std::string("bad reply: ") + e.what();
        return false;
    }
    return true;
}

bool
Client::fleetTrace(std::string *json, std::string *error)
{
    json::Value reply;
    if (!request("{\"op\": \"trace\"}", &reply, error))
        return false;
    try {
        *json = reply.at("json").asString();
    } catch (const json::ParseError &e) {
        *error = std::string("bad reply: ") + e.what();
        return false;
    }
    return true;
}

bool
Client::shutdown(bool drain, std::string *error)
{
    return request(std::string("{\"op\": \"shutdown\", \"drain\": ") +
                       (drain ? "true" : "false") + "}",
                   nullptr, error);
}

bool
Client::watch(std::uint64_t id,
              const std::function<void(const json::Value &)> &onEvent,
              std::string *error)
{
    // State/end events carry a per-job seq; remembering the last one
    // seen lets a reconnect resume without replaying transitions the
    // callback already handled.
    std::uint64_t last_seq = 0;
    for (std::uint32_t attempt = 1;; ++attempt) {
        std::string transport_error;
        if (!ensureConnected(&transport_error)) {
            *error = transport_error;
            return false;
        }
        std::string frame =
            "{\"op\": \"watch\", \"id\": " + std::to_string(id);
        if (last_seq != 0)
            frame += ", \"from_seq\": " + std::to_string(last_seq);
        frame += "}";
        bool transport_failed = false;
        if (!conn_.sendLine(frame)) {
            transport_error = "send failed";
            transport_failed = true;
        }
        while (!transport_failed) {
            std::string line;
            const UdsConn::Recv r =
                conn_.recvLine(line, kReplyTimeoutMs);
            if (r != UdsConn::Recv::Line) {
                transport_error = r == UdsConn::Recv::Timeout
                                      ? "watch timed out"
                                      : "connection closed mid-watch";
                transport_failed = true;
                break;
            }
            json::Value event;
            try {
                event = json::parse(line);
                if (!event.at("ok").asBool()) {
                    *error = event.has("error")
                                 ? event.at("error").asString()
                                 : "watch failed";
                    return false;
                }
                if (event.has("seq"))
                    last_seq = event.at("seq").asUint();
                onEvent(event);
                if (event.at("event").asString() == "end")
                    return true;
            } catch (const json::ParseError &e) {
                *error = std::string("bad event: ") + e.what();
                return false;
            }
        }
        conn_ = UdsConn(); // drop the dead socket
        if (attempt >= policy_.attempts) {
            *error = transport_error + " (after " +
                     std::to_string(attempt) + " attempt(s))";
            return false;
        }
        backoff(attempt);
    }
}

} // namespace serve
} // namespace slacksim
