/**
 * @file
 * Job-server client implementation.
 */

#include "serve/client.hh"

#include <sstream>

#include "util/json.hh"

namespace slacksim {
namespace serve {

namespace {

/** Replies may take as long as a slow simulation keeps the daemon's
 *  handler busy; be generous but never infinite. */
constexpr int kReplyTimeoutMs = 120000;

} // namespace

Client::Client(const std::string &socketPath)
    : conn_(UdsConn::connect(socketPath))
{
}

bool
Client::request(const std::string &frame, json::Value *reply,
                std::string *error)
{
    if (!conn_.valid()) {
        *error = "not connected";
        return false;
    }
    if (!conn_.sendLine(frame)) {
        *error = "send failed";
        return false;
    }
    std::string line;
    const UdsConn::Recv r = conn_.recvLine(line, kReplyTimeoutMs);
    if (r != UdsConn::Recv::Line) {
        *error = r == UdsConn::Recv::Timeout ? "reply timed out"
                                             : "connection closed";
        return false;
    }
    json::Value doc;
    try {
        doc = json::parse(line);
        if (!doc.at("ok").asBool()) {
            *error = doc.has("error") ? doc.at("error").asString()
                                      : "request failed";
            return false;
        }
    } catch (const json::ParseError &e) {
        *error = std::string("bad reply: ") + e.what();
        return false;
    }
    if (reply)
        *reply = std::move(doc);
    return true;
}

std::uint64_t
Client::submit(const std::string &specJson, std::string *error)
{
    // The spec rides inside the frame as a JSON value, not a string:
    // splice the already-serialized object in directly.
    json::Value spec;
    try {
        spec = json::parse(specJson);
        (void)spec;
    } catch (const json::ParseError &e) {
        *error = std::string("spec is not valid JSON: ") + e.what();
        return 0;
    }
    // The wire is newline-framed; flatten the (multi-line) spec file.
    // Strict JSON forbids raw newlines inside strings (they must be
    // escaped as \n), so every newline here is layout whitespace.
    std::string flat = specJson;
    for (char &c : flat) {
        if (c == '\n' || c == '\r')
            c = ' ';
    }
    const std::string frame =
        "{\"op\": \"submit\", \"spec\": " + flat + "}";
    json::Value reply;
    if (!request(frame, &reply, error))
        return 0;
    try {
        return reply.at("id").asUint();
    } catch (const json::ParseError &e) {
        *error = std::string("bad reply: ") + e.what();
        return 0;
    }
}

bool
Client::cancel(std::uint64_t id, std::string *error)
{
    return request("{\"op\": \"cancel\", \"id\": " +
                       std::to_string(id) + "}",
                   nullptr, error);
}

bool
Client::status(std::uint64_t id, json::Value *reply,
               std::string *error)
{
    std::string frame = "{\"op\": \"status\"";
    if (id != 0)
        frame += ", \"id\": " + std::to_string(id);
    frame += "}";
    return request(frame, reply, error);
}

bool
Client::stats(json::Value *reply, std::string *error)
{
    return request("{\"op\": \"stats\"}", reply, error);
}

bool
Client::metricsText(std::string *text, std::string *error)
{
    json::Value reply;
    if (!request("{\"op\": \"metrics\"}", &reply, error))
        return false;
    try {
        *text = reply.at("text").asString();
    } catch (const json::ParseError &e) {
        *error = std::string("bad reply: ") + e.what();
        return false;
    }
    return true;
}

bool
Client::shutdown(bool drain, std::string *error)
{
    return request(std::string("{\"op\": \"shutdown\", \"drain\": ") +
                       (drain ? "true" : "false") + "}",
                   nullptr, error);
}

bool
Client::watch(std::uint64_t id,
              const std::function<void(const json::Value &)> &onEvent,
              std::string *error)
{
    if (!conn_.valid()) {
        *error = "not connected";
        return false;
    }
    if (!conn_.sendLine("{\"op\": \"watch\", \"id\": " +
                        std::to_string(id) + "}")) {
        *error = "send failed";
        return false;
    }
    for (;;) {
        std::string line;
        const UdsConn::Recv r = conn_.recvLine(line, kReplyTimeoutMs);
        if (r != UdsConn::Recv::Line) {
            *error = r == UdsConn::Recv::Timeout
                         ? "watch timed out"
                         : "connection closed mid-watch";
            return false;
        }
        json::Value event;
        try {
            event = json::parse(line);
            if (!event.at("ok").asBool()) {
                *error = event.has("error")
                             ? event.at("error").asString()
                             : "watch failed";
                return false;
            }
            onEvent(event);
            if (event.at("event").asString() == "end")
                return true;
        } catch (const json::ParseError &e) {
            *error = std::string("bad event: ") + e.what();
            return false;
        }
    }
}

} // namespace serve
} // namespace slacksim
