/**
 * @file
 * Multi-tenant job queue with priority scheduling and resource-budget
 * admission control.
 *
 * The queue is the server's single source of truth for job state. It
 * is deliberately passive — no threads of its own — so the scheduler
 * loop (serve/server.cc) and the unit tests drive exactly the same
 * code: submit() enqueues, admitNext() picks what runs next under the
 * current budgets, markFinished() retires.
 *
 * Scheduling policy:
 *  - strict priority (7 highest .. 0 lowest),
 *  - FIFO within a priority level (submission order),
 *  - first-fit backfill: a job that does not fit the remaining
 *    host-thread or memory budget is skipped, and later (lower-rank)
 *    jobs that do fit may start ahead of it. The skipped job keeps
 *    its rank and runs as soon as the budget frees up — big jobs are
 *    delayed, never starved, because backfilled jobs can only consume
 *    budget the big job could not use anyway.
 *
 * Cancellation: a queued job cancels instantly (terminal state, never
 * ran); a running job gets its CancelToken fired and reaches the
 * Cancelled state when the engine returns its partial result. The
 * scheduler uses the same token for per-job timeouts; checkDeadlines()
 * distinguishes the two via the timedOut flag.
 *
 * Jobs are never erased, so Job pointers handed out by get() stay
 * valid for the queue's lifetime; mutable fields are protected by the
 * queue mutex except the CancelToken (internally synchronized).
 */

#ifndef SLACKSIM_SERVE_JOB_QUEUE_HH
#define SLACKSIM_SERVE_JOB_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/progress.hh"
#include "serve/job_spec.hh"
#include "serve/telemetry.hh"
#include "util/cancel.hh"

namespace slacksim {
namespace serve {

/** Job lifecycle. Queued/Running are live; the rest are terminal. */
enum class JobState : std::uint8_t {
    Queued,
    Running,
    Done,      //!< ran to completion
    Failed,    //!< could not run (setup error after admission)
    Cancelled, //!< client cancel or shutdown drain
    TimedOut,  //!< per-job deadline fired
    Crashed,   //!< isolated child died by signal (supervisor verdict)
};

/** @return printable state name ("queued", "running", ...). */
const char *jobStateName(JobState state);

/** @return true for states no transition can leave. */
bool isTerminal(JobState state);

/** One job owned by the queue. */
struct Job
{
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::Queued;
    std::string error;  //!< reason for Failed
    std::string outDir; //!< per-job output directory (set at admit)
    bool timedOut = false; //!< deadline (not client) fired the token
    /** Fired on client cancel, timeout, or shutdown. */
    std::unique_ptr<CancelToken> cancel =
        std::make_unique<CancelToken>();
    /** Live progress mailbox the engine's sampler publishes into
     *  (wired via ObsConfig::progress). Owned here because Job
     *  pointers are stable for the queue's lifetime. */
    std::unique_ptr<obs::RunProgress> progress =
        std::make_unique<obs::RunProgress>();
    std::chrono::steady_clock::time_point submittedAt;
    std::chrono::steady_clock::time_point startedAt;
    std::chrono::steady_clock::time_point endedAt;
    /** Result summary for status/stats (valid once terminal). */
    std::uint64_t committedUops = 0;
    std::uint64_t simulatedCycles = 0;
    /** Client-chosen dedup key; "" when the client sent none. A
     *  resubmission carrying the same key maps to this job instead
     *  of double-running (journal recovery relies on it too). */
    std::string idempotencyKey;
    /** 1-based try counter; > 1 only for jobs the journal replayer
     *  re-admitted after they were running at daemon-crash time. */
    std::uint32_t attempt = 1;
    int crashSignal = 0; //!< signal that killed the child (Crashed)
    /** Monotonic per-job transition counter (submitted=1); watch
     *  events carry it so a reconnecting client can resume from the
     *  last seq it saw without replaying duplicates. */
    std::uint64_t stateSeq = 1;
    /** Distributed-trace id (client-supplied or minted at submit);
     *  mirrored into spec.traceId so the journaled spec carries it
     *  through crash recovery. */
    std::string traceId;
    /** Root span id of the server-side lifecycle span; the engine
     *  span nests under it (ObsConfig::parentSpanId). */
    std::uint64_t rootSpanId = 0;
};

/** Copyable job snapshot for status reporting. */
struct JobView
{
    std::uint64_t id = 0;
    std::string name;
    std::string kernel;
    JobState state = JobState::Queued;
    std::uint32_t priority = 0;
    std::uint32_t hostThreads = 0;
    std::string error;
    std::string outDir;
    bool timedOut = false;
    std::uint64_t committedUops = 0;
    std::uint64_t simulatedCycles = 0;
    std::uint32_t attempt = 1;
    int crashSignal = 0;
    std::uint64_t stateSeq = 1;
    double queueMs = 0.0; //!< submit -> start (or now while queued)
    double runMs = 0.0;   //!< start -> end (or now while running)
    std::string scheme;   //!< configured slack scheme
    /** Live heartbeat snapshot (all zero until the first epoch
     *  sample lands; meaningful while Running). */
    obs::RunProgress::Snapshot progress;
};

/** Aggregate counters for the stats op and the server report. */
struct QueueStats
{
    std::uint64_t submitted = 0;
    std::uint64_t queued = 0;
    std::uint64_t running = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t crashed = 0;
};

class JobQueue
{
  public:
    JobQueue() = default;
    JobQueue(const JobQueue &) = delete;
    JobQueue &operator=(const JobQueue &) = delete;

    /**
     * Attach the server's telemetry registry and lifecycle event log
     * (both nullable, both must outlive the queue). The queue is the
     * single place job-state transitions happen, so it is also the
     * single feed point for submit/admit/retire instrumentation —
     * the scheduler loop and the unit tests exercise identical
     * accounting.
     */
    void setTelemetry(ServerTelemetry *telemetry, EventLog *events);

    /**
     * Enqueue a validated spec; @return the new job id (>= 1).
     * @p idempotencyKey ("" = none) deduplicates: when a live or
     * terminal job already carries the key, no new job is created
     * and its id is returned with @p *duplicate (nullable) set.
     * @p attempt is the 1-based try counter the journal replayer
     * passes for retried jobs (fresh submissions pass 1).
     */
    std::uint64_t submit(JobSpec spec,
                         const std::string &idempotencyKey = "",
                         std::uint32_t attempt = 1,
                         bool *duplicate = nullptr);

    /**
     * Pick the next job to run under the remaining budgets (see file
     * comment for the policy) and transition it Queued -> Running.
     * @return the admitted job, or nullptr when nothing fits.
     */
    Job *admitNext(std::uint32_t freeThreads, std::uint64_t freeMemMb);

    /**
     * Retire a Running job. @p state must be terminal; Cancelled is
     * upgraded to TimedOut when the deadline (not a client) fired the
     * token.
     */
    void markFinished(std::uint64_t id, JobState state,
                      const std::string &error = "");

    /**
     * Retire a Running job whose isolated child died by @p signal.
     * Like markFinished but lands in Crashed and records the signal
     * for the jobs_crashed{signal=} telemetry family.
     */
    void markCrashed(std::uint64_t id, int signal,
                     const std::string &error);

    /** Record result aggregates on a finished job. */
    void recordResult(std::uint64_t id, std::uint64_t committedUops,
                      std::uint64_t simulatedCycles);

    /** Record the per-job output directory (set at admission). */
    void setOutDir(std::uint64_t id, const std::string &dir);

    /**
     * Cancel a job. Queued: terminal immediately. Running: fires the
     * token; the job stays Running until the engine hands back its
     * partial result. @return false (with @p *error set) when the id
     * is unknown or already terminal.
     */
    bool requestCancel(std::uint64_t id, std::string *error);

    /** Fire the deadline of every Running job whose timeout_ms has
     *  elapsed; marks them timedOut. @return jobs newly fired. */
    std::uint32_t checkDeadlines();

    /** Cancel every Queued job (shutdown without drain). */
    void cancelQueued();

    /** Fire every Running job's token (shutdown deadline). */
    void cancelRunning();

    /** @return the job, or nullptr. The pointer stays valid forever;
     *  lock-free access is limited to the CancelToken. */
    Job *get(std::uint64_t id);

    /** @return a snapshot of one job, or of all jobs (id 0), newest
     *  first. */
    std::vector<JobView> snapshot(std::uint64_t id = 0) const;

    QueueStats stats() const;

    /** @return true when no job is Queued or Running. */
    bool idle() const;

    /**
     * Block until the queue changes (submit/cancel/finish) or
     * @p timeoutMs elapses. The scheduler's wait primitive.
     */
    void waitChanged(int timeoutMs);

  private:
    JobView viewLocked(const Job &job) const;
    /** Retire @p job (must hold mu_): set the terminal state, stamp
     *  endedAt, feed the telemetry counters/histograms and append
     *  the lifecycle event. */
    void retireLocked(Job &job, JobState state,
                      const std::string &error);

    mutable std::mutex mu_;
    mutable std::condition_variable cv_;
    std::uint64_t nextId_ = 1;
    /** Jobs by id; never erased (pointer stability, audit trail). */
    std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
    /** Idempotency key -> job id for submit() deduplication. */
    std::map<std::string, std::uint64_t> keyToId_;
    ServerTelemetry *telemetry_ = nullptr; //!< nullable
    EventLog *events_ = nullptr;           //!< nullable
};

} // namespace serve
} // namespace slacksim

#endif // SLACKSIM_SERVE_JOB_QUEUE_HH
