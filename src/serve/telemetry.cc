/**
 * @file
 * Fleet telemetry implementation: registry instruments, Prometheus
 * text exposition, and the JSONL lifecycle event log.
 */

#include "serve/telemetry.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <ostream>
#include <sstream>

#include <unistd.h>

#include "util/io.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace slacksim {
namespace serve {

namespace {

/** %.12g keeps le labels short ("10", "2500") and sums exact enough
 *  to round-trip through any scraper. */
std::string
fmtDouble(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

std::uint64_t
nowWallMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
nowSteadyNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

DurationHistogram::DurationHistogram(std::vector<double> boundsMs)
    : bounds_(std::move(boundsMs))
{
    SLACKSIM_ASSERT(!bounds_.empty(), "histogram needs buckets");
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        SLACKSIM_ASSERT(bounds_[i] > bounds_[i - 1],
                        "histogram bounds must increase");
    }
    // +1 for the implicit +Inf bucket.
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

std::vector<double>
DurationHistogram::defaultBoundsMs()
{
    return {1,    2.5,  5,    10,    25,    50,    100,   250,
            500,  1000, 2500, 5000,  10000, 30000, 60000};
}

void
DurationHistogram::observe(double ms)
{
    if (!std::isfinite(ms) || ms < 0)
        ms = 0;
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), ms);
    const std::size_t idx =
        static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    countAll_.fetch_add(1, std::memory_order_relaxed);
    // CAS accumulate: atomic<double>::fetch_add is C++20 but not yet
    // universal across libstdc++ versions this builds on.
    double cur = sumMs_.load(std::memory_order_relaxed);
    while (!sumMs_.compare_exchange_weak(cur, cur + ms,
                                         std::memory_order_relaxed)) {
    }
}

std::uint64_t
DurationHistogram::count() const
{
    return countAll_.load(std::memory_order_relaxed);
}

double
DurationHistogram::sum() const
{
    return sumMs_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t>
DurationHistogram::snapshot() const
{
    std::vector<std::uint64_t> out(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

double
DurationHistogram::percentile(double p) const
{
    const std::vector<std::uint64_t> counts = snapshot();
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts)
        total += c;
    if (total == 0)
        return 0.0;
    p = std::min(100.0, std::max(0.0, p));
    const double rank_exact = p / 100.0 * static_cast<double>(total);
    const std::uint64_t rank = static_cast<std::uint64_t>(
        std::max(1.0, std::ceil(rank_exact)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen >= rank) {
            // +Inf bucket reports the last finite bound — a floor,
            // but a finite one.
            return i < bounds_.size() ? bounds_[i] : bounds_.back();
        }
    }
    return bounds_.back();
}

ServerTelemetry::ServerTelemetry()
    : queueWaitMs(DurationHistogram::defaultBoundsMs()),
      runDurationMs(DurationHistogram::defaultBoundsMs()),
      spawnOverheadMs({0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50,
                       100, 250, 500, 1000}),
      spawnToFirstHeartbeatMs(DurationHistogram::defaultBoundsMs())
{
}

std::uint64_t
ServerTelemetry::terminalTotal() const
{
    return jobsDone.value() + jobsFailed.value() +
           jobsCancelled.value() + jobsTimedOut.value() +
           jobsCrashed.value();
}

void
ServerTelemetry::recordCrash(int signal)
{
    jobsCrashed.add();
    std::lock_guard<std::mutex> lock(crashMu_);
    ++crashBySignal_[signalName(signal)];
}

std::vector<std::pair<std::string, std::uint64_t>>
ServerTelemetry::crashBySignal() const
{
    std::lock_guard<std::mutex> lock(crashMu_);
    return {crashBySignal_.begin(), crashBySignal_.end()};
}

std::string
signalName(int signal)
{
    switch (signal) {
      case SIGSEGV: return "SIGSEGV";
      case SIGABRT: return "SIGABRT";
      case SIGKILL: return "SIGKILL";
      case SIGBUS: return "SIGBUS";
      case SIGFPE: return "SIGFPE";
      case SIGILL: return "SIGILL";
      case SIGXCPU: return "SIGXCPU";
      case SIGTERM: return "SIGTERM";
      default: return "SIG" + std::to_string(signal);
    }
}

namespace {

void
writeScalar(std::ostream &os, const char *name, const char *help,
            const char *type, std::uint64_t value)
{
    os << "# HELP " << name << " " << help << "\n"
       << "# TYPE " << name << " " << type << "\n"
       << name << " " << value << "\n";
}

void
writeHistogram(std::ostream &os, const char *name, const char *help,
               const DurationHistogram &h)
{
    os << "# HELP " << name << " " << help << "\n"
       << "# TYPE " << name << " histogram\n";
    const std::vector<std::uint64_t> counts = h.snapshot();
    const std::vector<double> &bounds = h.bounds();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        cumulative += counts[i];
        os << name << "_bucket{le=\"" << fmtDouble(bounds[i])
           << "\"} " << cumulative << "\n";
    }
    cumulative += counts[bounds.size()];
    os << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n"
       << name << "_sum " << fmtDouble(h.sum()) << "\n"
       << name << "_count " << cumulative << "\n";
}

} // namespace

void
ServerTelemetry::writeExposition(std::ostream &os) const
{
    writeScalar(os, "slacksim_jobs_submitted_total",
                "Jobs accepted by the queue since server start.",
                "counter", jobsSubmitted.value());

    // Terminal statuses share one family with a status label so
    // scrapers can sum() them against jobs_submitted.
    os << "# HELP slacksim_jobs_terminal_total Jobs retired, by "
          "terminal status.\n"
       << "# TYPE slacksim_jobs_terminal_total counter\n"
       << "slacksim_jobs_terminal_total{status=\"done\"} "
       << jobsDone.value() << "\n"
       << "slacksim_jobs_terminal_total{status=\"failed\"} "
       << jobsFailed.value() << "\n"
       << "slacksim_jobs_terminal_total{status=\"cancelled\"} "
       << jobsCancelled.value() << "\n"
       << "slacksim_jobs_terminal_total{status=\"timeout\"} "
       << jobsTimedOut.value() << "\n"
       << "slacksim_jobs_terminal_total{status=\"crashed\"} "
       << jobsCrashed.value() << "\n";

    // Per-signal breakdown of the crashed children; the unlabelled
    // total is the sum of the series (and equals the crashed status
    // above), so it is omitted to keep the family sum()-clean.
    os << "# HELP slacksim_jobs_crashed_total Isolated job children "
          "dead by signal, by signal name.\n"
       << "# TYPE slacksim_jobs_crashed_total counter\n";
    for (const auto &[sig, count] : crashBySignal()) {
        os << "slacksim_jobs_crashed_total{signal=\"" << sig
           << "\"} " << count << "\n";
    }

    writeScalar(os, "slacksim_admission_denials_total",
                "Scheduler passes that left queued work unadmitted "
                "for lack of budget.",
                "counter", admissionDenials.value());
    writeScalar(os, "slacksim_admission_backfills_total",
                "Jobs started ahead of a higher-ranked job that did "
                "not fit the budget.",
                "counter", admissionBackfills.value());
    writeScalar(os, "slacksim_job_faults_total",
                "Fault injections recorded across all finished jobs.",
                "counter", jobFaults.value());
    writeScalar(os, "slacksim_job_degradations_total",
                "Recovery-ladder demotions across all finished jobs.",
                "counter", jobDegradations.value());
    writeScalar(os, "slacksim_heartbeats_total",
                "Per-job heartbeat events published to the event log.",
                "counter", heartbeats.value());
    writeScalar(os, "slacksim_jobs_retried_total",
                "Recovery re-runs of jobs that were running when the "
                "daemon died.",
                "counter", jobsRetried.value());
    writeScalar(os, "slacksim_jobs_recovered_total",
                "Jobs re-admitted from the journal by --recover.",
                "counter", jobsRecovered.value());

    writeScalar(os, "slacksim_jobs_queued",
                "Jobs currently waiting for admission.", "gauge",
                jobsQueued.value());
    writeScalar(os, "slacksim_jobs_running",
                "Jobs currently executing.", "gauge",
                jobsRunning.value());
    writeScalar(os, "slacksim_pool_threads_total",
                "Worker-pool size (the host-thread budget).", "gauge",
                poolThreadsTotal.value());
    writeScalar(os, "slacksim_pool_threads_busy",
                "Worker-pool threads currently occupied by job "
                "tasks.",
                "gauge", poolThreadsBusy.value());
    writeScalar(os, "slacksim_budget_threads_reserved",
                "Host threads reserved by admitted jobs.", "gauge",
                budgetThreadsReserved.value());
    writeScalar(os, "slacksim_budget_mem_reserved_mb",
                "Memory (MiB) reserved by admitted jobs.", "gauge",
                budgetMemReservedMb.value());
    writeScalar(os, "slacksim_budget_mem_total_mb",
                "Admission memory budget (MiB).", "gauge",
                budgetMemTotalMb.value());

    writeHistogram(os, "slacksim_queue_wait_ms",
                   "Submit-to-start latency per admitted job (ms).",
                   queueWaitMs);
    writeHistogram(os, "slacksim_run_duration_ms",
                   "Start-to-finish duration per retired job (ms).",
                   runDurationMs);
    writeHistogram(os, "slacksim_spawn_overhead_ms",
                   "fork-to-ready latency per process-isolated job "
                   "child (ms).",
                   spawnOverheadMs);
    writeHistogram(os, "slacksim_spawn_to_first_heartbeat_ms",
                   "Job launch to first observed RunProgress "
                   "heartbeat (ms).",
                   spawnToFirstHeartbeatMs);
}

EventLog::EventLog() = default;

EventLog::~EventLog()
{
    close();
}

void
EventLog::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    path_ = path;
}

void
EventLog::record(std::uint64_t jobId, const char *event,
                 const std::string &fieldsJson)
{
    // Timestamps are captured at record time (not flush time): the
    // wall clock joins across hosts, the steady clock orders events
    // exactly within this server.
    const std::uint64_t wall_ms = nowWallMs();
    const std::uint64_t steady_ns = nowSteadyNs();
    std::lock_guard<std::mutex> lock(mu_);
    if (path_.empty() || closed_)
        return;
    std::ostringstream os;
    os << "{\"seq\":" << ++seq_ << ",\"job\":" << jobId
       << ",\"event\":\"" << event << "\",\"wall_ms\":" << wall_ms
       << ",\"steady_ns\":" << steady_ns << fieldsJson << "}";
    pending_.push_back(os.str());
}

void
EventLog::flush()
{
    std::vector<std::string> lines;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (path_.empty() || closed_ || pending_.empty())
            return;
        lines.swap(pending_);
        if (!out_) {
            out_ = std::make_unique<CheckedOfstream>(
                path_, "server event log");
        }
        if (!headerWritten_ && out_->ok()) {
            headerWritten_ = true;
            // wall_ms + steady_ns are a paired clock anchor; pid lets
            // the fleet-trace merger key the server tracks on the
            // daemon's real process id.
            out_->stream()
                << "{\"schema\":\"" << schema
                << "\",\"wall_ms\":" << nowWallMs()
                << ",\"steady_ns\":" << nowSteadyNs()
                << ",\"pid\":" << ::getpid() << "}\n";
        }
        if (out_->ok()) {
            for (const std::string &line : lines)
                out_->stream() << line << "\n";
            // The log doubles as the recovery journal: fsync so a
            // flushed event survives kill -9 and power loss. One
            // fsync per scheduler flush batch, not per event.
            out_->sync();
        }
    }
}

void
EventLog::close()
{
    flush();
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_)
        return;
    closed_ = true;
    if (out_)
        out_->finish();
}

std::uint64_t
EventLog::recorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return seq_;
}

std::string
eventField(const char *key, const std::string &value)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    w.field(key, value);
    w.endObject();
    const std::string obj = os.str(); // {"key":"escaped"}
    return "," + obj.substr(1, obj.size() - 2);
}

std::string
eventField(const char *key, std::uint64_t value)
{
    std::ostringstream os;
    os << ",\"" << key << "\":" << value;
    return os.str();
}

std::string
eventFieldDouble(const char *key, double value)
{
    std::ostringstream os;
    os << ",\"" << key << "\":" << fmtDouble(value);
    return os.str();
}

std::string
eventFieldRaw(const char *key, const std::string &rawJson)
{
    std::ostringstream os;
    os << ",\"" << key << "\":" << rawJson;
    return os.str();
}

} // namespace serve
} // namespace slacksim
