/**
 * @file
 * Forked-child job supervisor (see supervisor.hh for the protocol).
 */

#include "serve/supervisor.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <new>
#include <sstream>
#include <thread>

#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/run.hh"
#include "serve/telemetry.hh"
#include "util/json_parse.hh"
#include "util/logging.hh"

namespace slacksim {
namespace serve {

namespace {

/** Child-side exit codes distinguishable from engine exit paths. */
constexpr int kChildSetupFailed = 120; //!< rlimit/pipe plumbing died
constexpr int kChildThrew = 121;       //!< simulation threw (OOM, ...)

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Write the whole buffer, retrying on EINTR; best-effort. */
void
writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::write(fd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
}

void
applyRlimits(const IsolationLimits &limits)
{
    if (limits.memMb) {
        struct rlimit rl;
        rl.rlim_cur = rl.rlim_max =
            static_cast<rlim_t>(limits.memMb) << 20;
        ::setrlimit(RLIMIT_AS, &rl);
    }
    if (limits.cpuSeconds) {
        struct rlimit rl;
        rl.rlim_cur = rl.rlim_max =
            static_cast<rlim_t>(limits.cpuSeconds);
        ::setrlimit(RLIMIT_CPU, &rl);
    }
}

/**
 * Child main: simulate and report over @p status_fd. Never returns —
 * ends in _exit so no parent-owned destructors (pool, sockets,
 * atexit handlers) run twice.
 */
[[noreturn]] void
childMain(const SimConfig &config, const IsolationLimits &limits,
          int control_fd, int status_fd,
          obs::RunProgress *shared_progress)
{
    // The daemon ignores SIGPIPE and may trap SIGINT/SIGTERM for its
    // drain protocol; the child must die by default dispositions so
    // the supervisor's verdicts stay meaningful.
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGPIPE, SIG_IGN);
    applyRlimits(limits);

    // Ready byte: the parent's spawn-overhead clock stops here.
    writeAll(status_fd, "R", 1);

    // Control-pipe watcher: one blocking read; any byte (or EOF —
    // the parent died) becomes a cooperative cancel. The thread is
    // never joined: _exit tears it down with the process.
    static CancelToken local_cancel;
    std::thread([control_fd] {
        char c = 0;
        while (true) {
            const ssize_t n = ::read(control_fd, &c, 1);
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        local_cancel.requestCancel();
    }).detach();

    SimConfig child_config = config;
    child_config.engine.cancel = &local_cancel;
    // The parent's pool threads do not exist on this side of the
    // fork; the engine spawns and owns its own workers.
    child_config.engine.runner = nullptr;
    child_config.engine.obs.progress = shared_progress;

    // An exception must die HERE: letting it unwind would resume the
    // parent's call stack inside the forked copy of the process —
    // under RLIMIT_AS a bad_alloc is routine, not exceptional.
    RunResult result;
    try {
        result = runSimulation(child_config);
    } catch (const std::exception &e) {
        const std::string msg =
            std::string("child exception: ") + e.what() + "\n";
        writeAll(status_fd, msg.data(), msg.size());
        ::_exit(kChildThrew);
    } catch (...) {
        ::_exit(kChildThrew);
    }

    std::ostringstream os;
    os << "{\"committed_uops\":" << result.committedUops
       << ",\"simulated_cycles\":" << result.execCycles
       << ",\"cancelled\":" << (result.cancelled ? "true" : "false")
       << ",\"faults\":" << result.faultInjections.size()
       << ",\"demotions\":" << result.demotions << "}\n";
    const std::string line = os.str();
    writeAll(status_fd, line.data(), line.size());
    ::_exit(0);
}

/** Drain everything the child wrote to the status pipe (post-exit,
 *  so EOF is guaranteed to arrive). */
std::string
drainPipe(int fd)
{
    std::string out;
    char buf[512];
    while (true) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
}

/** Parse the final status line into @p result; false when the child
 *  exited 0 without reporting (treated as Failed upstream). */
bool
parseStatusLine(const std::string &text, SupervisedResult *result)
{
    // The ready byte 'R' precedes the JSON; find the last line.
    const auto brace = text.find('{');
    if (brace == std::string::npos)
        return false;
    try {
        const json::Value doc = json::parse(text.substr(brace));
        result->committedUops = static_cast<std::uint64_t>(
            doc.at("committed_uops").number);
        result->simulatedCycles = static_cast<std::uint64_t>(
            doc.at("simulated_cycles").number);
        result->faultInjections =
            static_cast<std::uint64_t>(doc.at("faults").number);
        result->demotions =
            static_cast<std::uint64_t>(doc.at("demotions").number);
        result->status = doc.at("cancelled").boolean
                             ? SupervisedResult::Status::Cancelled
                             : SupervisedResult::Status::Ok;
        return true;
    } catch (const json::ParseError &) {
        return false;
    }
}

void
relayProgress(const obs::RunProgress *from, obs::RunProgress *to)
{
    if (!from || !to)
        return;
    const obs::RunProgress::Snapshot s = from->read();
    constexpr auto relaxed = std::memory_order_relaxed;
    to->epochs.store(s.epochs, relaxed);
    to->wallNs.store(s.wallNs, relaxed);
    to->globalCycle.store(s.globalCycle, relaxed);
    to->slackBound.store(s.slackBound, relaxed);
    to->violations.store(s.violations, relaxed);
    to->checkpoints.store(s.checkpoints, relaxed);
    to->rollbacks.store(s.rollbacks, relaxed);
    to->cyclesPerSec.store(s.cyclesPerSec, relaxed);
    to->eventsPerSec.store(s.eventsPerSec, relaxed);
    to->replay.store(s.replay, relaxed);
}

} // namespace

const char *
supervisedStatusName(SupervisedResult::Status status)
{
    switch (status) {
      case SupervisedResult::Status::Ok: return "ok";
      case SupervisedResult::Status::Cancelled: return "cancelled";
      case SupervisedResult::Status::Crashed: return "crashed";
      case SupervisedResult::Status::Failed: return "failed";
    }
    return "?";
}

SupervisedResult
runIsolatedJob(const SimConfig &config, const IsolationLimits &limits,
               CancelToken *cancel, obs::RunProgress *progress)
{
    SupervisedResult result;

    // The child publishes progress into a MAP_SHARED page so the
    // parent's heartbeat relay needs no extra pipe traffic. All
    // RunProgress fields are relaxed atomics — exactly the type that
    // is coherent across processes in shared memory.
    void *page =
        ::mmap(nullptr, sizeof(obs::RunProgress),
               PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS,
               -1, 0);
    obs::RunProgress *shared = nullptr;
    if (page != MAP_FAILED)
        shared = new (page) obs::RunProgress();

    int status_pipe[2] = {-1, -1};  // child -> parent
    int control_pipe[2] = {-1, -1}; // parent -> child
    if (::pipe(status_pipe) != 0 || ::pipe(control_pipe) != 0) {
        result.error = std::string("pipe: ") + std::strerror(errno);
        for (int fd : {status_pipe[0], status_pipe[1],
                       control_pipe[0], control_pipe[1]}) {
            if (fd >= 0)
                ::close(fd);
        }
        if (page != MAP_FAILED)
            ::munmap(page, sizeof(obs::RunProgress));
        return result;
    }

    const auto t0 = std::chrono::steady_clock::now();
    const pid_t pid = ::fork();
    if (pid < 0) {
        result.error = std::string("fork: ") + std::strerror(errno);
        for (int fd : {status_pipe[0], status_pipe[1],
                       control_pipe[0], control_pipe[1]}) {
            ::close(fd);
        }
        if (page != MAP_FAILED)
            ::munmap(page, sizeof(obs::RunProgress));
        return result;
    }

    if (pid == 0) {
        ::close(status_pipe[0]);
        ::close(control_pipe[1]);
        childMain(config, limits, control_pipe[0], status_pipe[1],
                  shared);
        ::_exit(kChildSetupFailed); // not reached
    }

    ::close(status_pipe[1]);
    ::close(control_pipe[0]);
    result.childPid = static_cast<int>(pid);
    const int status_fd = status_pipe[0];
    const int control_fd = control_pipe[1];

    // Stop the spawn clock at the child's ready byte. The byte also
    // doubles as a liveness check: a child that dies before reaching
    // it shows up as instant EOF here and a crash verdict below.
    {
        char c = 0;
        while (true) {
            const ssize_t n = ::read(status_fd, &c, 1);
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        result.spawnMs = msSince(t0);
    }

    bool cancel_sent = false;
    bool we_killed = false;
    std::chrono::steady_clock::time_point kill_deadline;
    int wait_status = 0;
    while (true) {
        const pid_t reaped = ::waitpid(pid, &wait_status, WNOHANG);
        if (reaped == pid)
            break;
        if (reaped < 0 && errno != EINTR) {
            // Should not happen (the child is ours); avoid spinning.
            result.error =
                std::string("waitpid: ") + std::strerror(errno);
            ::kill(pid, SIGKILL);
            we_killed = true;
            ::waitpid(pid, &wait_status, 0);
            break;
        }
        relayProgress(shared, progress);
        if (cancel && cancel->cancelled()) {
            const auto now = std::chrono::steady_clock::now();
            if (!cancel_sent) {
                cancel_sent = true;
                writeAll(control_fd, "C", 1);
                kill_deadline =
                    now + std::chrono::milliseconds(
                              limits.killGraceMs);
            } else if (now >= kill_deadline) {
                // The grace window closed without a cooperative
                // drain (a wedged manager, a hung engine): escalate.
                ::kill(pid, SIGKILL);
                we_killed = true;
                kill_deadline =
                    now + std::chrono::milliseconds(
                              limits.killGraceMs);
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    relayProgress(shared, progress);

    const std::string status_text = drainPipe(status_fd);
    ::close(status_fd);
    ::close(control_fd);
    if (page != MAP_FAILED)
        ::munmap(page, sizeof(obs::RunProgress));

    if (WIFSIGNALED(wait_status)) {
        const int sig = WTERMSIG(wait_status);
        if (we_killed) {
            // Our own escalation is a cancellation outcome, not a
            // crash — the job did what it was told, eventually.
            result.status = SupervisedResult::Status::Cancelled;
            result.error = "killed after cancel grace expired";
        } else {
            result.status = SupervisedResult::Status::Crashed;
            result.signal = sig;
            result.error = "child died by " + signalName(sig);
        }
        return result;
    }
    const int code = WIFEXITED(wait_status) ? WEXITSTATUS(wait_status)
                                            : kChildSetupFailed;
    if (code != 0) {
        result.status = SupervisedResult::Status::Failed;
        result.exitCode = code;
        result.error =
            "child exited " + std::to_string(code) +
            (code == kChildSetupFailed ? " (setup failure)" : "");
        // A thrown-exception child leaves its reason on the pipe.
        const auto what = status_text.find("child exception: ");
        if (code == kChildThrew && what != std::string::npos) {
            std::string detail = status_text.substr(what);
            if (!detail.empty() && detail.back() == '\n')
                detail.pop_back();
            result.error += " (" + detail + ")";
        }
        return result;
    }
    if (!parseStatusLine(status_text, &result)) {
        result.status = SupervisedResult::Status::Failed;
        result.error = "child exited 0 without a status line";
        return result;
    }
    if (result.status == SupervisedResult::Status::Cancelled)
        result.error = "cancelled";
    return result;
}

} // namespace serve
} // namespace slacksim
