/**
 * @file
 * Job server implementation.
 */

#include "serve/server.hh"

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include <sys/stat.h>
#include <sys/types.h>

#include <csignal>

#include <unistd.h>

#include "core/run.hh"
#include "serve/fleet_trace.hh"
#include "serve/journal.hh"
#include "util/build_info.hh"
#include "util/io.hh"
#include "util/json.hh"
#include "util/json_parse.hh"
#include "util/logging.hh"
#include "util/options.hh"

namespace slacksim {
namespace serve {

namespace {

/** mkdir -p for the two-level out-root/job-N layout. */
bool
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0775) == 0 || errno == EEXIST)
        return true;
    SLACKSIM_WARN("serve: mkdir(", path,
                  ") failed: ", std::strerror(errno));
    return false;
}

/** Slurp a small artifact file; "" when missing. */
std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path, std::ios::in | std::ios::binary);
    if (!in.is_open())
        return "";
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeJobView(JsonWriter &w, const JobView &view)
{
    w.beginObject();
    w.field("id", view.id);
    w.field("name", view.name);
    w.field("kernel", view.kernel);
    w.field("state", jobStateName(view.state));
    if (view.state == JobState::Crashed)
        w.field("crash_signal", signalName(view.crashSignal));
    if (view.attempt > 1)
        w.field("attempt", static_cast<std::uint64_t>(view.attempt));
    w.field("priority", static_cast<std::uint64_t>(view.priority));
    w.field("host_threads",
            static_cast<std::uint64_t>(view.hostThreads));
    if (!view.error.empty())
        w.field("error", view.error);
    if (!view.outDir.empty())
        w.field("out_dir", view.outDir);
    w.field("queue_ms", view.queueMs);
    w.field("run_ms", view.runMs);
    w.field("committed_uops", view.committedUops);
    w.field("simulated_cycles", view.simulatedCycles);
    w.field("scheme", view.scheme);
    // Live heartbeat snapshot; present once the first epoch sample
    // landed (top/watch render it, terminal states keep the last one).
    if (view.progress.epochs != 0) {
        const obs::RunProgress::Snapshot &p = view.progress;
        w.beginObject("progress");
        w.field("epochs", p.epochs);
        w.field("global_cycle", p.globalCycle);
        w.field("slack_bound", p.slackBound);
        w.field("violations", p.violations);
        w.field("checkpoints", p.checkpoints);
        w.field("rollbacks", p.rollbacks);
        w.field("cycles_per_sec", p.cyclesPerSec);
        w.field("events_per_sec", p.eventsPerSec);
        w.field("replay", p.replay);
        w.endObject();
    }
    w.endObject();
}

/** Percentile summary of one histogram for stats / server_report. */
void
writeHistogramSummary(JsonWriter &w, const char *key,
                      const DurationHistogram &h)
{
    w.beginObject(key);
    w.field("count", h.count());
    w.field("sum_ms", h.sum());
    w.field("p50_ms", h.percentile(50));
    w.field("p95_ms", h.percentile(95));
    w.field("p99_ms", h.percentile(99));
    w.endObject();
}

} // namespace

Server::Server(Options opts)
    : opts_(std::move(opts))
{
    std::uint32_t budget = opts_.threadBudget;
    if (budget == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        budget = hw < 8 ? 8 : hw;
    }
    pool_ = std::make_unique<WorkerPool>(budget);
}

Server::~Server()
{
    if (!started_)
        return;
    // run() normally does the orderly teardown; this is the fallback
    // for callers (tests) that tore down without a shutdown op.
    requestShutdown(false);
    if (scheduler_.joinable()) {
        schedulerStop_.store(true, std::memory_order_release);
        scheduler_.join();
    }
    handlersStop_.store(true, std::memory_order_release);
    for (auto &t : handlers_) {
        if (t.joinable())
            t.join();
    }
    listener_.close();
}

bool
Server::start()
{
    if (!ensureDir(opts_.outRoot))
        return false;
    if (!listener_.open(opts_.socketPath))
        return false;
    if (!opts_.faultSpec.empty()) {
        // Operator-owned flag: fatal on bad grammar is fine here,
        // exactly like the CLI's --fault-spec.
        daemonPlan_ = std::make_unique<fault::FaultPlan>(
            fault::FaultPlan::parseSpecList(opts_.faultSpec),
            opts_.faultSeed);
    }
    queue_.setTelemetry(&telemetry_, &events_);
    // recoverFromJournal reads and rotates the old journal, then
    // opens the fresh one itself — EventLog::open truncates, so the
    // order (rotate before open) is load-bearing.
    if (opts_.recover)
        recoverFromJournal();
    else
        events_.open(opts_.outRoot + "/server_events.jsonl");
    telemetry_.poolThreadsTotal.set(pool_->size());
    telemetry_.budgetMemTotalMb.set(opts_.memBudgetMb);
    started_ = true;
    scheduler_ = std::thread([this] { schedulerMain(); });
    SLACKSIM_INFORM("serve: listening on ", opts_.socketPath, " (",
                    pool_->size(), " pool threads, ",
                    opts_.memBudgetMb, " MiB)");
    return true;
}

void
Server::recoverFromJournal()
{
    const std::string path = opts_.outRoot + "/server_events.jsonl";
    JournalReplay replay;
    if (!readJournal(path, &replay)) {
        SLACKSIM_INFORM("serve: --recover found no journal at ",
                        path);
        events_.open(path);
        return;
    }
    // Rotate first: EventLog::open truncates, and the generations
    // must stay on disk for the exactly-once audit.
    rotatedJournal_ = rotateJournal(path);
    events_.open(path);
    for (const JournalJob &jj : replay.jobs) {
        if (jj.terminal)
            continue; // reached a durable terminal state; done
        JobSpec spec;
        std::string error;
        json::Value doc;
        try {
            doc = json::parse(jj.specJson);
        } catch (const json::ParseError &e) {
            error = e.what();
        }
        if (error.empty() && !JobSpec::parse(doc, &spec, &error)) {
            // fallthrough to the warning below
        }
        if (!error.empty()) {
            SLACKSIM_WARN("serve: journal job ", jj.id,
                          " spec unusable (", error, "); dropped");
            continue;
        }
        // A job with a `started` but no terminal event was running
        // when the previous daemon died: the next run consumes a new
        // attempt. A queued-only job replays with its attempt intact.
        const std::uint32_t attempt =
            jj.started ? jj.attempt + 1 : jj.attempt;
        const std::uint64_t id = queue_.submit(
            std::move(spec), jj.idempotencyKey, attempt);
        ++recoveredCount_;
        telemetry_.jobsRecovered.add();
        events_.record(id, "recovered",
                       eventField("journal_id", jj.id) +
                           eventField("attempt",
                                      std::uint64_t{attempt}) +
                           eventField("was_running",
                                      std::uint64_t{jj.started}));
        if (jj.started) {
            if (attempt > jj.maxAttempts) {
                // The ambiguous case resolved pessimistically: it
                // crashed the daemon (or kept crashing with it) too
                // many times. Terminal exactly once, as Failed.
                queue_.markFinished(
                    id, JobState::Failed,
                    "max_attempts (" +
                        std::to_string(jj.maxAttempts) +
                        ") exhausted after daemon crash");
                continue;
            }
            ++retriedCount_;
            telemetry_.jobsRetried.add();
            events_.record(id, "retried",
                           eventField("attempt",
                                      std::uint64_t{attempt}) +
                               eventField(
                                   "max_attempts",
                                   std::uint64_t{jj.maxAttempts}));
        }
    }
    SLACKSIM_INFORM("serve: recovered ", recoveredCount_,
                    " job(s) from the journal (", retriedCount_,
                    " running at crash time; ", replay.linesSkipped,
                    " torn/foreign line(s) skipped)");
}

void
Server::run(const std::atomic<int> *stopSignal)
{
    SLACKSIM_ASSERT(started_, "Server::run before start");
    while (!shutdownRequested_.load(std::memory_order_acquire)) {
        if (stopSignal &&
            stopSignal->load(std::memory_order_relaxed) != 0) {
            SLACKSIM_INFORM("serve: signal received, draining");
            requestShutdown(true);
            break;
        }
        UdsConn conn = listener_.accept(200);
        if (!conn.valid())
            continue;
        std::lock_guard<std::mutex> lock(handlersMu_);
        handlers_.emplace_back(
            [this, c = std::move(conn)]() mutable {
                handleConn(std::move(c));
            });
    }

    // Shutdown: the listener stays open (clients may still watch jobs
    // finish) but nothing new is admitted unless draining.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(opts_.drainDeadlineMs);
    if (!drain_.load(std::memory_order_acquire)) {
        queue_.cancelQueued();
        queue_.cancelRunning();
    }
    while (!queue_.idle()) {
        const bool escalated =
            stopSignal &&
            stopSignal->load(std::memory_order_relaxed) >= 2;
        if (escalated || std::chrono::steady_clock::now() >= deadline) {
            SLACKSIM_WARN("serve: ",
                          escalated ? "second signal"
                                    : "drain deadline expired",
                          ", cancelling remaining jobs");
            queue_.cancelQueued();
            queue_.cancelRunning();
            // Cancelled engines return promptly; wait them out.
            while (!queue_.idle())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    schedulerStop_.store(true, std::memory_order_release);
    scheduler_.join();
    handlersStop_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(handlersMu_);
        for (auto &t : handlers_)
            t.join();
        handlers_.clear();
    }
    listener_.close();

    const QueueStats s = queue_.stats();
    SLACKSIM_INFORM("serve: shut down (", s.done, " done, ", s.failed,
                    " failed, ", s.cancelled, " cancelled, ",
                    s.timedOut, " timed out, ", s.crashed,
                    " crashed; ", pool_->tasksRun(),
                    " tasks on ", pool_->threadsSpawned(),
                    " host threads)");
}

void
Server::requestShutdown(bool drain)
{
    drain_.store(drain, std::memory_order_release);
    shutdownRequested_.store(true, std::memory_order_release);
}

void
Server::schedulerMain()
{
    while (!schedulerStop_.load(std::memory_order_acquire)) {
        queue_.checkDeadlines();
        reapFinished(false);
        // Admission stops at shutdown unless draining: a drain runs
        // the queue dry, a cancel-shutdown has nothing left to admit.
        const bool admitting =
            !shutdownRequested_.load(std::memory_order_acquire) ||
            drain_.load(std::memory_order_acquire);
        if (admitting) {
            while (Job *job = queue_.admitNext(
                       pool_->size() -
                           reservedThreads_.load(
                               std::memory_order_relaxed),
                       opts_.memBudgetMb -
                           reservedMemMb_.load(
                               std::memory_order_relaxed))) {
                startJob(job);
            }
        }
        publishHeartbeats();
        events_.flush();
        queue_.waitChanged(50);
    }
    // All jobs are terminal by the time run() stops the scheduler;
    // join every outstanding handle and release the budgets, then
    // seal the event log (terminal events are already recorded).
    reapFinished(true);
    events_.close();
}

void
Server::publishHeartbeats()
{
    const auto now = std::chrono::steady_clock::now();
    for (RunningJob &rj : running_) {
        Job *job = queue_.get(rj.id);
        if (!job || job->state != JobState::Running)
            continue;
        const obs::RunProgress::Snapshot p = job->progress->read();
        if (p.epochs == 0)
            continue; // no sample yet; nothing worth logging
        // First-beat detection runs ahead of the 1 Hz throttle: the
        // launch-to-visible latency would otherwise be quantized to
        // the throttle, not to the scheduler's ~50ms poll.
        double first_beat_ms = -1.0;
        if (!rj.firstBeatSeen) {
            rj.firstBeatSeen = true;
            first_beat_ms =
                std::chrono::duration<double, std::milli>(
                    now - rj.launchedAt)
                    .count();
            telemetry_.spawnToFirstHeartbeatMs.observe(first_beat_ms);
        } else if (now - rj.lastBeat < std::chrono::seconds(1)) {
            continue;
        }
        rj.lastBeat = now;
        telemetry_.heartbeats.add();
        std::string fields =
            eventField("epochs", p.epochs) +
            eventField("global_cycle", p.globalCycle) +
            eventField("slack_bound", p.slackBound) +
            eventField("violations", p.violations) +
            eventFieldDouble("cycles_per_sec", p.cyclesPerSec) +
            eventFieldDouble("events_per_sec", p.eventsPerSec) +
            eventField("trace_id", job->traceId);
        if (first_beat_ms >= 0.0) {
            fields += eventFieldDouble("spawn_to_first_heartbeat_ms",
                                       first_beat_ms);
        }
        events_.record(rj.id, "heartbeat", fields);
    }
}

void
Server::refreshGauges() const
{
    const QueueStats s = queue_.stats();
    telemetry_.jobsQueued.set(s.queued);
    telemetry_.jobsRunning.set(s.running);
    telemetry_.poolThreadsTotal.set(pool_->size());
    telemetry_.poolThreadsBusy.set(pool_->size() -
                                   pool_->freeThreads());
    telemetry_.budgetThreadsReserved.set(
        reservedThreads_.load(std::memory_order_relaxed));
    telemetry_.budgetMemReservedMb.set(
        reservedMemMb_.load(std::memory_order_relaxed));
    telemetry_.budgetMemTotalMb.set(opts_.memBudgetMb);
}

void
Server::reapFinished(bool joinAll)
{
    for (auto it = running_.begin(); it != running_.end();) {
        Job *job = queue_.get(it->id);
        const bool terminal = job && isTerminal(job->state);
        if (terminal || joinAll) {
            it->handle->join();
            reservedThreads_.fetch_sub(it->threads,
                                       std::memory_order_relaxed);
            reservedMemMb_.fetch_sub(it->memMb,
                                     std::memory_order_relaxed);
            it = running_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::startJob(Job *job)
{
    const std::uint32_t threads = job->spec.hostThreads();
    const std::uint64_t mem = job->spec.memEstimateMb();
    reservedThreads_.fetch_add(threads, std::memory_order_relaxed);
    reservedMemMb_.fetch_add(mem, std::memory_order_relaxed);

    const std::string job_tag = "job-" + std::to_string(job->id);
    const std::string out_dir = opts_.outRoot + "/" + job_tag;
    ensureDir(out_dir);
    queue_.setOutDir(job->id, out_dir);

    SimConfig config = job->spec.toConfig();
    config.engine.obs.reportOut = out_dir + "/report.json";
    config.engine.obs.metricsOut = out_dir + "/metrics.csv";
    // End-to-end correlation: the job id rides inside every artifact
    // the run emits (run report, metrics schema line, forensics) and
    // names the optional per-job sinks.
    config.engine.obs.jobId = job_tag;
    config.engine.obs.progress = job->progress.get();
    // Distributed-trace handoff: the engine span (minted inside the
    // run, possibly in a forked child) nests under the server's root
    // span. The whole identity survives the supervisor fork because
    // the child copies its SimConfig by value.
    config.engine.obs.traceId = job->traceId;
    config.engine.obs.parentSpanId = job->rootSpanId;
    if (job->spec.trace)
        config.engine.obs.traceOut =
            out_dir + "/" + job_tag + ".trace.json";
    if (job->spec.profile) {
        config.engine.obs.profile = true;
        config.engine.obs.profileOut =
            out_dir + "/" + job_tag + ".profile.folded";
    }
    const std::string isolation = effectiveIsolation(job->spec);
    const bool isolated = isolation == "process";
    config.engine.cancel = job->cancel.get();
    // Pool threads cannot cross a fork: the isolated child's engine
    // spawns its own workers, the parent's pool task is just the
    // supervisor loop.
    config.engine.runner = isolated ? nullptr : pool_.get();

    const std::uint64_t id = job->id;
    // `started` is journaled (and flushed) before the job can touch
    // anything: recovery classifies a job as running-at-crash iff
    // this line reached the disk, so it must precede the fork — and
    // precede the daemon-kill drill below.
    events_.record(id, "started",
                   eventField("kernel", config.workload.kernel) +
                       eventField("cores",
                                  std::uint64_t{
                                      config.target.numCores}) +
                       eventField("isolation", isolation) +
                       eventField("attempt",
                                  std::uint64_t{job->attempt}) +
                       eventField("trace_id", job->traceId));
    events_.flush();
    if (daemonPlan_ &&
        daemonPlan_->fireDaemonKill(
            jobsStarted_.fetch_add(1, std::memory_order_relaxed) +
            1)) {
        // Deterministic stand-in for `kill -9` mid-batch: die with
        // zero warning so the recovery drill exercises the real
        // torn-state path, not a graceful drain.
        ::kill(::getpid(), SIGKILL);
    }
    if (isolated) {
        const IsolationLimits limits{job->spec.rlimitMemMb,
                                     job->spec.rlimitCpuS,
                                     opts_.killGraceMs};
        const auto launched = std::chrono::steady_clock::now();
        running_.push_back(RunningJob{
            id, threads, mem,
            pool_->launch([this, id, config, limits] {
                jobBodyIsolated(id, config, limits);
            }),
            launched, launched});
    } else {
        const auto launched = std::chrono::steady_clock::now();
        running_.push_back(RunningJob{
            id, threads, mem,
            pool_->launch([this, id, config] { jobBody(id, config); }),
            launched, launched});
    }
}

std::string
Server::effectiveIsolation(const JobSpec &spec) const
{
    return spec.isolation.empty() ? opts_.defaultIsolation
                                  : spec.isolation;
}

void
Server::jobBody(std::uint64_t id, const SimConfig &config)
{
    const RunResult result = runSimulation(config);
    queue_.recordResult(id, result.committedUops, result.execCycles);
    telemetry_.jobFaults.add(result.faultInjections.size());
    telemetry_.jobDegradations.add(result.demotions);
    // markFinished upgrades Cancelled to TimedOut when the deadline
    // (not a client) fired the token.
    queue_.markFinished(id, result.cancelled ? JobState::Cancelled
                                             : JobState::Done);
}

void
Server::jobBodyIsolated(std::uint64_t id, const SimConfig &config,
                        const IsolationLimits &limits)
{
    Job *job = queue_.get(id);
    const SupervisedResult r = runIsolatedJob(
        config, limits, job->cancel.get(), job->progress.get());
    telemetry_.spawnOverheadMs.observe(r.spawnMs);
    switch (r.status) {
      case SupervisedResult::Status::Ok:
      case SupervisedResult::Status::Cancelled:
        queue_.recordResult(id, r.committedUops, r.simulatedCycles);
        telemetry_.jobFaults.add(r.faultInjections);
        telemetry_.jobDegradations.add(r.demotions);
        queue_.markFinished(id,
                            r.status == SupervisedResult::Status::Ok
                                ? JobState::Done
                                : JobState::Cancelled);
        break;
      case SupervisedResult::Status::Crashed: {
        // The child died before writing its run report; leave a stub
        // so watch/status consumers still find an artifact.
        const std::string report_path =
            config.engine.obs.reportOut;
        if (!report_path.empty() &&
            readFileOrEmpty(report_path).empty()) {
            CheckedOfstream os(report_path, "crash report stub");
            if (os.ok()) {
                JsonWriter w(os.stream(), 0);
                w.beginObject();
                w.field("schema", "slacksim.crash_report.v1");
                w.field("job_id", config.engine.obs.jobId);
                w.field("status", "crashed");
                w.field("signal",
                        static_cast<std::uint64_t>(
                            static_cast<unsigned>(r.signal)));
                w.field("signal_name", signalName(r.signal));
                w.field("spawn_ms", r.spawnMs);
                w.field("child_pid",
                        static_cast<std::int64_t>(r.childPid));
                w.field("trace_id", config.engine.obs.traceId);
                w.endObject();
                os.stream() << "\n";
                os.sync();
            }
        }
        queue_.markCrashed(id, r.signal, r.error);
        break;
      }
      case SupervisedResult::Status::Failed:
        queue_.markFinished(id, JobState::Failed, r.error);
        break;
    }
}

void
Server::handleConn(UdsConn conn)
{
    std::string line;
    while (!handlersStop_.load(std::memory_order_acquire)) {
        const UdsConn::Recv r = conn.recvLine(line, 200);
        if (r == UdsConn::Recv::Timeout)
            continue;
        if (r != UdsConn::Recv::Line)
            return;
        if (!handleRequest(conn, line))
            return;
    }
}

bool
Server::sendError(UdsConn &conn, const std::string &error)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    w.field("ok", false);
    w.field("error", error);
    w.endObject();
    return conn.sendLine(os.str());
}

bool
Server::handleRequest(UdsConn &conn, const std::string &line)
{
    json::Value doc;
    try {
        doc = json::parse(line);
    } catch (const json::ParseError &e) {
        return sendError(conn, std::string("bad frame: ") + e.what());
    }

    std::string op;
    try {
        if (!doc.isObject() || !doc.has("op"))
            return sendError(conn, "frame needs an \"op\" key");
        op = doc.at("op").asString();

        if (op == "submit") {
            if (!doc.has("spec"))
                return sendError(conn, "submit needs a \"spec\" key");
            JobSpec spec;
            std::string error;
            if (!JobSpec::parse(doc.at("spec"), &spec, &error))
                return sendError(conn, error);
            if (spec.hostThreads() > pool_->size()) {
                return sendError(
                    conn, "job needs " +
                              std::to_string(spec.hostThreads()) +
                              " host threads but the budget is " +
                              std::to_string(pool_->size()));
            }
            // parse() rejects wrecking faults on explicit inline
            // isolation; this closes the inherit-the-default hole.
            if (spec.needsProcessIsolation() &&
                effectiveIsolation(spec) != "process") {
                return sendError(
                    conn,
                    "fault kinds job-crash/job-hang require "
                    "isolation \"process\" (server default is \"" +
                        opts_.defaultIsolation + "\")");
            }
            if (shutdownRequested_.load(std::memory_order_acquire))
                return sendError(conn, "server is shutting down");
            std::string key;
            if (doc.has("idempotency_key"))
                key = doc.at("idempotency_key").asString();
            bool duplicate = false;
            const std::uint64_t id =
                queue_.submit(std::move(spec), key, 1, &duplicate);
            std::ostringstream os;
            JsonWriter w(os, 0);
            w.beginObject();
            w.field("ok", true);
            w.field("id", id);
            if (duplicate)
                w.field("duplicate", true);
            w.endObject();
            return conn.sendLine(os.str());
        }

        if (op == "status") {
            const std::uint64_t id =
                doc.has("id") ? doc.at("id").asUint() : 0;
            const std::vector<JobView> views = queue_.snapshot(id);
            if (id != 0 && views.empty()) {
                return sendError(conn, "no such job: " +
                                           std::to_string(id));
            }
            std::ostringstream os;
            JsonWriter w(os, 0);
            w.beginObject();
            w.field("ok", true);
            w.beginArray("jobs");
            for (const JobView &view : views)
                writeJobView(w, view);
            w.endArray();
            w.endObject();
            return conn.sendLine(os.str());
        }

        if (op == "cancel") {
            if (!doc.has("id"))
                return sendError(conn, "cancel needs an \"id\" key");
            std::string error;
            if (!queue_.requestCancel(doc.at("id").asUint(), &error))
                return sendError(conn, error);
            return conn.sendLine("{\"ok\": true}");
        }

        if (op == "watch") {
            if (!doc.has("id"))
                return sendError(conn, "watch needs an \"id\" key");
            const std::uint64_t id = doc.at("id").asUint();
            if (queue_.snapshot(id).empty()) {
                return sendError(conn, "no such job: " +
                                           std::to_string(id));
            }
            // from_seq: a reconnecting client passes the last state
            // seq it saw; state events at or below it are skipped.
            const std::uint64_t from_seq =
                doc.has("from_seq") ? doc.at("from_seq").asUint() : 0;
            handleWatch(conn, id, from_seq);
            return false; // watch is terminal for the connection
        }

        if (op == "stats") {
            refreshGauges();
            const QueueStats s = queue_.stats();
            std::ostringstream os;
            JsonWriter w(os, 0);
            w.beginObject();
            w.field("ok", true);
            w.field("accepting",
                    !shutdownRequested_.load(
                        std::memory_order_acquire));
            w.beginObject("pool");
            w.field("size", static_cast<std::uint64_t>(pool_->size()));
            w.field("busy", telemetry_.poolThreadsBusy.value());
            w.field("tasks_run", pool_->tasksRun());
            w.field("threads_spawned", pool_->threadsSpawned());
            w.field("overflow_spawns", pool_->overflowSpawns());
            w.endObject();
            w.beginObject("queue");
            w.field("submitted", s.submitted);
            w.field("queued", s.queued);
            w.field("running", s.running);
            w.field("done", s.done);
            w.field("failed", s.failed);
            w.field("cancelled", s.cancelled);
            w.field("timeout", s.timedOut);
            w.field("crashed", s.crashed);
            w.endObject();
            w.field("mem_budget_mb", opts_.memBudgetMb);
            w.beginObject("telemetry");
            w.field("jobs_submitted",
                    telemetry_.jobsSubmitted.value());
            w.field("jobs_terminal", telemetry_.terminalTotal());
            w.field("admission_denials",
                    telemetry_.admissionDenials.value());
            w.field("admission_backfills",
                    telemetry_.admissionBackfills.value());
            w.field("job_faults", telemetry_.jobFaults.value());
            w.field("job_degradations",
                    telemetry_.jobDegradations.value());
            w.field("heartbeats", telemetry_.heartbeats.value());
            w.field("jobs_crashed", telemetry_.jobsCrashed.value());
            w.field("jobs_retried", telemetry_.jobsRetried.value());
            w.field("jobs_recovered",
                    telemetry_.jobsRecovered.value());
            w.field("events_recorded", events_.recorded());
            w.field("threads_reserved",
                    telemetry_.budgetThreadsReserved.value());
            w.field("mem_reserved_mb",
                    telemetry_.budgetMemReservedMb.value());
            writeHistogramSummary(w, "queue_wait_ms",
                                  telemetry_.queueWaitMs);
            writeHistogramSummary(w, "run_duration_ms",
                                  telemetry_.runDurationMs);
            writeHistogramSummary(w, "spawn_to_first_heartbeat_ms",
                                  telemetry_.spawnToFirstHeartbeatMs);
            w.endObject();
            w.endObject();
            return conn.sendLine(os.str());
        }

        if (op == "metrics") {
            // Prometheus text exposition, shipped as one JSON string
            // so the wire protocol stays line-framed.
            refreshGauges();
            std::ostringstream text;
            telemetry_.writeExposition(text);
            std::ostringstream os;
            JsonWriter w(os, 0);
            w.beginObject();
            w.field("ok", true);
            w.field("content_type",
                    "text/plain; version=0.0.4");
            w.field("text", text.str());
            w.endObject();
            return conn.sendLine(os.str());
        }

        if (op == "trace") {
            // Merge everything the fleet has flushed to disk so far —
            // server_events.jsonl plus each job's Chrome trace — into
            // one Perfetto-loadable timeline. The scheduler flushes
            // the event log every ~50ms pass, so the merge observes
            // at-most-one-pass-stale state; running jobs contribute
            // their server-side spans only (engine traces land at job
            // finish).
            events_.flush();
            std::ostringstream merged;
            std::string error;
            if (!writeFleetTrace(merged, opts_.outRoot, &error))
                return sendError(conn, error);
            std::ostringstream os;
            JsonWriter w(os, 0);
            w.beginObject();
            w.field("ok", true);
            w.field("json", merged.str());
            w.endObject();
            return conn.sendLine(os.str());
        }

        if (op == "shutdown") {
            const bool drain =
                doc.has("drain") ? doc.at("drain").asBool() : true;
            if (!conn.sendLine("{\"ok\": true}"))
                return false;
            requestShutdown(drain);
            return false;
        }

        if (op == "ping")
            return conn.sendLine("{\"ok\": true}");

        const std::string hint = didYouMean(
            op, {"submit", "status", "cancel", "watch", "stats",
                 "metrics", "trace", "shutdown", "ping"});
        std::string error = "unknown op '" + op + "'";
        if (!hint.empty())
            error += " (did you mean '" + hint + "'?)";
        return sendError(conn, error);
    } catch (const json::ParseError &e) {
        // Wrong-typed fields surface here (asString on a number...).
        return sendError(conn, std::string("bad frame: ") + e.what());
    }
}

void
Server::handleWatch(UdsConn &conn, std::uint64_t id,
                    std::uint64_t fromSeq)
{
    // Every job transition bumps stateSeq, so "emit when the seq
    // grew" both deduplicates polls and implements reconnect-resume:
    // a client passing from_seq only sees transitions it missed.
    std::uint64_t lastSeq = fromSeq;
    std::uint64_t lastEpochs = 0;
    auto lastProgress = std::chrono::steady_clock::now();
    for (;;) {
        const std::vector<JobView> views = queue_.snapshot(id);
        if (views.empty())
            return;
        const JobView &view = views.front();
        if (view.stateSeq > lastSeq) {
            lastSeq = view.stateSeq;
            std::ostringstream os;
            JsonWriter w(os, 0);
            w.beginObject();
            w.field("ok", true);
            w.field("event", "state");
            w.field("state", jobStateName(view.state));
            w.field("seq", view.stateSeq);
            w.endObject();
            if (!conn.sendLine(os.str()))
                return;
        }
        // Throttled live progress while the job runs: a new epoch
        // sample and at least a second since the last emit.
        const auto now = std::chrono::steady_clock::now();
        if (view.state == JobState::Running &&
            view.progress.epochs > lastEpochs &&
            now - lastProgress >= std::chrono::seconds(1)) {
            lastEpochs = view.progress.epochs;
            lastProgress = now;
            std::ostringstream os;
            JsonWriter w(os, 0);
            w.beginObject();
            w.field("ok", true);
            w.field("event", "progress");
            w.field("epochs", view.progress.epochs);
            w.field("global_cycle", view.progress.globalCycle);
            w.field("slack_bound", view.progress.slackBound);
            w.field("violations", view.progress.violations);
            w.field("cycles_per_sec", view.progress.cyclesPerSec);
            w.field("events_per_sec", view.progress.eventsPerSec);
            w.field("replay", view.progress.replay);
            w.endObject();
            if (!conn.sendLine(os.str()))
                return;
        }
        if (isTerminal(view.state)) {
            // Stream the per-job artifacts, then the end event.
            const std::string report =
                readFileOrEmpty(view.outDir + "/report.json");
            if (!report.empty()) {
                std::ostringstream os;
                JsonWriter w(os, 0);
                w.beginObject();
                w.field("ok", true);
                w.field("event", "report");
                w.field("json", report);
                w.endObject();
                if (!conn.sendLine(os.str()))
                    return;
            }
            const std::string metrics =
                readFileOrEmpty(view.outDir + "/metrics.csv");
            if (!metrics.empty()) {
                std::ostringstream os;
                JsonWriter w(os, 0);
                w.beginObject();
                w.field("ok", true);
                w.field("event", "metrics");
                w.field("csv", metrics);
                w.endObject();
                if (!conn.sendLine(os.str()))
                    return;
            }
            std::ostringstream os;
            JsonWriter w(os, 0);
            w.beginObject();
            w.field("ok", true);
            w.field("event", "end");
            w.field("state", jobStateName(view.state));
            w.field("seq", view.stateSeq);
            if (!view.error.empty())
                w.field("error", view.error);
            w.endObject();
            conn.sendLine(os.str());
            return;
        }
        if (handlersStop_.load(std::memory_order_acquire))
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

void
Server::writeServerReport(std::ostream &os) const
{
    refreshGauges();
    const QueueStats s = queue_.stats();
    const BuildInfo &b = buildInfo();
    JsonWriter w(os);
    w.beginObject();
    // v3 -> v4 (additive): isolation.spawn_to_first_heartbeat_ms —
    // the launch-to-visibly-simulating half of the spawn story.
    w.field("schema", "slacksim.server_report.v4");
    w.beginObject("build");
    w.field("git", b.gitHash);
    w.field("dirty", b.gitDirty[0] != '\0');
    w.field("compiler", b.compiler);
    w.field("build_type", b.buildType);
    w.endObject();
    w.beginObject("pool");
    w.field("size", static_cast<std::uint64_t>(pool_->size()));
    w.field("tasks_run", pool_->tasksRun());
    w.field("threads_spawned", pool_->threadsSpawned());
    w.field("overflow_spawns", pool_->overflowSpawns());
    w.endObject();
    w.beginObject("jobs");
    w.field("submitted", s.submitted);
    w.field("done", s.done);
    w.field("failed", s.failed);
    w.field("cancelled", s.cancelled);
    w.field("timeout", s.timedOut);
    w.field("crashed", s.crashed);
    w.endObject();
    w.beginObject("budget");
    w.field("host_threads",
            static_cast<std::uint64_t>(pool_->size()));
    w.field("mem_mb", opts_.memBudgetMb);
    w.endObject();
    w.beginObject("telemetry");
    w.field("jobs_submitted", telemetry_.jobsSubmitted.value());
    w.field("jobs_terminal", telemetry_.terminalTotal());
    w.field("admission_denials",
            telemetry_.admissionDenials.value());
    w.field("admission_backfills",
            telemetry_.admissionBackfills.value());
    w.field("job_faults", telemetry_.jobFaults.value());
    w.field("job_degradations",
            telemetry_.jobDegradations.value());
    w.field("heartbeats", telemetry_.heartbeats.value());
    w.field("jobs_crashed", telemetry_.jobsCrashed.value());
    w.field("jobs_retried", telemetry_.jobsRetried.value());
    w.field("jobs_recovered", telemetry_.jobsRecovered.value());
    writeHistogramSummary(w, "queue_wait_ms",
                          telemetry_.queueWaitMs);
    writeHistogramSummary(w, "run_duration_ms",
                          telemetry_.runDurationMs);
    w.beginObject("events");
    w.field("recorded", events_.recorded());
    w.field("path", events_.path());
    w.endObject();
    w.endObject();
    w.beginObject("isolation");
    w.field("default", opts_.defaultIsolation);
    w.field("kill_grace_ms", opts_.killGraceMs);
    writeHistogramSummary(w, "spawn_overhead_ms",
                          telemetry_.spawnOverheadMs);
    writeHistogramSummary(w, "spawn_to_first_heartbeat_ms",
                          telemetry_.spawnToFirstHeartbeatMs);
    w.endObject();
    w.beginObject("recovery");
    w.field("enabled", opts_.recover);
    w.field("jobs_recovered", recoveredCount_);
    w.field("jobs_retried", retriedCount_);
    if (!rotatedJournal_.empty())
        w.field("previous_journal", rotatedJournal_);
    w.endObject();
    w.endObject();
    os << "\n";
}

} // namespace serve
} // namespace slacksim
