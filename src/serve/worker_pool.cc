/**
 * @file
 * WorkerPool implementation.
 */

#include "serve/worker_pool.hh"

#include <utility>

#include "util/logging.hh"

namespace slacksim {
namespace serve {

/** Handle for a task executing on a persistent pool thread. */
class WorkerPool::PooledHandle final : public TaskRunner::Handle
{
  public:
    explicit PooledHandle(std::shared_ptr<TaskState> state)
        : state_(std::move(state))
    {
    }

    ~PooledHandle() override
    {
        SLACKSIM_ASSERT(joined_, "pool handle dropped unjoined");
    }

    void
    join() override
    {
        std::unique_lock<std::mutex> lock(state_->mu);
        state_->cv.wait(lock, [this] { return state_->done; });
        joined_ = true;
    }

  private:
    std::shared_ptr<TaskState> state_;
    bool joined_ = false;
};

/** Handle for an overflow task on its own spawned thread. */
class WorkerPool::OverflowHandle final : public TaskRunner::Handle
{
  public:
    explicit OverflowHandle(std::function<void()> fn)
        : thread_(std::move(fn))
    {
    }

    ~OverflowHandle() override
    {
        SLACKSIM_ASSERT(!thread_.joinable(),
                        "overflow handle dropped unjoined");
    }

    void join() override { thread_.join(); }

  private:
    std::thread thread_;
};

WorkerPool::WorkerPool(std::uint32_t threads)
    : size_(threads < 1 ? 1 : threads)
{
    // Every worker is born claimable: a claim is a queue slot, not a
    // scheduled thread, so launch() may claim before the OS has even
    // started the worker.
    free_ = size_;
    workers_.reserve(size_);
    for (std::uint32_t i = 0; i < size_; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        SLACKSIM_ASSERT(queue_.empty(),
                        "worker pool destroyed with queued tasks");
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

std::uint32_t
WorkerPool::freeThreads() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return free_;
}

std::unique_ptr<TaskRunner::Handle>
WorkerPool::launch(std::function<void()> fn)
{
    tasksRun_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (free_ > 0) {
            // Claim one parked worker for this task. The claim (not
            // the dequeue) decrements free_, so a burst of launches
            // can never queue more tasks than there are workers to
            // take them — queued engine workers behind a blocked one
            // would deadlock the run.
            --free_;
            auto state = std::make_shared<TaskState>();
            queue_.push_back(PooledTask{std::move(fn), state});
            cv_.notify_one();
            return std::make_unique<PooledHandle>(std::move(state));
        }
    }
    // Safety net, not the governed path (see header).
    overflowSpawns_.fetch_add(1, std::memory_order_relaxed);
    SLACKSIM_WARN("worker pool overflow: no free pool thread, ",
                  "spawning (admission accounting bug?)");
    return std::make_unique<OverflowHandle>(std::move(fn));
}

void
WorkerPool::workerMain()
{
    for (;;) {
        PooledTask task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) // stop_ and drained: retire
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task.fn();
        // Re-register as claimable BEFORE signaling completion, so a
        // caller that joins the handle and immediately launches again
        // is guaranteed to find this slot free — otherwise admission
        // done strictly against the budget could still hit the
        // overflow path in the done-to-repark window.
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++free_;
        }
        {
            std::lock_guard<std::mutex> lock(task.state->mu);
            task.state->done = true;
        }
        task.state->cv.notify_all();
    }
}

} // namespace serve
} // namespace slacksim
