/**
 * @file
 * JobSpec validation and SimConfig mapping.
 */

#include "serve/job_spec.hh"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

#include "util/json.hh"
#include "util/options.hh"
#include "workload/kernels.hh"

namespace slacksim {
namespace serve {

namespace {

/** Every key slacksim.job.v1 defines, for unknown-key diagnostics. */
const std::vector<std::string> &
knownKeys()
{
    static const std::vector<std::string> keys = {
        "version",       "name",
        "kernel",        "cores",
        "scheme",        "slack",
        "quantum",       "seed",
        "max_uops",      "warmup_uops",
        "checkpoint",    "checkpoint_interval",
        "parallel_host", "host_threads",
        "clusters",      "priority",
        "timeout_ms",
        "fault_spec",    "fault_seed",
        "mem_mb",        "trace",
        "profile",       "isolation",
        "max_attempts",  "rlimit_mem_mb",
        "rlimit_cpu_s",  "trace_id",
    };
    return keys;
}

const std::vector<std::string> &
isolationNames()
{
    static const std::vector<std::string> names = {"inline",
                                                   "process"};
    return names;
}

const std::vector<std::string> &
schemeNames()
{
    static const std::vector<std::string> names = {
        "cc",       "quantum", "bounded",
        "unbounded", "adaptive", "laxp2p",
    };
    return names;
}

const std::vector<std::string> &
checkpointNames()
{
    static const std::vector<std::string> names = {"off", "measure",
                                                   "speculative"};
    return names;
}

/** Fault kinds the fault/fault_plan.hh grammar accepts — mirrored
 *  here because FaultPlan::parseSpec is fatal() on bad grammar, which
 *  a daemon cannot afford on untrusted input. */
const std::vector<std::string> &
faultKinds()
{
    static const std::vector<std::string> kinds = {
        "snapshot-corrupt", "snapshot-truncate", "spurious-rollback",
        "child-kill",       "child-exit",        "worker-stall",
        "backpressure",     "io-fail",           "job-crash",
        "job-hang",
    };
    return kinds;
}

/** Kinds that destroy the process running the job. Deliberately NOT
 *  daemon-kill-window: that one only makes sense on the daemon's own
 *  command line (recovery drills), never from a client. */
bool
isProcessWreckingKind(const std::string &kind)
{
    return kind == "job-crash" || kind == "job-hang";
}

bool
isMember(const std::string &word,
         const std::vector<std::string> &set)
{
    return std::find(set.begin(), set.end(), word) != set.end();
}

/** "x, y or z" for error messages. */
std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i > 0)
            out += i + 1 == names.size() ? " or " : ", ";
        out += names[i];
    }
    return out;
}

/** Set @p *error to "unknown <what> '<word>' (did you mean ...)". */
bool
rejectUnknown(const char *what, const std::string &word,
              const std::vector<std::string> &candidates,
              std::string *error)
{
    std::string msg = std::string("unknown ") + what + " '" + word + "'";
    const std::string hint = didYouMean(word, candidates);
    if (!hint.empty())
        msg += " (did you mean '" + hint + "'?)";
    else
        msg += " (expected " + joinNames(candidates) + ")";
    *error = msg;
    return false;
}

bool
getUint(const json::Value &doc, const char *key, std::uint64_t *out,
        std::string *error)
{
    const json::Value &v = doc.at(key);
    if (!v.isNumber() || v.number < 0 ||
        v.number != static_cast<double>(
                        static_cast<std::uint64_t>(v.number))) {
        *error = std::string("key '") + key +
                 "' expects a non-negative integer";
        return false;
    }
    *out = static_cast<std::uint64_t>(v.number);
    return true;
}

bool
getString(const json::Value &doc, const char *key, std::string *out,
          std::string *error)
{
    const json::Value &v = doc.at(key);
    if (!v.isString()) {
        *error = std::string("key '") + key + "' expects a string";
        return false;
    }
    *out = v.str;
    return true;
}

/** Validate one `kind@site:trigger[:args]` fault spec entry without
 *  the fatal() the real parser uses. Grammar checks only — the real
 *  parser still owns numeric semantics at run start, by which time
 *  the entry is known to be well-formed enough not to kill us. */
bool
checkFaultEntry(const std::string &entry, std::string *error)
{
    const auto at = entry.find('@');
    if (at == std::string::npos || at == 0) {
        *error = "fault spec '" + entry +
                 "': expected <kind>@<site>:<trigger>";
        return false;
    }
    const std::string kind = entry.substr(0, at);
    if (!isMember(kind, faultKinds()))
        return rejectUnknown("fault kind", kind, faultKinds(), error);
    const auto colon = entry.find(':', at);
    if (colon == std::string::npos || colon + 1 >= entry.size()) {
        *error = "fault spec '" + entry +
                 "': missing ':<trigger>' after the site";
        return false;
    }
    // Trigger and optional args must be digits/colons only.
    for (std::size_t i = colon + 1; i < entry.size(); ++i) {
        const char c = entry[i];
        if (c != ':' && (c < '0' || c > '9')) {
            *error = "fault spec '" + entry +
                     "': trigger/args must be decimal integers";
            return false;
        }
    }
    return true;
}

bool
checkFaultSpecList(const std::string &text, std::string *error)
{
    std::string entry;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == ',' || text[i] == ';') {
            if (!entry.empty() && !checkFaultEntry(entry, error))
                return false;
            entry.clear();
        } else if (text[i] != ' ') {
            entry += text[i];
        }
    }
    return true;
}

} // namespace

bool
JobSpec::parse(const json::Value &doc, JobSpec *out,
               std::string *error)
{
    if (!doc.isObject()) {
        *error = "job spec must be a JSON object";
        return false;
    }
    for (const auto &[key, value] : doc.object) {
        (void)value;
        if (!isMember(key, knownKeys()))
            return rejectUnknown("job-spec key", key, knownKeys(),
                                 error);
    }
    JobSpec spec;
    if (doc.has("version")) {
        std::string version;
        if (!getString(doc, "version", &version, error))
            return false;
        if (version != jobSpecVersion) {
            *error = "unsupported spec version '" + version +
                     "' (this daemon speaks " + jobSpecVersion + ")";
            return false;
        }
    }
    if (doc.has("name") &&
        !getString(doc, "name", &spec.name, error)) {
        return false;
    }
    if (doc.has("trace_id")) {
        if (!getString(doc, "trace_id", &spec.traceId, error))
            return false;
        if (spec.traceId.size() > 64) {
            *error = "trace_id must be at most 64 characters";
            return false;
        }
        for (const char c : spec.traceId) {
            if (!std::isalnum(static_cast<unsigned char>(c)) &&
                c != '-' && c != '_') {
                *error = "trace_id may contain only [A-Za-z0-9_-]";
                return false;
            }
        }
    }
    if (!doc.has("kernel")) {
        *error = "job spec requires a 'kernel' key";
        return false;
    }
    if (!getString(doc, "kernel", &spec.kernel, error))
        return false;
    if (!isMember(spec.kernel, workloadNames()))
        return rejectUnknown("kernel", spec.kernel, workloadNames(),
                             error);
    if (doc.has("scheme")) {
        if (!getString(doc, "scheme", &spec.scheme, error))
            return false;
        if (!isMember(spec.scheme, schemeNames()))
            return rejectUnknown("scheme", spec.scheme, schemeNames(),
                                 error);
    }
    if (doc.has("checkpoint")) {
        if (!getString(doc, "checkpoint", &spec.checkpoint, error))
            return false;
        if (!isMember(spec.checkpoint, checkpointNames()))
            return rejectUnknown("checkpoint mode", spec.checkpoint,
                                 checkpointNames(), error);
    }
    std::uint64_t u = 0;
    if (doc.has("cores")) {
        if (!getUint(doc, "cores", &u, error))
            return false;
        if (u < 1 || u > 64) {
            *error = "cores must be in [1, 64]";
            return false;
        }
        spec.cores = static_cast<std::uint32_t>(u);
    }
    if (doc.has("slack")) {
        if (!getUint(doc, "slack", &spec.slack, error))
            return false;
        if (spec.slack < 1) {
            *error = "slack must be >= 1";
            return false;
        }
    }
    if (doc.has("quantum")) {
        if (!getUint(doc, "quantum", &spec.quantum, error))
            return false;
        if (spec.quantum < 1) {
            *error = "quantum must be >= 1";
            return false;
        }
    }
    if (doc.has("seed") && !getUint(doc, "seed", &spec.seed, error))
        return false;
    if (doc.has("max_uops") &&
        !getUint(doc, "max_uops", &spec.maxUops, error)) {
        return false;
    }
    if (doc.has("warmup_uops") &&
        !getUint(doc, "warmup_uops", &spec.warmupUops, error)) {
        return false;
    }
    if (doc.has("checkpoint_interval")) {
        if (!getUint(doc, "checkpoint_interval",
                     &spec.checkpointInterval, error)) {
            return false;
        }
        if (spec.checkpointInterval < 100) {
            *error = "checkpoint_interval must be >= 100 cycles";
            return false;
        }
    }
    if (doc.has("parallel_host")) {
        const json::Value &v = doc.at("parallel_host");
        if (!v.isBool()) {
            *error = "key 'parallel_host' expects a boolean";
            return false;
        }
        spec.parallelHost = v.boolean;
    }
    if (doc.has("host_threads")) {
        if (!getUint(doc, "host_threads", &u, error))
            return false;
        if (u > 0 && !spec.parallelHost) {
            *error = "host_threads requires parallel_host";
            return false;
        }
        if (u > std::uint64_t{spec.cores} + 1) {
            *error = "host_threads must be in [0, cores + 1]";
            return false;
        }
        spec.hostThreadsOverride = static_cast<std::uint32_t>(u);
    }
    if (doc.has("clusters")) {
        if (!getUint(doc, "clusters", &u, error))
            return false;
        spec.clusters = static_cast<std::uint32_t>(u);
        if (spec.clusters > 0 && !spec.parallelHost) {
            *error = "clusters require parallel_host";
            return false;
        }
        if (spec.clusters > spec.cores) {
            *error = "more clusters than cores";
            return false;
        }
    }
    if (spec.clusters > 0 && spec.checkpoint != "off") {
        *error = "clusters and checkpointing are incompatible";
        return false;
    }
    if (doc.has("priority")) {
        if (!getUint(doc, "priority", &u, error))
            return false;
        if (u > 7) {
            *error = "priority must be in [0, 7]";
            return false;
        }
        spec.priority = static_cast<std::uint32_t>(u);
    }
    if (doc.has("timeout_ms") &&
        !getUint(doc, "timeout_ms", &spec.timeoutMs, error)) {
        return false;
    }
    if (doc.has("fault_spec")) {
        if (!getString(doc, "fault_spec", &spec.faultSpec, error))
            return false;
        if (!checkFaultSpecList(spec.faultSpec, error))
            return false;
    }
    if (doc.has("fault_seed") &&
        !getUint(doc, "fault_seed", &spec.faultSeed, error)) {
        return false;
    }
    if (doc.has("mem_mb") &&
        !getUint(doc, "mem_mb", &spec.memMb, error)) {
        return false;
    }
    if (doc.has("trace")) {
        const json::Value &v = doc.at("trace");
        if (!v.isBool()) {
            *error = "key 'trace' expects a boolean";
            return false;
        }
        spec.trace = v.boolean;
    }
    if (doc.has("profile")) {
        const json::Value &v = doc.at("profile");
        if (!v.isBool()) {
            *error = "key 'profile' expects a boolean";
            return false;
        }
        spec.profile = v.boolean;
    }
    if (doc.has("isolation")) {
        if (!getString(doc, "isolation", &spec.isolation, error))
            return false;
        if (!spec.isolation.empty() &&
            !isMember(spec.isolation, isolationNames())) {
            return rejectUnknown("isolation mode", spec.isolation,
                                 isolationNames(), error);
        }
    }
    if (doc.has("max_attempts")) {
        if (!getUint(doc, "max_attempts", &u, error))
            return false;
        if (u < 1 || u > 10) {
            *error = "max_attempts must be in [1, 10]";
            return false;
        }
        spec.maxAttempts = static_cast<std::uint32_t>(u);
    }
    if (doc.has("rlimit_mem_mb") &&
        !getUint(doc, "rlimit_mem_mb", &spec.rlimitMemMb, error)) {
        return false;
    }
    if (doc.has("rlimit_cpu_s") &&
        !getUint(doc, "rlimit_cpu_s", &spec.rlimitCpuS, error)) {
        return false;
    }
    if (spec.isolation == "inline" && spec.needsProcessIsolation()) {
        *error = "fault kinds job-crash/job-hang require "
                 "isolation \"process\" (they destroy the executing "
                 "process)";
        return false;
    }
    *out = std::move(spec);
    return true;
}

bool
JobSpec::needsProcessIsolation() const
{
    std::string entry;
    for (std::size_t i = 0; i <= faultSpec.size(); ++i) {
        if (i == faultSpec.size() || faultSpec[i] == ',' ||
            faultSpec[i] == ';') {
            const auto at = entry.find('@');
            if (at != std::string::npos &&
                isProcessWreckingKind(entry.substr(0, at))) {
                return true;
            }
            entry.clear();
        } else if (faultSpec[i] != ' ') {
            entry += faultSpec[i];
        }
    }
    return false;
}

SimConfig
JobSpec::toConfig() const
{
    SimConfig config;
    config.target.numCores = cores;
    config.workload.kernel = kernel;
    config.workload.numThreads = cores;
    config.workload.seed = seed;
    config.engine.scheme = parseScheme(scheme);
    config.engine.slackBound = slack;
    config.engine.quantum = quantum;
    config.engine.p2pSeed = seed;
    config.engine.maxCommittedUops = maxUops;
    config.engine.warmupUops = warmupUops;
    config.engine.parallelHost = parallelHost;
    config.engine.hostThreads = hostThreadsOverride;
    config.engine.managerClusters = clusters;
    if (checkpoint == "measure")
        config.engine.checkpoint.mode = CheckpointMode::Measure;
    else if (checkpoint == "speculative")
        config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.checkpoint.interval = checkpointInterval;
    if (!faultSpec.empty())
        config.engine.faultSpecs.push_back(faultSpec);
    config.engine.faultSeed = faultSeed;
    return config;
}

std::string
JobSpec::toJson() const
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    w.field("version", jobSpecVersion);
    if (!name.empty())
        w.field("name", name);
    w.field("kernel", kernel);
    w.field("cores", static_cast<std::uint64_t>(cores));
    w.field("scheme", scheme);
    w.field("slack", slack);
    w.field("quantum", quantum);
    w.field("seed", seed);
    w.field("max_uops", maxUops);
    w.field("warmup_uops", warmupUops);
    w.field("checkpoint", checkpoint);
    w.field("checkpoint_interval", checkpointInterval);
    w.field("parallel_host", parallelHost);
    if (hostThreadsOverride) {
        w.field("host_threads",
                static_cast<std::uint64_t>(hostThreadsOverride));
    }
    w.field("clusters", static_cast<std::uint64_t>(clusters));
    w.field("priority", static_cast<std::uint64_t>(priority));
    w.field("timeout_ms", timeoutMs);
    if (!faultSpec.empty())
        w.field("fault_spec", faultSpec);
    w.field("fault_seed", faultSeed);
    if (memMb)
        w.field("mem_mb", memMb);
    if (trace)
        w.field("trace", trace);
    if (profile)
        w.field("profile", profile);
    if (!isolation.empty())
        w.field("isolation", isolation);
    w.field("max_attempts", static_cast<std::uint64_t>(maxAttempts));
    if (rlimitMemMb)
        w.field("rlimit_mem_mb", rlimitMemMb);
    if (rlimitCpuS)
        w.field("rlimit_cpu_s", rlimitCpuS);
    if (!traceId.empty())
        w.field("trace_id", traceId);
    w.endObject();
    return os.str();
}

} // namespace serve
} // namespace slacksim
