/**
 * @file
 * The versioned job specification (`slacksim.job.v1`) and its
 * validator.
 *
 * A job spec is the JSON object a client submits over the socket:
 * which workload to run, on what simulated machine, under which slack
 * scheme, with what seed and fault/recovery policy, plus the serve-
 * level knobs (priority, timeout, memory estimate). One flat object,
 * all keys optional except "kernel":
 *
 *   {
 *     "version":       "slacksim.job.v1"   (optional, checked if set)
 *     "name":          string   job label (default "job-<id>")
 *     "kernel":        string   workload kernel (workloadNames())
 *     "cores":         uint     target cores, 1..64 (default 8)
 *     "scheme":        string   cc|quantum|bounded|unbounded|
 *                               adaptive|laxp2p (default "bounded")
 *     "slack":         uint     slack bound, >=1 (default 10)
 *     "quantum":       uint     quantum period, >=1 (default 8)
 *     "seed":          uint     workload + p2p seed (default 42)
 *     "max_uops":      uint     committed-uop budget (0 = to end)
 *     "warmup_uops":   uint     warmup discard budget (default 0)
 *     "checkpoint":    string   off|measure|speculative (default off)
 *     "checkpoint_interval": uint  cycles, >=100 (default 50000)
 *     "parallel_host": bool     threaded engine (default true)
 *     "host_threads":  uint     total host threads incl. the manager
 *                               (0 = auto-size from the machine;
 *                               1 = inline mode; parallel only)
 *     "clusters":      uint     relay threads (default 0)
 *     "priority":      uint     0..7, higher runs first (default 3)
 *     "timeout_ms":    uint     per-job host deadline (0 = none)
 *     "fault_spec":    string   fault/fault_plan.hh grammar
 *     "fault_seed":    uint     fault randomness seed (default 1)
 *     "mem_mb":        uint     admission memory estimate override
 *     "trace":         bool     write a per-job Chrome trace named
 *                               job-<id>.trace.json (default false)
 *     "profile":       bool     host-time profiling; adds the run-
 *                               report profile section and writes
 *                               job-<id>.profile.folded (default off)
 *     "isolation":     string   ""|"inline"|"process": where the job
 *                               executes ("" = the daemon's default;
 *                               "process" = forked supervised child)
 *     "max_attempts":  uint     1..10: total tries across daemon
 *                               restarts before a running-at-crash
 *                               job is declared failed (default 3)
 *     "rlimit_mem_mb": uint     child RLIMIT_AS, MiB (0 = none;
 *                               process isolation only)
 *     "rlimit_cpu_s":  uint     child RLIMIT_CPU, seconds (0 = none;
 *                               process isolation only)
 *     "trace_id":      string   distributed-trace correlation id, up
 *                               to 64 hex/alnum chars; "" lets the
 *                               server mint one at submit
 *   }
 *
 * Validation philosophy: the engine's own SimConfig::validate() and
 * makeWorkload() are fatal() on user error — correct for a CLI, an
 * instant daemon-killer for a server. parse() therefore pre-checks
 * everything those layers would die on and returns a protocol-level
 * error string instead, with did-you-mean diagnostics for unknown
 * keys, kernels and schemes (same editDistance helper the CLI flag
 * parser uses).
 */

#ifndef SLACKSIM_SERVE_JOB_SPEC_HH
#define SLACKSIM_SERVE_JOB_SPEC_HH

#include <cstdint>
#include <string>

#include "core/config.hh"
#include "util/json_parse.hh"

namespace slacksim {
namespace serve {

/** The spec version this daemon accepts. */
inline constexpr const char *jobSpecVersion = "slacksim.job.v1";

/** One validated job submission. */
struct JobSpec
{
    std::string name;
    std::string kernel = "fft";
    std::uint32_t cores = 8;
    std::string scheme = "bounded";
    std::uint64_t slack = 10;
    std::uint64_t quantum = 8;
    std::uint64_t seed = 42;
    std::uint64_t maxUops = 0;
    std::uint64_t warmupUops = 0;
    std::string checkpoint = "off";
    std::uint64_t checkpointInterval = 50000;
    bool parallelHost = true;
    /** EngineConfig::hostThreads: total host threads including the
     *  manager; 0 = auto-size from the machine. */
    std::uint32_t hostThreadsOverride = 0;
    std::uint32_t clusters = 0;
    std::uint32_t priority = 3;
    std::uint64_t timeoutMs = 0;
    std::string faultSpec;
    std::uint64_t faultSeed = 1;
    std::uint64_t memMb = 0; //!< 0 = use the built-in estimate
    bool trace = false;      //!< per-job Chrome trace sink
    bool profile = false;    //!< host-time profile + folded stacks
    /** "" (inherit the daemon default), "inline" or "process". */
    std::string isolation;
    std::uint32_t maxAttempts = 3; //!< tries across daemon restarts
    std::uint64_t rlimitMemMb = 0; //!< child RLIMIT_AS MiB (0: none)
    std::uint64_t rlimitCpuS = 0;  //!< child RLIMIT_CPU s (0: none)
    /** Client-supplied distributed-trace id; the server mints one at
     *  submit when empty, and writes it back so the journaled spec
     *  round-trips the identity through crash recovery. */
    std::string traceId;

    /**
     * Validate and decode @p doc into @p out. @return true on
     * success; on failure @p error receives one human-readable line
     * (unknown keys/kernels/schemes come with did-you-mean hints).
     */
    static bool parse(const json::Value &doc, JobSpec *out,
                      std::string *error);

    /** Build the SimConfig this spec describes. The spec is already
     *  validated, so the config passes SimConfig::validate(). */
    SimConfig toConfig() const;

    /**
     * Host threads the job occupies while running: the manager plus,
     * on the parallel engine, the worker threads and relays. With no
     * host_threads override the engine auto-sizes its workers from
     * the machine, so admission reserves the one-per-core worst case.
     * This is the quantity admission control reserves against the
     * global core budget.
     */
    std::uint32_t
    hostThreads() const
    {
        if (!parallelHost)
            return 1;
        const std::uint32_t workers =
            hostThreadsOverride
                ? (hostThreadsOverride > cores + 1
                       ? cores
                       : hostThreadsOverride - 1)
                : cores;
        return 1 + workers + clusters;
    }

    /** Admission memory estimate (MiB): the override when given,
     *  else a coarse per-core model of the simulated state. */
    std::uint64_t
    memEstimateMb() const
    {
        return memMb ? memMb : 8 + std::uint64_t{2} * cores;
    }

    /**
     * @return true when the fault spec contains a kind (job-crash,
     * job-hang) that deliberately wrecks the executing process —
     * submittable only under process isolation, where the blast
     * radius is one supervised child instead of the whole daemon.
     */
    bool needsProcessIsolation() const;

    /** Re-encode as a compact slacksim.job.v1 JSON object. */
    std::string toJson() const;
};

} // namespace serve
} // namespace slacksim

#endif // SLACKSIM_SERVE_JOB_SPEC_HH
