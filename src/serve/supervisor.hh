/**
 * @file
 * Process isolation for serve jobs: run one simulation in a forked,
 * supervised, resource-limited child (DESIGN.md §14).
 *
 * The in-process job body is the daemon's biggest blast radius — one
 * SIGSEGV or OOM inside engine code kills every co-running job and
 * the queue with it. runIsolatedJob() moves the simulation into a
 * fork()ed child, so the worst a job can do is kill itself:
 *
 *   parent (pool task)                    child
 *   ------------------                    -----
 *   fork ────────────────────────────────▶ setrlimit(AS/CPU)
 *   read ready byte (spawn latency)  ◀──── write 'R' on status pipe
 *   poll: waitpid + progress relay   ◀──── runSimulation() publishes
 *     + cancel -> 'C' on control pipe      into a MAP_SHARED progress
 *       -> SIGKILL after grace             page; a watcher thread
 *   waitpid verdict             ◀───────── turns 'C' into a local
 *     exit 0 + status line -> Ok/Cancelled CancelToken fire
 *     signal (not ours)    -> Crashed ◀─── status JSON line, _exit(0)
 *     anything else        -> Failed
 *
 * Results flow back through two channels: the child writes its own
 * run report / trace / metrics into the per-job out-dir exactly as an
 * inline job would (the paths are in the SimConfig), and the final
 * status pipe line carries the RunResult aggregates the server needs
 * for telemetry. A crashed child leaves no status line — the caller
 * gets the signal number and writes a stub crash report instead.
 *
 * fork() from a multithreaded daemon is safe here because the child
 * calls only async-signal-unsafe functions *after* glibc's atfork
 * handlers have reset the allocator locks, and never touches the
 * parent's worker pool, sockets or scheduler state (runner is forced
 * to nullptr so the engine spawns its own threads).
 */

#ifndef SLACKSIM_SERVE_SUPERVISOR_HH
#define SLACKSIM_SERVE_SUPERVISOR_HH

#include <cstdint>

#include "core/config.hh"
#include "obs/progress.hh"
#include "util/cancel.hh"

namespace slacksim {
namespace serve {

/** Resource limits applied to the child before it simulates. */
struct IsolationLimits
{
    std::uint64_t memMb = 0;    //!< RLIMIT_AS in MiB (0 = none)
    std::uint64_t cpuSeconds = 0; //!< RLIMIT_CPU (0 = none)
    /** Cancel-to-SIGKILL escalation window: after a cancel request
     *  the child gets this long to drain cooperatively before the
     *  supervisor kills it. */
    std::uint64_t killGraceMs = 5000;
};

/** The supervisor's verdict on one isolated job. */
struct SupervisedResult
{
    enum class Status : std::uint8_t {
        Ok,        //!< ran to completion, aggregates valid
        Cancelled, //!< cooperative cancel (or our kill escalation)
        Crashed,   //!< child died by a signal we did not send
        Failed,    //!< child exited nonzero / fork or pipe failure
    };

    Status status = Status::Failed;
    int exitCode = 0; //!< child exit code (status Failed)
    int signal = 0;   //!< fatal signal (status Crashed)
    /** RunResult aggregates relayed over the status pipe (valid for
     *  Ok and Cancelled). */
    std::uint64_t committedUops = 0;
    std::uint64_t simulatedCycles = 0;
    std::uint64_t faultInjections = 0;
    std::uint64_t demotions = 0;
    /** fork-to-ready latency (ms) — the isolation overhead the bench
     *  and telemetry track. */
    double spawnMs = 0.0;
    /** The forked child's real pid (0 when the fork never happened).
     *  The fleet-trace merger keys the job's engine tracks on it. */
    int childPid = 0;
    /** Human-readable failure detail ("" when status == Ok). */
    std::string error;
};

/** @return printable status name ("ok", "cancelled", ...). */
const char *supervisedStatusName(SupervisedResult::Status status);

/**
 * Run @p config in a forked supervised child.
 *
 * @param config   fully-built job config; obs paths must point into
 *                 the per-job out-dir. The child overrides `runner`
 *                 (no pool sharing across the fork) and `cancel`
 *                 (replaced by the control-pipe watcher).
 * @param limits   rlimits + kill escalation grace.
 * @param cancel   the job's server-side token; polled by the parent
 *                 and relayed to the child over the control pipe.
 *                 Nullable.
 * @param progress the job's live progress mailbox; the parent copies
 *                 the child's shared-page snapshots into it so watch
 *                 streams keep updating across the process boundary.
 *                 Nullable.
 */
SupervisedResult runIsolatedJob(const SimConfig &config,
                                const IsolationLimits &limits,
                                CancelToken *cancel,
                                obs::RunProgress *progress);

} // namespace serve
} // namespace slacksim

#endif // SLACKSIM_SERVE_SUPERVISOR_HH
