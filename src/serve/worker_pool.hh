/**
 * @file
 * Persistent worker pool: the serve subsystem's TaskRunner.
 *
 * The engines' historical thread model was spawn-and-join per run —
 * fine for one simulation per process, pure overhead for a daemon
 * running thousands. The pool keeps a fixed set of host threads alive
 * for the life of the server; an engine's launch() hands its worker
 * body to a parked pool thread and Handle::join() waits for the body
 * to return without tearing the thread down. Reuse is observable:
 * threadsSpawned() stays flat across jobs while tasksRun() grows —
 * the "no per-run spawn/join on the pool path" acceptance proof.
 *
 * Engine worker tasks occupy their thread for the entire run, so a
 * launch() burst larger than the free-thread count would deadlock a
 * job against itself (its manager waits for core workers that never
 * start). Admission control (serve/job_queue.hh) reserves a job's
 * full host-thread need against the pool before the job starts, so
 * the governed path never overflows; as a safety net launch() falls
 * back to spawning a fresh tracked thread when no pool thread is
 * free, and counts it in overflowSpawns() — a nonzero value in the
 * server report means admission accounting is wrong, not that work
 * was lost.
 */

#ifndef SLACKSIM_SERVE_WORKER_POOL_HH
#define SLACKSIM_SERVE_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/task_runner.hh"

namespace slacksim {
namespace serve {

/** Fixed-size pool of reusable host threads. */
class WorkerPool final : public TaskRunner
{
  public:
    /** Spawn @p threads persistent workers (at least 1). */
    explicit WorkerPool(std::uint32_t threads);

    /** Joins every worker; pending tasks must have completed. */
    ~WorkerPool() override;

    std::unique_ptr<Handle> launch(std::function<void()> fn) override;

    const char *name() const override { return "worker-pool"; }

    /** Pool size chosen at construction. */
    std::uint32_t size() const { return size_; }

    /** Pool threads currently parked, ready for a task. */
    std::uint32_t freeThreads() const;

    /** Tasks completed + started over the pool's lifetime. */
    std::uint64_t tasksRun() const
    {
        return tasksRun_.load(std::memory_order_relaxed);
    }

    /** Host threads created beyond the persistent pool (see file
     *  comment: 0 on the governed path). */
    std::uint64_t overflowSpawns() const
    {
        return overflowSpawns_.load(std::memory_order_relaxed);
    }

    /** Total host threads ever created (pool + overflow). */
    std::uint64_t threadsSpawned() const
    {
        return size_ + overflowSpawns();
    }

  private:
    /** Completion state shared between a task and its Handle. */
    struct TaskState
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
    };

    struct PooledTask
    {
        std::function<void()> fn;
        std::shared_ptr<TaskState> state;
    };

    class PooledHandle;
    class OverflowHandle;

    void workerMain();

    const std::uint32_t size_;
    std::atomic<std::uint64_t> tasksRun_{0};
    std::atomic<std::uint64_t> overflowSpawns_{0};

    mutable std::mutex mu_;
    std::condition_variable cv_;
    /** Workers parked (or about to park) with no task claimed against
     *  them yet; launch() decrements when it enqueues. */
    std::uint32_t free_ = 0;
    std::deque<PooledTask> queue_;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace serve
} // namespace slacksim

#endif // SLACKSIM_SERVE_WORKER_POOL_HH
