/**
 * @file
 * Fleet-trace merger implementation (see fleet_trace.hh).
 */

#include "serve/fleet_trace.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json_parse.hh"

namespace slacksim {
namespace serve {

namespace {

/** JSON string escaping matching util/json.hh's writeString. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        const auto u = static_cast<unsigned char>(c);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Re-encode a parsed Value as compact JSON. Integral numbers print
 *  exactly (wall-epoch microsecond timestamps overflow %.12g), the
 *  rest with enough digits to round-trip. */
void
writeValue(std::ostream &os, const json::Value &v)
{
    switch (v.type) {
      case json::Value::Type::Null: os << "null"; break;
      case json::Value::Type::Bool:
        os << (v.boolean ? "true" : "false");
        break;
      case json::Value::Type::Number: {
        const auto as_int = static_cast<long long>(v.number);
        if (v.number == static_cast<double>(as_int)) {
            os << as_int;
        } else {
            char buf[48];
            std::snprintf(buf, sizeof(buf), "%.17g", v.number);
            os << buf;
        }
        break;
      }
      case json::Value::Type::String:
        os << '"' << jsonEscape(v.str) << '"';
        break;
      case json::Value::Type::Object: {
        os << '{';
        bool first = true;
        for (const auto &[key, val] : v.object) {
            if (!first)
                os << ',';
            first = false;
            os << '"' << jsonEscape(key) << "\":";
            writeValue(os, val);
        }
        os << '}';
        break;
      }
      case json::Value::Type::Array: {
        os << '[';
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            if (i)
                os << ',';
            writeValue(os, v.array[i]);
        }
        os << ']';
        break;
      }
    }
}

/** Wall-epoch microseconds rendered with sub-us precision. */
std::string
tsFromNs(std::int64_t wall_ns)
{
    if (wall_ns < 0)
        wall_ns = 0;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(wall_ns / 1000),
                  static_cast<long long>(wall_ns % 1000));
    return buf;
}

double
numberOr(const json::Value &doc, const char *key, double fallback)
{
    if (doc.isObject() && doc.has(key) && doc.at(key).isNumber())
        return doc.at(key).number;
    return fallback;
}

std::string
stringOr(const json::Value &doc, const char *key,
         const std::string &fallback)
{
    if (doc.isObject() && doc.has(key) && doc.at(key).isString())
        return doc.at(key).str;
    return fallback;
}

/** One heartbeat observed for a job (already on the wall axis). */
struct Beat
{
    std::uint64_t wallUs = 0;
    double epochs = 0;
    double cyclesPerSec = 0;
    double firstBeatMs = -1.0; //!< spawn_to_first_heartbeat_ms
};

/** Everything the journal knows about one job's lifecycle. */
struct JobTimeline
{
    std::uint64_t id = 0;
    std::string name;
    std::string kernel;
    std::string traceId;
    std::string rootSpanHex;
    std::string isolation;
    std::string terminalEvent;
    std::uint64_t tSubmitted = 0;
    std::uint64_t tValidated = 0;
    std::uint64_t tAdmitted = 0;
    std::uint64_t tStarted = 0;
    std::uint64_t tTerminal = 0;
    std::uint64_t lastTs = 0; //!< max event ts seen for this job
    std::vector<Beat> beats;
};

/** Streaming event-array writer: tracks the comma state. */
class EventSink
{
  public:
    explicit EventSink(std::ostream &os) : os_(os) {}

    /** Append one already-rendered event object. */
    void
    raw(const std::string &event_json)
    {
        os_ << (first_ ? "\n" : ",\n") << event_json;
        first_ = false;
    }

    /** Append a B/E/i span event on the server's per-job track. */
    void
    span(const char *ph, std::uint32_t pid, std::uint64_t tid,
         std::uint64_t ts_us, const char *name, const char *cat,
         const std::string &args)
    {
        std::ostringstream e;
        e << "{\"ph\":\"" << ph << "\",\"pid\":" << pid
          << ",\"tid\":" << tid << ",\"ts\":" << ts_us
          << ",\"name\":\"" << name << "\",\"cat\":\"" << cat << "\"";
        if (ph[0] == 'i')
            e << ",\"s\":\"t\"";
        e << ",\"args\":{" << args << "}}";
        raw(e.str());
    }

  private:
    std::ostream &os_;
    bool first_ = true;
};

/** Parse a whole JSON file; Null on any failure. */
json::Value
parseFileOrNull(const std::string &path)
{
    std::ifstream in(path, std::ios::in | std::ios::binary);
    if (!in.is_open())
        return json::Value();
    std::ostringstream body;
    body << in.rdbuf();
    try {
        return json::parse(body.str());
    } catch (const json::ParseError &) {
        return json::Value();
    }
}

/** Load `role;phase us` folded-stack lines as args-object entries. */
std::string
foldedProfileArgs(const std::string &path)
{
    std::ifstream in(path);
    if (!in.is_open())
        return "";
    std::ostringstream args;
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        const std::size_t space = line.rfind(' ');
        if (space == std::string::npos || space == 0)
            continue;
        if (!first)
            args << ",";
        first = false;
        args << "\"" << jsonEscape(line.substr(0, space))
             << "\":" << line.substr(space + 1);
    }
    if (first)
        return "";
    return args.str();
}

/**
 * Splice one job's Chrome trace into the merged stream: shift every
 * timestamp by the child's clock anchor (recorded in the file's
 * metadata at session begin) and stamp job_id/trace_id into every
 * non-metadata event's args. @return the trace_id the file carried.
 */
std::string
spliceJobTrace(EventSink &sink, const json::Value &trace,
               const JobTimeline &job)
{
    if (!trace.isObject() || !trace.has("traceEvents") ||
        trace.at("traceEvents").type != json::Value::Type::Array) {
        return "";
    }
    // Files written before the span layer carry no anchor; fall back
    // to the job's started timestamp so the engine track still lands
    // near its true position instead of at the epoch.
    std::uint64_t anchor_us = job.tStarted;
    std::string file_trace_id;
    if (trace.has("metadata") && trace.at("metadata").isObject()) {
        const json::Value &meta = trace.at("metadata");
        file_trace_id = stringOr(meta, "trace_id", "");
        if (meta.has("clock_anchor")) {
            anchor_us = static_cast<std::uint64_t>(numberOr(
                meta.at("clock_anchor"), "wall_us",
                static_cast<double>(anchor_us)));
        }
    }
    const std::string id_args =
        "\"job_id\":\"job-" + std::to_string(job.id) +
        "\",\"trace_id\":\"" + jsonEscape(job.traceId) + "\"";
    for (const json::Value &event : trace.at("traceEvents").array) {
        if (!event.isObject())
            continue;
        const std::string ph = stringOr(event, "ph", "");
        const bool meta_event = ph == "M";
        std::ostringstream e;
        e << '{';
        bool first = true;
        bool saw_args = false;
        for (const auto &[key, val] : event.object) {
            if (!first)
                e << ',';
            first = false;
            e << '"' << jsonEscape(key) << "\":";
            if (key == "ts" && val.isNumber() && !meta_event) {
                // Engine timestamps are µs since trace activation;
                // the anchor moves them onto the wall-epoch axis.
                const std::int64_t shifted_ns =
                    static_cast<std::int64_t>(anchor_us) * 1000 +
                    static_cast<std::int64_t>(val.number * 1000.0 +
                                              0.5);
                e << tsFromNs(shifted_ns);
            } else if (key == "args" &&
                       val.type == json::Value::Type::Object &&
                       !meta_event) {
                saw_args = true;
                e << '{' << id_args;
                for (const auto &[akey, aval] : val.object) {
                    e << ",\"" << jsonEscape(akey) << "\":";
                    writeValue(e, aval);
                }
                e << '}';
            } else {
                writeValue(e, val);
            }
        }
        if (!saw_args && !meta_event)
            e << (first ? "" : ",") << "\"args\":{" << id_args << '}';
        e << '}';
        sink.raw(e.str());
    }
    return file_trace_id;
}

} // namespace

bool
writeFleetTrace(std::ostream &os, const std::string &outRoot,
                std::string *error)
{
    const std::string journal_path = outRoot + "/server_events.jsonl";
    std::ifstream in(journal_path);
    if (!in.is_open()) {
        if (error)
            *error = "no event journal at " + journal_path +
                     " (is --out-root right?)";
        return false;
    }

    // --- Pass 1: fold the journal into per-job timelines. ---------
    bool have_anchor = false;
    std::uint64_t anchor_wall_ms = 0;
    std::uint64_t anchor_steady_ns = 0;
    std::uint32_t server_pid = 1; // pre-pid journals: synthetic pid
    std::map<std::uint64_t, JobTimeline> jobs;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        json::Value doc;
        try {
            doc = json::parse(line);
        } catch (const json::ParseError &) {
            continue; // torn tail; fsync guarantees the prefix
        }
        if (!doc.isObject())
            continue;
        if (doc.has("schema") && !doc.has("event")) {
            // Journal header: the paired wall/steady anchor that puts
            // every steady-stamped event on the wall-epoch axis.
            anchor_wall_ms = static_cast<std::uint64_t>(
                numberOr(doc, "wall_ms", 0));
            anchor_steady_ns = static_cast<std::uint64_t>(
                numberOr(doc, "steady_ns", 0));
            have_anchor = anchor_wall_ms != 0;
            server_pid = static_cast<std::uint32_t>(
                numberOr(doc, "pid", 1));
            continue;
        }
        if (!doc.has("event") || !doc.has("job") ||
            !doc.at("event").isString() || !doc.at("job").isNumber()) {
            continue;
        }
        const std::string event = doc.at("event").str;
        const auto id =
            static_cast<std::uint64_t>(doc.at("job").number);
        JobTimeline &job = jobs[id];
        job.id = id;

        const std::uint64_t wall_ms =
            static_cast<std::uint64_t>(numberOr(doc, "wall_ms", 0));
        const std::uint64_t steady_ns =
            static_cast<std::uint64_t>(numberOr(doc, "steady_ns", 0));
        // Events recorded before the first flush predate the header
        // anchor, so the steady delta below can be negative.
        std::uint64_t ts = wall_ms * 1000;
        if (have_anchor && steady_ns != 0) {
            ts = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(anchor_wall_ms) * 1000 +
                (static_cast<std::int64_t>(steady_ns) -
                 static_cast<std::int64_t>(anchor_steady_ns)) /
                    1000);
        }
        job.lastTs = std::max(job.lastTs, ts);
        if (doc.has("trace_id") && doc.at("trace_id").isString())
            job.traceId = doc.at("trace_id").str;

        if (event == "submitted") {
            job.tSubmitted = ts;
            job.name = stringOr(doc, "name", "");
            job.kernel = stringOr(doc, "kernel", "");
            job.rootSpanHex = stringOr(doc, "span_id", "");
        } else if (event == "validated") {
            job.tValidated = ts;
        } else if (event == "admitted") {
            job.tAdmitted = ts;
        } else if (event == "started") {
            job.tStarted = ts;
            job.isolation = stringOr(doc, "isolation", "");
        } else if (event == "heartbeat") {
            Beat beat;
            beat.wallUs = ts;
            beat.epochs = numberOr(doc, "epochs", 0);
            beat.cyclesPerSec = numberOr(doc, "cycles_per_sec", 0);
            beat.firstBeatMs =
                numberOr(doc, "spawn_to_first_heartbeat_ms", -1.0);
            job.beats.push_back(beat);
        } else if (event == "completed" || event == "failed" ||
                   event == "cancelled" || event == "timed_out" ||
                   event == "crashed") {
            job.tTerminal = ts;
            job.terminalEvent = event;
        }
    }

    // --- Pass 2: emit the merged timeline. ------------------------
    os << "{\"traceEvents\":[";
    EventSink sink(os);
    sink.raw("{\"ph\":\"M\",\"pid\":" + std::to_string(server_pid) +
             ",\"tid\":0,\"name\":\"process_name\",\"args\":{"
             "\"name\":\"slacksim-serve\"}}");

    std::uint64_t spliced_traces = 0;
    for (auto &[id, job] : jobs) {
        (void)id;
        // One server track per job; real daemon pid, tid = job id so
        // concurrent jobs render as parallel rows.
        std::string label = "job-" + std::to_string(job.id);
        if (!job.name.empty() && job.name != label)
            label += " " + job.name;
        if (!job.kernel.empty())
            label += " (" + job.kernel + ")";
        sink.raw("{\"ph\":\"M\",\"pid\":" +
                 std::to_string(server_pid) +
                 ",\"tid\":" + std::to_string(job.id) +
                 ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
                 jsonEscape(label) + "\"}}");

        const std::string base_args =
            "\"job_id\":\"job-" + std::to_string(job.id) +
            "\",\"trace_id\":\"" + jsonEscape(job.traceId) + "\"";
        // A job with no terminal event is still running (or the
        // daemon died); close its open spans at the last evidence so
        // the merged trace stays balanced.
        const std::uint64_t close =
            job.tTerminal ? job.tTerminal : job.lastTs;
        const bool complete = job.tTerminal != 0;

        if (job.tSubmitted == 0)
            job.tSubmitted = job.lastTs; // recovered mid-journal
        std::string root_args = base_args;
        if (!job.rootSpanHex.empty())
            root_args += ",\"span_id\":\"" + job.rootSpanHex + "\"";
        if (!complete)
            root_args += ",\"incomplete\":true";
        if (!job.terminalEvent.empty()) {
            root_args +=
                ",\"outcome\":\"" + job.terminalEvent + "\"";
        }
        sink.span("B", server_pid, job.id, job.tSubmitted, "job",
                  "server", root_args);
        const std::uint64_t t_validated =
            job.tValidated ? job.tValidated : job.tSubmitted;
        sink.span("B", server_pid, job.id, job.tSubmitted, "validate",
                  "server", base_args);
        sink.span("E", server_pid, job.id, t_validated, "validate",
                  "server", base_args);
        const std::uint64_t queued_end =
            job.tAdmitted ? job.tAdmitted
                          : (job.tStarted ? job.tStarted : close);
        sink.span("B", server_pid, job.id, t_validated, "queued",
                  "scheduler", base_args);
        sink.span("E", server_pid, job.id, queued_end, "queued",
                  "scheduler", base_args);

        if (job.tStarted != 0) {
            std::string run_args = base_args;
            if (!job.isolation.empty()) {
                run_args +=
                    ",\"isolation\":\"" + job.isolation + "\"";
            }
            // Join the engine side of the story into the run span:
            // the report's engine span id and the folded profile's
            // host-time phase totals (no time axis of their own).
            const std::string dir =
                outRoot + "/job-" + std::to_string(job.id);
            const json::Value report =
                parseFileOrNull(dir + "/report.json");
            if (report.isObject() && report.has("trace") &&
                report.at("trace").isObject()) {
                const json::Value &rt = report.at("trace");
                const std::string span = stringOr(rt, "span_id", "");
                if (!span.empty())
                    run_args += ",\"engine_span_id\":\"" + span + "\"";
                if (job.traceId.empty())
                    job.traceId = stringOr(rt, "trace_id", "");
            }
            const std::string profile = foldedProfileArgs(
                dir + "/job-" + std::to_string(job.id) +
                ".profile.folded");
            if (!profile.empty())
                run_args += ",\"profile_us\":{" + profile + "}";

            const std::uint64_t run_end =
                std::max(close, job.tStarted);
            sink.span("B", server_pid, job.id, job.tStarted, "run",
                      "server", run_args);
            // The supervisor's launch-to-visible span: fork (started)
            // until the scheduler first saw the child simulating. The
            // span closes at the first heartbeat's own journal stamp
            // (keeping the track's timestamps monotone); the measured
            // duration rides along as an arg.
            for (const Beat &beat : job.beats) {
                if (beat.firstBeatMs >= 0.0) {
                    const std::uint64_t spawn_end = std::min(
                        run_end, std::max(beat.wallUs, job.tStarted));
                    char ms[64];
                    std::snprintf(ms, sizeof(ms),
                                  ",\"spawn_to_first_heartbeat_ms\":"
                                  "%.3f",
                                  beat.firstBeatMs);
                    sink.span("B", server_pid, job.id, job.tStarted,
                              "spawn-to-heartbeat", "supervisor",
                              base_args + ms);
                    sink.span("E", server_pid, job.id, spawn_end,
                              "spawn-to-heartbeat", "supervisor",
                              base_args + ms);
                    break;
                }
            }
            for (const Beat &beat : job.beats) {
                char extra[128];
                std::snprintf(extra, sizeof(extra),
                              ",\"epochs\":%.0f"
                              ",\"cycles_per_sec\":%.0f",
                              beat.epochs, beat.cyclesPerSec);
                sink.span("i", server_pid, job.id,
                          std::min(std::max(beat.wallUs,
                                            job.tStarted),
                                   run_end),
                          "heartbeat", "scheduler",
                          base_args + extra);
            }
            sink.span("E", server_pid, job.id, run_end, "run",
                      "server", run_args);

            // Splice the child's own Chrome trace (when the job asked
            // for one) under the child's real pid.
            const json::Value trace = parseFileOrNull(
                dir + "/job-" + std::to_string(job.id) +
                ".trace.json");
            if (!trace.isNull()) {
                spliceJobTrace(sink, trace, job);
                ++spliced_traces;
            }
        }
        // Never close the root before its children: a crashed child
        // can leave close < tStarted.
        sink.span("E", server_pid, job.id,
                  std::max(std::max(close, job.tSubmitted),
                           job.tStarted),
                  "job", "server", root_args);
    }

    os << "\n],\"displayTimeUnit\":\"ms\",\"metadata\":{"
       << "\"schema\":\"slacksim.fleet_trace.v1\",\"server_pid\":"
       << server_pid << ",\"jobs\":" << jobs.size()
       << ",\"engine_traces\":" << spliced_traces
       << ",\"clock\":\"wall-epoch-us\"}}\n";
    return true;
}

} // namespace serve
} // namespace slacksim
