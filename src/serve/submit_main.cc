/**
 * @file
 * slacksim-submit: client CLI for the slacksim job server.
 *
 * Modes (first matching flag wins):
 *   --spec=FILE [--watch] submit a slacksim.job.v1 spec; with
 *                         --watch (default on) stream the job's state
 *                         changes and save its run report and metrics
 *                         CSV under --out=DIR as they land
 *   --status[=ID]         print the queue (or one job) as JSON
 *   --cancel=ID           cancel a queued or running job
 *   --top                 live fleet view: status poll rendered as a
 *                         one-screen table (--interval-ms, --frames)
 *   --stats               print server statistics as JSON
 *   --metrics             print the server's Prometheus exposition
 *   --trace-fleet         fetch the merged fleet timeline (one
 *                         Perfetto-loadable Chrome trace joining
 *                         every job's server, scheduler, supervisor
 *                         and engine spans) to --trace-out
 *   --shutdown            graceful shutdown (--no-drain cancels)
 *
 * Exit status: 0 on success; a watched job maps its terminal state to
 * the exit code — done=0, failed=1, cancelled=2, timeout=3,
 * crashed=4 — so shell pipelines can tell the outcomes apart.
 * Protocol/transport errors exit 1.
 *
 * Transport failures (daemon restarting after a crash, socket not up
 * yet) retry with capped exponential backoff: --retries tries in
 * total, starting at --backoff-ms. Submits carry an idempotency key
 * (auto-generated, or --idempotency-key for a stable one across CLI
 * invocations) so a retry through the ambiguous window cannot
 * double-run the job; a watch that loses its connection resumes from
 * the last state it printed.
 */

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "serve/client.hh"
#include "serve/job_queue.hh"
#include "util/io.hh"
#include "util/logging.hh"
#include "util/options.hh"

namespace {

const std::vector<slacksim::OptionSpec> kFlags = {
    {"socket", "PATH", "daemon socket (default slacksim.sock)"},
    {"spec", "FILE", "submit this slacksim.job.v1 JSON spec"},
    {"watch", "", "stream the submitted job to completion (default)"},
    {"no-watch", "", "submit, print the id, exit"},
    {"out", "DIR",
     "where --watch saves report.json / metrics.csv (default '.')"},
    {"status", "ID", "print queue state (or one job); ID optional"},
    {"cancel", "ID", "cancel a job"},
    {"top", "", "live fleet table; refresh until interrupted"},
    {"interval-ms", "MS", "top refresh period (default 1000)"},
    {"frames", "N", "top: render N frames then exit (0 = forever)"},
    {"stats", "", "print server statistics"},
    {"metrics", "", "print Prometheus-format server metrics"},
    {"trace-fleet", "", "fetch the merged fleet timeline "
     "(Chrome/Perfetto JSON) and write it to --trace-out"},
    {"trace-out", "FILE",
     "where --trace-fleet writes (default fleet_trace.json; "
     "'-' = stdout)"},
    {"shutdown", "", "ask the daemon to shut down"},
    {"no-drain", "", "with --shutdown: cancel instead of draining"},
    {"retries", "N",
     "transport retry budget incl. first try (default 5)"},
    {"backoff-ms", "MS", "first retry delay, doubles per try, "
     "capped at 5000 (default 100)"},
    {"idempotency-key", "KEY",
     "submit dedup key (default: auto-generated per invocation)"},
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::in | std::ios::binary);
    if (!in.is_open())
        SLACKSIM_FATAL("cannot read spec file ", path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

bool
saveArtifact(const std::string &dir, const char *name,
             const std::string &content)
{
    slacksim::CheckedOfstream os(dir + "/" + name, name);
    if (os.ok())
        os.stream() << content;
    return os.finish();
}

/** Shell-visible outcome: done=0, failed=1, cancelled=2, timeout=3,
 *  crashed=4. Anything unexpected counts as a failure. */
int
exitCodeForState(const std::string &state)
{
    if (state == "done")
        return 0;
    if (state == "cancelled")
        return 2;
    if (state == "timeout")
        return 3;
    if (state == "crashed")
        return 4;
    return 1;
}

/** Per-invocation idempotency key: unique enough that two distinct
 *  submits never collide, stable for the retries inside this run. */
std::string
autoIdempotencyKey()
{
    const auto now = std::chrono::steady_clock::now()
                         .time_since_epoch()
                         .count();
    return "submit-" + std::to_string(::getpid()) + "-" +
           std::to_string(static_cast<std::uint64_t>(now));
}

/** One `top` frame: jobs table plus a pool/queue footer. */
void
renderTopFrame(const slacksim::json::Value &status,
               const slacksim::json::Value &stats)
{
    using slacksim::json::Value;
    std::cout << std::left << std::setw(5) << "ID" << std::setw(11)
              << "STATE" << std::setw(5) << "PRI" << std::setw(12)
              << "KERNEL" << std::setw(10) << "SCHEME"
              << std::right << std::setw(14) << "CYCLE"
              << std::setw(10) << "MCYC/S" << std::setw(10)
              << "KEV/S" << std::setw(7) << "VIOL"
              << "  NAME\n";
    const Value &jobs = status.at("jobs");
    for (std::size_t i = 0; i < jobs.array.size(); ++i) {
        const Value &job = jobs.item(i);
        std::cout << std::left << std::setw(5)
                  << job.at("id").asUint() << std::setw(11)
                  << job.at("state").asString() << std::setw(5)
                  << job.at("priority").asUint() << std::setw(12)
                  << job.at("kernel").asString() << std::setw(10)
                  << job.at("scheme").asString() << std::right;
        if (job.has("progress")) {
            const Value &p = job.at("progress");
            std::cout << std::setw(14)
                      << p.at("global_cycle").asUint() << std::setw(10)
                      << std::fixed << std::setprecision(2)
                      << p.at("cycles_per_sec").asNumber() / 1e6
                      << std::setw(10)
                      << p.at("events_per_sec").asNumber() / 1e3
                      << std::setw(7) << p.at("violations").asUint();
        } else {
            std::cout << std::setw(14) << "-" << std::setw(10) << "-"
                      << std::setw(10) << "-" << std::setw(7) << "-";
        }
        std::cout << "  " << job.at("name").asString() << "\n";
    }
    const Value &pool = stats.at("pool");
    const Value &queue = stats.at("queue");
    const Value &tel = stats.at("telemetry");
    std::cout << "pool " << pool.at("busy").asUint() << "/"
              << pool.at("size").asUint() << " busy | "
              << queue.at("queued").asUint() << " queued "
              << queue.at("running").asUint() << " running "
              << queue.at("done").asUint() << " done | wait p95 "
              << std::fixed << std::setprecision(0)
              << tel.at("queue_wait_ms").at("p95_ms").asNumber()
              << " ms | denials "
              << tel.at("admission_denials").asUint()
              << " backfills "
              << tel.at("admission_backfills").asUint() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace slacksim;

    Options opts(argc, argv);
    opts.enforceKnown("slacksim-submit: job server client", kFlags);
    const std::string socket = opts.get("socket", "slacksim.sock");

    serve::RetryPolicy policy;
    policy.attempts = static_cast<std::uint32_t>(
        opts.getUint("retries", 5));
    if (policy.attempts == 0)
        policy.attempts = 1;
    policy.baseMs = opts.getUint("backoff-ms", 100);
    policy.jitterSeed = static_cast<std::uint64_t>(::getpid());

    serve::Client client(socket, policy);
    if (!client.valid())
        SLACKSIM_FATAL("cannot connect to ", socket,
                       " — is slacksim-serve running?");
    std::string error;

    if (opts.has("spec")) {
        const std::string spec = readFile(opts.get("spec"));
        const std::string key =
            opts.get("idempotency-key", autoIdempotencyKey());
        bool duplicate = false;
        const std::uint64_t id =
            client.submit(spec, &error, key, &duplicate);
        if (id == 0)
            SLACKSIM_FATAL("submit rejected: ", error);
        std::cout << "job " << id
                  << (duplicate ? " already queued\n" : " queued\n");
        if (opts.has("no-watch"))
            return 0;

        const std::string out_dir = opts.get("out", ".");
        std::string end_state;
        std::string end_error;
        const bool watched = client.watch(
            id,
            [&](const json::Value &event) {
                const std::string &kind =
                    event.at("event").asString();
                if (kind == "state") {
                    std::cout << "job " << id << " "
                              << event.at("state").asString() << "\n";
                } else if (kind == "progress") {
                    std::cout << "job " << id << " epoch "
                              << event.at("epochs").asUint()
                              << " cycle "
                              << event.at("global_cycle").asUint()
                              << " slack "
                              << event.at("slack_bound").asUint()
                              << " viol "
                              << event.at("violations").asUint()
                              << " " << std::fixed
                              << std::setprecision(2)
                              << event.at("cycles_per_sec")
                                         .asNumber() /
                                     1e6
                              << " Mcyc/s\n";
                } else if (kind == "report") {
                    saveArtifact(out_dir, "report.json",
                                 event.at("json").asString());
                } else if (kind == "metrics") {
                    saveArtifact(out_dir, "metrics.csv",
                                 event.at("csv").asString());
                } else if (kind == "end") {
                    end_state = event.at("state").asString();
                    if (event.has("error"))
                        end_error = event.at("error").asString();
                }
            },
            &error);
        if (!watched)
            SLACKSIM_FATAL("watch failed: ", error);
        // Render the outcome distinctly: success quietly on stdout,
        // every other terminal state loudly on stderr with the reason.
        if (end_state == "done") {
            std::cout << "job " << id << " done\n";
        } else {
            std::cerr << "job " << id << " " << end_state;
            if (!end_error.empty())
                std::cerr << ": " << end_error;
            std::cerr << "\n";
        }
        return exitCodeForState(end_state);
    }

    if (opts.has("top")) {
        const std::uint64_t interval =
            opts.getUint("interval-ms", 1000);
        const std::uint64_t frames = opts.getUint("frames", 0);
        const bool tty = ::isatty(STDOUT_FILENO) == 1;
        for (std::uint64_t frame = 0; frames == 0 || frame < frames;
             ++frame) {
            json::Value status;
            if (!client.status(0, &status, &error))
                SLACKSIM_FATAL("top: status failed: ", error);
            json::Value stats;
            if (!client.stats(&stats, &error))
                SLACKSIM_FATAL("top: stats failed: ", error);
            if (tty)
                std::cout << "\033[2J\033[H";
            renderTopFrame(status, stats);
            std::cout.flush();
            if (frames != 0 && frame + 1 == frames)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(interval));
        }
        return 0;
    }

    if (opts.has("metrics")) {
        std::string text;
        if (!client.metricsText(&text, &error))
            SLACKSIM_FATAL("metrics failed: ", error);
        std::cout << text;
        return 0;
    }

    if (opts.has("trace-fleet")) {
        std::string merged;
        if (!client.fleetTrace(&merged, &error))
            SLACKSIM_FATAL("trace failed: ", error);
        const std::string out = opts.get("trace-out",
                                         "fleet_trace.json");
        if (out == "-") {
            std::cout << merged;
        } else {
            CheckedOfstream os(out, "fleet trace");
            if (os.ok())
                os.stream() << merged;
            if (!os.finish())
                SLACKSIM_FATAL("cannot write ", out);
            std::cout << "fleet trace -> " << out
                      << " (load in ui.perfetto.dev or "
                         "chrome://tracing)\n";
        }
        return 0;
    }

    if (opts.has("status")) {
        // Bare --status (empty value) means the whole queue (id 0).
        const std::uint64_t id = opts.get("status", "").empty()
                                     ? 0
                                     : opts.getUint("status", 0);
        json::Value reply;
        if (!client.status(id, &reply, &error))
            SLACKSIM_FATAL("status failed: ", error);
        // Re-print the jobs array verbatim-ish: one line per job.
        const json::Value &jobs = reply.at("jobs");
        for (std::size_t i = 0; i < jobs.array.size(); ++i) {
            const json::Value &job = jobs.item(i);
            std::cout << "job " << job.at("id").asUint() << " "
                      << job.at("state").asString() << " "
                      << job.at("name").asString() << " ("
                      << job.at("kernel").asString() << ", prio "
                      << job.at("priority").asUint() << ")\n";
        }
        return 0;
    }

    if (opts.has("cancel")) {
        const std::uint64_t id = opts.getUint("cancel", 0);
        if (!client.cancel(id, &error))
            SLACKSIM_FATAL("cancel failed: ", error);
        std::cout << "job " << id << " cancel requested\n";
        return 0;
    }

    if (opts.has("stats")) {
        json::Value reply;
        if (!client.stats(&reply, &error))
            SLACKSIM_FATAL("stats failed: ", error);
        const json::Value &pool = reply.at("pool");
        const json::Value &queue = reply.at("queue");
        std::cout << "pool: " << pool.at("size").asUint()
                  << " threads, " << pool.at("tasks_run").asUint()
                  << " tasks run, "
                  << pool.at("threads_spawned").asUint()
                  << " threads ever spawned\n"
                  << "jobs: " << queue.at("queued").asUint()
                  << " queued, " << queue.at("running").asUint()
                  << " running, " << queue.at("done").asUint()
                  << " done, " << queue.at("cancelled").asUint()
                  << " cancelled, " << queue.at("failed").asUint()
                  << " failed, " << queue.at("timeout").asUint()
                  << " timed out\n";
        return 0;
    }

    if (opts.has("shutdown")) {
        const bool drain = !opts.has("no-drain");
        if (!client.shutdown(drain, &error))
            SLACKSIM_FATAL("shutdown failed: ", error);
        std::cout << (drain ? "draining\n" : "cancelling\n");
        return 0;
    }

    opts.printUsage("slacksim-submit: job server client", kFlags);
    return 1;
}
