/**
 * @file
 * slacksim-submit: client CLI for the slacksim job server.
 *
 * Modes (first matching flag wins):
 *   --spec=FILE [--watch] submit a slacksim.job.v1 spec; with
 *                         --watch (default on) stream the job's state
 *                         changes and save its run report and metrics
 *                         CSV under --out=DIR as they land
 *   --status[=ID]         print the queue (or one job) as JSON
 *   --cancel=ID           cancel a queued or running job
 *   --stats               print server statistics as JSON
 *   --shutdown            graceful shutdown (--no-drain cancels)
 *
 * Exit status: 0 on success (a watched job must end "done"), 1 on
 * protocol/transport errors or a job that ended any other way.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hh"
#include "serve/job_queue.hh"
#include "util/io.hh"
#include "util/logging.hh"
#include "util/options.hh"

namespace {

const std::vector<slacksim::OptionSpec> kFlags = {
    {"socket", "PATH", "daemon socket (default slacksim.sock)"},
    {"spec", "FILE", "submit this slacksim.job.v1 JSON spec"},
    {"watch", "", "stream the submitted job to completion (default)"},
    {"no-watch", "", "submit, print the id, exit"},
    {"out", "DIR",
     "where --watch saves report.json / metrics.csv (default '.')"},
    {"status", "ID", "print queue state (or one job); ID optional"},
    {"cancel", "ID", "cancel a job"},
    {"stats", "", "print server statistics"},
    {"shutdown", "", "ask the daemon to shut down"},
    {"no-drain", "", "with --shutdown: cancel instead of draining"},
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::in | std::ios::binary);
    if (!in.is_open())
        SLACKSIM_FATAL("cannot read spec file ", path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

bool
saveArtifact(const std::string &dir, const char *name,
             const std::string &content)
{
    slacksim::CheckedOfstream os(dir + "/" + name, name);
    if (os.ok())
        os.stream() << content;
    return os.finish();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace slacksim;

    Options opts(argc, argv);
    opts.enforceKnown("slacksim-submit: job server client", kFlags);
    const std::string socket = opts.get("socket", "slacksim.sock");

    serve::Client client(socket);
    if (!client.valid())
        SLACKSIM_FATAL("cannot connect to ", socket,
                       " — is slacksim-serve running?");
    std::string error;

    if (opts.has("spec")) {
        const std::string spec = readFile(opts.get("spec"));
        const std::uint64_t id = client.submit(spec, &error);
        if (id == 0)
            SLACKSIM_FATAL("submit rejected: ", error);
        std::cout << "job " << id << " queued\n";
        if (opts.has("no-watch"))
            return 0;

        const std::string out_dir = opts.get("out", ".");
        std::string end_state;
        const bool watched = client.watch(
            id,
            [&](const json::Value &event) {
                const std::string &kind =
                    event.at("event").asString();
                if (kind == "state") {
                    std::cout << "job " << id << " "
                              << event.at("state").asString() << "\n";
                } else if (kind == "report") {
                    saveArtifact(out_dir, "report.json",
                                 event.at("json").asString());
                } else if (kind == "metrics") {
                    saveArtifact(out_dir, "metrics.csv",
                                 event.at("csv").asString());
                } else if (kind == "end") {
                    end_state = event.at("state").asString();
                }
            },
            &error);
        if (!watched)
            SLACKSIM_FATAL("watch failed: ", error);
        std::cout << "job " << id << " ended: " << end_state << "\n";
        return end_state == "done" ? 0 : 1;
    }

    if (opts.has("status")) {
        // Bare --status (empty value) means the whole queue (id 0).
        const std::uint64_t id = opts.get("status", "").empty()
                                     ? 0
                                     : opts.getUint("status", 0);
        json::Value reply;
        if (!client.status(id, &reply, &error))
            SLACKSIM_FATAL("status failed: ", error);
        // Re-print the jobs array verbatim-ish: one line per job.
        const json::Value &jobs = reply.at("jobs");
        for (std::size_t i = 0; i < jobs.array.size(); ++i) {
            const json::Value &job = jobs.item(i);
            std::cout << "job " << job.at("id").asUint() << " "
                      << job.at("state").asString() << " "
                      << job.at("name").asString() << " ("
                      << job.at("kernel").asString() << ", prio "
                      << job.at("priority").asUint() << ")\n";
        }
        return 0;
    }

    if (opts.has("cancel")) {
        const std::uint64_t id = opts.getUint("cancel", 0);
        if (!client.cancel(id, &error))
            SLACKSIM_FATAL("cancel failed: ", error);
        std::cout << "job " << id << " cancel requested\n";
        return 0;
    }

    if (opts.has("stats")) {
        json::Value reply;
        if (!client.stats(&reply, &error))
            SLACKSIM_FATAL("stats failed: ", error);
        const json::Value &pool = reply.at("pool");
        const json::Value &queue = reply.at("queue");
        std::cout << "pool: " << pool.at("size").asUint()
                  << " threads, " << pool.at("tasks_run").asUint()
                  << " tasks run, "
                  << pool.at("threads_spawned").asUint()
                  << " threads ever spawned\n"
                  << "jobs: " << queue.at("queued").asUint()
                  << " queued, " << queue.at("running").asUint()
                  << " running, " << queue.at("done").asUint()
                  << " done, " << queue.at("cancelled").asUint()
                  << " cancelled, " << queue.at("failed").asUint()
                  << " failed, " << queue.at("timeout").asUint()
                  << " timed out\n";
        return 0;
    }

    if (opts.has("shutdown")) {
        const bool drain = !opts.has("no-drain");
        if (!client.shutdown(drain, &error))
            SLACKSIM_FATAL("shutdown failed: ", error);
        std::cout << (drain ? "draining\n" : "cancelling\n");
        return 0;
    }

    opts.printUsage("slacksim-submit: job server client", kFlags);
    return 1;
}
