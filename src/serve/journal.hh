/**
 * @file
 * Write-ahead journal replay for `slacksim-serve --recover`.
 *
 * The server's event log (telemetry.hh EventLog, server_events.jsonl)
 * doubles as a journal: the `submitted` event carries the full job
 * spec plus idempotency key / attempt counters, and every later
 * lifecycle event updates that job's known fate. Because flush() is
 * fsync'd, the log is exactly as truthful as the daemon's last
 * scheduler pass — which is what recovery needs:
 *
 *   submitted, no started        -> job was queued; re-admit as-is
 *   started, no terminal event   -> job was RUNNING at crash time;
 *                                   retry (attempt+1) up to
 *                                   max_attempts
 *   terminal event present       -> nothing to do
 *
 * readJournal() tolerates a torn final line (the daemon died mid
 * write) by ignoring it — by construction a torn line is the only
 * possible corruption, since every complete line was fsync'd before
 * the action it describes took effect.
 *
 * rotateJournal() moves the consumed log aside (server_events.jsonl.1,
 * .2, ...) so the restarted daemon opens a fresh journal while the
 * crash generations stay on disk for the exactly-once audit (CI joins
 * the generations by idempotency key).
 */

#ifndef SLACKSIM_SERVE_JOURNAL_HH
#define SLACKSIM_SERVE_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace slacksim {
namespace serve {

/** One job reconstructed from the journal. */
struct JournalJob
{
    std::uint64_t id = 0;        //!< id in the *previous* generation
    std::string specJson;        //!< verbatim spec from `submitted`
    std::string idempotencyKey;  //!< "" when the client sent none
    std::uint32_t attempt = 1;   //!< attempts consumed so far
    std::uint32_t maxAttempts = 3;
    bool started = false;        //!< saw `started` (running at crash)
    bool terminal = false;       //!< saw a terminal lifecycle event
};

/** Everything --recover needs from one journal generation. */
struct JournalReplay
{
    std::vector<JournalJob> jobs; //!< in original submission order
    std::uint64_t linesRead = 0;
    std::uint64_t linesSkipped = 0; //!< torn/foreign lines ignored
};

/**
 * Parse @p path into @p out. @return false only when the file cannot
 * be opened — a journal with unparseable lines still replays the
 * lines that survived (linesSkipped counts the rest).
 */
bool readJournal(const std::string &path, JournalReplay *out);

/**
 * Rename @p path to the first free "<path>.<n>" suffix (n >= 1).
 * @return the rotated-to path, or "" when @p path does not exist or
 * the rename failed.
 */
std::string rotateJournal(const std::string &path);

} // namespace serve
} // namespace slacksim

#endif // SLACKSIM_SERVE_JOURNAL_HH
