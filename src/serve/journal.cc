/**
 * @file
 * Journal replay implementation (see journal.hh for the protocol).
 */

#include "serve/journal.hh"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "util/json_parse.hh"

namespace slacksim {
namespace serve {

namespace {

/** Terminal lifecycle events (must mirror job_queue.cc's
 *  terminalEventName — a missed name here would replay a finished
 *  job, breaking exactly-once). */
bool
isTerminalEvent(const std::string &event)
{
    return event == "completed" || event == "failed" ||
           event == "cancelled" || event == "timed_out" ||
           event == "crashed";
}

/** JSON string escaping matching util/json.hh's writeString. */
void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        const auto u = static_cast<unsigned char>(c);
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** Re-encode a parsed spec Value as compact JSON so the replayer can
 *  hand the server the exact object the client submitted. */
void
writeValue(std::ostream &os, const json::Value &v)
{
    switch (v.type) {
      case json::Value::Type::Null: os << "null"; break;
      case json::Value::Type::Bool:
        os << (v.boolean ? "true" : "false");
        break;
      case json::Value::Type::Number: {
        // Journal specs only carry integers (uints/bools/strings);
        // print integral numbers exactly, the rest with %g.
        const auto as_int = static_cast<long long>(v.number);
        if (v.number == static_cast<double>(as_int)) {
            os << as_int;
        } else {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.12g", v.number);
            os << buf;
        }
        break;
      }
      case json::Value::Type::String:
        writeEscaped(os, v.str);
        break;
      case json::Value::Type::Object: {
        os << '{';
        bool first = true;
        for (const auto &[key, val] : v.object) {
            if (!first)
                os << ',';
            first = false;
            writeEscaped(os, key);
            os << ':';
            writeValue(os, val);
        }
        os << '}';
        break;
      }
      case json::Value::Type::Array: {
        os << '[';
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            if (i)
                os << ',';
            writeValue(os, v.array[i]);
        }
        os << ']';
        break;
      }
    }
}

} // namespace

bool
readJournal(const std::string &path, JournalReplay *out)
{
    std::ifstream in(path);
    if (!in.is_open())
        return false;
    // id -> index in out->jobs, preserving submission order.
    std::map<std::uint64_t, std::size_t> byId;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++out->linesRead;
        json::Value doc;
        try {
            doc = json::parse(line);
        } catch (const json::ParseError &) {
            // Torn tail (daemon died mid-write) or foreign garbage;
            // either way the fsync contract says everything before
            // this line is complete, so just count and move on.
            ++out->linesSkipped;
            continue;
        }
        if (!doc.isObject() || !doc.has("event") ||
            !doc.has("job") || !doc.at("event").isString() ||
            !doc.at("job").isNumber()) {
            ++out->linesSkipped; // schema header line lands here
            continue;
        }
        const std::string event = doc.at("event").str;
        const std::uint64_t id =
            static_cast<std::uint64_t>(doc.at("job").number);
        if (event == "submitted") {
            JournalJob job;
            job.id = id;
            if (doc.has("spec") && doc.at("spec").isObject()) {
                std::ostringstream os;
                writeValue(os, doc.at("spec"));
                job.specJson = os.str();
            }
            if (doc.has("idempotency_key") &&
                doc.at("idempotency_key").isString()) {
                job.idempotencyKey = doc.at("idempotency_key").str;
            }
            if (doc.has("attempt") && doc.at("attempt").isNumber()) {
                job.attempt = static_cast<std::uint32_t>(
                    doc.at("attempt").number);
            }
            if (doc.has("max_attempts") &&
                doc.at("max_attempts").isNumber()) {
                job.maxAttempts = static_cast<std::uint32_t>(
                    doc.at("max_attempts").number);
            }
            byId[id] = out->jobs.size();
            out->jobs.push_back(std::move(job));
            continue;
        }
        auto it = byId.find(id);
        if (it == byId.end())
            continue; // heartbeat for a pre-rotation job; ignore
        if (event == "started")
            out->jobs[it->second].started = true;
        else if (isTerminalEvent(event))
            out->jobs[it->second].terminal = true;
    }
    return true;
}

std::string
rotateJournal(const std::string &path)
{
    if (!std::ifstream(path).is_open())
        return "";
    for (int n = 1; n < 10000; ++n) {
        const std::string target = path + "." + std::to_string(n);
        if (std::ifstream(target).is_open())
            continue; // generation already archived
        if (std::rename(path.c_str(), target.c_str()) == 0)
            return target;
        return "";
    }
    return "";
}

} // namespace serve
} // namespace slacksim
