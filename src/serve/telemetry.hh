/**
 * @file
 * Fleet telemetry for the job server: a lock-cheap metrics registry
 * and the structured job-lifecycle event log.
 *
 * The registry is a fixed set of named instruments — monotonic
 * counters, set-style gauges and fixed-bucket duration histograms —
 * owned by the Server and fed from the scheduler loop, the request
 * handlers and the job bodies. Every write is a relaxed atomic
 * (histograms: one bucket increment + one sum accumulate), so
 * recording a sample costs nanoseconds and never takes a lock; reads
 * (the `metrics` op, `stats`, server_report.v2) tolerate the usual
 * cross-field skew of relaxed telemetry. writeExposition() renders
 * the whole registry in the Prometheus text exposition format
 * (`# HELP`/`# TYPE`, `_bucket{le=...}`/`_sum`/`_count` histogram
 * series) so any off-the-shelf scraper can parse the `metrics` op's
 * payload.
 *
 * The EventLog is the durable trail: one JSONL line per lifecycle
 * transition (submitted -> validated -> admitted -> started ->
 * heartbeat* -> completed/failed/cancelled/timed_out), each carrying
 * the job id, a wall-clock timestamp (ms since the Unix epoch, for
 * humans and cross-host joins) and a steady-clock timestamp (ns, for
 * exact intra-server ordering and latency math). record() may be
 * called from any thread — it renders the line under a mutex so the
 * global `seq` matches temporal order — but file I/O happens only in
 * flush()/close(), which the scheduler thread alone calls, keeping
 * the CheckedOfstream single-writer.
 */

#ifndef SLACKSIM_SERVE_TELEMETRY_HH
#define SLACKSIM_SERVE_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace slacksim {

class CheckedOfstream;

namespace serve {

/** Monotonic counter (relaxed; exposed as `_total`). */
class TelemetryCounter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins gauge for point-in-time occupancy values. */
class TelemetryGauge
{
  public:
    void
    set(std::uint64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * Fixed-bucket duration histogram (milliseconds). Buckets are chosen
 * at construction and never change, so observe() is two relaxed
 * atomic ops: bump the first bucket whose upper bound holds the
 * sample (cumulative counts are derived at read time) and accumulate
 * the sum. An implicit +Inf bucket catches everything beyond the last
 * bound.
 */
class DurationHistogram
{
  public:
    /** @param boundsMs strictly increasing upper bounds in ms. */
    explicit DurationHistogram(std::vector<double> boundsMs);

    /** Default latency buckets: 1ms .. 60s, roughly 1-2.5-5 spaced —
     *  wide enough for queue waits under load, fine enough to tell an
     *  instant admission from a backfill delay. */
    static std::vector<double> defaultBoundsMs();

    void observe(double ms);

    std::uint64_t count() const;
    double sum() const;

    /** Bucket upper bounds (without the implicit +Inf). */
    const std::vector<double> &bounds() const { return bounds_; }

    /** Per-bucket (non-cumulative) counts; index bounds_.size() is
     *  the +Inf bucket. */
    std::vector<std::uint64_t> snapshot() const;

    /**
     * Approximate percentile (@p p in [0,100]) from the bucket
     * counts: the upper bound of the bucket holding the rank, with
     * the last finite bound standing in for +Inf. 0 when empty.
     */
    double percentile(double p) const;

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<std::uint64_t> countAll_{0};
    std::atomic<double> sumMs_{0.0};
};

/**
 * The server's instrument set. Counters are fed at the event source;
 * gauges are refreshed by the owner right before a scrape (they
 * describe "now", so computing them at read time is both cheaper and
 * more honest than keeping them hot).
 */
struct ServerTelemetry
{
    ServerTelemetry();

    // Counters.
    TelemetryCounter jobsSubmitted;
    TelemetryCounter jobsDone;
    TelemetryCounter jobsFailed;
    TelemetryCounter jobsCancelled;
    TelemetryCounter jobsTimedOut;
    /** Scheduler passes that left at least one queued job unadmitted
     *  for lack of thread/memory budget — admission pressure. */
    TelemetryCounter admissionDenials;
    /** Jobs started ahead of a higher-ranked job that did not fit. */
    TelemetryCounter admissionBackfills;
    TelemetryCounter jobFaults;       //!< fault injections across jobs
    TelemetryCounter jobDegradations; //!< recovery-ladder demotions
    TelemetryCounter heartbeats;      //!< heartbeat events published
    TelemetryCounter jobsCrashed;     //!< isolated children dead by signal
    TelemetryCounter jobsRetried;     //!< recovery re-runs of crashed-at jobs
    TelemetryCounter jobsRecovered;   //!< jobs re-admitted from the journal

    // Gauges (set by the owner before rendering).
    TelemetryGauge jobsQueued;
    TelemetryGauge jobsRunning;
    TelemetryGauge poolThreadsTotal;
    TelemetryGauge poolThreadsBusy;
    TelemetryGauge budgetThreadsReserved;
    TelemetryGauge budgetMemReservedMb;
    TelemetryGauge budgetMemTotalMb;

    // Histograms.
    DurationHistogram queueWaitMs;
    DurationHistogram runDurationMs;
    /** fork-to-ready latency of process-isolated children (ms);
     *  sub-ms buckets because the spawn is usually well under 1ms. */
    DurationHistogram spawnOverheadMs;
    /** job launch (fork, for isolated jobs) to the first RunProgress
     *  heartbeat the scheduler observed (ms) — the missing half of
     *  the isolation-overhead story: how long until a job is not just
     *  alive but visibly simulating. Granularity is the scheduler's
     *  heartbeat poll (~50ms). */
    DurationHistogram spawnToFirstHeartbeatMs;

    /**
     * Count one child crash under its signal name. The per-signal
     * breakdown backs the `slacksim_jobs_crashed_total{signal=}`
     * family; jobsCrashed is bumped here too so terminalTotal()
     * stays one call site.
     */
    void recordCrash(int signal);

    /** Snapshot of the per-signal crash counts (name -> count). */
    std::vector<std::pair<std::string, std::uint64_t>>
    crashBySignal() const;

    /** Sum of the terminal-status counters (coherence invariant:
     *  equals jobsSubmitted once the queue drains). */
    std::uint64_t terminalTotal() const;

    /** Render every instrument in Prometheus text exposition format
     *  (metric prefix `slacksim_`). */
    void writeExposition(std::ostream &os) const;

  private:
    /** Crash signals are rare and unbounded in name space, so the map
     *  is mutex-guarded instead of pre-allocated like the atomics. */
    mutable std::mutex crashMu_;
    std::map<std::string, std::uint64_t> crashBySignal_;
};

/** @return stable name ("SIGSEGV", ...) for a crash signal; falls
 *  back to "SIG<n>" for signals without a well-known name. */
std::string signalName(int signal);

/** Structured job-lifecycle log (schema slacksim.server_events.v1). */
class EventLog
{
  public:
    static constexpr const char *schema = "slacksim.server_events.v1";

    EventLog();
    ~EventLog();

    /** Set the output path. No I/O yet — the file is created on the
     *  first flush() so it belongs to the scheduler thread. */
    void open(const std::string &path);

    /**
     * Append one event for @p jobId. Callable from any thread: the
     * line (seq, timestamps, rendered fields) is built under the log
     * mutex, file I/O waits for the scheduler's flush(). @p fieldsJson
     * is either empty or a string of extra pre-rendered JSON members
     * (`,"key":value...`) spliced into the object.
     */
    void record(std::uint64_t jobId, const char *event,
                const std::string &fieldsJson = {});

    /**
     * Write pending lines to the file and fsync them — the event log
     * is the server's write-ahead journal, so a line handed to
     * flush() must survive `kill -9` + power loss before the action
     * it describes is considered durable. Scheduler thread only.
     */
    void flush();

    /** Final flush + close. Scheduler thread (or after it joined). */
    void close();

    std::uint64_t recorded() const;

    /** Pending + written line count is internal; tests use recorded()
     *  plus the file contents. */
    const std::string &path() const { return path_; }

  private:
    mutable std::mutex mu_;
    std::string path_;
    std::vector<std::string> pending_;
    std::unique_ptr<CheckedOfstream> out_;
    std::uint64_t seq_ = 0;
    bool headerWritten_ = false;
    bool closed_ = false;
};

/** `,"key":"value"` fragment helper for EventLog::record fields. */
std::string eventField(const char *key, const std::string &value);
std::string eventField(const char *key, std::uint64_t value);
std::string eventFieldDouble(const char *key, double value);
/** `,"key":<json>` fragment: @p rawJson is spliced verbatim (must be
 *  a complete JSON value — the journal uses it to embed job specs). */
std::string eventFieldRaw(const char *key, const std::string &rawJson);

} // namespace serve
} // namespace slacksim

#endif // SLACKSIM_SERVE_TELEMETRY_HH
