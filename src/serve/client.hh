/**
 * @file
 * Thin client for the slacksim job server.
 *
 * Wraps one socket connection and the newline-JSON protocol
 * (serve/server.hh) so the slacksim-submit CLI and the end-to-end
 * tests speak the wire format through one code path. Every call is
 * synchronous; watch() streams events to a callback until the job's
 * end event (or a transport error).
 *
 * Transport failures retry with capped exponential backoff and
 * seeded jitter (RetryPolicy): the daemon may be mid-restart after a
 * crash, and `--recover` deployments expect clients to ride through
 * the gap. Only transport errors retry — an {"ok": false} protocol
 * reply is a definitive answer, retrying it would double-submit.
 * For the ambiguous window (request sent, connection died before the
 * reply) submit() carries a client-generated idempotency key, so a
 * retried submit maps onto the already-accepted job instead of
 * double-running it.
 */

#ifndef SLACKSIM_SERVE_CLIENT_HH
#define SLACKSIM_SERVE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "util/json_parse.hh"
#include "util/uds.hh"

namespace slacksim {
namespace serve {

/** Connect/request retry schedule (transport failures only). */
struct RetryPolicy
{
    /** Total tries (1 = no retry, the pre-crash-proofing behavior). */
    std::uint32_t attempts = 1;
    std::uint64_t baseMs = 100; //!< first backoff delay
    std::uint64_t maxMs = 5000; //!< backoff cap
    /** Jitter seed; each retry sleeps backoff/2 + rand(backoff/2). */
    std::uint64_t jitterSeed = 1;
};

class Client
{
  public:
    /** Connect to the daemon at @p socketPath; check valid().
     *  @p policy governs connect and request retries. */
    explicit Client(const std::string &socketPath,
                    RetryPolicy policy = RetryPolicy{});

    bool valid() const { return conn_.valid(); }

    /**
     * Send one request frame and decode one reply, retrying
     * transport failures (dead socket, closed connection, timeout)
     * per the policy with a fresh connection each try. @return false
     * on exhausted retries or an {"ok": false} reply; @p *error then
     * holds the reason. @p reply (nullable) receives the full decoded
     * reply object on success.
     */
    bool request(const std::string &frame, json::Value *reply,
                 std::string *error);

    /**
     * Submit a raw slacksim.job.v1 spec object (JSON text).
     * @p idempotencyKey ("" = none) rides in the frame so a retry
     * after an ambiguous failure cannot double-run the job; when the
     * server matched an existing key, @p *duplicate (nullable) is
     * set. @return the job id, or 0 with @p *error set.
     */
    std::uint64_t submit(const std::string &specJson,
                         std::string *error,
                         const std::string &idempotencyKey = "",
                         bool *duplicate = nullptr);

    bool cancel(std::uint64_t id, std::string *error);

    /** One status reply ({"jobs": [...]}); id 0 = all jobs. */
    bool status(std::uint64_t id, json::Value *reply,
                std::string *error);

    bool stats(json::Value *reply, std::string *error);

    /** Fetch the server's metrics in Prometheus text exposition
     *  format (`metrics` op). @p *text receives the payload. */
    bool metricsText(std::string *text, std::string *error);

    /** Fetch the merged fleet timeline (`trace` op) as Chrome-trace
     *  JSON. @p *json receives the document (serve/fleet_trace.hh). */
    bool fleetTrace(std::string *json, std::string *error);

    bool shutdown(bool drain, std::string *error);

    /**
     * Stream a job's watch events ("state", "report", "metrics",
     * "end") to @p onEvent until the end event. On a transport drop
     * the stream reconnects (per the retry policy) and resumes from
     * the last state seq it saw — already-delivered state events are
     * not replayed. The watch op consumes the connection; this
     * Client is not reusable afterwards.
     * @return true when the end event arrived.
     */
    bool watch(std::uint64_t id,
               const std::function<void(const json::Value &)> &onEvent,
               std::string *error);

  private:
    /** (Re)establish conn_, retrying per policy. */
    bool ensureConnected(std::string *error);
    /** Backoff + jitter sleep before retry number @p attempt. */
    void backoff(std::uint32_t attempt);

    std::string socketPath_;
    RetryPolicy policy_;
    std::uint64_t jitterState_;
    UdsConn conn_;
};

} // namespace serve
} // namespace slacksim

#endif // SLACKSIM_SERVE_CLIENT_HH
