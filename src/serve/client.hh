/**
 * @file
 * Thin client for the slacksim job server.
 *
 * Wraps one socket connection and the newline-JSON protocol
 * (serve/server.hh) so the slacksim-submit CLI and the end-to-end
 * tests speak the wire format through one code path. Every call is
 * synchronous; watch() streams events to a callback until the job's
 * end event (or a transport error).
 */

#ifndef SLACKSIM_SERVE_CLIENT_HH
#define SLACKSIM_SERVE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "util/json_parse.hh"
#include "util/uds.hh"

namespace slacksim {
namespace serve {

class Client
{
  public:
    /** Connect to the daemon at @p socketPath; check valid(). */
    explicit Client(const std::string &socketPath);

    bool valid() const { return conn_.valid(); }

    /**
     * Send one request frame and decode one reply. @return false on
     * transport failure or an {"ok": false} reply; @p *error then
     * holds the reason. @p reply (nullable) receives the full decoded
     * reply object on success.
     */
    bool request(const std::string &frame, json::Value *reply,
                 std::string *error);

    /** Submit a raw slacksim.job.v1 spec object (JSON text).
     *  @return the job id, or 0 with @p *error set. */
    std::uint64_t submit(const std::string &specJson,
                         std::string *error);

    bool cancel(std::uint64_t id, std::string *error);

    /** One status reply ({"jobs": [...]}); id 0 = all jobs. */
    bool status(std::uint64_t id, json::Value *reply,
                std::string *error);

    bool stats(json::Value *reply, std::string *error);

    /** Fetch the server's metrics in Prometheus text exposition
     *  format (`metrics` op). @p *text receives the payload. */
    bool metricsText(std::string *text, std::string *error);

    bool shutdown(bool drain, std::string *error);

    /**
     * Stream a job's watch events ("state", "report", "metrics",
     * "end") to @p onEvent until the end event. The watch op consumes
     * the connection; this Client is not reusable afterwards.
     * @return true when the end event arrived.
     */
    bool watch(std::uint64_t id,
               const std::function<void(const json::Value &)> &onEvent,
               std::string *error);

  private:
    UdsConn conn_;
};

} // namespace serve
} // namespace slacksim

#endif // SLACKSIM_SERVE_CLIENT_HH
