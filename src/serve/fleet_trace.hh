/**
 * @file
 * Fleet-trace merger: one Perfetto-loadable timeline for the whole
 * daemon.
 *
 * A single job crosses four execution domains — client, daemon
 * scheduler, forked supervised child, engine worker threads — and
 * after a batch the evidence is scattered: lifecycle events in
 * `server_events.jsonl` (server steady/wall clocks), per-job Chrome
 * traces (engine-relative microseconds, real child pid), folded
 * profiles (no timestamps at all) and run reports (the per-process
 * clock anchor). The merger joins all of it on one wall-epoch
 * microsecond axis:
 *
 *  - server/scheduler/supervisor spans are derived from the journal's
 *    lifecycle events, aligned through the journal header's paired
 *    wall_ms/steady_ns anchor, and rendered on one track per job
 *    (pid = the daemon, tid = job id);
 *  - each job's Chrome trace is spliced in verbatim except that every
 *    timestamp is shifted by that child's clock anchor (recorded in
 *    the trace file's metadata object at session begin) and every
 *    event gains job_id/trace_id args, so engine tracks land on the
 *    same axis under the child's real pid;
 *  - the job's folded profile rides along as args on its `run` span
 *    (phase totals have no time axis of their own).
 *
 * Served by the `trace` wire op and `slacksim-submit --trace-fleet`.
 */

#ifndef SLACKSIM_SERVE_FLEET_TRACE_HH
#define SLACKSIM_SERVE_FLEET_TRACE_HH

#include <iosfwd>
#include <string>

namespace slacksim {
namespace serve {

/**
 * Merge everything under @p outRoot (server_events.jsonl plus the
 * per-job artifact directories) into one Chrome-trace JSON object on
 * @p os. Jobs still running contribute their server-side spans only.
 * @return false (with @p error set) when the journal is missing or
 * unreadable; partial per-job artifacts are skipped, never fatal.
 */
bool writeFleetTrace(std::ostream &os, const std::string &outRoot,
                     std::string *error);

} // namespace serve
} // namespace slacksim

#endif // SLACKSIM_SERVE_FLEET_TRACE_HH
