/**
 * @file
 * JobQueue implementation.
 */

#include "serve/job_queue.hh"

#include "obs/span.hh"
#include "util/logging.hh"

namespace slacksim {
namespace serve {

namespace {

double
msBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/** Lifecycle event name for a terminal state. */
const char *
terminalEventName(JobState state)
{
    switch (state) {
      case JobState::Done: return "completed";
      case JobState::Failed: return "failed";
      case JobState::Cancelled: return "cancelled";
      case JobState::TimedOut: return "timed_out";
      case JobState::Crashed: return "crashed";
      default: return "?";
    }
}

} // namespace

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
      case JobState::Cancelled: return "cancelled";
      case JobState::TimedOut: return "timeout";
      case JobState::Crashed: return "crashed";
    }
    return "?";
}

bool
isTerminal(JobState state)
{
    return state != JobState::Queued && state != JobState::Running;
}

void
JobQueue::setTelemetry(ServerTelemetry *telemetry, EventLog *events)
{
    std::lock_guard<std::mutex> lock(mu_);
    telemetry_ = telemetry;
    events_ = events;
}

std::uint64_t
JobQueue::submit(JobSpec spec, const std::string &idempotencyKey,
                 std::uint32_t attempt, bool *duplicate)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (duplicate)
        *duplicate = false;
    if (!idempotencyKey.empty()) {
        auto hit = keyToId_.find(idempotencyKey);
        if (hit != keyToId_.end()) {
            // Resubmission after an ambiguous failure: same key means
            // same intent, so hand back the existing job instead of
            // double-running it. Terminal jobs count too — the client
            // can fetch the result it never saw.
            if (duplicate)
                *duplicate = true;
            return hit->second;
        }
    }
    const std::uint64_t id = nextId_++;
    auto job = std::make_unique<Job>();
    job->id = id;
    job->spec = std::move(spec);
    if (job->spec.name.empty())
        job->spec.name = "job-" + std::to_string(id);
    job->idempotencyKey = idempotencyKey;
    job->attempt = attempt == 0 ? 1 : attempt;
    job->submittedAt = std::chrono::steady_clock::now();
    // Distributed-trace identity: honor a client-minted id, mint one
    // otherwise, and open the server-side root span. The id is
    // written back into the spec BEFORE the journal record below so
    // crash recovery replays the same identity.
    job->traceId = job->spec.traceId.empty() ? obs::mintTraceId()
                                             : job->spec.traceId;
    job->spec.traceId = job->traceId;
    job->rootSpanId = obs::mintSpanId();
    if (!idempotencyKey.empty())
        keyToId_.emplace(idempotencyKey, id);
    if (telemetry_)
        telemetry_->jobsSubmitted.add();
    if (events_) {
        // The submitted event doubles as the write-ahead journal
        // record: the full spec rides along so --recover can rebuild
        // the job from the log alone.
        std::string fields =
            eventField("name", job->spec.name) +
            eventField("kernel", job->spec.kernel) +
            eventField("priority",
                       std::uint64_t{job->spec.priority}) +
            eventField("attempt", std::uint64_t{job->attempt}) +
            eventField("max_attempts",
                       std::uint64_t{job->spec.maxAttempts});
        if (!job->idempotencyKey.empty())
            fields += eventField("idempotency_key",
                                 job->idempotencyKey);
        fields += eventField("trace_id", job->traceId);
        fields += eventField("span_id",
                             obs::spanIdHex(job->rootSpanId));
        fields += eventFieldRaw("spec", job->spec.toJson());
        events_->record(id, "submitted", fields);
        // The queue only accepts pre-validated specs (JobSpec::parse
        // gates the submit op), so the validation event is recorded
        // here, under the same lock, keeping the lifecycle strictly
        // ordered even when the scheduler admits instantly.
        events_->record(id, "validated");
    }
    jobs_.emplace(id, std::move(job));
    cv_.notify_all();
    return id;
}

Job *
JobQueue::admitNext(std::uint32_t freeThreads,
                    std::uint64_t freeMemMb)
{
    std::lock_guard<std::mutex> lock(mu_);
    Job *best = nullptr;
    // Highest-ranked queued job that did NOT fit the budget; used to
    // classify the admission as a backfill (telemetry only).
    const Job *skipped = nullptr;
    // jobs_ iterates in id (submission) order, so within a priority
    // the first fitting candidate seen is the FIFO head; across
    // priorities a higher level always wins. Non-fitting jobs are
    // skipped — the backfill policy in the header comment.
    for (auto &[id, job] : jobs_) {
        (void)id;
        if (job->state != JobState::Queued)
            continue;
        if (job->spec.hostThreads() > freeThreads ||
            job->spec.memEstimateMb() > freeMemMb) {
            if (!skipped || job->spec.priority > skipped->spec.priority)
                skipped = job.get();
            continue;
        }
        if (!best || job->spec.priority > best->spec.priority)
            best = job.get();
    }
    if (best) {
        best->state = JobState::Running;
        ++best->stateSeq;
        best->startedAt = std::chrono::steady_clock::now();
        const double wait_ms =
            msBetween(best->submittedAt, best->startedAt);
        // A skipped job outranks the admitted one when it has higher
        // priority or the same priority and an earlier id — admitting
        // past it is a backfill.
        const bool backfill =
            skipped && (skipped->spec.priority > best->spec.priority ||
                        (skipped->spec.priority ==
                             best->spec.priority &&
                         skipped->id < best->id));
        if (telemetry_) {
            telemetry_->queueWaitMs.observe(wait_ms);
            if (backfill)
                telemetry_->admissionBackfills.add();
        }
        if (events_) {
            events_->record(best->id, "admitted",
                            eventFieldDouble("queue_ms", wait_ms) +
                                eventField("backfill",
                                           std::uint64_t{backfill}) +
                                eventField("trace_id", best->traceId));
        }
        cv_.notify_all();
    } else if (skipped && telemetry_) {
        // Nothing fit but work was waiting: admission pressure.
        telemetry_->admissionDenials.add();
    }
    return best;
}

void
JobQueue::retireLocked(Job &job, JobState state,
                       const std::string &error)
{
    if (state == JobState::Cancelled && job.timedOut)
        job.state = JobState::TimedOut;
    else
        job.state = state;
    ++job.stateSeq;
    job.error = error;
    job.endedAt = std::chrono::steady_clock::now();
    const bool ran = job.startedAt.time_since_epoch().count() != 0;
    const double run_ms =
        ran ? msBetween(job.startedAt, job.endedAt) : 0.0;
    if (telemetry_) {
        if (ran)
            telemetry_->runDurationMs.observe(run_ms);
        switch (job.state) {
          case JobState::Done: telemetry_->jobsDone.add(); break;
          case JobState::Failed: telemetry_->jobsFailed.add(); break;
          case JobState::Cancelled:
            telemetry_->jobsCancelled.add();
            break;
          case JobState::TimedOut:
            telemetry_->jobsTimedOut.add();
            break;
          case JobState::Crashed:
            telemetry_->recordCrash(job.crashSignal);
            break;
          default: break;
        }
    }
    if (events_) {
        std::string fields = eventFieldDouble("run_ms", run_ms);
        if (job.state == JobState::Crashed) {
            fields += eventField("signal",
                                 std::uint64_t{static_cast<unsigned>(
                                     job.crashSignal)});
            fields += eventField("signal_name",
                                 signalName(job.crashSignal));
        }
        if (job.attempt > 1)
            fields += eventField("attempt",
                                 std::uint64_t{job.attempt});
        if (!job.error.empty())
            fields += eventField("error", job.error);
        fields += eventField("trace_id", job.traceId);
        events_->record(job.id, terminalEventName(job.state), fields);
    }
}

void
JobQueue::markFinished(std::uint64_t id, JobState state,
                       const std::string &error)
{
    SLACKSIM_ASSERT(isTerminal(state),
                    "markFinished with live state");
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    SLACKSIM_ASSERT(it != jobs_.end(), "markFinished: unknown job");
    Job &job = *it->second;
    if (isTerminal(job.state))
        return; // queued-cancel raced with the scheduler; keep first
    retireLocked(job, state, error);
    cv_.notify_all();
}

void
JobQueue::markCrashed(std::uint64_t id, int signal,
                      const std::string &error)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    SLACKSIM_ASSERT(it != jobs_.end(), "markCrashed: unknown job");
    Job &job = *it->second;
    if (isTerminal(job.state))
        return;
    job.crashSignal = signal;
    retireLocked(job, JobState::Crashed, error);
    cv_.notify_all();
}

void
JobQueue::recordResult(std::uint64_t id, std::uint64_t committedUops,
                       std::uint64_t simulatedCycles)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return;
    it->second->committedUops = committedUops;
    it->second->simulatedCycles = simulatedCycles;
}

void
JobQueue::setOutDir(std::uint64_t id, const std::string &dir)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it != jobs_.end())
        it->second->outDir = dir;
}

bool
JobQueue::requestCancel(std::uint64_t id, std::string *error)
{
    Job *running = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = jobs_.find(id);
        if (it == jobs_.end()) {
            *error = "no such job: " + std::to_string(id);
            return false;
        }
        Job &job = *it->second;
        if (isTerminal(job.state)) {
            *error = "job " + std::to_string(id) + " already " +
                     jobStateName(job.state);
            return false;
        }
        if (job.state == JobState::Queued) {
            retireLocked(job, JobState::Cancelled, "");
            cv_.notify_all();
            return true;
        }
        running = &job;
    }
    // Fire outside the queue lock: the token runs its wakers inline
    // and those touch engine-side synchronization.
    running->cancel->requestCancel();
    return true;
}

std::uint32_t
JobQueue::checkDeadlines()
{
    std::vector<CancelToken *> fire;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto now = std::chrono::steady_clock::now();
        for (auto &[id, job] : jobs_) {
            (void)id;
            if (job->state != JobState::Running ||
                job->spec.timeoutMs == 0 || job->timedOut) {
                continue;
            }
            if (msBetween(job->startedAt, now) >=
                static_cast<double>(job->spec.timeoutMs)) {
                job->timedOut = true;
                fire.push_back(job->cancel.get());
            }
        }
    }
    for (CancelToken *token : fire)
        token->requestCancel();
    return static_cast<std::uint32_t>(fire.size());
}

void
JobQueue::cancelQueued()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[id, job] : jobs_) {
        (void)id;
        if (job->state == JobState::Queued)
            retireLocked(*job, JobState::Cancelled, "");
    }
    cv_.notify_all();
}

void
JobQueue::cancelRunning()
{
    std::vector<CancelToken *> fire;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &[id, job] : jobs_) {
            (void)id;
            if (job->state == JobState::Running)
                fire.push_back(job->cancel.get());
        }
    }
    for (CancelToken *token : fire)
        token->requestCancel();
}

Job *
JobQueue::get(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second.get();
}

JobView
JobQueue::viewLocked(const Job &job) const
{
    const auto now = std::chrono::steady_clock::now();
    JobView v;
    v.id = job.id;
    v.name = job.spec.name;
    v.kernel = job.spec.kernel;
    v.state = job.state;
    v.priority = job.spec.priority;
    v.hostThreads = job.spec.hostThreads();
    v.error = job.error;
    v.outDir = job.outDir;
    v.timedOut = job.timedOut;
    v.committedUops = job.committedUops;
    v.simulatedCycles = job.simulatedCycles;
    v.attempt = job.attempt;
    v.crashSignal = job.crashSignal;
    v.stateSeq = job.stateSeq;
    v.scheme = job.spec.scheme;
    v.progress = job.progress->read();
    switch (job.state) {
      case JobState::Queued:
        v.queueMs = msBetween(job.submittedAt, now);
        break;
      case JobState::Running:
        v.queueMs = msBetween(job.submittedAt, job.startedAt);
        v.runMs = msBetween(job.startedAt, now);
        break;
      default:
        // Queued-cancelled jobs never started; report zero run time.
        if (job.startedAt.time_since_epoch().count() != 0) {
            v.queueMs = msBetween(job.submittedAt, job.startedAt);
            v.runMs = msBetween(job.startedAt, job.endedAt);
        } else {
            v.queueMs = msBetween(job.submittedAt, job.endedAt);
        }
        break;
    }
    return v;
}

std::vector<JobView>
JobQueue::snapshot(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<JobView> out;
    if (id != 0) {
        auto it = jobs_.find(id);
        if (it != jobs_.end())
            out.push_back(viewLocked(*it->second));
        return out;
    }
    out.reserve(jobs_.size());
    for (const auto &[jid, job] : jobs_) {
        (void)jid;
        out.push_back(viewLocked(*job));
    }
    return out;
}

QueueStats
JobQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    QueueStats s;
    s.submitted = jobs_.size();
    for (const auto &[id, job] : jobs_) {
        (void)id;
        switch (job->state) {
          case JobState::Queued: ++s.queued; break;
          case JobState::Running: ++s.running; break;
          case JobState::Done: ++s.done; break;
          case JobState::Failed: ++s.failed; break;
          case JobState::Cancelled: ++s.cancelled; break;
          case JobState::TimedOut: ++s.timedOut; break;
          case JobState::Crashed: ++s.crashed; break;
        }
    }
    return s;
}

bool
JobQueue::idle() const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[id, job] : jobs_) {
        (void)id;
        if (!isTerminal(job->state))
            return false;
    }
    return true;
}

void
JobQueue::waitChanged(int timeoutMs)
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::milliseconds(timeoutMs));
}

} // namespace serve
} // namespace slacksim
