/**
 * @file
 * The slacksim job server: simulation-as-a-service over a Unix
 * domain socket.
 *
 * One daemon process hosts many simulations. Clients submit
 * `slacksim.job.v1` specs (serve/job_spec.hh) as newline-delimited
 * JSON frames; the server queues them (serve/job_queue.hh), admits
 * them under a global host-thread and memory budget, and runs each on
 * the persistent WorkerPool (serve/worker_pool.hh) — the engines'
 * worker threads are borrowed from the pool via EngineConfig::runner,
 * so thousands of jobs reuse one set of host threads instead of
 * paying a spawn/join per run.
 *
 * Wire protocol (one JSON object per line, both directions):
 *
 *   -> {"op": "submit", "spec": { ...slacksim.job.v1... }}
 *   <- {"ok": true, "id": 7}
 *   -> {"op": "status"}            (or {"op":"status","id":7})
 *   <- {"ok": true, "jobs": [{"id":7,"state":"running",...}, ...]}
 *   -> {"op": "cancel", "id": 7}
 *   <- {"ok": true}
 *   -> {"op": "watch", "id": 7}
 *   <- {"ok":true,"event":"state","state":"queued"}     (on change)
 *   <- {"ok":true,"event":"state","state":"running"}
 *   <- {"ok":true,"event":"progress","epochs":3,...}    (~1 Hz live)
 *   <- {"ok":true,"event":"report","json":"{...}"}      (terminal)
 *   <- {"ok":true,"event":"metrics","csv":"..."}
 *   <- {"ok":true,"event":"end","state":"done"}
 *   -> {"op": "stats"}
 *   <- {"ok": true, "pool": {...}, "queue": {...}, ...}
 *   -> {"op": "metrics"}
 *   <- {"ok": true, "text": "# HELP slacksim_... exposition ..."}
 *   -> {"op": "trace"}
 *   <- {"ok": true, "json": "{...merged fleet Chrome trace...}"}
 *   -> {"op": "shutdown", "drain": true}
 *   <- {"ok": true}
 *   Any failure: {"ok": false, "error": "one readable line"}
 *
 * Threading: the caller's thread runs the accept loop (run());
 * each connection gets a handler thread; one scheduler thread owns
 * admission, budget accounting, deadline checks and job reaping. Job
 * bodies execute as pool tasks. Shutdown (signal or shutdown op)
 * stops accepting, then either drains the queue against a deadline or
 * cancels everything, and always flushes per-job artifacts (cancelled
 * jobs still write their run report, marked "status": "cancelled").
 */

#ifndef SLACKSIM_SERVE_SERVER_HH
#define SLACKSIM_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_plan.hh"
#include "serve/job_queue.hh"
#include "serve/supervisor.hh"
#include "serve/telemetry.hh"
#include "serve/worker_pool.hh"
#include "util/uds.hh"

namespace slacksim {
namespace serve {

class Server
{
  public:
    struct Options
    {
        std::string socketPath = "slacksim.sock";
        /** Per-job output directories live under here. */
        std::string outRoot = "serve-out";
        /** Global host-thread budget = worker pool size. 0 picks the
         *  host's hardware concurrency (min 8: a job needs manager +
         *  cores threads to make progress). */
        std::uint32_t threadBudget = 0;
        /** Global admission memory budget (MiB). */
        std::uint64_t memBudgetMb = 16384;
        /** Drain deadline on graceful shutdown; running/queued jobs
         *  still live when it expires are cancelled. */
        std::uint64_t drainDeadlineMs = 60000;
        /** Where jobs whose spec leaves `isolation` empty execute:
         *  "inline" (pool thread, zero overhead — the library/test
         *  default) or "process" (forked supervised child — the
         *  daemon default; one crashing job cannot take the fleet
         *  down). */
        std::string defaultIsolation = "inline";
        /** Cancel-to-SIGKILL escalation window for isolated jobs. */
        std::uint64_t killGraceMs = 5000;
        /** Replay outRoot/server_events.jsonl at startup: re-admit
         *  journaled jobs that never reached a terminal state (see
         *  serve/journal.hh). */
        bool recover = false;
        /** Daemon-side fault plan (fault_plan.hh grammar) for
         *  recovery drills — daemon-kill-window lives here, never in
         *  client specs. */
        std::string faultSpec;
        std::uint64_t faultSeed = 1;
    };

    explicit Server(Options opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Open the socket and start the scheduler. @return false when
     *  the socket cannot be bound. */
    bool start();

    /**
     * Accept loop; returns after shutdown completes. @p stopSignal
     * (nullable) is polled between accepts — a nonzero value behaves
     * like a shutdown op with drain=true (the SIGINT/SIGTERM hook).
     */
    void run(const std::atomic<int> *stopSignal = nullptr);

    /** Stop accepting and begin shutdown; run() then drains (or
     *  cancels) and returns. Callable from any thread. */
    void requestShutdown(bool drain);

    /** Effective thread budget (pool size). */
    std::uint32_t threadBudget() const { return pool_->size(); }

    const WorkerPool &pool() const { return *pool_; }
    JobQueue &queue() { return queue_; }
    const Options &options() const { return opts_; }
    const ServerTelemetry &telemetry() const { return telemetry_; }
    const EventLog &events() const { return events_; }

    /** Emit the server-level report (pool reuse proof, queue
     *  outcome counters, budgets, telemetry summary, isolation and
     *  recovery sections) as JSON — schema
     *  slacksim.server_report.v4. */
    void writeServerReport(std::ostream &os) const;

  private:
    struct RunningJob
    {
        std::uint64_t id = 0;
        std::uint32_t threads = 0;
        std::uint64_t memMb = 0;
        std::unique_ptr<TaskRunner::Handle> handle;
        /** Last heartbeat event for this job (scheduler-only). */
        std::chrono::steady_clock::time_point lastBeat;
        /** When startJob handed the body to the pool; the base of
         *  spawn_to_first_heartbeat_ms. */
        std::chrono::steady_clock::time_point launchedAt;
        /** First progress heartbeat already observed (scheduler). */
        bool firstBeatSeen = false;
    };

    void schedulerMain();
    /** Replay the previous generation's journal (start() helper). */
    void recoverFromJournal();
    /** Join handles of terminal jobs, release their budget. */
    void reapFinished(bool joinAll);
    void startJob(Job *job);
    void jobBody(std::uint64_t id, const SimConfig &config);
    /** Process-isolated job body: supervise a forked child and map
     *  its verdict onto the queue (Crashed jobs leave the daemon and
     *  every sibling running). */
    void jobBodyIsolated(std::uint64_t id, const SimConfig &config,
                         const IsolationLimits &limits);
    /** Effective isolation mode for @p spec ("inline"/"process"). */
    std::string effectiveIsolation(const JobSpec &spec) const;
    /** Emit a heartbeat event (~1 Hz per job) for every Running job
     *  whose progress mailbox has data. Scheduler thread only. */
    void publishHeartbeats();
    /** Recompute the occupancy gauges from the queue, the pool and
     *  the budget reservations. Called right before any scrape
     *  (metrics op, stats op, server report). */
    void refreshGauges() const;

    void handleConn(UdsConn conn);
    /** @return false when the connection should close. */
    bool handleRequest(UdsConn &conn, const std::string &line);
    void handleWatch(UdsConn &conn, std::uint64_t id,
                     std::uint64_t fromSeq);
    bool sendError(UdsConn &conn, const std::string &error);

    Options opts_;
    std::unique_ptr<WorkerPool> pool_;
    JobQueue queue_;
    UdsListener listener_;

    std::atomic<bool> shutdownRequested_{false};
    std::atomic<bool> drain_{true};
    std::atomic<bool> handlersStop_{false};
    std::atomic<bool> schedulerStop_{false};

    /** Budget accounting; written by the scheduler thread only, read
     *  by handler threads for gauge scrapes (hence atomic). */
    std::atomic<std::uint32_t> reservedThreads_{0};
    std::atomic<std::uint64_t> reservedMemMb_{0};
    std::vector<RunningJob> running_;

    /** Fleet instruments; mutable so const scrapers can refresh the
     *  gauges (atomic writes, logically read-side). */
    mutable ServerTelemetry telemetry_;
    /** Lifecycle event log (outRoot/server_events.jsonl). */
    EventLog events_;

    /** Daemon-side fault plan (recovery drills); nullable. Fired by
     *  the scheduler at job-start ordinals, not thread-installed. */
    std::unique_ptr<fault::FaultPlan> daemonPlan_;
    std::atomic<std::uint64_t> jobsStarted_{0};

    /** Recovery bookkeeping (start()-time, read-only afterwards). */
    std::uint64_t recoveredCount_ = 0;
    std::uint64_t retriedCount_ = 0;
    std::string rotatedJournal_;

    std::thread scheduler_;
    std::mutex handlersMu_;
    std::vector<std::thread> handlers_;
    bool started_ = false;
};

} // namespace serve
} // namespace slacksim

#endif // SLACKSIM_SERVE_SERVER_HH
