/**
 * @file
 * slacksim-serve: the simulation-as-a-service daemon.
 *
 * Opens a Unix domain socket, accepts slacksim.job.v1 submissions,
 * and runs them on a persistent worker pool under a global host-
 * thread and memory budget (see serve/server.hh for the protocol).
 * SIGINT/SIGTERM stop accepting and drain the queue against
 * --drain-deadline-ms, then flush artifacts and exit; a second signal
 * escalates to cancel-everything. On shutdown the server report
 * (pool-reuse proof, job outcome counters) is written to
 * <out-root>/server_report.json.
 *
 * Every job carries a distributed-trace id from submit to simulated
 * cycle; `slacksim-submit --trace-fleet` (the `trace` wire op) merges
 * the journal, per-job Chrome traces and folded profiles under
 * <out-root> into one Perfetto-loadable fleet timeline.
 */

#include <atomic>
#include <csignal>
#include <string>
#include <vector>

#include "serve/server.hh"
#include "util/io.hh"
#include "util/logging.hh"
#include "util/options.hh"

namespace {

std::atomic<int> g_signal{0};

void
onSignal(int sig)
{
    // Second signal: skip the drain, cancel everything.
    g_signal.fetch_add(1, std::memory_order_relaxed);
    (void)sig;
}

const std::vector<slacksim::OptionSpec> kFlags = {
    {"socket", "PATH", "socket path (default slacksim.sock)"},
    {"out-root", "DIR",
     "per-job output directories live here (default serve-out)"},
    {"threads", "N",
     "global host-thread budget / pool size (default: hardware)"},
    {"mem-budget-mb", "N",
     "global admission memory budget in MiB (default 16384)"},
    {"drain-deadline-ms", "N",
     "graceful-shutdown drain deadline (default 60000)"},
    {"isolation", "MODE",
     "default job isolation: process (daemon default; forked "
     "supervised child) or inline"},
    {"kill-grace-ms", "N",
     "cancel-to-SIGKILL escalation window for isolated jobs "
     "(default 5000)"},
    {"recover", "",
     "replay <out-root>/server_events.jsonl: re-admit journaled "
     "jobs that never reached a terminal state"},
    {"fault-spec", "SPEC",
     "daemon-side fault plan (e.g. daemon-kill-window@start:N) for "
     "recovery drills"},
    {"fault-seed", "N", "daemon fault plan seed (default 1)"},
    {"quiet", "", "suppress inform/warn output"},
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace slacksim;

    Options opts(argc, argv);
    opts.enforceKnown(
        "slacksim-serve: multi-tenant simulation job server", kFlags);
    if (opts.getBool("quiet", false))
        setQuietLogging(true);

    serve::Server::Options server_opts;
    server_opts.socketPath = opts.get("socket", "slacksim.sock");
    server_opts.outRoot = opts.get("out-root", "serve-out");
    server_opts.threadBudget =
        static_cast<std::uint32_t>(opts.getUint("threads", 0));
    server_opts.memBudgetMb = opts.getUint("mem-budget-mb", 16384);
    server_opts.drainDeadlineMs =
        opts.getUint("drain-deadline-ms", 60000);
    // The daemon defaults to process isolation: it is the deployment
    // that must survive arbitrary job crashes. (The Server class
    // default stays "inline" for embedders and tests.)
    server_opts.defaultIsolation = opts.get("isolation", "process");
    if (server_opts.defaultIsolation != "inline" &&
        server_opts.defaultIsolation != "process") {
        SLACKSIM_FATAL("--isolation must be 'inline' or 'process', "
                       "got '",
                       server_opts.defaultIsolation, "'");
    }
    server_opts.killGraceMs = opts.getUint("kill-grace-ms", 5000);
    server_opts.recover = opts.getBool("recover", false);
    server_opts.faultSpec = opts.get("fault-spec", "");
    server_opts.faultSeed = opts.getUint("fault-seed", 1);

    serve::Server server(server_opts);
    if (!server.start())
        SLACKSIM_FATAL("could not open ", server_opts.socketPath);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    // A dying client mid-send must not kill the daemon; sends already
    // use MSG_NOSIGNAL, this covers any stray writes.
    std::signal(SIGPIPE, SIG_IGN);

    server.run(&g_signal);

    const std::string report_path =
        server_opts.outRoot + "/server_report.json";
    CheckedOfstream os(report_path, "server report");
    if (os.ok())
        server.writeServerReport(os.stream());
    // The report is the daemon's last word — fsync it so a host that
    // loses power right after shutdown still has it.
    os.sync();
    if (os.finish())
        SLACKSIM_INFORM("server report -> ", report_path);
    return 0;
}
