/**
 * @file
 * slacksim-serve: the simulation-as-a-service daemon.
 *
 * Opens a Unix domain socket, accepts slacksim.job.v1 submissions,
 * and runs them on a persistent worker pool under a global host-
 * thread and memory budget (see serve/server.hh for the protocol).
 * SIGINT/SIGTERM stop accepting and drain the queue against
 * --drain-deadline-ms, then flush artifacts and exit; a second signal
 * escalates to cancel-everything. On shutdown the server report
 * (pool-reuse proof, job outcome counters) is written to
 * <out-root>/server_report.json.
 */

#include <atomic>
#include <csignal>
#include <string>
#include <vector>

#include "serve/server.hh"
#include "util/io.hh"
#include "util/logging.hh"
#include "util/options.hh"

namespace {

std::atomic<int> g_signal{0};

void
onSignal(int sig)
{
    // Second signal: skip the drain, cancel everything.
    g_signal.fetch_add(1, std::memory_order_relaxed);
    (void)sig;
}

const std::vector<slacksim::OptionSpec> kFlags = {
    {"socket", "PATH", "socket path (default slacksim.sock)"},
    {"out-root", "DIR",
     "per-job output directories live here (default serve-out)"},
    {"threads", "N",
     "global host-thread budget / pool size (default: hardware)"},
    {"mem-budget-mb", "N",
     "global admission memory budget in MiB (default 16384)"},
    {"drain-deadline-ms", "N",
     "graceful-shutdown drain deadline (default 60000)"},
    {"quiet", "", "suppress inform/warn output"},
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace slacksim;

    Options opts(argc, argv);
    opts.enforceKnown(
        "slacksim-serve: multi-tenant simulation job server", kFlags);
    if (opts.getBool("quiet", false))
        setQuietLogging(true);

    serve::Server::Options server_opts;
    server_opts.socketPath = opts.get("socket", "slacksim.sock");
    server_opts.outRoot = opts.get("out-root", "serve-out");
    server_opts.threadBudget =
        static_cast<std::uint32_t>(opts.getUint("threads", 0));
    server_opts.memBudgetMb = opts.getUint("mem-budget-mb", 16384);
    server_opts.drainDeadlineMs =
        opts.getUint("drain-deadline-ms", 60000);

    serve::Server server(server_opts);
    if (!server.start())
        SLACKSIM_FATAL("could not open ", server_opts.socketPath);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    // A dying client mid-send must not kill the daemon; sends already
    // use MSG_NOSIGNAL, this covers any stray writes.
    std::signal(SIGPIPE, SIG_IGN);

    server.run(&g_signal);

    const std::string report_path =
        server_opts.outRoot + "/server_report.json";
    CheckedOfstream os(report_path, "server report");
    if (os.ok())
        server.writeServerReport(os.stream());
    if (os.finish())
        SLACKSIM_INFORM("server report -> ", report_path);
    return 0;
}
