/**
 * @file
 * Message helpers.
 */

#include "uncore/msg.hh"

namespace slacksim {

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS:
        return "GetS";
      case MsgType::GetM:
        return "GetM";
      case MsgType::Upgrade:
        return "Upgrade";
      case MsgType::PutM:
        return "PutM";
      case MsgType::LockAcq:
        return "LockAcq";
      case MsgType::LockRel:
        return "LockRel";
      case MsgType::BarArrive:
        return "BarArrive";
      case MsgType::Fill:
        return "Fill";
      case MsgType::UpgradeAck:
        return "UpgradeAck";
      case MsgType::SnoopInv:
        return "SnoopInv";
      case MsgType::SnoopDown:
        return "SnoopDown";
      case MsgType::SyncGrant:
        return "SyncGrant";
    }
    return "unknown";
}

} // namespace slacksim
