/**
 * @file
 * Banked shared L2 tag array (timing-only), matching the paper's
 * 256KB shared L2 with 8-cycle access latency; inclusive of the L1s,
 * so an L2 eviction back-invalidates the L1 copies.
 */

#ifndef SLACKSIM_UNCORE_L2_TAGS_HH
#define SLACKSIM_UNCORE_L2_TAGS_HH

#include <cstdint>
#include <vector>

#include "util/snapshot.hh"
#include "util/types.hh"

namespace slacksim {

/** L2 configuration. */
struct L2Params
{
    std::uint32_t totalKb = 256;
    std::uint32_t ways = 8;
    std::uint32_t lineBytes = 64;
    std::uint32_t banks = 4;
    Tick hitLatency = 8;    //!< paper: 8-clock L2 access
    Tick missLatency = 100; //!< paper: 100-clock L2 miss (memory)
};

/** Result of an L2 fill. */
struct L2FillResult
{
    bool evicted = false;    //!< a valid victim was displaced
    bool victimDirty = false;
    Addr victimLine = 0;
};

/** The L2 tag array. */
class L2Tags : public Snapshotable
{
  public:
    explicit L2Tags(const L2Params &params);

    /** @return true when @p line is present (touches LRU). */
    bool lookup(Addr line);

    /** @return true when present, without LRU side effects. */
    bool probe(Addr line) const;

    /**
     * Install @p line (after a memory fetch), possibly displacing a
     * victim. @p dirty marks the line dirty immediately (writeback
     * data arriving from an L1).
     */
    L2FillResult fill(Addr line, bool dirty);

    /**
     * Mark @p line dirty (PutM / cache-to-cache writeback landed in
     * L2). If the line is absent it is installed first; the returned
     * result reports any victim.
     */
    L2FillResult writeback(Addr line);

    /** @return the bank index servicing @p line. */
    std::uint32_t bank(Addr line) const;

    /** @return the (hashed) set index of @p line; exposed so tests
     *  and diagnostics can construct conflicting address sets. */
    std::uint32_t setIndexOf(Addr line) const { return setIndex(line); }

    /** @return number of sets per bank. */
    std::uint32_t setsPerBank() const { return setsPerBank_; }

    /** @return number of valid lines (tests). */
    std::uint64_t validCount() const;

    /** Invariant check: no duplicate tags in a set. */
    void checkInvariants() const;

    void save(SnapshotWriter &writer) const override;
    void restore(SnapshotReader &reader) override;

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint8_t valid = 0;
        std::uint8_t dirty = 0;
        std::uint32_t lruStamp = 0;
    };

    std::uint32_t setIndex(Addr line) const;
    Line *find(Addr line);
    const Line *find(Addr line) const;

    L2Params params_;
    std::uint32_t setsPerBank_;
    std::uint32_t totalSets_;
    std::vector<Line> lines_;
    std::uint32_t lruClock_ = 0;
};

} // namespace slacksim

#endif // SLACKSIM_UNCORE_L2_TAGS_HH
