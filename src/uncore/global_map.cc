/**
 * @file
 * GlobalCacheMap implementation.
 */

#include "uncore/global_map.hh"

#include <algorithm>

#include "util/logging.hh"

namespace slacksim {

MapEntry &
GlobalCacheMap::entry(Addr line)
{
    return map_[line];
}

const MapEntry *
GlobalCacheMap::find(Addr line) const
{
    auto it = map_.find(line);
    return it == map_.end() ? nullptr : &it->second;
}

void
GlobalCacheMap::eraseIfEmpty(Addr line)
{
    auto it = map_.find(line);
    if (it != map_.end() && it->second.empty())
        map_.erase(it);
}

void
GlobalCacheMap::checkInvariants() const
{
    for (const auto &[line, e] : map_) {
        if (e.owner != invalidCore) {
            const std::uint64_t owner_bit = 1ull << e.owner;
            SLACKSIM_ASSERT((e.dSharers & ~owner_bit) == 0,
                            "owned line ", line,
                            " has foreign D sharers");
            SLACKSIM_ASSERT((e.dSharers & owner_bit) != 0,
                            "owner of line ", line,
                            " missing from sharer mask");
        }
    }
}

void
GlobalCacheMap::save(SnapshotWriter &writer) const
{
    writer.putMarker(0x6d41);
    // Serialize in sorted address order so identical logical states
    // always produce identical snapshot bytes (unordered_map
    // iteration order is not stable across rebuilds).
    std::vector<Addr> lines;
    lines.reserve(map_.size());
    for (const auto &[line, e] : map_)
        lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    writer.put<std::uint64_t>(lines.size());
    for (const Addr line : lines) {
        writer.put(line);
        writer.put(map_.at(line));
    }
}

void
GlobalCacheMap::restore(SnapshotReader &reader)
{
    reader.checkMarker(0x6d41);
    map_.clear();
    const auto count = reader.get<std::uint64_t>();
    map_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const Addr line = reader.get<Addr>();
        map_[line] = reader.get<MapEntry>();
    }
}

} // namespace slacksim
