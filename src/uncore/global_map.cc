/**
 * @file
 * GlobalCacheMap implementation.
 */

#include "uncore/global_map.hh"

#include <algorithm>

#include "util/logging.hh"

namespace slacksim {

MapEntry &
GlobalCacheMap::entry(Addr line)
{
    return map_[bankOf(line)][line];
}

const MapEntry *
GlobalCacheMap::find(Addr line) const
{
    const auto &bank = map_[bankOf(line)];
    auto it = bank.find(line);
    return it == bank.end() ? nullptr : &it->second;
}

void
GlobalCacheMap::eraseIfEmpty(Addr line)
{
    auto &bank = map_[bankOf(line)];
    auto it = bank.find(line);
    if (it != bank.end() && it->second.empty())
        bank.erase(it);
}

void
GlobalCacheMap::checkInvariants() const
{
    for (const auto &bank : map_) {
        for (const auto &[line, e] : bank) {
            if (e.owner != invalidCore) {
                const std::uint64_t owner_bit = 1ull << e.owner;
                SLACKSIM_ASSERT((e.dSharers & ~owner_bit) == 0,
                                "owned line ", line,
                                " has foreign D sharers");
                SLACKSIM_ASSERT((e.dSharers & owner_bit) != 0,
                                "owner of line ", line,
                                " missing from sharer mask");
            }
        }
    }
}

void
GlobalCacheMap::save(SnapshotWriter &writer) const
{
    writer.putMarker(0x6d41);
    // Serialize all banks in one globally sorted address order so
    // identical logical states always produce identical snapshot
    // bytes — across unordered_map rebuilds *and* bank counts.
    std::vector<Addr> lines;
    lines.reserve(size());
    for (const auto &bank : map_)
        for (const auto &[line, e] : bank)
            lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    writer.put<std::uint64_t>(lines.size());
    for (const Addr line : lines) {
        writer.put(line);
        writer.put(map_[bankOf(line)].at(line));
    }
}

void
GlobalCacheMap::restore(SnapshotReader &reader)
{
    reader.checkMarker(0x6d41);
    const auto count = reader.get<std::uint64_t>();
    for (auto &bank : map_) {
        bank.clear();
        bank.reserve(count / banks_ + 1);
    }
    for (std::uint64_t i = 0; i < count; ++i) {
        const Addr line = reader.get<Addr>();
        map_[bankOf(line)][line] = reader.get<MapEntry>();
    }
}

} // namespace slacksim
