/**
 * @file
 * Manager-side arbitration of workload locks and barriers.
 *
 * The paper's workloads synchronize through MP_Simplesim's parallel
 * programming APIs *inside* the simulator, which is why simulated-
 * workload-state violations cannot occur. This component is our
 * equivalent: lock acquire/release and barrier arrival requests reach
 * the manager as messages and grants flow back as InQ entries.
 */

#ifndef SLACKSIM_UNCORE_SYNC_ARBITER_HH
#define SLACKSIM_UNCORE_SYNC_ARBITER_HH

#include <cstdint>
#include <vector>

#include "stats/stats.hh"
#include "uncore/msg.hh"
#include "util/snapshot.hh"
#include "util/types.hh"

namespace slacksim {

/** A grant the arbiter wants delivered to a core. */
struct SyncGrantMsg
{
    CoreId dst = invalidCore;
    Tick ts = 0;
    std::uint16_t sync = 0;
};

/** Lock and barrier arbitration. */
class SyncArbiter : public Snapshotable
{
  public:
    /**
     * @param num_locks number of workload lock objects
     * @param num_barriers number of workload barrier objects
     * @param participants number of cores arriving at each barrier
     * @param grant_latency simulated cycles to deliver a grant
     */
    SyncArbiter(std::uint32_t num_locks, std::uint32_t num_barriers,
                std::uint32_t participants, Tick grant_latency,
                UncoreStats *stats);

    /** Handle LockAcq / LockRel / BarArrive; emits grants. */
    void handle(const BusMsg &msg, std::vector<SyncGrantMsg> &out);

    /** @return true when lock @p id is currently held (tests). */
    bool lockHeld(SyncId id) const;

    /** @return current holder of @p id or invalidCore. */
    CoreId lockHolder(SyncId id) const;

    /** @return number of cores queued on lock @p id. */
    std::size_t lockQueueDepth(SyncId id) const;

    /** @return arrivals so far at barrier @p id. */
    std::uint32_t barrierArrivals(SyncId id) const;

    void save(SnapshotWriter &writer) const override;
    void restore(SnapshotReader &reader) override;

  private:
    struct Waiter
    {
        CoreId core = invalidCore;
        Tick ts = 0;
    };

    struct LockState
    {
        bool held = false;
        CoreId holder = invalidCore;
        std::vector<Waiter> waitQueue; // FIFO
    };

    struct BarrierState
    {
        std::uint64_t arrivedMask = 0;
        std::uint32_t arrivedCount = 0;
        Tick maxArrivalTs = 0;
    };

    std::uint32_t participants_;
    Tick grantLatency_;
    UncoreStats *stats_;
    std::vector<LockState> locks_;
    std::vector<BarrierState> barriers_;
};

} // namespace slacksim

#endif // SLACKSIM_UNCORE_SYNC_ARBITER_HH
