/**
 * @file
 * L2Tags implementation.
 */

#include "uncore/l2_tags.hh"

#include "util/logging.hh"

namespace slacksim {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v && (v & (v - 1)) == 0;
}

} // namespace

L2Tags::L2Tags(const L2Params &params)
    : params_(params)
{
    const std::uint64_t total_lines =
        std::uint64_t{params_.totalKb} * 1024 / params_.lineBytes;
    SLACKSIM_ASSERT(total_lines % (params_.ways * params_.banks) == 0,
                    "L2 geometry does not divide evenly");
    totalSets_ = static_cast<std::uint32_t>(total_lines / params_.ways);
    setsPerBank_ = totalSets_ / params_.banks;
    SLACKSIM_ASSERT(isPow2(totalSets_) && isPow2(params_.banks),
                    "L2 sets and banks must be powers of two");
    lines_.resize(total_lines);
}

std::uint32_t
L2Tags::setIndex(Addr line) const
{
    // XOR-folded index hash (common in real L2s): plain modulo
    // indexing maps any large power-of-two stride — per-thread code
    // and private regions live at such strides — onto a single set,
    // which with >ways cores thrashes one set with back-invalidations.
    std::uint64_t x = line / params_.lineBytes;
    std::uint32_t bits = 0;
    while ((1u << bits) < totalSets_)
        ++bits;
    std::uint64_t folded = 0;
    while (x) {
        folded ^= x;
        x >>= bits;
    }
    return static_cast<std::uint32_t>(folded & (totalSets_ - 1));
}

std::uint32_t
L2Tags::bank(Addr line) const
{
    return static_cast<std::uint32_t>(
        (line / params_.lineBytes) & (params_.banks - 1));
}

L2Tags::Line *
L2Tags::find(Addr line)
{
    Line *base = &lines_[static_cast<std::size_t>(setIndex(line)) *
                         params_.ways];
    for (std::uint32_t w = 0; w < params_.ways; ++w)
        if (base[w].valid && base[w].tag == line)
            return &base[w];
    return nullptr;
}

const L2Tags::Line *
L2Tags::find(Addr line) const
{
    return const_cast<L2Tags *>(this)->find(line);
}

bool
L2Tags::lookup(Addr line)
{
    if (Line *l = find(line)) {
        l->lruStamp = ++lruClock_;
        return true;
    }
    return false;
}

bool
L2Tags::probe(Addr line) const
{
    return find(line) != nullptr;
}

L2FillResult
L2Tags::fill(Addr line, bool dirty)
{
    L2FillResult result;
    if (Line *l = find(line)) {
        l->dirty |= dirty ? 1 : 0;
        l->lruStamp = ++lruClock_;
        return result;
    }
    Line *base = &lines_[static_cast<std::size_t>(setIndex(line)) *
                         params_.ways];
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (!victim || base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    if (victim->valid) {
        result.evicted = true;
        result.victimDirty = victim->dirty;
        result.victimLine = victim->tag;
    }
    victim->valid = 1;
    victim->tag = line;
    victim->dirty = dirty ? 1 : 0;
    victim->lruStamp = ++lruClock_;
    return result;
}

L2FillResult
L2Tags::writeback(Addr line)
{
    if (Line *l = find(line)) {
        l->dirty = 1;
        l->lruStamp = ++lruClock_;
        return L2FillResult{};
    }
    return fill(line, true);
}

std::uint64_t
L2Tags::validCount() const
{
    std::uint64_t n = 0;
    for (const auto &l : lines_)
        n += l.valid ? 1 : 0;
    return n;
}

void
L2Tags::checkInvariants() const
{
    for (std::uint32_t s = 0; s < totalSets_; ++s) {
        const Line *base =
            &lines_[static_cast<std::size_t>(s) * params_.ways];
        for (std::uint32_t i = 0; i < params_.ways; ++i) {
            if (!base[i].valid)
                continue;
            SLACKSIM_ASSERT(setIndex(base[i].tag) == s,
                            "L2 line in wrong set");
            for (std::uint32_t j = i + 1; j < params_.ways; ++j) {
                SLACKSIM_ASSERT(!base[j].valid ||
                                    base[j].tag != base[i].tag,
                                "duplicate L2 tag in set ", s);
            }
        }
    }
}

void
L2Tags::save(SnapshotWriter &writer) const
{
    writer.putMarker(0x4c32);
    writer.putVector(lines_);
    writer.put(lruClock_);
}

void
L2Tags::restore(SnapshotReader &reader)
{
    reader.checkMarker(0x4c32);
    lines_ = reader.getVector<Line>();
    lruClock_ = reader.get<std::uint32_t>();
    SLACKSIM_ASSERT(lines_.size() ==
                        static_cast<std::size_t>(totalSets_) *
                            params_.ways,
                    "L2 snapshot geometry mismatch");
}

} // namespace slacksim
