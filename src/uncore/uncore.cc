/**
 * @file
 * Uncore implementation.
 */

#include "uncore/uncore.hh"

#include "cache/mesi.hh"

#include <algorithm>

#include "obs/forensics.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace slacksim {

Uncore::Uncore(const UncoreParams &params, UncoreStats *stats,
               ViolationStats *violations)
    : params_(params),
      stats_(stats),
      violations_(violations),
      map_(params.mapBanks),
      l2_(params.l2),
      sync_(params.numLocks, params.numBarriers, params.numCores,
            params.syncLatency, stats),
      bankFreeAt_(params.l2.banks, 0)
{
    SLACKSIM_ASSERT(stats_ && violations_, "Uncore missing stat sinks");
    SLACKSIM_ASSERT(params_.numCores >= 1 && params_.numCores <= 64,
                    "unsupported core count ", params_.numCores);
}

ServiceResult
Uncore::service(const BusMsg &msg, std::vector<Outbound> &out)
{
    if (isSyncRequest(msg.type)) {
        serviceSync(msg, out);
        return ServiceResult{};
    }
    SLACKSIM_ASSERT(isBusRequest(msg.type),
                    "manager received non-request message ",
                    msgTypeName(msg.type));
    return serviceBusRequest(msg, out);
}

void
Uncore::sendSnoop(CoreId dst, CacheKind cache, MsgType type, Addr line,
                  Tick ts, std::vector<Outbound> &out)
{
    Outbound o;
    o.dst = dst;
    o.msg.type = type;
    o.msg.addr = line;
    o.msg.cache = cache;
    o.msg.src = dst;
    o.msg.ts = ts;
    o.msg.seq = nextSeq_++;
    out.push_back(o);
    if (type == MsgType::SnoopInv)
        ++stats_->invalidationsSent;
    else if (type == MsgType::SnoopDown)
        ++stats_->downgradesSent;
}

void
Uncore::backInvalidate(Addr victim, Tick snoop_ts,
                       std::vector<Outbound> &out)
{
    MapEntry &e = map_.entry(victim);
    if (e.empty())
        return;
    for (CoreId c = 0; c < params_.numCores; ++c) {
        const std::uint64_t bit = 1ull << c;
        if (e.dSharers & bit)
            sendSnoop(c, CacheKind::Data, MsgType::SnoopInv, victim,
                      snoop_ts, out);
        if (e.iSharers & bit)
            sendSnoop(c, CacheKind::Instr, MsgType::SnoopInv, victim,
                      snoop_ts, out);
    }
    // A Modified L1 copy conceptually flushes to memory with the L2
    // victim; the map simply forgets all cached copies. The monitor
    // timestamp is retained for violation detection.
    e.dSharers = 0;
    e.iSharers = 0;
    e.owner = invalidCore;
    ++stats_->backInvalidations;
}

Tick
Uncore::accessL2(Addr line, Tick start, bool install_on_miss,
                 std::vector<Outbound> &out, Tick snoop_ts)
{
    const std::uint32_t bank = l2_.bank(line);
    const Tick t0 = std::max(start, bankFreeAt_[bank]);
    bankFreeAt_[bank] = t0 + params_.l2.hitLatency;
    if (l2_.lookup(line)) {
        ++stats_->l2Hits;
        return t0 + params_.l2.hitLatency;
    }
    ++stats_->l2Misses;
    if (install_on_miss) {
        const L2FillResult fill = l2_.fill(line, false);
        if (fill.evicted) {
            backInvalidate(fill.victimLine, snoop_ts, out);
            if (fill.victimDirty)
                ++stats_->l2Writebacks;
        }
    }
    return t0 + params_.l2.missLatency;
}

Tick
Uncore::scheduleResponse(Tick data_ready)
{
    const Tick start = std::max(data_ready, respBusFreeAt_);
    respBusFreeAt_ = start + params_.busResponseCycles;
    return start + params_.busResponseCycles;
}

ServiceResult
Uncore::serviceBusRequest(const BusMsg &msg, std::vector<Outbound> &out)
{
    ServiceResult result;
    const Addr line = msg.addr;
    const std::uint64_t src_bit = 1ull << msg.src;

    // Bus violation detection: the monitoring variable records the
    // largest timestamp of any serviced request; an older incoming
    // timestamp means the bus is being used in a different order than
    // in the target. Detection and monitor updates are independent of
    // the counting gate — disabling counting (replay) must not let
    // the monitor state drift — while counters, ledger and trace
    // events all follow the gate together, so none of them sees
    // phantom violations during replay.
    const bool bus_violation = msg.ts < busMonitorTs_;
    if (bus_violation) {
        result.busViolation = true;
        if (countViolations_) {
            ++violations_->busViolations;
            if (ledger_)
                ledger_->record(obs::ViolationKind::Bus, line, msg.src,
                                busMonitorSrc_, busMonitorTs_ - msg.ts);
            obs::traceInstant(obs::TraceCategory::Bus, "bus-violation",
                              msg.ts,
                              static_cast<std::int64_t>(msg.src),
                              static_cast<std::int64_t>(busMonitorTs_));
        }
    } else {
        busMonitorTs_ = msg.ts;
        busMonitorSrc_ = msg.src;
    }

    // Request bus arbitration: one grant per cycle.
    const Tick grant = std::max(msg.ts + 1, reqBusFreeAt_);
    stats_->busQueueingCycles += grant - (msg.ts + 1);
    busQueueHist_.add(grant - (msg.ts + 1));
    reqBusFreeAt_ = grant + params_.busRequestCycles;
    ++stats_->busRequests;
    obs::traceInstant(obs::TraceCategory::Bus, "bus-grant", grant,
                      static_cast<std::int64_t>(msg.src),
                      static_cast<std::int64_t>(grant - (msg.ts + 1)));
    const Tick snoop_ts = grant + 1;

    // Map violation detection on the line's monitoring variable.
    MapEntry &e = map_.entry(line);
    const Tick map_monitor = e.monitorTs;
    const CoreId map_prior = e.lastTouch;
    if (map_.recordTransition(e, msg.ts, msg.src)) {
        result.mapViolation = true;
        if (countViolations_) {
            ++violations_->mapViolations;
            if (ledger_)
                ledger_->record(obs::ViolationKind::Map, line, msg.src,
                                map_prior, map_monitor - msg.ts);
            obs::traceInstant(obs::TraceCategory::Map, "map-violation",
                              msg.ts,
                              static_cast<std::int64_t>(msg.src),
                              static_cast<std::int64_t>(line));
        }
    }

    switch (msg.type) {
      case MsgType::GetS: {
        Tick data_ready;
        if (e.owner != invalidCore && e.owner != msg.src) {
            // Dirty copy elsewhere: snoop-downgrade the owner, data
            // comes cache-to-cache and is written back to L2.
            sendSnoop(e.owner, CacheKind::Data, MsgType::SnoopDown,
                      line, snoop_ts, out);
            e.dSharers |= 1ull << e.owner;
            e.owner = invalidCore;
            data_ready = grant + params_.c2cLatency;
            ++stats_->cacheToCacheTransfers;
            const L2FillResult wb = l2_.writeback(line);
            if (wb.evicted) {
                backInvalidate(wb.victimLine, snoop_ts, out);
                if (wb.victimDirty)
                    ++stats_->l2Writebacks;
            }
        } else {
            if (e.owner == msg.src)
                e.owner = invalidCore; // stale ownership, be robust
            data_ready = accessL2(line, grant, true, out, snoop_ts);
        }
        if (msg.cache == CacheKind::Instr)
            e.iSharers |= src_bit;
        else
            e.dSharers |= src_bit;
        const bool exclusive =
            params_.protocol == CoherenceProtocol::MESI &&
            msg.cache == CacheKind::Data && e.owner == invalidCore &&
            (e.dSharers & ~src_bit) == 0 && e.iSharers == 0;
        Outbound o;
        o.dst = msg.src;
        o.msg.type = MsgType::Fill;
        o.msg.addr = line;
        o.msg.cache = msg.cache;
        o.msg.src = msg.src;
        o.msg.grantState = static_cast<std::uint8_t>(
            exclusive ? MesiState::Exclusive : MesiState::Shared);
        o.msg.ts = scheduleResponse(data_ready);
        o.msg.seq = nextSeq_++;
        out.push_back(o);
        if (exclusive)
            e.owner = msg.src; // E implies silent-upgrade ownership
        break;
      }
      case MsgType::GetM: {
        Tick data_ready;
        if (e.owner != invalidCore && e.owner != msg.src) {
            sendSnoop(e.owner, CacheKind::Data, MsgType::SnoopInv, line,
                      snoop_ts, out);
            data_ready = grant + params_.c2cLatency;
            ++stats_->cacheToCacheTransfers;
        } else {
            data_ready = accessL2(line, grant, true, out, snoop_ts);
        }
        for (CoreId c = 0; c < params_.numCores; ++c) {
            if (c == msg.src)
                continue;
            const std::uint64_t bit = 1ull << c;
            if ((e.dSharers & bit) && c != e.owner)
                sendSnoop(c, CacheKind::Data, MsgType::SnoopInv, line,
                          snoop_ts, out);
            if (e.iSharers & bit)
                sendSnoop(c, CacheKind::Instr, MsgType::SnoopInv, line,
                          snoop_ts, out);
        }
        e.dSharers = src_bit;
        e.iSharers = 0;
        e.owner = msg.src;
        Outbound o;
        o.dst = msg.src;
        o.msg.type = MsgType::Fill;
        o.msg.addr = line;
        o.msg.cache = CacheKind::Data;
        o.msg.src = msg.src;
        o.msg.grantState =
            static_cast<std::uint8_t>(MesiState::Modified);
        o.msg.ts = scheduleResponse(data_ready);
        o.msg.seq = nextSeq_++;
        out.push_back(o);
        break;
      }
      case MsgType::Upgrade: {
        for (CoreId c = 0; c < params_.numCores; ++c) {
            if (c == msg.src)
                continue;
            const std::uint64_t bit = 1ull << c;
            if (e.dSharers & bit)
                sendSnoop(c, CacheKind::Data, MsgType::SnoopInv, line,
                          snoop_ts, out);
            if (e.iSharers & bit)
                sendSnoop(c, CacheKind::Instr, MsgType::SnoopInv, line,
                          snoop_ts, out);
        }
        e.dSharers = src_bit;
        e.iSharers = 0;
        e.owner = msg.src;
        Outbound o;
        o.dst = msg.src;
        o.msg.type = MsgType::UpgradeAck;
        o.msg.addr = line;
        o.msg.cache = CacheKind::Data;
        o.msg.src = msg.src;
        o.msg.ts = grant + 2;
        o.msg.seq = nextSeq_++;
        out.push_back(o);
        break;
      }
      case MsgType::PutM: {
        if (e.owner == msg.src) {
            e.owner = invalidCore;
            e.dSharers &= ~src_bit;
        } else {
            // Stale writeback racing an invalidation: drop the map
            // change but still account the data movement.
            e.dSharers &= ~src_bit;
        }
        const L2FillResult wb = l2_.writeback(line);
        if (wb.evicted) {
            backInvalidate(wb.victimLine, snoop_ts, out);
            if (wb.victimDirty)
                ++stats_->l2Writebacks;
        }
        break;
      }
      default:
        SLACKSIM_PANIC("unreachable");
    }
    return result;
}

void
Uncore::serviceSync(const BusMsg &msg, std::vector<Outbound> &out)
{
    std::vector<SyncGrantMsg> grants;
    sync_.handle(msg, grants);
    for (const auto &g : grants) {
        Outbound o;
        o.dst = g.dst;
        o.msg.type = MsgType::SyncGrant;
        o.msg.src = g.dst;
        o.msg.sync = g.sync;
        o.msg.ts = g.ts;
        o.msg.seq = nextSeq_++;
        out.push_back(o);
    }
}

void
Uncore::save(SnapshotWriter &writer) const
{
    writer.putMarker(0xdc02);
    map_.save(writer);
    l2_.save(writer);
    sync_.save(writer);
    writer.put(busMonitorTs_);
    writer.put(busMonitorSrc_);
    writer.put(reqBusFreeAt_);
    writer.put(respBusFreeAt_);
    writer.putVector(bankFreeAt_);
    writer.put(nextSeq_);
    writer.put(busQueueHist_);
    writer.put(*stats_);
    writer.put(*violations_);
    // The forensics ledger rolls back with the violation counters it
    // attributes, or the report's exactness guarantee breaks.
    writer.put<bool>(ledger_ != nullptr);
    if (ledger_)
        ledger_->save(writer);
}

void
Uncore::restore(SnapshotReader &reader)
{
    reader.checkMarker(0xdc02);
    map_.restore(reader);
    l2_.restore(reader);
    sync_.restore(reader);
    busMonitorTs_ = reader.get<Tick>();
    busMonitorSrc_ = reader.get<CoreId>();
    reqBusFreeAt_ = reader.get<Tick>();
    respBusFreeAt_ = reader.get<Tick>();
    bankFreeAt_ = reader.getVector<Tick>();
    nextSeq_ = reader.get<SeqNum>();
    busQueueHist_ = reader.get<Log2Histogram>();
    *stats_ = reader.get<UncoreStats>();
    *violations_ = reader.get<ViolationStats>();
    const bool hadLedger = reader.get<bool>();
    SLACKSIM_ASSERT(hadLedger == (ledger_ != nullptr),
                    "ledger wiring changed across checkpoint");
    if (ledger_)
        ledger_->restore(reader);
    SLACKSIM_ASSERT(bankFreeAt_.size() == params_.l2.banks,
                    "uncore snapshot geometry mismatch");
}

} // namespace slacksim
