/**
 * @file
 * SyncArbiter implementation.
 */

#include "uncore/sync_arbiter.hh"

#include <algorithm>

#include "util/logging.hh"

namespace slacksim {

SyncArbiter::SyncArbiter(std::uint32_t num_locks,
                         std::uint32_t num_barriers,
                         std::uint32_t participants, Tick grant_latency,
                         UncoreStats *stats)
    : participants_(participants),
      grantLatency_(grant_latency),
      stats_(stats),
      locks_(num_locks),
      barriers_(num_barriers)
{
    SLACKSIM_ASSERT(participants_ >= 1 && participants_ <= 64,
                    "bad barrier participant count");
    SLACKSIM_ASSERT(stats_ != nullptr, "SyncArbiter needs stats");
}

void
SyncArbiter::handle(const BusMsg &msg, std::vector<SyncGrantMsg> &out)
{
    switch (msg.type) {
      case MsgType::LockAcq: {
        SLACKSIM_ASSERT(msg.sync < locks_.size(),
                        "lock id out of range: ", msg.sync);
        LockState &lock = locks_[msg.sync];
        ++stats_->lockAcquires;
        if (!lock.held) {
            lock.held = true;
            lock.holder = msg.src;
            out.push_back({msg.src, msg.ts + grantLatency_, msg.sync});
        } else {
            SLACKSIM_ASSERT(lock.holder != msg.src,
                            "core ", msg.src, " re-acquires lock ",
                            msg.sync);
            lock.waitQueue.push_back({msg.src, msg.ts});
            ++stats_->lockQueued;
        }
        break;
      }
      case MsgType::LockRel: {
        SLACKSIM_ASSERT(msg.sync < locks_.size(),
                        "lock id out of range: ", msg.sync);
        LockState &lock = locks_[msg.sync];
        SLACKSIM_ASSERT(lock.held && lock.holder == msg.src,
                        "core ", msg.src,
                        " releases a lock it does not hold: ",
                        msg.sync);
        if (lock.waitQueue.empty()) {
            lock.held = false;
            lock.holder = invalidCore;
        } else {
            const Waiter next = lock.waitQueue.front();
            lock.waitQueue.erase(lock.waitQueue.begin());
            lock.holder = next.core;
            // The successor observes the release: its grant cannot
            // precede either its own request or the release.
            const Tick when = std::max(next.ts, msg.ts) + grantLatency_;
            out.push_back({next.core, when, msg.sync});
        }
        break;
      }
      case MsgType::BarArrive: {
        SLACKSIM_ASSERT(msg.sync < barriers_.size(),
                        "barrier id out of range: ", msg.sync);
        BarrierState &bar = barriers_[msg.sync];
        const std::uint64_t bit = 1ull << msg.src;
        SLACKSIM_ASSERT((bar.arrivedMask & bit) == 0,
                        "core ", msg.src, " arrives twice at barrier ",
                        msg.sync);
        bar.arrivedMask |= bit;
        ++bar.arrivedCount;
        bar.maxArrivalTs = std::max(bar.maxArrivalTs, msg.ts);
        if (bar.arrivedCount == participants_) {
            const Tick when = bar.maxArrivalTs + grantLatency_;
            for (CoreId c = 0; c < 64; ++c) {
                if (bar.arrivedMask & (1ull << c))
                    out.push_back({c, when, msg.sync});
            }
            bar = BarrierState{};
            ++stats_->barrierEpisodes;
        }
        break;
      }
      default:
        SLACKSIM_PANIC("SyncArbiter got non-sync message ",
                       msgTypeName(msg.type));
    }
}

bool
SyncArbiter::lockHeld(SyncId id) const
{
    SLACKSIM_ASSERT(id < locks_.size(), "bad lock id");
    return locks_[id].held;
}

CoreId
SyncArbiter::lockHolder(SyncId id) const
{
    SLACKSIM_ASSERT(id < locks_.size(), "bad lock id");
    return locks_[id].holder;
}

std::size_t
SyncArbiter::lockQueueDepth(SyncId id) const
{
    SLACKSIM_ASSERT(id < locks_.size(), "bad lock id");
    return locks_[id].waitQueue.size();
}

std::uint32_t
SyncArbiter::barrierArrivals(SyncId id) const
{
    SLACKSIM_ASSERT(id < barriers_.size(), "bad barrier id");
    return barriers_[id].arrivedCount;
}

void
SyncArbiter::save(SnapshotWriter &writer) const
{
    writer.putMarker(0x5abc);
    writer.put<std::uint64_t>(locks_.size());
    for (const auto &lock : locks_) {
        writer.put(lock.held);
        writer.put(lock.holder);
        writer.putVector(lock.waitQueue);
    }
    writer.putVector(barriers_);
}

void
SyncArbiter::restore(SnapshotReader &reader)
{
    reader.checkMarker(0x5abc);
    const auto count = reader.get<std::uint64_t>();
    SLACKSIM_ASSERT(count == locks_.size(),
                    "sync snapshot geometry mismatch");
    for (auto &lock : locks_) {
        lock.held = reader.get<bool>();
        lock.holder = reader.get<CoreId>();
        lock.waitQueue = reader.getVector<Waiter>();
    }
    barriers_ = reader.getVector<BarrierState>();
}

} // namespace slacksim
