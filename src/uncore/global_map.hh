/**
 * @file
 * The manager thread's global cache status map: for every line ever
 * cached it tracks which cores hold it in their L1 D/I caches and
 * which (if any) core owns it modified. This is the "cache status map
 * maintained in the simulation manager thread" whose out-of-order
 * transitions are counted as *map violations* in the paper.
 */

#ifndef SLACKSIM_UNCORE_GLOBAL_MAP_HH
#define SLACKSIM_UNCORE_GLOBAL_MAP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/snapshot.hh"
#include "util/types.hh"

namespace slacksim {

/** Global (manager-side) state of one cached line. */
struct MapEntry
{
    std::uint64_t dSharers = 0; //!< bitmask of cores with a D copy
    std::uint64_t iSharers = 0; //!< bitmask of cores with an I copy
    CoreId owner = invalidCore; //!< core holding the line Modified
    CoreId lastTouch = invalidCore; //!< core that last advanced the
                                    //!< monitor (forensics attribution)
    Tick monitorTs = 0;         //!< violation-detection monitor

    bool
    empty() const
    {
        return dSharers == 0 && iSharers == 0 && owner == invalidCore;
    }
};

/**
 * The global cache status map, split into per-address-range banks
 * (EngineConfig::managerBanks). Banking changes the physical layout
 * only: lookups route by line range, while save() serializes all
 * banks in one globally sorted address order, so identical logical
 * states produce identical snapshot bytes for every bank count.
 */
class GlobalCacheMap : public Snapshotable
{
  public:
    explicit GlobalCacheMap(std::uint32_t banks = 1)
        : banks_(banks < 1 ? 1 : banks), map_(banks_)
    {
    }

    /** @return the number of address-range banks. */
    std::uint32_t banks() const { return banks_; }

    /** @return the bank of @p line (same hash as the service banks). */
    std::uint32_t
    bankOf(Addr line) const
    {
        return static_cast<std::uint32_t>((line >> 6) % banks_);
    }

    /** @return the entry for @p line, creating it when absent. */
    MapEntry &entry(Addr line);

    /** @return the entry for @p line or nullptr. */
    const MapEntry *find(Addr line) const;

    /** Drop an entry that became empty. */
    void eraseIfEmpty(Addr line);

    /** @return number of tracked lines (all banks). */
    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const auto &bank : map_)
            n += bank.size();
        return n;
    }

    /**
     * Record a transition for violation detection: returns true when
     * @p ts is older than the line's monitoring timestamp (i.e. this
     * is a map violation), else advances the monitor and remembers
     * @p src as the last in-order toucher. A violating access leaves
     * both the monitor and the attribution untouched — the violator
     * did not win the line.
     */
    bool
    recordTransition(MapEntry &e, Tick ts, CoreId src)
    {
        if (ts < e.monitorTs)
            return true;
        e.monitorTs = ts;
        e.lastTouch = src;
        return false;
    }

    /**
     * Invariant check for tests: an owned line has no other sharers
     * in any D cache and the owner bit set.
     */
    void checkInvariants() const;

    void save(SnapshotWriter &writer) const override;
    void restore(SnapshotReader &reader) override;

  private:
    std::uint32_t banks_ = 1;
    /** One hash map per address-range bank. */
    std::vector<std::unordered_map<Addr, MapEntry>> map_;
};

} // namespace slacksim

#endif // SLACKSIM_UNCORE_GLOBAL_MAP_HH
