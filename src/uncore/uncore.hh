/**
 * @file
 * The manager thread's model of everything below the L1s: the split
 * request/response snooping bus, the banked shared L2, the memory
 * latency, the global cache status map, and the sync arbiter.
 *
 * service() consumes one core request and produces the outbound
 * messages (fills, snoops, grants). The *order* in which the engine
 * feeds requests to service() is the crux of the paper:
 *  - sorted (timestamp) order  -> cycle-by-cycle / quantum accuracy;
 *  - arrival order             -> slack simulation, where inversions
 *    are detected as bus violations and map violations against the
 *    per-resource monitoring timestamps.
 */

#ifndef SLACKSIM_UNCORE_UNCORE_HH
#define SLACKSIM_UNCORE_UNCORE_HH

#include <cstdint>
#include <vector>

#include "cache/mesi.hh"
#include "stats/stats.hh"
#include "util/histogram.hh"
#include "uncore/global_map.hh"
#include "uncore/l2_tags.hh"
#include "uncore/msg.hh"
#include "uncore/sync_arbiter.hh"
#include "util/snapshot.hh"
#include "util/types.hh"

namespace slacksim {

namespace obs {
class ViolationLedger;
} // namespace obs

/** Uncore configuration. */
struct UncoreParams
{
    std::uint32_t numCores = 8;
    L2Params l2;
    CoherenceProtocol protocol = CoherenceProtocol::MESI;
    Tick c2cLatency = 12;        //!< owner-to-requester transfer
    Tick syncLatency = 6;        //!< manager sync grant latency
    Tick busRequestCycles = 1;   //!< request-bus occupancy per request
    Tick busResponseCycles = 2;  //!< response-bus occupancy per data
    std::uint32_t numLocks = 0;
    std::uint32_t numBarriers = 0;
    /** Address-range banks of the global cache status map (>= 1);
     *  mirrors EngineConfig::managerBanks. */
    std::uint32_t mapBanks = 1;
};

/** A message the uncore wants delivered to a core's InQ. */
struct Outbound
{
    CoreId dst = invalidCore;
    BusMsg msg;
};

/** Violations detected while servicing one request. */
struct ServiceResult
{
    bool busViolation = false;
    bool mapViolation = false;

    bool any() const { return busViolation || mapViolation; }
};

/** The manager-side uncore model. */
class Uncore : public Snapshotable
{
  public:
    Uncore(const UncoreParams &params, UncoreStats *stats,
           ViolationStats *violations);

    /**
     * Service one core->manager message, appending the responses and
     * snoops to @p out. @return the violations this request caused.
     */
    ServiceResult service(const BusMsg &msg, std::vector<Outbound> &out);

    /** Distribution of per-request bus queueing delays (cycles). */
    const Log2Histogram &busQueueHistogram() const
    {
        return busQueueHist_;
    }

    /** Read access for tests and engine bookkeeping. */
    const GlobalCacheMap &map() const { return map_; }
    GlobalCacheMap &map() { return map_; }
    const L2Tags &l2() const { return l2_; }
    const SyncArbiter &sync() const { return sync_; }
    Tick requestBusFreeAt() const { return reqBusFreeAt_; }

    /**
     * Enable/disable violation *counting* (detection still updates
     * the monitors). Disabled during speculative cycle-by-cycle
     * replay so pre-checkpoint time distortions that linger in the
     * restored queues cannot inflate the rate or re-trigger rollback.
     */
    void setViolationCounting(bool enabled) { countViolations_ = enabled; }

    /** @return true while violation counting is enabled. */
    bool violationCounting() const { return countViolations_; }

    /**
     * Wire (or unwire, with nullptr) the forensics ledger. The ledger
     * follows the counting gate — it only records violations that
     * land in ViolationStats, so the two always agree — and it is
     * snapshotted with the uncore so rollbacks rewind it in lockstep.
     * Wiring must not change between a checkpoint and its restore.
     */
    void setLedger(obs::ViolationLedger *ledger) { ledger_ = ledger; }

    /** @return the wired forensics ledger, or nullptr. */
    obs::ViolationLedger *ledger() const { return ledger_; }

    /** Clear histogram state (warmup discard; counters are owned by
     *  the caller-provided stat sinks). */
    void resetStats() { busQueueHist_.clear(); }

    void save(SnapshotWriter &writer) const override;
    void restore(SnapshotReader &reader) override;

  private:
    ServiceResult serviceBusRequest(const BusMsg &msg,
                                    std::vector<Outbound> &out);
    void serviceSync(const BusMsg &msg, std::vector<Outbound> &out);
    /** L2 access for the data of @p line. @return data-ready tick. */
    Tick accessL2(Addr line, Tick start, bool install_on_miss,
                  std::vector<Outbound> &out, Tick snoop_ts);
    /** Apply an L2 victim's inclusive back-invalidation. */
    void backInvalidate(Addr victim, Tick snoop_ts,
                        std::vector<Outbound> &out);
    void sendSnoop(CoreId dst, CacheKind cache, MsgType type, Addr line,
                   Tick ts, std::vector<Outbound> &out);
    Tick scheduleResponse(Tick data_ready);

    UncoreParams params_;
    UncoreStats *stats_;
    ViolationStats *violations_;
    GlobalCacheMap map_;
    L2Tags l2_;
    SyncArbiter sync_;

    Tick busMonitorTs_ = 0;      //!< bus violation monitor variable
    CoreId busMonitorSrc_ = invalidCore; //!< who last advanced it
    Tick reqBusFreeAt_ = 0;
    Tick respBusFreeAt_ = 0;
    std::vector<Tick> bankFreeAt_;
    SeqNum nextSeq_ = 0;
    Log2Histogram busQueueHist_;
    bool countViolations_ = true; //!< engine-controlled, not snapshot
    obs::ViolationLedger *ledger_ = nullptr; //!< optional forensics
};

} // namespace slacksim

#endif // SLACKSIM_UNCORE_UNCORE_HH
