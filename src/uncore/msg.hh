/**
 * @file
 * Bus / sync message format exchanged between core threads and the
 * simulation manager thread through the OutQ/InQ event queues.
 *
 * Every entry carries a timestamp recording the local time at which
 * the event should take effect — the paper's "timestamp field" in the
 * OutQ/InQ/GQ entries.
 */

#ifndef SLACKSIM_UNCORE_MSG_HH
#define SLACKSIM_UNCORE_MSG_HH

#include <cstdint>

#include "util/types.hh"

namespace slacksim {

/** Message kinds; the first group travels core->manager. */
enum class MsgType : std::uint8_t {
    // Core -> manager: coherent bus requests.
    GetS,       //!< read miss: request a shared/exclusive copy
    GetM,       //!< write miss: request an exclusive modified copy
    Upgrade,    //!< S->M upgrade (no data needed)
    PutM,       //!< dirty eviction writeback
    // Core -> manager: synchronization (arbitrated by the manager,
    // like MP_Simplesim's parallel API calls inside SlackSim).
    LockAcq,
    LockRel,
    BarArrive,
    // Manager -> core.
    Fill,        //!< data response; grantState carries the MESI state
    UpgradeAck,  //!< upgrade completed; line may be marked M
    SnoopInv,    //!< invalidate the line (GetM/Upgrade by another core
                 //!< or an L2 back-invalidation)
    SnoopDown,   //!< downgrade M/E to S, write dirty data back
    SyncGrant,   //!< lock granted / barrier released
};

/** Which cache of the core a message concerns. */
enum class CacheKind : std::uint8_t { Data = 0, Instr = 1 };

/** One OutQ/InQ/GQ entry. */
struct BusMsg
{
    Addr addr = 0;             //!< line-aligned address
    Tick ts = 0;               //!< local time the event takes effect
    SeqNum seq = 0;            //!< per-source order for tie-breaking
    MsgType type = MsgType::GetS;
    CoreId src = invalidCore;  //!< originating/destination core
    CacheKind cache = CacheKind::Data;
    std::uint8_t grantState = 0;  //!< Fill: granted MesiState
    std::uint16_t sync = 0;       //!< lock/barrier id
};

/** @return true for the request kinds that occupy the request bus. */
constexpr bool
isBusRequest(MsgType t)
{
    return t == MsgType::GetS || t == MsgType::GetM ||
           t == MsgType::Upgrade || t == MsgType::PutM;
}

/** @return true for the synchronization request kinds. */
constexpr bool
isSyncRequest(MsgType t)
{
    return t == MsgType::LockAcq || t == MsgType::LockRel ||
           t == MsgType::BarArrive;
}

/** @return a short printable name for a message type. */
const char *msgTypeName(MsgType t);

} // namespace slacksim

#endif // SLACKSIM_UNCORE_MSG_HH
