/**
 * @file
 * Power-of-two-bucketed histogram for latency/distance distributions
 * (bus queueing delay, rollback distances, violation gaps). Constant
 * memory, O(1) insert, snapshot-friendly.
 */

#ifndef SLACKSIM_UTIL_HISTOGRAM_HH
#define SLACKSIM_UTIL_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/types.hh"

namespace slacksim {

/**
 * Log2-bucketed histogram: bucket i counts values in
 * [2^(i-1), 2^i - 1] (bucket 0 counts value 0 and 1... precisely:
 * bucket index = bit-width of the value). 64 buckets cover the full
 * std::uint64_t range.
 */
class Log2Histogram
{
  public:
    /** Record one sample. */
    void
    add(std::uint64_t value)
    {
        ++buckets_[bucketOf(value)];
        ++count_;
        sum_ += value;
        if (value < min_ || count_ == 1)
            min_ = value;
        if (value > max_)
            max_ = value;
    }

    /** @return bucket index a value falls into. */
    static std::uint32_t
    bucketOf(std::uint64_t value)
    {
        return value == 0 ? 0 : 64 - static_cast<std::uint32_t>(
                                         __builtin_clzll(value));
    }

    /** @return inclusive lower bound of bucket @p i. */
    static std::uint64_t
    bucketLow(std::uint32_t i)
    {
        return i == 0 ? 0 : 1ull << (i - 1);
    }

    /** @return inclusive upper bound of bucket @p i. */
    static std::uint64_t
    bucketHigh(std::uint32_t i)
    {
        return i >= 64 ? ~0ull : (1ull << i) - 1;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }

    /** Arithmetic mean (0 when empty). */
    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    /**
     * Approximate p-th percentile (0..100): upper bound of the bucket
     * containing that rank.
     */
    std::uint64_t percentile(double p) const;

    /** @return samples in bucket @p i. */
    std::uint64_t
    bucketCount(std::uint32_t i) const
    {
        return buckets_[i];
    }

    /** Merge another histogram into this one. */
    void add(const Log2Histogram &other);

    /** Reset to empty. */
    void clear();

    /** Render a compact textual summary with an ASCII bar chart. */
    void print(std::ostream &os, const std::string &label) const;

  private:
    std::array<std::uint64_t, 65> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_HISTOGRAM_HH
