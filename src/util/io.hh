/**
 * @file
 * Failure-checked file output.
 *
 * Every writer the simulator opens for a side artifact (metrics CSV,
 * Chrome trace, run report) goes through CheckedOfstream: open
 * failures and close/flush failures are warned about with errno and
 * counted, never silently swallowed — a chaos run on a full disk must
 * still finish and must say what it lost. The fault layer's
 * `io-fail@write:N` spec hooks the Nth checked open here to make that
 * path testable deterministically.
 */

#ifndef SLACKSIM_UTIL_IO_HH
#define SLACKSIM_UTIL_IO_HH

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include "fault/fault_plan.hh"
#include "util/logging.hh"

namespace slacksim {

/** Process-wide count of failed checked opens/closes. */
inline std::atomic<std::uint64_t> &
ioErrorCount()
{
    static std::atomic<std::uint64_t> count{0};
    return count;
}

/**
 * An ofstream whose open and close are both checked. Construction
 * never throws; a failed writer degrades to a no-op stream and the
 * failure is warned + counted.
 */
class CheckedOfstream
{
  public:
    /**
     * @param path file to create/truncate
     * @param what short artifact name for warnings ("metrics CSV")
     */
    CheckedOfstream(const std::string &path, const char *what)
        : path_(path), what_(what)
    {
        if (auto *plan = fault::FaultPlan::active()) {
            if (plan->fireIoFail(what)) {
                // Injected transient failure: behave exactly as a
                // real failed open would.
                fail("injected open failure");
                plan->markLastHandled("io-warn");
                return;
            }
        }
        errno = 0;
        out_.open(path, std::ios::out | std::ios::trunc);
        if (!out_.is_open())
            fail(std::strerror(errno ? errno : EIO));
    }

    ~CheckedOfstream() { finish(); }

    CheckedOfstream(const CheckedOfstream &) = delete;
    CheckedOfstream &operator=(const CheckedOfstream &) = delete;

    /** @return true while the stream is usable. */
    bool ok() const { return !failed_ && out_.is_open(); }

    /** @return true when open or close failed. */
    bool failed() const { return failed_; }

    /** The underlying stream (harmlessly inert after a failure). */
    std::ofstream &stream() { return out_; }

    /** @return bytes written so far (0 after a failure). */
    std::uint64_t
    bytesWritten()
    {
        if (!ok())
            return 0;
        const auto pos = out_.tellp();
        return pos < 0 ? 0 : static_cast<std::uint64_t>(pos);
    }

    /**
     * Flush the stream and fsync the file so the bytes written so far
     * survive a power loss, not just a process crash. finish() alone
     * only hands the data to the OS page cache — a half-written
     * journal or report can vanish on power failure even after a
     * clean close. Durable writers (the serve journal, final run
     * reports) call sync() before finish(). Failures are warned and
     * counted in ioErrorCount() like every other checked I/O error.
     * @return true when the data reached stable storage.
     */
    bool
    sync()
    {
        if (!ok())
            return false;
        errno = 0;
        out_.flush();
        if (!out_.good()) {
            fail(std::strerror(errno ? errno : EIO));
            return false;
        }
        // std::ofstream hides its fd; fsync through a second O_WRONLY
        // handle on the same path (same inode, same dirty pages).
        const int fd = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
        if (fd < 0) {
            fail(std::strerror(errno ? errno : EIO));
            return false;
        }
        const bool synced = ::fsync(fd) == 0;
        const int saved = errno;
        ::close(fd);
        if (!synced) {
            fail(std::strerror(saved ? saved : EIO));
            return false;
        }
        return true;
    }

    /**
     * Flush and close, checking for write-back errors (ENOSPC shows
     * up here, not at open). Idempotent; the destructor calls it.
     * @return true when everything was durably handed to the OS.
     */
    bool
    finish()
    {
        if (finished_)
            return !failed_;
        finished_ = true;
        if (!out_.is_open())
            return !failed_;
        errno = 0;
        out_.flush();
        const bool flush_ok = out_.good();
        out_.close();
        if (!flush_ok || out_.fail())
            fail(std::strerror(errno ? errno : EIO));
        return !failed_;
    }

  private:
    void
    fail(const char *why)
    {
        if (!failed_) {
            failed_ = true;
            ioErrorCount().fetch_add(1, std::memory_order_relaxed);
        }
        SLACKSIM_WARN("i/o error on ", what_, " '", path_, "': ", why);
    }

    std::ofstream out_;
    std::string path_;
    const char *what_;
    bool failed_ = false;
    bool finished_ = false;
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_IO_HH
