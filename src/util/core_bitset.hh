/**
 * @file
 * Width-agnostic core-id set used for the manager's delivery-wake
 * tracking. The previous implementation was a single `std::uint64_t`
 * updated with `1ull << core`, which silently wraps for core >= 64;
 * this multi-word bitset is correct for any core count, so the only
 * remaining core-count ceiling is the uncore's 64-bit sharer masks
 * (enforced once, at config validation).
 */

#ifndef SLACKSIM_UTIL_CORE_BITSET_HH
#define SLACKSIM_UTIL_CORE_BITSET_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace slacksim {

/** Dynamic bitset over [0, bits) with a drain-and-clear visitor. */
class CoreBitset
{
  public:
    explicit CoreBitset(std::uint32_t bits)
        : bits_(bits),
          words_((bits + 63) / 64, 0)
    {
    }

    void
    set(std::uint32_t i)
    {
        SLACKSIM_ASSERT(i < bits_, "CoreBitset index out of range");
        words_[i / 64] |= 1ull << (i % 64);
        any_ = true;
    }

    /** @return true when at least one bit may be set (O(1)). */
    bool any() const { return any_; }

    /**
     * Invoke @p fn(index) for every set bit in ascending order, then
     * clear the whole set. O(words) when empty-ish, O(set bits) work
     * otherwise.
     */
    template <typename Fn>
    void
    drain(Fn &&fn)
    {
        if (!any_)
            return;
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t bits = words_[w];
            words_[w] = 0;
            while (bits) {
                const int b = std::countr_zero(bits);
                bits &= bits - 1;
                fn(static_cast<std::uint32_t>(w * 64 + b));
            }
        }
        any_ = false;
    }

  private:
    std::uint32_t bits_;
    std::vector<std::uint64_t> words_;
    bool any_ = false;
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_CORE_BITSET_HH
