/**
 * @file
 * Per-run identity tokens for a multi-tenant process.
 *
 * Historically one process hosted exactly one simulation at a time,
 * so "the current run" was implicit. The serve subsystem runs many
 * simulations concurrently on a shared worker pool, which means every
 * piece of process-wide state reachable from the run path (the trace
 * and profiler registries, the fault plan) must be able to answer
 * "which run does this thread belong to right now?".
 *
 * A run token is a process-unique, never-reused 64-bit id minted by
 * runSimulation(). The engine binds the token to every host thread it
 * borrows for the run (manager, cores, relays) via ScopedRunToken;
 * token-aware registries (obs/tracer.hh, obs/profiler.hh) compare the
 * calling thread's token against the session owner's and ignore
 * threads that belong to a different run. Token 0 means "no run" and
 * matches the pre-serve single-tenant behavior everywhere.
 */

#ifndef SLACKSIM_UTIL_RUN_TOKEN_HH
#define SLACKSIM_UTIL_RUN_TOKEN_HH

#include <atomic>
#include <cstdint>

namespace slacksim {

namespace detail {

inline std::atomic<std::uint64_t> &
runTokenCounter()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter;
}

inline std::uint64_t &
tlsRunToken()
{
    thread_local std::uint64_t token = 0;
    return token;
}

} // namespace detail

/** Mint a fresh process-unique run token (never 0, never reused). */
inline std::uint64_t
newRunToken()
{
    return detail::runTokenCounter().fetch_add(
               1, std::memory_order_relaxed) +
           1;
}

/** @return the run token bound to the calling thread (0 = none). */
inline std::uint64_t
currentRunToken()
{
    return detail::tlsRunToken();
}

/** Bind a run token to the calling thread for a scope (saves and
 *  restores the previous binding, so nesting is safe). */
class ScopedRunToken
{
  public:
    explicit ScopedRunToken(std::uint64_t token)
        : prev_(detail::tlsRunToken())
    {
        detail::tlsRunToken() = token;
    }

    ~ScopedRunToken() { detail::tlsRunToken() = prev_; }

    ScopedRunToken(const ScopedRunToken &) = delete;
    ScopedRunToken &operator=(const ScopedRunToken &) = delete;

  private:
    std::uint64_t prev_;
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_RUN_TOKEN_HH
