/**
 * @file
 * In-memory checkpoint serialization.
 *
 * The paper checkpoints the simulator with fork(); fork() only clones
 * the calling thread, so a multi-threaded SlackSim cannot literally be
 * checkpointed that way. Instead every stateful component implements
 * save()/restore() against these byte-buffer streams; a global
 * checkpoint is the concatenation of all component snapshots taken
 * while the simulation is quiesced (see DESIGN.md S10).
 */

#ifndef SLACKSIM_UTIL_SNAPSHOT_HH
#define SLACKSIM_UTIL_SNAPSHOT_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/logging.hh"

namespace slacksim {

/** Append-only byte stream a component serializes itself into. */
class SnapshotWriter
{
  public:
    SnapshotWriter() = default;

    /**
     * Arena-reuse mode: adopt a retained buffer and serialize into
     * it, keeping its capacity. A checkpointer that round-trips its
     * buffer through release() and back here allocates only while a
     * snapshot is still growing past its high-water mark, instead of
     * re-growing the whole world's serialization every interval.
     */
    explicit SnapshotWriter(std::vector<std::uint8_t> &&arena)
        : buf_(std::move(arena))
    {
        buf_.clear();
    }

    /** Serialize one trivially-copyable value. */
    template <typename T>
    void
    put(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "put() requires a trivially copyable type");
        const auto *bytes = reinterpret_cast<const std::uint8_t *>(&value);
        buf_.insert(buf_.end(), bytes, bytes + sizeof(T));
    }

    /** Serialize a vector of trivially-copyable values. */
    template <typename T>
    void
    putVector(const std::vector<T> &values)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "putVector() requires a trivially copyable type");
        put<std::uint64_t>(values.size());
        if (!values.empty()) {
            const auto *bytes =
                reinterpret_cast<const std::uint8_t *>(values.data());
            buf_.insert(buf_.end(), bytes,
                        bytes + values.size() * sizeof(T));
        }
    }

    /**
     * Write a section marker that restore() verifies; catches
     * save/restore ordering bugs early.
     */
    void
    putMarker(std::uint32_t tag)
    {
        put<std::uint32_t>(0x534e4150u); // "SNAP"
        put<std::uint32_t>(tag);
    }

    /** @return serialized bytes accumulated so far. */
    const std::vector<std::uint8_t> &bytes() const { return buf_; }

    /** @return current size in bytes. */
    std::size_t size() const { return buf_.size(); }

    /** Move the buffer out of the writer. */
    std::vector<std::uint8_t> release() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Sequential reader over a snapshot byte stream. */
class SnapshotReader
{
  public:
    explicit SnapshotReader(const std::vector<std::uint8_t> &bytes)
        : buf_(bytes), limit_(bytes.size())
    {
    }

    /**
     * Read only the first @p limit bytes of @p bytes: a sealed
     * checkpoint arena carries an integrity trailer past the payload
     * (util/checksum.hh) that restore() must never consume, and
     * exhausted() must report done at the payload boundary.
     */
    SnapshotReader(const std::vector<std::uint8_t> &bytes,
                   std::size_t limit)
        : buf_(bytes), limit_(limit)
    {
        SLACKSIM_ASSERT(limit <= bytes.size(),
                        "snapshot read limit past the buffer");
    }

    /** Deserialize one trivially-copyable value. */
    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "get() requires a trivially copyable type");
        SLACKSIM_ASSERT(pos_ + sizeof(T) <= limit_,
                        "snapshot underrun at ", pos_);
        T value;
        std::memcpy(&value, buf_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return value;
    }

    /** Deserialize a vector written by putVector(). */
    template <typename T>
    std::vector<T>
    getVector()
    {
        const auto count = get<std::uint64_t>();
        SLACKSIM_ASSERT(pos_ + count * sizeof(T) <= limit_,
                        "snapshot vector underrun");
        std::vector<T> values(count);
        if (count) {
            std::memcpy(values.data(), buf_.data() + pos_,
                        count * sizeof(T));
            pos_ += count * sizeof(T);
        }
        return values;
    }

    /** Verify a marker written by putMarker(). */
    void
    checkMarker(std::uint32_t tag)
    {
        const auto magic = get<std::uint32_t>();
        const auto found = get<std::uint32_t>();
        SLACKSIM_ASSERT(magic == 0x534e4150u && found == tag,
                        "snapshot marker mismatch: expected ", tag,
                        " found ", found);
    }

    /** @return true when every readable byte has been consumed. */
    bool exhausted() const { return pos_ == limit_; }

    /** @return current read offset. */
    std::size_t position() const { return pos_; }

  private:
    const std::vector<std::uint8_t> &buf_;
    std::size_t limit_ = 0;
    std::size_t pos_ = 0;
};

/** Interface for anything that participates in global checkpoints. */
class Snapshotable
{
  public:
    virtual ~Snapshotable() = default;

    /** Serialize full state into @p writer. */
    virtual void save(SnapshotWriter &writer) const = 0;

    /** Restore full state from @p reader. */
    virtual void restore(SnapshotReader &reader) = 0;
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_SNAPSHOT_HH
