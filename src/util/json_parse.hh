/**
 * @file
 * Minimal recursive-descent JSON parser (header-only).
 *
 * Grown out of tests/json_lite.hh when the serve subsystem needed to
 * read JSON off the wire (job specs, client/daemon protocol frames)
 * rather than only validate artifacts in tests. Same design point:
 * a small DOM (Value) plus a strict parser that throws
 * json::ParseError on malformed input. Callers on untrusted input
 * (the daemon) catch ParseError and turn it into a protocol-level
 * rejection; test callers let it fail the test.
 *
 * Supported: objects, arrays, strings (with the escape set our
 * writers emit), numbers (as double — exact for integers < 2^53,
 * which covers every counter the artifacts carry), true/false/null.
 */

#ifndef SLACKSIM_UTIL_JSON_PARSE_HH
#define SLACKSIM_UTIL_JSON_PARSE_HH

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace slacksim {
namespace json {

/** Thrown on any malformed input; what() carries the byte offset. */
class ParseError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One parsed JSON value (recursive DOM node). */
struct Value
{
    enum class Type { Null, Bool, Number, String, Object, Array };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::map<std::string, Value> object;
    std::vector<Value> array;

    bool isNull() const { return type == Type::Null; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isBool() const { return type == Type::Bool; }

    bool
    has(const std::string &key) const
    {
        return type == Type::Object && object.count(key) != 0;
    }

    const Value &
    at(const std::string &key) const
    {
        if (type != Type::Object)
            throw ParseError("json: not an object, key=" + key);
        auto it = object.find(key);
        if (it == object.end())
            throw ParseError("json: missing key " + key);
        return it->second;
    }

    const Value &
    item(std::size_t i) const
    {
        if (type != Type::Array || i >= array.size())
            throw ParseError("json: bad array index");
        return array[i];
    }

    double
    asNumber() const
    {
        if (type != Type::Number)
            throw ParseError("json: not a number");
        return number;
    }

    std::uint64_t
    asUint() const
    {
        const double n = asNumber();
        if (n < 0)
            throw ParseError("json: negative, expected uint");
        return static_cast<std::uint64_t>(n);
    }

    std::int64_t asInt() const
    {
        return static_cast<std::int64_t>(asNumber());
    }

    const std::string &
    asString() const
    {
        if (type != Type::String)
            throw ParseError("json: not a string");
        return str;
    }

    bool
    asBool() const
    {
        if (type != Type::Bool)
            throw ParseError("json: not a bool");
        return boolean;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text)
        : text_(text)
    {
    }

    Value
    parse()
    {
        const Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw ParseError("json parse error at offset " +
                         std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const std::size_t n = std::string(lit).size();
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            Value v;
            v.type = Value::Type::String;
            v.str = parseString();
            return v;
        }
        if (consumeLiteral("true")) {
            Value v;
            v.type = Value::Type::Bool;
            v.boolean = true;
            return v;
        }
        if (consumeLiteral("false")) {
            Value v;
            v.type = Value::Type::Bool;
            v.boolean = false;
            return v;
        }
        if (consumeLiteral("null"))
            return Value{};
        return parseNumber();
    }

    Value
    parseObject()
    {
        Value v;
        v.type = Value::Type::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            const std::string key = parseString();
            expect(':');
            v.object[key] = parseValue();
            const char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    Value
    parseArray()
    {
        Value v;
        v.type = Value::Type::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("bad escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        fail("bad \\u escape");
                    const unsigned code = static_cast<unsigned>(
                        std::strtoul(text_.substr(pos_, 4).c_str(),
                                     nullptr, 16));
                    pos_ += 4;
                    // Our writers only emit \u for control chars.
                    out += static_cast<char>(code & 0x7f);
                    break;
                  }
                  default:
                    fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
    }

    Value
    parseNumber()
    {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        if (pos_ == start)
            fail("expected a value");
        Value v;
        v.type = Value::Type::Number;
        v.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                               nullptr);
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

inline Value
parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace json
} // namespace slacksim

#endif // SLACKSIM_UTIL_JSON_PARSE_HH
