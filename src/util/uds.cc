/**
 * @file
 * Unix-domain socket implementation.
 */

#include "util/uds.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/logging.hh"

namespace slacksim {

namespace {

/** Fill a sockaddr_un; AF_UNIX paths are hard-capped at ~107 bytes. */
bool
makeAddr(const std::string &path, sockaddr_un &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        SLACKSIM_WARN("uds: socket path too long (", path.size(),
                     " bytes): ", path);
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

UdsConn::UdsConn(UdsConn &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buf_(std::move(other.buf_))
{
}

UdsConn &
UdsConn::operator=(UdsConn &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        buf_ = std::move(other.buf_);
    }
    return *this;
}

UdsConn
UdsConn::connect(const std::string &path)
{
    sockaddr_un addr;
    if (!makeAddr(path, addr))
        return UdsConn();
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        SLACKSIM_WARN("uds: socket() failed: ",
                     std::strerror(errno));
        return UdsConn();
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        SLACKSIM_WARN("uds: connect(", path,
                     ") failed: ", std::strerror(errno));
        ::close(fd);
        return UdsConn();
    }
    return UdsConn(fd);
}

bool
UdsConn::sendLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + off,
                                 framed.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

UdsConn::Recv
UdsConn::recvLine(std::string &out, int timeoutMs)
{
    if (fd_ < 0)
        return Recv::Error;
    for (;;) {
        // Serve a buffered line before touching the socket: one recv
        // can deliver several protocol frames.
        const auto nl = buf_.find('\n');
        if (nl != std::string::npos) {
            out = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return Recv::Line;
        }

        pollfd pfd{fd_, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, timeoutMs);
        if (pr == 0)
            return Recv::Timeout;
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return Recv::Error;
        }

        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            // A half line at EOF is a truncated frame, not a frame.
            return Recv::Closed;
        }
        if (errno == EINTR)
            continue;
        return Recv::Error;
    }
}

void
UdsConn::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

bool
UdsListener::open(const std::string &path, int backlog)
{
    SLACKSIM_ASSERT(fd_ < 0, "UdsListener::open called twice");
    sockaddr_un addr;
    if (!makeAddr(path, addr))
        return false;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        SLACKSIM_WARN("uds: socket() failed: ",
                     std::strerror(errno));
        return false;
    }
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        SLACKSIM_WARN("uds: bind(", path,
                     ") failed: ", std::strerror(errno));
        ::close(fd);
        return false;
    }
    if (::listen(fd, backlog) != 0) {
        SLACKSIM_WARN("uds: listen(", path,
                     ") failed: ", std::strerror(errno));
        ::close(fd);
        ::unlink(path.c_str());
        return false;
    }
    fd_ = fd;
    path_ = path;
    return true;
}

UdsConn
UdsListener::accept(int timeoutMs)
{
    if (fd_ < 0)
        return UdsConn();
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeoutMs);
    if (pr <= 0)
        return UdsConn();
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
        if (errno != EINTR) {
            SLACKSIM_WARN("uds: accept() failed: ",
                         std::strerror(errno));
        }
        return UdsConn();
    }
    return UdsConn(cfd);
}

void
UdsListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        ::unlink(path_.c_str());
        path_.clear();
    }
}

} // namespace slacksim
