/**
 * @file
 * Minimal streaming JSON writer shared by every machine-readable
 * emitter in the tree (the run report, the perf-smoke BENCH file).
 * One writer means one escaping policy, one number format, and one
 * place to get comma/indent bookkeeping right, instead of each
 * harness hand-rolling `os << "{...}"` with its own quoting bugs.
 *
 * Usage mirrors the document structure:
 *
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.field("schema", "slacksim.run_report.v4");
 *   w.beginArray("runs");
 *   w.beginObject(); w.field("name", name); w.endObject();
 *   w.endArray();
 *   w.endObject();
 *
 * Scalars only — the caller drives the structure. Doubles are written
 * with enough digits to round-trip meaningfully and non-finite values
 * degrade to 0 (JSON has no NaN/Inf).
 */

#ifndef SLACKSIM_UTIL_JSON_HH
#define SLACKSIM_UTIL_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace slacksim {

/** Streaming JSON emitter with indentation and escaping. */
class JsonWriter
{
  public:
    /** @param indent_step spaces per nesting level (0 = compact). */
    explicit JsonWriter(std::ostream &os, int indent_step = 2)
        : os_(os),
          step_(indent_step)
    {
    }

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void
    beginObject()
    {
        element();
        os_ << '{';
        push();
    }

    void
    beginObject(const char *key)
    {
        fieldKey(key);
        os_ << '{';
        push();
    }

    void
    endObject()
    {
        pop();
        os_ << '}';
    }

    void
    beginArray()
    {
        element();
        os_ << '[';
        push();
    }

    void
    beginArray(const char *key)
    {
        fieldKey(key);
        os_ << '[';
        push();
    }

    void
    endArray()
    {
        pop();
        os_ << ']';
    }

    void
    field(const char *key, const std::string &v)
    {
        fieldKey(key);
        writeString(v);
    }

    void
    field(const char *key, const char *v)
    {
        fieldKey(key);
        writeString(v ? std::string(v) : std::string());
    }

    void
    field(const char *key, bool v)
    {
        fieldKey(key);
        os_ << (v ? "true" : "false");
    }

    void
    field(const char *key, double v)
    {
        fieldKey(key);
        writeDouble(v);
    }

    void
    field(const char *key, std::uint64_t v)
    {
        fieldKey(key);
        os_ << v;
    }

    void
    field(const char *key, std::int64_t v)
    {
        fieldKey(key);
        os_ << v;
    }

    void
    field(const char *key, std::uint32_t v)
    {
        field(key, static_cast<std::uint64_t>(v));
    }

    void
    field(const char *key, std::int32_t v)
    {
        field(key, static_cast<std::int64_t>(v));
    }

    void
    fieldNull(const char *key)
    {
        fieldKey(key);
        os_ << "null";
    }

    void
    value(const std::string &v)
    {
        element();
        writeString(v);
    }

    void
    value(std::uint64_t v)
    {
        element();
        os_ << v;
    }

    void
    value(std::int64_t v)
    {
        element();
        os_ << v;
    }

    void
    value(double v)
    {
        element();
        writeDouble(v);
    }

    /** Terminate the document with a trailing newline. */
    void
    finish()
    {
        os_ << '\n';
    }

  private:
    /** Comma/newline/indent before the next element at this depth. */
    void
    element()
    {
        if (!first_.empty()) {
            if (!first_.back())
                os_ << ',';
            first_.back() = false;
            newline();
        }
    }

    void
    fieldKey(const char *key)
    {
        element();
        writeString(key);
        os_ << ':';
        if (step_ > 0)
            os_ << ' ';
    }

    void
    push()
    {
        first_.push_back(true);
    }

    void
    pop()
    {
        const bool had_elements = !first_.empty() && !first_.back();
        first_.pop_back();
        if (had_elements)
            newline();
    }

    void
    newline()
    {
        if (step_ <= 0)
            return;
        os_ << '\n';
        for (std::size_t i = 0; i < first_.size() * step_; ++i)
            os_ << ' ';
    }

    void
    writeString(const std::string &s)
    {
        os_ << '"';
        for (const char c : s) {
            const auto u = static_cast<unsigned char>(c);
            switch (c) {
              case '"':
                os_ << "\\\"";
                break;
              case '\\':
                os_ << "\\\\";
                break;
              case '\n':
                os_ << "\\n";
                break;
              case '\t':
                os_ << "\\t";
                break;
              case '\r':
                os_ << "\\r";
                break;
              default:
                if (u < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                    os_ << buf;
                } else {
                    os_ << c;
                }
            }
        }
        os_ << '"';
    }

    void
    writeDouble(double v)
    {
        if (!std::isfinite(v)) // JSON has no NaN/Inf
            v = 0.0;
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        os_ << buf;
    }

    std::ostream &os_;
    int step_;
    std::vector<bool> first_; //!< per-depth "no element written yet"
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_JSON_HH
