/**
 * @file
 * Unix-domain stream sockets with newline framing.
 *
 * The serve protocol (serve/job_spec.hh documents the payloads) is
 * newline-delimited JSON over an AF_UNIX SOCK_STREAM socket: one JSON
 * object per line, no embedded newlines (the JsonWriter never emits
 * raw newlines inside a compact document). This header wraps the
 * socket plumbing the daemon and client share:
 *
 *  - UdsListener: bind/listen/accept with poll()-based timeouts so
 *    the accept loop can notice shutdown requests promptly.
 *  - UdsConn: a connected endpoint with sendLine()/recvLine(); reads
 *    are buffered and writes loop over partial send()s. All sends use
 *    MSG_NOSIGNAL — a peer hanging up surfaces as an error return,
 *    never SIGPIPE.
 *
 * Everything reports failure by return value; the daemon must outlive
 * misbehaving clients, so nothing in here is fatal().
 */

#ifndef SLACKSIM_UTIL_UDS_HH
#define SLACKSIM_UTIL_UDS_HH

#include <string>

namespace slacksim {

/** One connected Unix-domain stream endpoint. */
class UdsConn
{
  public:
    /** Outcome of a recvLine() call. */
    enum class Recv {
        Line,    //!< a full line was read into @p out
        Timeout, //!< no full line within the timeout (retryable)
        Closed,  //!< peer closed cleanly (buffer drained)
        Error,   //!< socket error; the connection is dead
    };

    UdsConn() = default;
    /** Adopt an already-connected fd (from accept or connect). */
    explicit UdsConn(int fd)
        : fd_(fd)
    {
    }

    ~UdsConn() { close(); }

    UdsConn(UdsConn &&other) noexcept;
    UdsConn &operator=(UdsConn &&other) noexcept;
    UdsConn(const UdsConn &) = delete;
    UdsConn &operator=(const UdsConn &) = delete;

    /** Connect to the daemon socket at @p path. */
    static UdsConn connect(const std::string &path);

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /**
     * Send @p line plus a trailing '\n', looping over partial writes.
     * @return false when the peer is gone or the socket errored.
     */
    bool sendLine(const std::string &line);

    /**
     * Read the next '\n'-terminated line (terminator stripped).
     * @param timeoutMs poll timeout per read; <0 blocks indefinitely.
     */
    Recv recvLine(std::string &out, int timeoutMs);

    /** Close the socket (idempotent). */
    void close();

  private:
    int fd_ = -1;
    std::string buf_; //!< bytes received but not yet returned
};

/** A listening Unix-domain socket owning its filesystem path. */
class UdsListener
{
  public:
    UdsListener() = default;
    ~UdsListener() { close(); }

    UdsListener(const UdsListener &) = delete;
    UdsListener &operator=(const UdsListener &) = delete;

    /**
     * Bind and listen on @p path. Any stale socket file at the path
     * is unlinked first (the daemon owns its socket path).
     * @return false on any syscall failure (errno in the log).
     */
    bool open(const std::string &path, int backlog = 16);

    bool valid() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    /**
     * Accept one connection, waiting up to @p timeoutMs.
     * @return an invalid conn on timeout or error (the caller's loop
     *         distinguishes by checking valid() and retrying).
     */
    UdsConn accept(int timeoutMs);

    /** Close the socket and unlink its path (idempotent). */
    void close();

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_UDS_HH
