/**
 * @file
 * Bounded lock-free single-producer/single-consumer ring buffer.
 *
 * Used for the per-core OutQ (core thread -> manager thread) and InQ
 * (manager thread -> core thread). The design matches the classic
 * Lamport queue with C++11 acquire/release pairs; capacity is rounded
 * up to a power of two so index wrapping is a mask.
 */

#ifndef SLACKSIM_UTIL_SPSC_QUEUE_HH
#define SLACKSIM_UTIL_SPSC_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <vector>

#include "util/logging.hh"

namespace slacksim {

/**
 * Bounded SPSC FIFO. Exactly one thread may call push()/full(); exactly
 * one (possibly different) thread may call pop()/front()/empty().
 * The quiesced*() helpers may only be used while both sides are parked
 * (e.g. during checkpoint/rollback).
 */
template <typename T>
class SpscQueue
{
  public:
    /** @param capacity minimum number of storable elements. */
    explicit SpscQueue(std::size_t capacity = 1024)
        : mask_(roundUpPow2(capacity + 1) - 1),
          slots_(mask_ + 1)
    {
    }

    SpscQueue(const SpscQueue &) = delete;
    SpscQueue &operator=(const SpscQueue &) = delete;

    /** Producer: append an element. @return false when full. */
    bool
    push(const T &value)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t next = (tail + 1) & mask_;
        if (next == head_.load(std::memory_order_acquire))
            return false;
        slots_[tail] = value;
        tail_.store(next, std::memory_order_release);
        return true;
    }

    /** Consumer: @return pointer to the oldest element, or nullptr. */
    const T *
    front() const
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head == tail_.load(std::memory_order_acquire))
            return nullptr;
        return &slots_[head];
    }

    /** Consumer: remove the oldest element. @return false if empty. */
    bool
    pop(T &out)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head == tail_.load(std::memory_order_acquire))
            return false;
        out = slots_[head];
        head_.store((head + 1) & mask_, std::memory_order_release);
        return true;
    }

    /** Consumer: drop the oldest element (must exist). */
    void
    popFront()
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        SLACKSIM_ASSERT(head != tail_.load(std::memory_order_acquire),
                        "popFront on empty SpscQueue");
        head_.store((head + 1) & mask_, std::memory_order_release);
    }

    /** Consumer-side emptiness check. */
    bool
    empty() const
    {
        return head_.load(std::memory_order_relaxed) ==
               tail_.load(std::memory_order_acquire);
    }

    /** Producer-side fullness check. */
    bool
    full() const
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        return ((tail + 1) & mask_) ==
               head_.load(std::memory_order_acquire);
    }

    /** Approximate element count (exact when quiesced). */
    std::size_t
    size() const
    {
        const std::size_t head = head_.load(std::memory_order_acquire);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        return (tail - head) & mask_;
    }

    /** Maximum number of storable elements. */
    std::size_t capacity() const { return mask_; }

    /**
     * Copy the queue contents front-to-back. Requires both endpoints
     * to be quiescent (checkpoint path only).
     */
    std::vector<T>
    quiescedContents() const
    {
        std::vector<T> out;
        std::size_t head = head_.load(std::memory_order_acquire);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        while (head != tail) {
            out.push_back(slots_[head]);
            head = (head + 1) & mask_;
        }
        return out;
    }

    /**
     * Replace the queue contents. Requires both endpoints to be
     * quiescent (rollback path only).
     */
    void
    quiescedAssign(const std::vector<T> &items)
    {
        SLACKSIM_ASSERT(items.size() <= capacity(),
                        "quiescedAssign overflow");
        head_.store(0, std::memory_order_relaxed);
        tail_.store(0, std::memory_order_relaxed);
        std::size_t tail = 0;
        for (const T &item : items) {
            slots_[tail] = item;
            tail = (tail + 1) & mask_;
        }
        tail_.store(tail, std::memory_order_release);
    }

  private:
    static std::size_t
    roundUpPow2(std::size_t v)
    {
        std::size_t p = 1;
        while (p < v)
            p <<= 1;
        return p;
    }

    const std::size_t mask_;
    std::vector<T> slots_;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_SPSC_QUEUE_HH
