/**
 * @file
 * Bounded lock-free single-producer/single-consumer ring buffer.
 *
 * Used for the per-core OutQ (core thread -> manager thread) and InQ
 * (manager thread -> core thread). The design matches the classic
 * Lamport queue with C++11 acquire/release pairs; capacity is rounded
 * up to a power of two so index wrapping is a mask.
 *
 * Two refinements over the textbook queue keep the hot paths cheap:
 *
 *  - **Cached index mirrors.** The producer keeps a non-atomic copy
 *    of the consumer's head (and vice versa) and only reloads the
 *    remote atomic when the cached value makes the queue look
 *    full/empty. A producer therefore pays one remote acquire load
 *    per *wraparound's worth* of elements instead of one per push —
 *    the cache line holding the remote index stops ping-ponging
 *    between the two cores.
 *
 *  - **Batch operations.** pushN()/popN()/consumeAll() move a whole
 *    run of elements under a single acquire/release index pair, so
 *    the fence and index-publication cost is amortized across the
 *    batch (the manager pumps bursts of events, not single ones).
 */

#ifndef SLACKSIM_UTIL_SPSC_QUEUE_HH
#define SLACKSIM_UTIL_SPSC_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <vector>

#include "util/logging.hh"

namespace slacksim {

/**
 * Bounded SPSC FIFO. Exactly one thread may call the producer
 * operations push()/pushN()/full(); exactly one (possibly different)
 * thread may call the consumer operations
 * pop()/popN()/consumeAll()/front()/popFront()/empty().
 * The quiesced*() helpers may only be used while both sides are parked
 * (e.g. during checkpoint/rollback).
 */
template <typename T>
class SpscQueue
{
  public:
    /** @param capacity minimum number of storable elements. */
    explicit SpscQueue(std::size_t capacity = 1024)
        : mask_(roundUpPow2(capacity + 1) - 1),
          slots_(mask_ + 1)
    {
        // The index arithmetic below relies on the slot count being a
        // power of two (wrapping is a mask, and head/tail distances
        // stay exact modulo the ring size).
        SLACKSIM_ASSERT((slots_.size() & (slots_.size() - 1)) == 0,
                        "SpscQueue slot count must be a power of two");
        SLACKSIM_ASSERT(mask_ + 1 == slots_.size(),
                        "SpscQueue mask/slot mismatch");
    }

    SpscQueue(const SpscQueue &) = delete;
    SpscQueue &operator=(const SpscQueue &) = delete;

    /** Producer: append an element. @return false when full. */
    bool
    push(const T &value)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t next = (tail + 1) & mask_;
        if (next == headCache_) {
            headCache_ = head_.load(std::memory_order_acquire);
            if (next == headCache_)
                return false;
        }
        slots_[tail] = value;
        tail_.store(next, std::memory_order_release);
        return true;
    }

    /**
     * Producer: append up to @p n elements from @p items under one
     * index publication. @return the number actually appended (less
     * than @p n only when the queue filled up).
     */
    std::size_t
    pushN(const T *items, std::size_t n)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t free = (headCache_ - tail - 1) & mask_;
        if (free < n) {
            headCache_ = head_.load(std::memory_order_acquire);
            free = (headCache_ - tail - 1) & mask_;
        }
        const std::size_t count = n < free ? n : free;
        for (std::size_t i = 0; i < count; ++i)
            slots_[(tail + i) & mask_] = items[i];
        if (count) {
            tail_.store((tail + count) & mask_,
                        std::memory_order_release);
        }
        return count;
    }

    /** Consumer: @return pointer to the oldest element, or nullptr. */
    const T *
    front() const
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head == tailCache_) {
            tailCache_ = tail_.load(std::memory_order_acquire);
            if (head == tailCache_)
                return nullptr;
        }
        return &slots_[head];
    }

    /** Consumer: remove the oldest element. @return false if empty. */
    bool
    pop(T &out)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head == tailCache_) {
            tailCache_ = tail_.load(std::memory_order_acquire);
            if (head == tailCache_)
                return false;
        }
        out = slots_[head];
        head_.store((head + 1) & mask_, std::memory_order_release);
        return true;
    }

    /**
     * Consumer: remove up to @p max elements into @p out under one
     * index publication. @return the number removed.
     */
    std::size_t
    popN(T *out, std::size_t max)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        std::size_t avail = (tailCache_ - head) & mask_;
        if (avail < max) {
            tailCache_ = tail_.load(std::memory_order_acquire);
            avail = (tailCache_ - head) & mask_;
        }
        const std::size_t count = max < avail ? max : avail;
        for (std::size_t i = 0; i < count; ++i)
            out[i] = slots_[(head + i) & mask_];
        if (count) {
            head_.store((head + count) & mask_,
                        std::memory_order_release);
        }
        return count;
    }

    /**
     * Consumer: invoke @p fn on every currently visible element in
     * FIFO order, then free all their slots with one index
     * publication. Elements pushed while the drain runs are picked up
     * by the next call. @return the number consumed.
     *
     * @p fn must not touch this queue (the slots are still occupied
     * while it runs).
     */
    template <typename Fn>
    std::size_t
    consumeAll(Fn &&fn)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        tailCache_ = tail;
        std::size_t count = 0;
        for (std::size_t i = head; i != tail; i = (i + 1) & mask_) {
            fn(static_cast<const T &>(slots_[i]));
            ++count;
        }
        if (count)
            head_.store(tail, std::memory_order_release);
        return count;
    }

    /** Consumer: drop the oldest element (must exist). */
    void
    popFront()
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        SLACKSIM_ASSERT(head != tail_.load(std::memory_order_acquire),
                        "popFront on empty SpscQueue");
        head_.store((head + 1) & mask_, std::memory_order_release);
    }

    /** Consumer-side emptiness check. */
    bool
    empty() const
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head != tailCache_)
            return false;
        tailCache_ = tail_.load(std::memory_order_acquire);
        return head == tailCache_;
    }

    /** Producer: @return true when at least @p n more elements fit. */
    bool
    hasFreeSpace(std::size_t n) const
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t free = (headCache_ - tail - 1) & mask_;
        if (free < n) {
            headCache_ = head_.load(std::memory_order_acquire);
            free = (headCache_ - tail - 1) & mask_;
        }
        return free >= n;
    }

    /** Producer-side fullness check. */
    bool
    full() const
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t next = (tail + 1) & mask_;
        if (next != headCache_)
            return false;
        headCache_ = head_.load(std::memory_order_acquire);
        return next == headCache_;
    }

    /**
     * Element count. Both indices are loaded with acquire order, but
     * they cannot be read atomically *together*, so while the other
     * endpoint is live the result is a snapshot that may already be
     * stale by one in-flight element in either direction. It is exact
     * only when both endpoints are quiesced (checkpoint paths) or
     * when called by the sole endpoint that mutates the queue.
     */
    std::size_t
    size() const
    {
        const std::size_t head = head_.load(std::memory_order_acquire);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        return (tail - head) & mask_;
    }

    /** Maximum number of storable elements. */
    std::size_t capacity() const { return mask_; }

    /**
     * Copy the queue contents front-to-back. Requires both endpoints
     * to be quiescent (checkpoint path only).
     */
    std::vector<T>
    quiescedContents() const
    {
        std::vector<T> out;
        std::size_t head = head_.load(std::memory_order_acquire);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        while (head != tail) {
            out.push_back(slots_[head]);
            head = (head + 1) & mask_;
        }
        return out;
    }

    /**
     * Replace the queue contents. Requires both endpoints to be
     * quiescent (rollback path only).
     */
    void
    quiescedAssign(const std::vector<T> &items)
    {
        SLACKSIM_ASSERT(items.size() <= capacity(),
                        "quiescedAssign overflow");
        head_.store(0, std::memory_order_relaxed);
        tail_.store(0, std::memory_order_relaxed);
        // The mirrors are conservative (they make the queue look
        // *more* full/empty than it is), so resetting them here while
        // everything is parked is safe for both endpoints.
        headCache_ = 0;
        tailCache_ = 0;
        std::size_t tail = 0;
        for (const T &item : items) {
            slots_[tail] = item;
            tail = (tail + 1) & mask_;
        }
        tail_.store(tail, std::memory_order_release);
    }

  private:
    static std::size_t
    roundUpPow2(std::size_t v)
    {
        std::size_t p = 1;
        while (p < v)
            p <<= 1;
        return p;
    }

    const std::size_t mask_;
    std::vector<T> slots_;
    /** Consumer-owned line: real head plus the consumer's cached view
     *  of the producer's tail. */
    alignas(64) std::atomic<std::size_t> head_{0};
    mutable std::size_t tailCache_ = 0;
    /** Producer-owned line: real tail plus the producer's cached view
     *  of the consumer's head. */
    alignas(64) std::atomic<std::size_t> tail_{0};
    mutable std::size_t headCache_ = 0;
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_SPSC_QUEUE_HH
