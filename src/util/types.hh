/**
 * @file
 * Fundamental scalar types shared by every SlackSim module.
 */

#ifndef SLACKSIM_UTIL_TYPES_HH
#define SLACKSIM_UTIL_TYPES_HH

#include <cstdint>
#include <limits>

namespace slacksim {

/** Simulated (target) time, in target clock cycles. */
using Tick = std::uint64_t;

/** A tick value that is larger than any reachable simulated time. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Target physical address (byte granularity). */
using Addr = std::uint64_t;

/** Index of a target core (0-based). */
using CoreId = std::uint32_t;

/** Invalid / "no core" marker. */
constexpr CoreId invalidCore = std::numeric_limits<CoreId>::max();

/** Identifier of a lock or barrier object in the workload. */
using SyncId = std::uint32_t;

/** Monotone sequence number used for deterministic tie-breaking. */
using SeqNum = std::uint64_t;

} // namespace slacksim

#endif // SLACKSIM_UTIL_TYPES_HH
