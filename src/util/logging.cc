/**
 * @file
 * Implementation of the logging helpers.
 */

#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <exception>

namespace slacksim {

namespace {

std::atomic<bool> quietFlag{false};

} // namespace

void
setQuietLogging(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
quietLogging()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (quietLogging())
        return;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (quietLogging())
        return;
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace slacksim
