/**
 * @file
 * Implementation of the logging helpers.
 */

#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <exception>

namespace slacksim {

namespace {

std::atomic<bool> quietFlag{false};

/** Per-thread log attribution (see setLogThreadContext). */
struct LogThreadContext
{
    std::string role;
    const std::atomic<std::uint64_t> *cycle = nullptr;
};

thread_local LogThreadContext logContext;

} // namespace

void
setQuietLogging(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
quietLogging()
{
    return quietFlag.load(std::memory_order_relaxed);
}

void
setLogThreadContext(const std::string &role,
                    const std::atomic<std::uint64_t> *cycle)
{
    logContext.role = role;
    logContext.cycle = cycle;
}

void
clearLogThreadContext()
{
    logContext.role.clear();
    logContext.cycle = nullptr;
}

std::string
logThreadPrefix()
{
    if (logContext.role.empty())
        return "";
    std::string prefix = "[" + logContext.role;
    if (logContext.cycle) {
        prefix += " @" + std::to_string(logContext.cycle->load(
                             std::memory_order_relaxed));
    }
    prefix += "] ";
    return prefix;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s%s (%s:%d)\n",
                 logThreadPrefix().c_str(), msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s%s (%s:%d)\n",
                 logThreadPrefix().c_str(), msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (quietLogging())
        return;
    std::fprintf(stderr, "warn: %s%s\n", logThreadPrefix().c_str(),
                 msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (quietLogging())
        return;
    std::fprintf(stderr, "info: %s%s\n", logThreadPrefix().c_str(),
                 msg.c_str());
}

} // namespace detail

} // namespace slacksim
