/**
 * @file
 * Minimal command-line option parser used by the examples and bench
 * harnesses: accepts "--key=value" and "--flag" arguments.
 */

#ifndef SLACKSIM_UTIL_OPTIONS_HH
#define SLACKSIM_UTIL_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace slacksim {

/** Classic dynamic-programming edit distance between two words. */
std::size_t editDistance(const std::string &a, const std::string &b);

/**
 * Closest plausible match to @p word among @p candidates, or "" when
 * nothing is close enough to read as a typo (distance above
 * max(2, len/3) reads as a different word). Shared by the CLI flag
 * validator and the serve job-spec validator so both reject unknown
 * names with the same did-you-mean diagnostics.
 */
std::string didYouMean(const std::string &word,
                       const std::vector<std::string> &candidates);

/** One documented command-line flag (for --help and validation). */
struct OptionSpec
{
    const char *key;       //!< flag name without the leading "--"
    const char *valueHint; //!< "" for boolean flags, else e.g. "N"
    const char *help;      //!< one-line description
};

/** Parsed command line. */
class Options
{
  public:
    /** Parse argv; unknown positional arguments are collected. */
    Options(int argc, const char *const *argv);

    /**
     * Validate against a flag registry: prints usage and exits 0 when
     * --help was given; rejects any --flag not in @p known (or
     * "help") with a fatal() instead of silently ignoring it.
     * @param tool one-line tool description shown atop --help
     */
    void enforceKnown(const std::string &tool,
                      const std::vector<OptionSpec> &known) const;

    /** Print a usage summary built from @p known. */
    void printUsage(const std::string &tool,
                    const std::vector<OptionSpec> &known) const;

    /** @return true when --key was given (with or without a value). */
    bool has(const std::string &key) const;

    /** @return value of --key=value or @p fallback. When the flag was
     *  repeated, the last occurrence wins (see getAll). */
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;

    /** @return every value given for a repeatable --key=value flag,
     *  in command-line order (empty when the flag was absent). */
    std::vector<std::string> getAll(const std::string &key) const;

    /** Typed getters; fatal on a malformed value (empty, negative,
     *  trailing garbage like "5x" — never silently truncated). */
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    /** @return positional (non --option) arguments. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** @return program name (argv[0]). */
    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> values_;
    /** Every (key, value) pair in argv order: repeatable flags (e.g.
     *  --fault-spec) must not be last-one-wins collapsed. */
    std::vector<std::pair<std::string, std::string>> ordered_;
    std::vector<std::string> positional_;
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_OPTIONS_HH
