/**
 * @file
 * Deterministic, snapshot-friendly pseudo random number generation.
 *
 * The simulator must be bit-reproducible across runs and across
 * checkpoint/rollback, so all randomness flows through this small
 * xoshiro256** generator whose entire state is four 64-bit words.
 */

#ifndef SLACKSIM_UTIL_RNG_HH
#define SLACKSIM_UTIL_RNG_HH

#include <array>
#include <cstdint>

#include "util/logging.hh"

namespace slacksim {

/**
 * xoshiro256** generator (Blackman & Vigna) with splitmix64 seeding.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; seed 0 is remapped internally. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        reseed(seed);
    }

    /** Re-initialize the state from a seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed ? seed : 0x106689d45497fdb5ull;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next64()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return a uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        SLACKSIM_ASSERT(bound != 0, "Rng::below(0)");
        // Lemire-style rejection-free reduction is fine here: the bias
        // for bounds << 2^64 is negligible for workload generation.
        return next64() % bound;
    }

    /** @return a uniform value in [lo, hi] inclusive. */
    std::uint64_t
    inRange(std::uint64_t lo, std::uint64_t hi)
    {
        SLACKSIM_ASSERT(lo <= hi, "Rng::inRange bad range");
        return lo + below(hi - lo + 1);
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return (next64() >> 11) * 0x1.0p-53;
    }

    /** @return true with the given probability (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Raw state access for snapshotting. */
    const std::array<std::uint64_t, 4> &rawState() const { return state_; }

    /** Restore raw state from a snapshot. */
    void setRawState(const std::array<std::uint64_t, 4> &s) { state_ = s; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_RNG_HH
