/**
 * @file
 * Tournament (winner) tree for k-way merging of sorted streams.
 *
 * The manager's sorted event service merges per-core runs that are
 * already timestamp-monotone, so a global binary heap over *elements*
 * does log(N) work per pushed element for nothing. This tree plays
 * matches between *streams* instead: appending to a non-empty stream
 * is O(1) (the stream's head, and therefore every match, is
 * unchanged) and only consuming the winner or filling an empty stream
 * replays one leaf-to-root path of log2(K) matches.
 *
 * A winner tree is used rather than the classic loser tree because it
 * supports updating an arbitrary leaf (a drained stream refilling
 * out of turn), which the loser tree's replay only allows for the
 * current winner.
 *
 * The tree stores stream indices only; the caller owns the streams
 * and supplies a comparator over indices. The comparator must treat
 * an exhausted stream as an infinite key (it never precedes
 * anything).
 */

#ifndef SLACKSIM_UTIL_MERGE_TREE_HH
#define SLACKSIM_UTIL_MERGE_TREE_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace slacksim {

/**
 * K-way merge tournament tree over stream indices [0, streams).
 *
 * @tparam Less callable: less(a, b) is true when stream a's current
 * head strictly precedes stream b's. An exhausted stream must never
 * precede anything (infinite key), so less() over two exhausted
 * streams is false both ways.
 */
template <typename Less>
class MergeTree
{
  public:
    /** Leaf marker for padding slots (no stream). */
    static constexpr std::uint32_t none = 0xffffffffu;

    MergeTree(std::uint32_t streams, Less less)
        : less_(less)
    {
        reset(streams);
    }

    /** Rebuild for @p streams streams (all initially exhausted). */
    void
    reset(std::uint32_t streams)
    {
        streams_ = streams;
        k_ = 1;
        while (k_ < streams_)
            k_ <<= 1;
        nodes_.assign(2 * k_, none);
        for (std::uint32_t s = 0; s < streams_; ++s)
            nodes_[k_ + s] = s;
        rebuild();
    }

    /**
     * @return the stream whose head precedes all others, or an
     * arbitrary exhausted stream (possibly none) when every stream is
     * exhausted. The caller tracks whether anything is staged at all.
     */
    std::uint32_t winner() const { return nodes_[1]; }

    /**
     * Replay the matches on stream @p s's path after its head changed
     * (consumed, refilled from empty, or drained). O(log K).
     */
    void
    update(std::uint32_t s)
    {
        SLACKSIM_ASSERT(s < streams_, "MergeTree update out of range");
        for (std::uint32_t n = (k_ + s) >> 1; n >= 1; n >>= 1)
            nodes_[n] = play(nodes_[2 * n], nodes_[2 * n + 1]);
    }

    /** Replay every match (bulk restore). O(K). */
    void
    rebuild()
    {
        for (std::uint32_t n = k_ - 1; n >= 1; --n)
            nodes_[n] = play(nodes_[2 * n], nodes_[2 * n + 1]);
    }

  private:
    std::uint32_t
    play(std::uint32_t a, std::uint32_t b) const
    {
        if (a == none)
            return b;
        if (b == none)
            return a;
        return less_(b, a) ? b : a;
    }

    std::uint32_t k_ = 0;       //!< leaf count (streams_ padded to 2^n)
    std::uint32_t streams_ = 0;
    /** nodes_[1] is the root; leaf for stream s is nodes_[k_ + s];
     *  each internal node holds the winning stream of its subtree. */
    std::vector<std::uint32_t> nodes_;
    Less less_;
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_MERGE_TREE_HH
