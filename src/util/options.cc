/**
 * @file
 * Options implementation.
 */

#include "util/options.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/build_info.hh"
#include "util/logging.hh"

namespace slacksim {

/** Two rolling rows of the classic dynamic program. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1);
    std::vector<std::size_t> cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

std::string
didYouMean(const std::string &word,
           const std::vector<std::string> &candidates)
{
    std::string best;
    std::size_t best_d = std::max<std::size_t>(2, word.size() / 3) + 1;
    for (const auto &cand : candidates) {
        const std::size_t d = editDistance(word, cand);
        if (d < best_d) {
            best_d = d;
            best = cand;
        }
    }
    return best;
}

namespace {

/** Closest known flag to @p key (including "help"), or "". */
std::string
closestKnown(const std::string &key,
             const std::vector<OptionSpec> &known)
{
    std::vector<std::string> candidates;
    candidates.reserve(known.size() + 1);
    for (const auto &spec : known)
        candidates.emplace_back(spec.key);
    candidates.emplace_back("help");
    candidates.emplace_back("version");
    return didYouMean(key, candidates);
}

} // namespace

Options::Options(int argc, const char *const *argv)
{
    if (argc > 0)
        program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            const auto eq = arg.find('=');
            std::string key, value;
            if (eq == std::string::npos) {
                key = arg.substr(2);
            } else {
                key = arg.substr(2, eq - 2);
                value = arg.substr(eq + 1);
            }
            values_[key] = value;
            ordered_.emplace_back(std::move(key), std::move(value));
        } else {
            positional_.push_back(arg);
        }
    }
}

void
Options::printUsage(const std::string &tool,
                    const std::vector<OptionSpec> &known) const
{
    std::printf("%s\n\nusage: %s [--flag[=value] ...]\n\noptions:\n",
                tool.c_str(), program_.c_str());
    std::size_t width = 0;
    for (const auto &spec : known) {
        std::size_t w = std::string(spec.key).size();
        if (spec.valueHint[0])
            w += 1 + std::string(spec.valueHint).size();
        width = std::max(width, w);
    }
    for (const auto &spec : known) {
        std::string lhs = spec.key;
        if (spec.valueHint[0])
            lhs += std::string("=") + spec.valueHint;
        std::printf("  --%-*s  %s\n", static_cast<int>(width),
                    lhs.c_str(), spec.help);
    }
    std::printf("  --%-*s  %s\n", static_cast<int>(width), "help",
                "show this message and exit");
    std::printf("  --%-*s  %s\n", static_cast<int>(width), "version",
                "print build provenance and exit");
}

void
Options::enforceKnown(const std::string &tool,
                      const std::vector<OptionSpec> &known) const
{
    if (has("help")) {
        printUsage(tool, known);
        std::exit(0);
    }
    if (has("version")) {
        // Centralized here so every binary that parses flags gets the
        // same build-provenance line for free.
        const auto cut = tool.find(':');
        const std::string name =
            cut == std::string::npos ? tool : tool.substr(0, cut);
        std::printf("%s\n", buildInfoLine(name.c_str()).c_str());
        std::exit(0);
    }
    for (const auto &[key, value] : values_) {
        (void)value;
        if (key == "help" || key == "version")
            continue;
        const bool ok = std::any_of(
            known.begin(), known.end(),
            [&key](const OptionSpec &spec) { return key == spec.key; });
        if (!ok) {
            const std::string hint = closestKnown(key, known);
            if (!hint.empty()) {
                SLACKSIM_FATAL("unknown option --", key,
                               " (did you mean --", hint,
                               "? run with --help for the flag list)");
            }
            SLACKSIM_FATAL("unknown option --", key,
                           " (run with --help for the flag list)");
        }
    }
}

bool
Options::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Options::get(const std::string &key, const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

std::vector<std::string>
Options::getAll(const std::string &key) const
{
    std::vector<std::string> all;
    for (const auto &[k, v] : ordered_) {
        if (k == key)
            all.push_back(v);
    }
    return all;
}

std::uint64_t
Options::getUint(const std::string &key, std::uint64_t fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    // strtoull quietly accepts "" (returns 0 with end==start) and
    // negative values (wraps modulo 2^64): both must be rejected, a
    // mistyped "--slack=-5" silently simulating with slack 2^64-5
    // would be an unbounded-slack run wearing a bounded flag.
    const std::string &s = it->second;
    if (s.empty() || s[0] == '-')
        SLACKSIM_FATAL("option --", key,
                       " expects a non-negative integer, got '", s,
                       "'");
    char *end = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
    if (!end || end == s.c_str() || *end != '\0' || errno == ERANGE)
        SLACKSIM_FATAL("option --", key, " expects an integer, got '",
                       s, "'");
    return v;
}

double
Options::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    const std::string &s = it->second;
    if (s.empty())
        SLACKSIM_FATAL("option --", key, " expects a number, got ''");
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (!end || end == s.c_str() || *end != '\0')
        SLACKSIM_FATAL("option --", key, " expects a number, got '",
                       s, "'");
    return v;
}

bool
Options::getBool(const std::string &key, bool fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    if (it->second.empty() || it->second == "1" || it->second == "true")
        return true;
    if (it->second == "0" || it->second == "false")
        return false;
    SLACKSIM_FATAL("option --", key, " expects a boolean, got '",
                   it->second, "'");
}

} // namespace slacksim
