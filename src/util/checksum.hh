/**
 * @file
 * Snapshot integrity: an XXH64-style hash plus seal/verify helpers
 * for checkpoint arenas.
 *
 * A retained in-memory checkpoint sits in host RAM for the whole
 * interval between captures; a stray write (host bug, emulated fault)
 * silently corrupts the rollback image and a later restore would then
 * scatter garbage through the simulated world before any section
 * marker fires. sealSnapshot() appends a length-prefixed checksum
 * trailer to a finished arena and verifySnapshot() re-derives it
 * before a single byte is deserialized, so a bad image is discarded
 * up front instead of half-restored (see DESIGN.md §9).
 *
 * Trailer layout (little-endian, appended after the payload):
 *   u64 payload length in bytes | u64 xxh64(payload, seed=length)
 * Seeding the hash with the length binds the two fields together: a
 * truncation that happens to end on a stale trailer still fails.
 */

#ifndef SLACKSIM_UTIL_CHECKSUM_HH
#define SLACKSIM_UTIL_CHECKSUM_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

namespace slacksim {

namespace detail {

constexpr std::uint64_t xxhPrime1 = 0x9E3779B185EBCA87ull;
constexpr std::uint64_t xxhPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr std::uint64_t xxhPrime3 = 0x165667B19E3779F9ull;
constexpr std::uint64_t xxhPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr std::uint64_t xxhPrime5 = 0x27D4EB2F165667C5ull;

inline std::uint64_t
xxhRotl(std::uint64_t v, int bits)
{
    return (v << bits) | (v >> (64 - bits));
}

inline std::uint64_t
xxhRead64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline std::uint32_t
xxhRead32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline std::uint64_t
xxhRound(std::uint64_t acc, std::uint64_t lane)
{
    return xxhRotl(acc + lane * xxhPrime2, 31) * xxhPrime1;
}

inline std::uint64_t
xxhMerge(std::uint64_t h, std::uint64_t acc)
{
    return (h ^ xxhRound(0, acc)) * xxhPrime1 + xxhPrime4;
}

} // namespace detail

/** XXH64 of @p len bytes at @p data under @p seed. */
inline std::uint64_t
xxh64(const void *data, std::size_t len, std::uint64_t seed = 0)
{
    using namespace detail;
    const auto *p = static_cast<const std::uint8_t *>(data);
    const std::uint8_t *const end = p + len;
    std::uint64_t h;

    if (len >= 32) {
        std::uint64_t v1 = seed + xxhPrime1 + xxhPrime2;
        std::uint64_t v2 = seed + xxhPrime2;
        std::uint64_t v3 = seed;
        std::uint64_t v4 = seed - xxhPrime1;
        const std::uint8_t *const limit = end - 32;
        do {
            v1 = xxhRound(v1, xxhRead64(p));
            v2 = xxhRound(v2, xxhRead64(p + 8));
            v3 = xxhRound(v3, xxhRead64(p + 16));
            v4 = xxhRound(v4, xxhRead64(p + 24));
            p += 32;
        } while (p <= limit);
        h = xxhRotl(v1, 1) + xxhRotl(v2, 7) + xxhRotl(v3, 12) +
            xxhRotl(v4, 18);
        h = xxhMerge(h, v1);
        h = xxhMerge(h, v2);
        h = xxhMerge(h, v3);
        h = xxhMerge(h, v4);
    } else {
        h = seed + xxhPrime5;
    }

    h += static_cast<std::uint64_t>(len);
    while (p + 8 <= end) {
        h ^= xxhRound(0, xxhRead64(p));
        h = xxhRotl(h, 27) * xxhPrime1 + xxhPrime4;
        p += 8;
    }
    if (p + 4 <= end) {
        h ^= static_cast<std::uint64_t>(xxhRead32(p)) * xxhPrime1;
        h = xxhRotl(h, 23) * xxhPrime2 + xxhPrime3;
        p += 4;
    }
    while (p < end) {
        h ^= static_cast<std::uint64_t>(*p) * xxhPrime5;
        h = xxhRotl(h, 11) * xxhPrime1;
        ++p;
    }

    h ^= h >> 33;
    h *= xxhPrime2;
    h ^= h >> 29;
    h *= xxhPrime3;
    h ^= h >> 32;
    return h;
}

/** Bytes sealSnapshot() appends: u64 length + u64 checksum. */
inline constexpr std::size_t snapshotTrailerBytes = 16;

/** Seal a finished snapshot arena by appending the integrity
 *  trailer. The payload is everything currently in @p buf. */
inline void
sealSnapshot(std::vector<std::uint8_t> &buf)
{
    const std::uint64_t len = buf.size();
    const std::uint64_t sum = xxh64(buf.data(), buf.size(), len);
    std::uint8_t trailer[snapshotTrailerBytes];
    std::memcpy(trailer, &len, sizeof(len));
    std::memcpy(trailer + sizeof(len), &sum, sizeof(sum));
    buf.insert(buf.end(), trailer, trailer + sizeof(trailer));
}

/**
 * Verify a sealed arena. @return the payload size when the trailer
 * is present, the recorded length matches the arena, and the
 * checksum re-derives; std::nullopt on any mismatch (corruption or
 * truncation). Never touches payload interpretation — safe to call
 * on arbitrary bytes.
 */
inline std::optional<std::size_t>
verifySnapshot(const std::vector<std::uint8_t> &buf)
{
    if (buf.size() < snapshotTrailerBytes)
        return std::nullopt;
    const std::size_t payload = buf.size() - snapshotTrailerBytes;
    std::uint64_t len = 0;
    std::uint64_t sum = 0;
    std::memcpy(&len, buf.data() + payload, sizeof(len));
    std::memcpy(&sum, buf.data() + payload + sizeof(len), sizeof(sum));
    if (len != payload)
        return std::nullopt;
    if (xxh64(buf.data(), payload, len) != sum)
        return std::nullopt;
    return payload;
}

} // namespace slacksim

#endif // SLACKSIM_UTIL_CHECKSUM_HH
