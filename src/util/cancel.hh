/**
 * @file
 * Cooperative cancellation for long-running simulations.
 *
 * A CancelToken is the handle a controller (the job server, a
 * timeout watchdog, a signal handler's drain loop) uses to ask a
 * running engine to stop early. Cancellation is cooperative: the
 * engines poll cancelled() at their manager-loop boundary, tear down
 * cleanly (joining workers, draining queues) and return a partial
 * RunResult with `cancelled = true`, which the run report surfaces
 * as `"status": "cancelled"`.
 *
 * Because the parallel engine's manager can be asleep on its progress
 * board when the request arrives, the token carries a small waker
 * registry: the engine registers a callback that kicks its futexes,
 * requestCancel() invokes every registered waker, and the engine
 * removes the waker before tearing its wait structures down. Wakers
 * must be safe to invoke from any thread.
 */

#ifndef SLACKSIM_UTIL_CANCEL_HH
#define SLACKSIM_UTIL_CANCEL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace slacksim {

/** One cancellation request channel (controller -> engine). */
class CancelToken
{
  public:
    CancelToken() = default;

    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** @return true once cancellation has been requested. */
    bool
    cancelled() const
    {
        return flag_.load(std::memory_order_acquire);
    }

    /**
     * Request cancellation (idempotent) and invoke every waker.
     * Wakers run under the registry lock, so removeWaker() returning
     * guarantees the waker is not (and will never again be) running —
     * the property the engine's teardown depends on. Wakers must
     * therefore be non-blocking kicks (futex notifies), never work.
     */
    void
    requestCancel()
    {
        flag_.store(true, std::memory_order_release);
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &entry : wakers_)
            entry.second();
    }

    /**
     * Register a waker invoked on requestCancel(). If cancellation
     * was already requested the waker fires immediately (so a late
     * registration cannot sleep through an earlier request).
     * @return an id for removeWaker().
     */
    std::uint64_t
    addWaker(std::function<void()> wake)
    {
        std::uint64_t id;
        {
            std::lock_guard<std::mutex> lock(mu_);
            id = nextWaker_++;
            wakers_.emplace_back(id, wake);
        }
        if (cancelled())
            wake();
        return id;
    }

    /** Remove a waker; after return it will never be invoked again. */
    void
    removeWaker(std::uint64_t id)
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto it = wakers_.begin(); it != wakers_.end(); ++it) {
            if (it->first == id) {
                wakers_.erase(it);
                return;
            }
        }
    }

    /** Re-arm a token for reuse (test helper; never mid-run). */
    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mu_);
        flag_.store(false, std::memory_order_release);
        wakers_.clear();
    }

  private:
    std::atomic<bool> flag_{false};
    mutable std::mutex mu_;
    std::uint64_t nextWaker_ = 1;
    std::vector<std::pair<std::uint64_t, std::function<void()>>>
        wakers_;
};

/** RAII waker registration. */
class ScopedWaker
{
  public:
    ScopedWaker(CancelToken *token, std::function<void()> wake)
        : token_(token)
    {
        if (token_)
            id_ = token_->addWaker(std::move(wake));
    }

    ~ScopedWaker()
    {
        if (token_)
            token_->removeWaker(id_);
    }

    ScopedWaker(const ScopedWaker &) = delete;
    ScopedWaker &operator=(const ScopedWaker &) = delete;

  private:
    CancelToken *token_ = nullptr;
    std::uint64_t id_ = 0;
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_CANCEL_HH
