/**
 * @file
 * Log2Histogram implementation.
 */

#include "util/histogram.hh"

#include <algorithm>
#include <ostream>

namespace slacksim {

std::uint64_t
Log2Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (std::uint32_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (static_cast<double>(seen) >= rank && buckets_[i])
            return std::min(bucketHigh(i), max_);
    }
    return max_;
}

void
Log2Histogram::add(const Log2Histogram &other)
{
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Log2Histogram::clear()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

void
Log2Histogram::print(std::ostream &os, const std::string &label) const
{
    os << label << ": n=" << count_ << " mean=" << mean()
       << " min=" << min() << " max=" << max_
       << " p50=" << percentile(50) << " p99=" << percentile(99)
       << "\n";
    if (count_ == 0)
        return;
    std::uint64_t peak = 0;
    for (const auto b : buckets_)
        peak = std::max(peak, b);
    for (std::uint32_t i = 0; i < buckets_.size(); ++i) {
        if (!buckets_[i])
            continue;
        const int width = static_cast<int>(
            40 * static_cast<double>(buckets_[i]) /
            static_cast<double>(peak));
        os << "  [" << bucketLow(i) << ", " << bucketHigh(i)
           << "]: " << buckets_[i] << " "
           << std::string(static_cast<std::size_t>(width), '#') << "\n";
    }
    os.flush();
}

} // namespace slacksim
