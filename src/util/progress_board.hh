/**
 * @file
 * Sharded progress counter with a futex-friendly sleep protocol.
 *
 * The parallel engine's original progress counter was a single
 * seq_cst fetch_add that every core and relay hammered once per
 * burst: one cache line ping-ponging across every host core, plus an
 * unconditional notify. This board gives each producer thread its own
 * padded slot — a bump is a relaxed store to a line nobody else
 * writes — and funnels sleep/wake through a separate generation word
 * that is only touched when somebody is actually asleep.
 *
 * Lost-wakeup safety is the classic Dekker store-buffering argument:
 * a producer stores its slot, then (seq_cst fence) reads the sleeper
 * count; a sleeper increments the sleeper count (seq_cst RMW), then
 * (seq_cst fence) re-reads the slot sum. At least one side must see
 * the other's write, so either the producer bumps the generation and
 * notifies, or the sleeper observes the new sum and never blocks.
 * The generation snapshot is taken *before* the re-check, so a bump
 * that lands between re-check and wait makes the wait return
 * immediately. All shared state lives on std::atomic, so the
 * protocol is TSan-clean by construction.
 */

#ifndef SLACKSIM_UTIL_PROGRESS_BOARD_HH
#define SLACKSIM_UTIL_PROGRESS_BOARD_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace slacksim {

/** Per-thread progress slots + generation word for sleepers. */
class ProgressBoard
{
  public:
    explicit ProgressBoard(std::uint32_t slots)
        : slots_(slots)
    {
        SLACKSIM_ASSERT(slots > 0, "ProgressBoard needs >= 1 slot");
    }

    ProgressBoard(const ProgressBoard &) = delete;
    ProgressBoard &operator=(const ProgressBoard &) = delete;

    /**
     * Record progress on @p slot (single writer per slot). A relaxed
     * store on a private line; the generation word is bumped and
     * notified only when a sleeper is registered.
     */
    void
    bump(std::uint32_t slot)
    {
        auto &s = slots_[slot].count;
        s.store(s.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (sleepers_.load(std::memory_order_relaxed) > 0) {
            gen_.fetch_add(1, std::memory_order_release);
            gen_.notify_all();
        }
    }

    /** Snapshot of total progress (relaxed; compare, don't order). */
    std::uint64_t
    sum() const
    {
        std::uint64_t total = 0;
        for (const Slot &s : slots_)
            total += s.count.load(std::memory_order_relaxed);
        return total;
    }

    /**
     * Block until progress moves past the @p seen snapshot (or a
     * wakeAll()/spurious wake). @p eligible is re-evaluated after
     * registering as a sleeper; return false from it to abort the
     * sleep (e.g. the world is pausing or stopping).
     */
    template <typename Pred>
    void
    sleep(std::uint64_t seen, Pred &&eligible)
    {
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        const std::uint64_t g = gen_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (sum() == seen && eligible())
            gen_.wait(g, std::memory_order_acquire);
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }

    /** Generation word snapshot (wakeups seen; forensics probes). */
    std::uint64_t
    generation() const
    {
        return gen_.load(std::memory_order_relaxed);
    }

    /** Wake every sleeper unconditionally (pause/stop paths). */
    void
    wakeAll()
    {
        gen_.fetch_add(1, std::memory_order_seq_cst);
        gen_.notify_all();
    }

  private:
    struct Slot
    {
        alignas(64) std::atomic<std::uint64_t> count{0};
    };

    std::vector<Slot> slots_;
    alignas(64) std::atomic<std::uint64_t> gen_{0};
    std::atomic<int> sleepers_{0};
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_PROGRESS_BOARD_HH
