/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - something happened that indicates a simulator bug; aborts.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits cleanly.
 * warn()   - functionality may not be modeled exactly, keep going.
 * inform() - plain status message.
 */

#ifndef SLACKSIM_UTIL_LOGGING_HH
#define SLACKSIM_UTIL_LOGGING_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace slacksim {

namespace detail {

/** Build a message string from any set of streamable arguments. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort on an internal simulator bug. */
#define SLACKSIM_PANIC(...)                                                 \
    ::slacksim::detail::panicImpl(__FILE__, __LINE__,                       \
        ::slacksim::detail::concatMessage(__VA_ARGS__))

/** Exit on an unrecoverable user/configuration error. */
#define SLACKSIM_FATAL(...)                                                 \
    ::slacksim::detail::fatalImpl(__FILE__, __LINE__,                       \
        ::slacksim::detail::concatMessage(__VA_ARGS__))

/** Emit a warning but keep simulating. */
#define SLACKSIM_WARN(...)                                                  \
    ::slacksim::detail::warnImpl(                                           \
        ::slacksim::detail::concatMessage(__VA_ARGS__))

/** Emit an informational status message. */
#define SLACKSIM_INFORM(...)                                                \
    ::slacksim::detail::informImpl(                                         \
        ::slacksim::detail::concatMessage(__VA_ARGS__))

/** Internal invariant check that survives NDEBUG builds. */
#define SLACKSIM_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            SLACKSIM_PANIC("assertion failed: " #cond " ", __VA_ARGS__);    \
        }                                                                   \
    } while (0)

/** Globally silence inform()/warn() output (benches use this). */
void setQuietLogging(bool quiet);

/** @return true when inform()/warn() output is suppressed. */
bool quietLogging();

/**
 * Attribute this thread's warn()/inform() lines: engine threads
 * register their role ("core 3", "manager", "relay 0") and optionally
 * a live target-clock source, so interleaved multi-threaded log lines
 * read "warn: [core 3 @12345] ..." instead of being anonymous.
 * @param cycle the thread's local clock, or nullptr when it has none;
 *   must stay valid until the context is cleared.
 */
void setLogThreadContext(const std::string &role,
                         const std::atomic<std::uint64_t> *cycle =
                             nullptr);

/** Drop this thread's log attribution (thread exit / end of run). */
void clearLogThreadContext();

/** @return this thread's "[role @cycle] " prefix, or "" if none. */
std::string logThreadPrefix();

} // namespace slacksim

#endif // SLACKSIM_UTIL_LOGGING_HH
