/**
 * @file
 * Host-thread ownership abstraction.
 *
 * The engines used to spawn-and-join a std::thread per simulated core
 * per run. Under the serve subsystem the same process runs thousands
 * of simulations, and paying thread creation plus teardown for every
 * core of every job is pure overhead — so engines now launch their
 * workers through a TaskRunner. The default ThreadSpawnRunner keeps
 * the historical behavior (one fresh thread per task); the serve
 * worker pool (serve/worker_pool.hh) implements the same interface on
 * persistent, reusable threads, where Handle::join() waits for task
 * completion without destroying the thread underneath it.
 *
 * Contract: launch() begins executing @p fn on some host thread,
 * concurrently with the caller. Handle::join() blocks until fn has
 * returned; destroying a Handle without join() is a bug (enforced by
 * the implementations). Tasks must not assume anything about the
 * hosting thread beyond "it is not the caller" — per-thread state
 * (log context, trace rings, fault bindings) is bound and unbound by
 * the task body itself.
 */

#ifndef SLACKSIM_UTIL_TASK_RUNNER_HH
#define SLACKSIM_UTIL_TASK_RUNNER_HH

#include <functional>
#include <memory>
#include <thread>
#include <utility>

#include "util/logging.hh"

namespace slacksim {

/** Where engine worker tasks execute. */
class TaskRunner
{
  public:
    /** A joinable handle to one launched task. */
    class Handle
    {
      public:
        virtual ~Handle() = default;
        /** Block until the task body returned. Call exactly once. */
        virtual void join() = 0;
    };

    virtual ~TaskRunner() = default;

    /** Start @p fn on a host thread; never blocks on fn itself. */
    virtual std::unique_ptr<Handle>
    launch(std::function<void()> fn) = 0;

    /** Short implementation name for logs/reports. */
    virtual const char *name() const = 0;
};

/** The classic one-thread-per-task runner (spawn/join per run). */
class ThreadSpawnRunner final : public TaskRunner
{
  public:
    std::unique_ptr<Handle>
    launch(std::function<void()> fn) override
    {
        class ThreadHandle final : public Handle
        {
          public:
            explicit ThreadHandle(std::function<void()> fn)
                : thread_(std::move(fn))
            {
            }

            ~ThreadHandle() override
            {
                SLACKSIM_ASSERT(!thread_.joinable(),
                                "TaskRunner handle dropped unjoined");
            }

            void join() override { thread_.join(); }

          private:
            std::thread thread_;
        };
        return std::make_unique<ThreadHandle>(std::move(fn));
    }

    const char *name() const override { return "thread-spawn"; }
};

} // namespace slacksim

#endif // SLACKSIM_UTIL_TASK_RUNNER_HH
