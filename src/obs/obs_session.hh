/**
 * @file
 * Per-run observability session: the glue both engines drive from
 * the manager thread. Owns the trace activation lifecycle (activate
 * before worker threads spawn, drain at checkpoint boundaries,
 * export + deactivate after the run) and the epoch metrics sampler
 * (snapshot the run state every sampling epoch, plus forced samples
 * at checkpoint/rollback edges so speculative transitions are never
 * missed between epochs).
 */

#ifndef SLACKSIM_OBS_OBS_SESSION_HH
#define SLACKSIM_OBS_OBS_SESSION_HH

#include <chrono>
#include <memory>

#include "obs/metrics.hh"
#include "obs/obs_config.hh"

namespace slacksim {

class SimSystem;
class Pacer;
class ManagerLogic;
struct HostStats;

namespace obs {

/** One run's observability state; all calls on the manager thread. */
class ObsSession
{
  public:
    /** References must outlive the session (engine members). */
    ObsSession(const ObsConfig &config, SimSystem &sys, Pacer &pacer,
               ManagerLogic &mgr, const HostStats &host);
    ~ObsSession();

    ObsSession(const ObsSession &) = delete;
    ObsSession &operator=(const ObsSession &) = delete;

    /**
     * Start the session: activates the tracer (when --trace-out is
     * configured), registers the calling thread under @p role, and
     * opens the engine-run span. Call before spawning core threads.
     */
    void begin(const char *role);

    /** @return true while the event tracer is recording this run. */
    bool tracing() const { return tracing_; }

    /** @return true when the metrics sampler is on. */
    bool metricsOn() const { return sampler_ != nullptr; }

    /** Sample the run state if the sampling epoch has elapsed. */
    void maybeSample(Tick global);

    /** Sample unconditionally (checkpoint / rollback edges). */
    void forceSample(Tick global);

    /** Drain the per-thread rings into the session accumulator
     *  (checkpoint boundaries; frees ring space mid-run). */
    void collectTrace();

    /**
     * Finish the run: final sample, close the engine-run span, write
     * the Chrome-trace JSON and metrics CSV files, release the
     * tracer. Idempotent.
     */
    void finish(Tick global);

  private:
    void sample(Tick global);
    std::uint64_t wallNowNs() const;

    ObsConfig config_;
    SimSystem &sys_;
    Pacer &pacer_;
    ManagerLogic &mgr_;
    const HostStats &host_;

    bool tracing_ = false;
    bool finished_ = false;
    std::unique_ptr<MetricsSampler> sampler_;
    std::chrono::steady_clock::time_point t0_{};
};

} // namespace obs
} // namespace slacksim

#endif // SLACKSIM_OBS_OBS_SESSION_HH
