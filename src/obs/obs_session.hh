/**
 * @file
 * Per-run observability session: the glue both engines drive from
 * the manager thread. Owns the trace activation lifecycle (activate
 * before worker threads spawn, drain at checkpoint boundaries,
 * export + deactivate after the run) and the epoch metrics sampler
 * (snapshot the run state every sampling epoch, plus forced samples
 * at checkpoint/rollback edges so speculative transitions are never
 * missed between epochs).
 *
 * Since the forensics layer landed, the session also owns the
 * ViolationLedger / AdaptiveDecisionLog (wired into the uncore, the
 * pacer and the checkpointer for the duration of the run) and the
 * optional stall watchdog; finish() folds all of it — plus the obs
 * layer's own overhead accounting — into a ForensicsData block that
 * collectResult() copies into the RunResult for the run report.
 */

#ifndef SLACKSIM_OBS_OBS_SESSION_HH
#define SLACKSIM_OBS_OBS_SESSION_HH

#include <chrono>
#include <memory>

#include "obs/flight_recorder.hh"
#include "obs/forensics.hh"
#include "obs/hw_counters.hh"
#include "obs/metrics.hh"
#include "obs/obs_config.hh"

namespace slacksim {

class SimSystem;
class Pacer;
class ManagerLogic;
class Checkpointer;
struct HostStats;

namespace obs {

/** One run's observability state; all calls on the manager thread. */
class ObsSession
{
  public:
    /** References must outlive the session (engine members). */
    ObsSession(const ObsConfig &config, SimSystem &sys, Pacer &pacer,
               ManagerLogic &mgr, Checkpointer &ckpt,
               const HostStats &host);
    ~ObsSession();

    ObsSession(const ObsSession &) = delete;
    ObsSession &operator=(const ObsSession &) = delete;

    /**
     * Start the session: activates the tracer (when --trace-out is
     * configured), registers the calling thread under @p role, opens
     * the engine-run span, wires the forensics ledgers into the
     * uncore/pacer/checkpointer and creates the stall watchdog (when
     * --watchdog-ms is set; the engine still registers workers and
     * starts it). Call before spawning core threads AND before the
     * initial checkpoint, so the ledger is part of every snapshot.
     */
    void begin(const char *role);

    /** @return true while the event tracer is recording this run. */
    bool tracing() const { return tracing_; }

    /** @return true when the metrics sampler is on. */
    bool metricsOn() const { return sampler_ != nullptr; }

    /** @return true while the host-time profiler is attributing this
     *  run (--profile). */
    bool profiling() const { return profiling_; }

    /** @return the stall watchdog, or nullptr when not configured.
     *  The engine registers its workers and calls start()/notes. */
    StallWatchdog *watchdog() { return watchdog_.get(); }

    /** Sample the run state if the sampling epoch has elapsed. */
    void maybeSample(Tick global);

    /** Sample unconditionally (checkpoint / rollback edges). */
    void forceSample(Tick global);

    /** Drain the per-thread rings into the session accumulator
     *  (checkpoint boundaries; frees ring space mid-run). */
    void collectTrace();

    /**
     * Finish the run: final sample, close the engine-run span, write
     * the Chrome-trace JSON and metrics CSV files, stop the watchdog,
     * unwire the forensics ledgers and fold them (with the obs
     * self-overhead counters) into the ForensicsData block.
     * Idempotent.
     */
    void finish(Tick global);

    /** Move the collected forensics out (valid after finish()). */
    ForensicsData takeForensics() { return std::move(forensics_); }

    /** The run's decision log (valid between begin() and finish());
     *  the recovery policy records degradation transitions here. */
    AdaptiveDecisionLog *decisionLog() { return &decisions_; }

  private:
    void sample(Tick global);
    void publishProgress(const MetricsRow &row);
    std::uint64_t wallNowNs() const;
    void unwire();
    void warnOnFirstDrop();

    ObsConfig config_;
    SimSystem &sys_;
    Pacer &pacer_;
    ManagerLogic &mgr_;
    Checkpointer &ckpt_;
    const HostStats &host_;

    bool tracing_ = false;
    bool profiling_ = false;
    bool finished_ = false;
    bool wired_ = false;
    bool dropWarned_ = false;
    std::unique_ptr<MetricsSampler> sampler_;
    std::unique_ptr<HwCounters> hw_;
    std::chrono::steady_clock::time_point t0_{};

    ViolationLedger ledger_;
    AdaptiveDecisionLog decisions_;
    TraceSpanInfo traceInfo_; //!< span identity + clock anchor
    std::unique_ptr<StallWatchdog> watchdog_;
    ForensicsData forensics_;
    std::uint64_t samplerHostNs_ = 0;

    /** Last-published window anchors for the progress rates. */
    std::uint64_t lastPubWallNs_ = 0;
    Tick lastPubGlobal_ = 0;
    std::uint64_t lastPubBusRequests_ = 0;
};

} // namespace obs
} // namespace slacksim

#endif // SLACKSIM_OBS_OBS_SESSION_HH
