/**
 * @file
 * Violation forensics: who caused each slack violation, against whom,
 * at what slack — plus a ledger of every decision the adaptive
 * controller and the checkpointer made while the run unfolded.
 *
 * The PR 1 obs layer answers "what happened when" (event streams,
 * epoch gauges). This layer answers the paper's *why* questions:
 * which address buckets and core pairs drive bus/map violations, what
 * the slack distribution at detection looked like, and how the
 * adaptive controller reacted epoch by epoch. Everything here is
 * manager-thread-only state fed from Uncore::service and
 * Pacer::observe — no atomics, no locks, no hot-path cost beyond a
 * pointer test and (on the rare violation) a few table updates.
 *
 * The ViolationLedger participates in checkpoints: a speculative
 * rollback rewinds ViolationStats, so the ledger must rewind in
 * lockstep or its totals drift away from the counters they attribute
 * (the run report asserts exact agreement).
 */

#ifndef SLACKSIM_OBS_FORENSICS_HH
#define SLACKSIM_OBS_FORENSICS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/profiler.hh"
#include "obs/span.hh"
#include "util/histogram.hh"
#include "util/snapshot.hh"
#include "util/types.hh"

namespace slacksim {
namespace obs {

/** Which monitor detected the violation. */
enum class ViolationKind { Bus, Map };

/**
 * Per-run attribution of every counted bus/map violation to
 * (address bucket, requester core, prior-owner core, slack at
 * detection). Owned by ObsSession, wired into Uncore for the duration
 * of a run.
 */
class ViolationLedger
{
  public:
    /** Address bucket granularity: line >> bucketShift. */
    static constexpr std::uint32_t bucketShift = 6;

    /** Cap on distinct address buckets tracked individually. */
    static constexpr std::size_t maxTrackedBuckets = std::size_t(1) << 16;

    /** One tracked address bucket and its violation counts. */
    struct Offender
    {
        Addr bucket = 0;
        std::uint64_t bus = 0;
        std::uint64_t map = 0;

        std::uint64_t total() const { return bus + map; }
    };

    /** One (requester, prior-owner) cell of the attribution matrix. */
    struct PairCount
    {
        CoreId requester = 0;
        CoreId prior = invalidCore; //!< invalidCore = no prior owner
        std::uint64_t bus = 0;
        std::uint64_t map = 0;
    };

    /** Size the pair matrix for @p num_cores and clear everything. */
    void reset(std::uint32_t num_cores);

    /**
     * Record one counted violation.
     *
     * @param kind   bus or map monitor
     * @param line   cache-line address of the access
     * @param requester  core whose message tripped the monitor
     * @param prior  core that last advanced the monitor (invalidCore
     *               when the monitor had no owner yet)
     * @param slack  monitor timestamp minus message timestamp — how
     *               far in the past the late access landed
     */
    void record(ViolationKind kind, Addr line, CoreId requester,
                CoreId prior, Tick slack);

    std::uint64_t busTotal() const { return busTotal_; }
    std::uint64_t mapTotal() const { return mapTotal_; }
    std::uint64_t total() const { return busTotal_ + mapTotal_; }

    /** Slack-at-detection distribution per violation kind. */
    const Log2Histogram &busSlack() const { return busSlack_; }
    const Log2Histogram &mapSlack() const { return mapSlack_; }

    /** Violations whose bucket fell past the tracking cap. */
    std::uint64_t untrackedBuckets() const { return untracked_; }

    /** @return number of cores the pair matrix was sized for. */
    std::uint32_t numCores() const { return numCores_; }

    /**
     * @return the k address buckets with the most violations, sorted
     * by total count descending (ties broken by bucket ascending so
     * the report is deterministic).
     */
    std::vector<Offender> topOffenders(std::size_t k) const;

    /** @return all (requester, prior) cells with nonzero counts. */
    std::vector<PairCount> nonzeroPairs() const;

    /** Checkpoint participation (rolled back with ViolationStats). */
    void save(SnapshotWriter &writer) const;
    void restore(SnapshotReader &reader);

  private:
    /** Flat index into the pair matrices. */
    std::size_t
    pairIndex(CoreId requester, CoreId prior) const
    {
        // Prior slot numCores_ aggregates "no prior owner".
        const std::uint32_t p = prior == invalidCore
                                    ? numCores_
                                    : (prior < numCores_ ? prior : numCores_);
        const std::uint32_t r = requester < numCores_ ? requester : 0;
        return std::size_t(p) * numCores_ + r;
    }

    std::uint32_t numCores_ = 0;
    std::uint64_t busTotal_ = 0;
    std::uint64_t mapTotal_ = 0;
    std::uint64_t untracked_ = 0;
    Log2Histogram busSlack_;
    Log2Histogram mapSlack_;
    std::vector<std::uint64_t> busPair_; //!< (numCores_+1) x numCores_
    std::vector<std::uint64_t> mapPair_;
    std::unordered_map<Addr, Offender> buckets_;
};

/** Outcome of one adaptive-epoch evaluation. */
enum class BandVerdict {
    Hold,    //!< rate inside the dead zone, bound unchanged
    Grow,    //!< rate under the band, bound relaxed
    Shrink,  //!< rate over the band, bound tightened
    Restored //!< bound rewound by a checkpoint restore
};

/** @return stable lowercase name for a verdict. */
const char *bandVerdictName(BandVerdict v);

/** One adaptive-controller evaluation. */
struct DecisionRecord
{
    Tick cycle = 0;         //!< global time of the evaluation
    double rate = 0.0;      //!< measured violation rate
    BandVerdict verdict = BandVerdict::Hold;
    std::uint64_t oldBound = 0;
    std::uint64_t newBound = 0;
};

/** Kind of checkpoint-machinery episode. */
enum class EpisodeKind { Checkpoint, Rollback, Replay };

/** @return stable lowercase name for an episode kind. */
const char *episodeKindName(EpisodeKind k);

/** One checkpoint / rollback / replay episode and its host cost. */
struct EpisodeRecord
{
    EpisodeKind kind = EpisodeKind::Checkpoint;
    Tick cycle = 0;          //!< global time when the episode ended
    std::uint64_t detail = 0; //!< bytes (ckpt), wasted/replayed cycles
    std::uint64_t hostNs = 0; //!< wall time spent on the episode
};

/**
 * One degradation-ladder transition (see fault/recovery_policy.hh):
 * a demotion forced by a rollback storm, a checkpoint-integrity
 * failure or a pinned-at-minimum adaptive controller — or a
 * re-promotion attempt after the backoff elapsed. The from/to/reason
 * strings are static literals supplied by the recovery layer.
 */
struct TransitionRecord
{
    Tick cycle = 0;
    const char *from = "";
    const char *to = "";
    const char *reason = "";
};

/**
 * Append-only ledger of adaptive decisions, checkpoint episodes and
 * degradation transitions. Capped so a pathological run cannot
 * balloon the report; drops are counted, never silent.
 */
class AdaptiveDecisionLog
{
  public:
    static constexpr std::size_t maxRecords = std::size_t(1) << 16;

    void
    recordDecision(const DecisionRecord &d)
    {
        if (decisions_.size() < maxRecords)
            decisions_.push_back(d);
        else
            ++decisionsDropped_;
    }

    void
    recordEpisode(const EpisodeRecord &e)
    {
        if (episodes_.size() < maxRecords)
            episodes_.push_back(e);
        else
            ++episodesDropped_;
    }

    const std::vector<DecisionRecord> &decisions() const
    {
        return decisions_;
    }

    const std::vector<EpisodeRecord> &episodes() const
    {
        return episodes_;
    }

    void
    recordTransition(const TransitionRecord &t)
    {
        if (transitions_.size() < maxRecords)
            transitions_.push_back(t);
        else
            ++transitionsDropped_;
    }

    const std::vector<TransitionRecord> &transitions() const
    {
        return transitions_;
    }

    std::uint64_t decisionsDropped() const { return decisionsDropped_; }
    std::uint64_t episodesDropped() const { return episodesDropped_; }
    std::uint64_t transitionsDropped() const
    {
        return transitionsDropped_;
    }

    void
    clear()
    {
        decisions_.clear();
        episodes_.clear();
        transitions_.clear();
        decisionsDropped_ = 0;
        episodesDropped_ = 0;
        transitionsDropped_ = 0;
    }

  private:
    std::vector<DecisionRecord> decisions_;
    std::vector<EpisodeRecord> episodes_;
    std::vector<TransitionRecord> transitions_;
    std::uint64_t decisionsDropped_ = 0;
    std::uint64_t episodesDropped_ = 0;
    std::uint64_t transitionsDropped_ = 0;
};

/** The obs layer's own overhead, surfaced instead of lost. */
struct ObsSelfStats
{
    std::uint64_t traceRecords = 0;  //!< events kept by the tracer
    std::uint64_t traceDropped = 0;  //!< events lost to full rings
    std::uint64_t traceBytes = 0;    //!< Chrome-trace bytes written
    std::uint64_t metricsRows = 0;   //!< sampler rows captured
    std::uint64_t metricsBytes = 0;  //!< metrics CSV bytes written
    std::uint64_t samplerHostNs = 0; //!< wall time spent sampling
    std::uint64_t ioErrors = 0;      //!< failed writer opens/closes
};

/**
 * Everything forensic an ObsSession collected over one run, moved
 * into RunResult at finish() so the report writer (and callers) see
 * it after the session is gone.
 */
struct ForensicsData
{
    ViolationLedger ledger;
    AdaptiveDecisionLog decisions;
    ObsSelfStats obs;
    ProfileReport profile; //!< host-time attribution (--profile)
    TraceSpanInfo trace;   //!< distributed-trace identity + anchor
    bool watchdogEnabled = false;
    std::uint64_t stallMs = 0;
    std::uint64_t stallDumps = 0;
    std::string lastStallDump;
};

} // namespace obs
} // namespace slacksim

#endif // SLACKSIM_OBS_FORENSICS_HH
