/**
 * @file
 * ViolationLedger and decision-log implementation.
 */

#include "obs/forensics.hh"

#include <algorithm>

namespace slacksim {
namespace obs {

void
ViolationLedger::reset(std::uint32_t num_cores)
{
    numCores_ = num_cores;
    busTotal_ = 0;
    mapTotal_ = 0;
    untracked_ = 0;
    busSlack_.clear();
    mapSlack_.clear();
    const std::size_t cells = std::size_t(numCores_ + 1) * numCores_;
    busPair_.assign(cells, 0);
    mapPair_.assign(cells, 0);
    buckets_.clear();
}

void
ViolationLedger::record(ViolationKind kind, Addr line, CoreId requester,
                        CoreId prior, Tick slack)
{
    if (numCores_ == 0)
        return; // never reset(): attribution has nowhere to go
    const std::size_t idx = pairIndex(requester, prior);
    if (kind == ViolationKind::Bus) {
        ++busTotal_;
        busSlack_.add(slack);
        ++busPair_[idx];
    } else {
        ++mapTotal_;
        mapSlack_.add(slack);
        ++mapPair_[idx];
    }

    const Addr bucket = line >> bucketShift;
    auto it = buckets_.find(bucket);
    if (it == buckets_.end()) {
        if (buckets_.size() >= maxTrackedBuckets) {
            ++untracked_;
            return;
        }
        it = buckets_.emplace(bucket, Offender{bucket, 0, 0}).first;
    }
    if (kind == ViolationKind::Bus)
        ++it->second.bus;
    else
        ++it->second.map;
}

std::vector<ViolationLedger::Offender>
ViolationLedger::topOffenders(std::size_t k) const
{
    std::vector<Offender> all;
    all.reserve(buckets_.size());
    for (const auto &[bucket, off] : buckets_)
        all.push_back(off);
    std::sort(all.begin(), all.end(),
              [](const Offender &a, const Offender &b) {
                  if (a.total() != b.total())
                      return a.total() > b.total();
                  return a.bucket < b.bucket;
              });
    if (all.size() > k)
        all.resize(k);
    return all;
}

std::vector<ViolationLedger::PairCount>
ViolationLedger::nonzeroPairs() const
{
    std::vector<PairCount> pairs;
    for (std::uint32_t p = 0; p <= numCores_; ++p) {
        for (std::uint32_t r = 0; r < numCores_; ++r) {
            const std::size_t idx = std::size_t(p) * numCores_ + r;
            const std::uint64_t bus = busPair_[idx];
            const std::uint64_t map = mapPair_[idx];
            if (bus == 0 && map == 0)
                continue;
            PairCount pc;
            pc.requester = r;
            pc.prior = p == numCores_ ? invalidCore : p;
            pc.bus = bus;
            pc.map = map;
            pairs.push_back(pc);
        }
    }
    return pairs;
}

void
ViolationLedger::save(SnapshotWriter &writer) const
{
    writer.putMarker(0xf04e);
    writer.put<std::uint32_t>(numCores_);
    writer.put<std::uint64_t>(busTotal_);
    writer.put<std::uint64_t>(mapTotal_);
    writer.put<std::uint64_t>(untracked_);
    writer.put(busSlack_);
    writer.put(mapSlack_);
    writer.putVector(busPair_);
    writer.putVector(mapPair_);
    // Sorted bucket order keeps snapshot bytes deterministic (the
    // fork-checkpoint determinism check hashes them).
    std::vector<Addr> keys;
    keys.reserve(buckets_.size());
    for (const auto &[bucket, off] : buckets_)
        keys.push_back(bucket);
    std::sort(keys.begin(), keys.end());
    writer.put<std::uint64_t>(keys.size());
    for (const Addr key : keys)
        writer.put(buckets_.at(key));
}

void
ViolationLedger::restore(SnapshotReader &reader)
{
    reader.checkMarker(0xf04e);
    numCores_ = reader.get<std::uint32_t>();
    busTotal_ = reader.get<std::uint64_t>();
    mapTotal_ = reader.get<std::uint64_t>();
    untracked_ = reader.get<std::uint64_t>();
    busSlack_ = reader.get<Log2Histogram>();
    mapSlack_ = reader.get<Log2Histogram>();
    busPair_ = reader.getVector<std::uint64_t>();
    mapPair_ = reader.getVector<std::uint64_t>();
    buckets_.clear();
    const auto n = reader.get<std::uint64_t>();
    buckets_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto off = reader.get<Offender>();
        buckets_.emplace(off.bucket, off);
    }
}

const char *
bandVerdictName(BandVerdict v)
{
    switch (v) {
      case BandVerdict::Hold:
        return "hold";
      case BandVerdict::Grow:
        return "grow";
      case BandVerdict::Shrink:
        return "shrink";
      case BandVerdict::Restored:
        return "restored";
    }
    return "unknown";
}

const char *
episodeKindName(EpisodeKind k)
{
    switch (k) {
      case EpisodeKind::Checkpoint:
        return "checkpoint";
      case EpisodeKind::Rollback:
        return "rollback";
      case EpisodeKind::Replay:
        return "replay";
    }
    return "unknown";
}

} // namespace obs
} // namespace slacksim
