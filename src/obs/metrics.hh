/**
 * @file
 * Epoch metrics time series: once per sampling epoch the manager
 * thread snapshots where the run is — per-core local clocks, slack
 * spread, the adaptive bound, violation counts and windowed rates by
 * type, bus pressure, and the checkpoint/rollback/replay state — into
 * an in-memory series exported as CSV for the bench harness and
 * offline plotting. This is the instrument that makes the paper's
 * *dynamic* behaviors (Fig. 4 convergence, rollback storms) visible.
 */

#ifndef SLACKSIM_OBS_METRICS_HH
#define SLACKSIM_OBS_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.hh"

namespace slacksim::obs {

/** One sampled epoch. */
struct MetricsRow
{
    std::uint64_t wallNs = 0;     //!< host ns since sampler start
    Tick global = 0;              //!< global simulated time
    Tick minLocal = 0;            //!< slowest unfinished core clock
    Tick maxLocal = 0;            //!< fastest core clock
    Tick slackBound = 0;          //!< current (adaptive) slack bound
    bool replay = false;          //!< inside a speculative replay
    std::uint64_t busViolations = 0; //!< cumulative
    std::uint64_t mapViolations = 0; //!< cumulative
    double busViolRate = 0.0;     //!< this epoch's bus violations/cycle
    double mapViolRate = 0.0;     //!< this epoch's map violations/cycle
    std::uint64_t busRequests = 0;       //!< cumulative bus grants
    std::uint64_t busQueueingCycles = 0; //!< cumulative bus wait
    std::uint64_t mgrPending = 0; //!< sorted-service heap depth
    std::uint64_t checkpoints = 0; //!< checkpoints taken so far
    std::uint64_t rollbacks = 0;   //!< rollbacks so far
    std::vector<Tick> coreLocal;   //!< per-core local clocks
    /** Per-core queue occupancies at the sample instant (approximate
     *  for live cross-thread queues; see SpscQueue::size). */
    std::vector<std::uint64_t> coreInQ;
    std::vector<std::uint64_t> coreOutQ;
};

/** Fixed-cadence collector of MetricsRow samples. */
class MetricsSampler
{
  public:
    /** @param epoch_cycles sampling period in simulated cycles. */
    explicit MetricsSampler(Tick epoch_cycles);

    /** @return true when @p global has crossed the next epoch. */
    bool
    due(Tick global) const
    {
        return global >= nextSampleAt_;
    }

    /** Record @p row and schedule the next epoch after @p global. */
    void push(Tick global, MetricsRow row);

    const std::vector<MetricsRow> &rows() const { return rows_; }

    /** Write the whole series as CSV: a `# schema=` comment line, a
     *  validated header, then one line per row. Every header token is
     *  checked against [a-z0-9_] so downstream parsers can key on
     *  column names instead of positions. A non-empty @p jobId is
     *  stamped into the schema comment (`job_id=...`) so the CSV can
     *  be joined back to the server event log. */
    void writeCsv(std::ostream &os, const std::string &jobId = {}) const;

    /** The CSV schema identifier emitted in the comment line. */
    static constexpr const char *csvSchema = "slacksim.metrics.v2";

  private:
    Tick epochCycles_;
    Tick nextSampleAt_ = 0;
    Tick lastGlobal_ = 0;
    std::uint64_t lastBusViolations_ = 0;
    std::uint64_t lastMapViolations_ = 0;
    std::vector<MetricsRow> rows_;
};

} // namespace slacksim::obs

#endif // SLACKSIM_OBS_METRICS_HH
