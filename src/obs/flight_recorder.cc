/**
 * @file
 * StallWatchdog implementation.
 */

#include "obs/flight_recorder.hh"

#include <algorithm>
#include <csignal>
#include <cstring>
#include <sstream>

#include <unistd.h>

#include "obs/profiler.hh"
#include "util/logging.hh"

namespace slacksim {
namespace obs {

namespace {

/**
 * The single watchdog the fatal-signal path reports through. Only one
 * engine run is live at a time; a second concurrent watchdog simply
 * skips signal installation.
 */
std::atomic<StallWatchdog *> activeWatchdog{nullptr};

struct sigaction oldAbrt;
struct sigaction oldSegv;

} // namespace

std::vector<FlightRecorder::Snapshot>
FlightRecorder::recent(std::size_t max) const
{
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t n = std::min<std::uint64_t>(
        {head, capacity, static_cast<std::uint64_t>(max)});
    std::vector<Snapshot> out;
    out.reserve(n);
    for (std::uint64_t seq = head - n + 1; seq <= head && n != 0; ++seq) {
        const Entry &e = ring_[seq % capacity];
        Snapshot s;
        s.seq = e.seq.load(std::memory_order_relaxed);
        s.cycle = e.cycle.load(std::memory_order_relaxed);
        s.name = e.name.load(std::memory_order_relaxed);
        if (s.name != nullptr)
            out.push_back(s);
    }
    return out;
}

StallWatchdog::StallWatchdog(std::uint64_t stall_ms)
    : stallMs_(stall_ms)
{
}

StallWatchdog::~StallWatchdog()
{
    stop();
}

std::size_t
StallWatchdog::addWorker(std::string name,
                         const std::atomic<Tick> *clock,
                         const std::atomic<bool> *finished,
                         bool stall_eligible)
{
    SLACKSIM_ASSERT(!started_, "addWorker after start()");
    auto w = std::make_unique<Worker>();
    w->name = std::move(name);
    w->clock = clock;
    w->finished = finished;
    w->stallEligible = stall_eligible;
    workers_.push_back(std::move(w));
    return workers_.size() - 1;
}

void
StallWatchdog::setProgressProbe(std::function<std::string()> probe)
{
    std::lock_guard<std::mutex> lk(mutex_);
    probe_ = std::move(probe);
}

void
StallWatchdog::start()
{
    SLACKSIM_ASSERT(!started_, "watchdog already started");
    started_ = true;
    stopping_ = false;
    t0_ = std::chrono::steady_clock::now();
    for (auto &w : workers_) {
        w->lastClock = w->clock ? w->clock->load(std::memory_order_relaxed)
                                : 0;
        w->lastSeq = w->recorder.headSeq();
        w->lastChangeMs = 0;
    }
    installSignalHandlers();
    thread_ = std::thread([this] { threadMain(); });
}

void
StallWatchdog::stop()
{
    if (!started_)
        return;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    removeSignalHandlers();
    started_ = false;
}

std::uint64_t
StallWatchdog::nowMs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
}

void
StallWatchdog::threadMain()
{
    // Poll a few times per stall window so detection latency stays a
    // fraction of the threshold without burning a core.
    const auto poll = std::chrono::milliseconds(
        std::clamp<std::uint64_t>(stallMs_ / 4, 10, 250));
    // Re-arm per episode: one dump when a stall is detected, the next
    // only after the stalled set changes or progress resumes.
    bool dumped = false;
    std::unique_lock<std::mutex> lk(mutex_);
    while (!stopping_) {
        cv_.wait_for(lk, poll);
        if (stopping_)
            break;
        lk.unlock();

        const std::uint64_t now = nowMs();
        std::vector<bool> stalled(workers_.size(), false);
        bool anyStalled = false;
        for (std::size_t i = 0; i < workers_.size(); ++i) {
            Worker &w = *workers_[i];
            const Tick clock =
                w.clock ? w.clock->load(std::memory_order_relaxed) : 0;
            const std::uint64_t seq = w.recorder.headSeq();
            if (clock != w.lastClock || seq != w.lastSeq) {
                w.lastClock = clock;
                w.lastSeq = seq;
                w.lastChangeMs = now;
            }
            const bool done =
                w.finished &&
                w.finished->load(std::memory_order_relaxed);
            if (w.stallEligible && !done &&
                now - w.lastChangeMs >= stallMs_) {
                stalled[i] = true;
                anyStalled = true;
            }
        }

        if (anyStalled && !dumped) {
            emitDump("stall", stalled);
            dumped = true;
        } else if (!anyStalled) {
            dumped = false;
        }

        // Keep the crash snapshot fresh even without a stall so a
        // fatal signal always has recent state to report.
        publishCrashDump(renderDump("fatal signal", {}));
        lk.lock();
    }
}

std::string
StallWatchdog::renderDump(const char *reason,
                          const std::vector<bool> &stalled) const
{
    const std::uint64_t now = nowMs();
    std::ostringstream os;
    os << "watchdog dump (" << reason << ", stall threshold "
       << stallMs_ << "ms, t+" << now << "ms)\n";
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        const Worker &w = *workers_[i];
        const bool flag = i < stalled.size() && stalled[i];
        const Tick clock =
            w.clock ? w.clock->load(std::memory_order_relaxed) : 0;
        const bool done =
            w.finished && w.finished->load(std::memory_order_relaxed);
        os << (flag ? "  * " : "    ") << w.name;
        if (w.clock)
            os << " clock=" << clock;
        // With --profile on, say *what* the worker is doing right now
        // (one relaxed byte read of its live phase), not just that its
        // clock stopped. Watchdog-thread path only — the fatal-signal
        // handler reuses the pre-rendered buffer and never gets here.
        if (const char *phase =
                Profiler::instance().currentPhaseOfRole(w.name)) {
            os << " phase=" << phase;
        }
        if (done)
            os << " [finished]";
        if (flag)
            os << " STALLED " << (now - w.lastChangeMs) << "ms";
        const auto events = w.recorder.recent(4);
        if (!events.empty()) {
            os << " last:";
            for (const auto &e : events)
                os << ' ' << e.name << '@' << e.cycle;
        }
        os << '\n';
    }
    // probe_ is read under the lock in emitDump()'s caller context;
    // here take it defensively since dumpNow() can race setProgressProbe.
    std::function<std::string()> probe;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        probe = probe_;
    }
    if (probe)
        os << "    " << probe() << '\n';
    return os.str();
}

void
StallWatchdog::publishCrashDump(const std::string &text)
{
    const int next = 1 - std::max(crashPub_.load(
                             std::memory_order_relaxed), 0);
    CrashBuf &buf = crash_[next];
    const std::size_t n =
        std::min(text.size(), sizeof(buf.text) - 1);
    std::memcpy(buf.text, text.data(), n);
    buf.text[n] = '\n';
    buf.len.store(n + 1, std::memory_order_relaxed);
    crashPub_.store(next, std::memory_order_release);
}

void
StallWatchdog::emitDump(const char *reason,
                        const std::vector<bool> &stalled)
{
    const std::string text = renderDump(reason, stalled);
    dumps_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(mutex_);
        lastDump_ = text;
    }
    publishCrashDump(text);
    SLACKSIM_WARN(text);
}

void
StallWatchdog::dumpNow(const char *reason)
{
    emitDump(reason, {});
}

std::string
StallWatchdog::lastDump() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return lastDump_;
}

void
StallWatchdog::signalHandler(int signo)
{
    // Async-signal-safe path: write() the pre-rendered snapshot, put
    // the default disposition back and re-raise so the process still
    // dies with the original signal.
    StallWatchdog *wd = activeWatchdog.load(std::memory_order_acquire);
    if (wd) {
        const int pub = wd->crashPub_.load(std::memory_order_acquire);
        if (pub >= 0) {
            const CrashBuf &buf = wd->crash_[pub];
            const std::size_t len =
                buf.len.load(std::memory_order_relaxed);
            // Best effort; nothing to do about a failed write while
            // crashing.
            [[maybe_unused]] ssize_t rc =
                write(STDERR_FILENO, buf.text, len);
        }
    }
    ::sigaction(signo, signo == SIGABRT ? &oldAbrt : &oldSegv, nullptr);
    ::raise(signo);
}

void
StallWatchdog::installSignalHandlers()
{
    StallWatchdog *expected = nullptr;
    if (!activeWatchdog.compare_exchange_strong(
            expected, this, std::memory_order_release))
        return; // another watchdog already owns the signal path
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &StallWatchdog::signalHandler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGABRT, &sa, &oldAbrt);
    ::sigaction(SIGSEGV, &sa, &oldSegv);
    signalsInstalled_ = true;
}

void
StallWatchdog::removeSignalHandlers()
{
    if (!signalsInstalled_)
        return;
    ::sigaction(SIGABRT, &oldAbrt, nullptr);
    ::sigaction(SIGSEGV, &oldSegv, nullptr);
    StallWatchdog *expected = this;
    activeWatchdog.compare_exchange_strong(expected, nullptr,
                                           std::memory_order_release);
    signalsInstalled_ = false;
}

} // namespace obs
} // namespace slacksim
