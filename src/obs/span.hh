/**
 * @file
 * Distributed-trace span identity and clock-domain anchoring.
 *
 * A fleet run crosses four execution domains — client, daemon
 * scheduler, forked supervised child, engine worker threads — each
 * with its own clock. The span model here is deliberately tiny: a
 * `trace_id` names one job's end-to-end causal chain, `span_id` /
 * `parent_span_id` name the nodes, and a ClockAnchor captured at each
 * domain handoff lets the offline merger (serve/fleet_trace.hh) place
 * every domain's events on one wall-epoch timeline.
 *
 * Nothing here touches a hot path: ids are minted at submit / session
 * begin, anchors are captured once per process, and all of it is
 * plain value types with no globals beyond a mint counter.
 */

#ifndef SLACKSIM_OBS_SPAN_HH
#define SLACKSIM_OBS_SPAN_HH

#include <cstdint>
#include <string>

namespace slacksim::obs {

/**
 * One process's reading of the three clock domains at a single
 * instant, plus the pid that took it. The merger aligns a child's
 * trace (steady / TSC relative timestamps) to the fleet timeline by
 * anchoring through wallUs.
 */
struct ClockAnchor
{
    std::uint64_t wallUs = 0;   //!< system_clock, µs since epoch
    std::uint64_t steadyNs = 0; //!< steady_clock, ns (process-local)
    std::uint64_t tsc = 0;      //!< raw timestamp counter (profTsc)
    std::uint32_t pid = 0;      //!< process that captured the anchor
};

/** Capture all three clocks as close together as we can. */
ClockAnchor captureClockAnchor();

/**
 * Mint a process-unique 16-hex-digit trace id. Not cryptographic:
 * pid + steady time + a counter through an avalanche mix, enough to
 * never collide within one fleet's lifetime.
 */
std::string mintTraceId();

/** Mint a nonzero span id (same generator as mintTraceId). */
std::uint64_t mintSpanId();

/** Render a span id the way every schema carries it: 16 hex digits. */
std::string spanIdHex(std::uint64_t span_id);

/**
 * The engine-side span of one run: identity received from the
 * submitter (or self-minted for standalone runs) plus the anchor
 * captured when the trace session began. Recorded in ForensicsData
 * and exported through run_report v5 and the Chrome-trace metadata.
 */
struct TraceSpanInfo
{
    std::string traceId;             //!< empty = tracing not wired
    std::uint64_t spanId = 0;        //!< this process's engine span
    std::uint64_t parentSpanId = 0;  //!< submitter's root span, 0 = none
    ClockAnchor anchor;              //!< taken at session begin
    bool active = false;             //!< true once begin() stamped it
};

} // namespace slacksim::obs

#endif // SLACKSIM_OBS_SPAN_HH
