/**
 * @file
 * Fixed-capacity lock-free ring of trace records, one per registered
 * engine thread. Same Lamport SPSC discipline as util/spsc_queue.hh:
 * the owning thread is the only producer; the manager (or the
 * post-run exporter) is the only consumer, so records can be drained
 * at checkpoint boundaries while the producer keeps running. A full
 * ring drops the new record and counts it instead of blocking or
 * overwriting — the hot path never waits.
 */

#ifndef SLACKSIM_OBS_TRACE_BUFFER_HH
#define SLACKSIM_OBS_TRACE_BUFFER_HH

#include <atomic>
#include <cstddef>
#include <vector>

#include "obs/trace_event.hh"

namespace slacksim::obs {

/** Single-producer/single-consumer trace-record ring. */
class TraceRing
{
  public:
    /** @param capacity minimum number of storable records. */
    explicit TraceRing(std::size_t capacity)
        : mask_(roundUpPow2(capacity + 1) - 1),
          slots_(mask_ + 1)
    {
    }

    TraceRing(const TraceRing &) = delete;
    TraceRing &operator=(const TraceRing &) = delete;

    /** Producer: append a record; full rings drop and account. */
    void
    push(const TraceRecord &rec)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t next = (tail + 1) & mask_;
        if (next == head_.load(std::memory_order_acquire)) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        slots_[tail] = rec;
        tail_.store(next, std::memory_order_release);
    }

    /** Consumer: move every visible record into @p out.
     *  @return records drained. */
    std::size_t
    drain(std::vector<TraceRecord> &out)
    {
        std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        std::size_t n = 0;
        while (head != tail) {
            out.push_back(slots_[head]);
            head = (head + 1) & mask_;
            ++n;
        }
        head_.store(head, std::memory_order_release);
        return n;
    }

    /** @return records dropped because the ring was full. */
    std::uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Maximum number of storable records. */
    std::size_t capacity() const { return mask_; }

  private:
    static std::size_t
    roundUpPow2(std::size_t v)
    {
        std::size_t p = 1;
        while (p < v)
            p <<= 1;
        return p;
    }

    const std::size_t mask_;
    std::vector<TraceRecord> slots_;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
    alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

} // namespace slacksim::obs

#endif // SLACKSIM_OBS_TRACE_BUFFER_HH
