/**
 * @file
 * Profiler implementation: session lifecycle, slot aggregation, the
 * TSC calibration, the folded-stack exporter and the verdict line.
 */

#include "obs/profiler.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/run_token.hh"

namespace slacksim::obs {

namespace {

thread_local struct
{
    std::uint64_t epoch = 0;
    Profiler::Slot *slot = nullptr;
} boundSlotTls;

/** Mix a packed path key into a table index. */
inline std::size_t
pathHash(std::uint64_t key)
{
    key *= 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(key >> 58);
}

/** Decode a packed path key into "outer;inner" phase names. */
std::string
pathName(std::uint64_t key)
{
    std::string name;
    for (std::size_t level = 0; level < Profiler::maxDepth; ++level) {
        const std::uint8_t v = static_cast<std::uint8_t>(key >> (8 * level));
        if (v == 0)
            break;
        if (!name.empty())
            name += ';';
        name += phaseName(static_cast<Phase>(v - 1));
    }
    return name;
}

/** Leaf (innermost) phase of a packed path key. */
Phase
pathLeaf(std::uint64_t key)
{
    std::uint8_t leaf = static_cast<std::uint8_t>(key);
    for (std::size_t level = 1; level < Profiler::maxDepth; ++level) {
        const std::uint8_t v = static_cast<std::uint8_t>(key >> (8 * level));
        if (v == 0)
            break;
        leaf = v;
    }
    return static_cast<Phase>(leaf - 1);
}

/** Record @p ticks of exclusive time under @p key in a slot's table. */
void
addPath(Profiler::Slot *slot, std::uint64_t key, std::uint64_t ticks)
{
    std::size_t idx = pathHash(key) & (Profiler::maxPaths - 1);
    for (std::size_t probe = 0; probe < Profiler::maxPaths; ++probe) {
        Profiler::PathStat &p = slot->paths[idx];
        if (p.key == key) {
            p.ticks += ticks;
            ++p.count;
            return;
        }
        if (p.key == 0) {
            p.key = key;
            p.ticks = ticks;
            p.count = 1;
            return;
        }
        idx = (idx + 1) & (Profiler::maxPaths - 1);
    }
    ++slot->droppedPaths;
}

/** Close the innermost frame as if its scope exited at @p now. */
void
exitAt(Profiler::Slot *slot, std::uint64_t now)
{
    if (slot->depth == 0)
        return; // unbalanced exit: tolerate rather than corrupt
    if (slot->depth > Profiler::maxDepth) {
        --slot->depth;
        return;
    }
    --slot->depth;
    Profiler::Slot::Frame &f = slot->stack[slot->depth];
    const std::uint64_t total =
        now >= f.startTicks ? now - f.startTicks : 0;
    const std::uint64_t excl =
        total >= f.childTicks ? total - f.childTicks : 0;
    addPath(slot, slot->pathKey, excl);
    slot->pathKey &= ~(std::uint64_t{0xff} << (8 * slot->depth));
    if (slot->depth > 0) {
        slot->stack[slot->depth - 1].childTicks += total;
        slot->current.store(
            static_cast<std::uint8_t>(
                slot->stack[slot->depth - 1].phase + 1),
            std::memory_order_relaxed);
    } else {
        slot->current.store(0, std::memory_order_relaxed);
    }
}

} // namespace

std::uint64_t
profTsc()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
    std::uint64_t v;
    asm volatile("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
}

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Simulate:
        return "simulate";
      case Phase::QueuePush:
        return "queue-push";
      case Phase::WaitSlack:
        return "wait-for-slack";
      case Phase::WaitInbound:
        return "wait-inbound";
      case Phase::Barrier:
        return "barrier";
      case Phase::Checkpoint:
        return "checkpoint";
      case Phase::RollbackReplay:
        return "rollback-replay";
      case Phase::Drain:
        return "drain";
      case Phase::PacerEpoch:
        return "pacer-epoch";
      case Phase::Sample:
        return "sample";
    }
    return "unknown";
}

std::uint64_t
ProfileReport::attributedNs() const
{
    std::uint64_t sum = 0;
    for (const PhaseTotal &t : phaseTotals) {
        if (t.name != "other")
            sum += t.ns;
    }
    return sum;
}

bool
Profiler::beginSession()
{
    std::lock_guard<std::mutex> lk(registryMutex_);
    if (epoch_.load(std::memory_order_relaxed) != 0)
        return false;
    slots_.clear();
    ownerToken_ = currentRunToken();
    t0_ = std::chrono::steady_clock::now();
    t0Ticks_ = profTsc();
    epoch_.store(++nextEpoch_, std::memory_order_release);
    return true;
}

void
Profiler::registerThread(const std::string &role)
{
    if (!active())
        return;
    std::lock_guard<std::mutex> lk(registryMutex_);
    const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    if (epoch == 0)
        return;
    // Multi-tenant gate (same rule as Tracer::registerThread): only
    // threads of the run that owns the session may bind a slot; owner
    // token 0 = session opened outside any run, accepts everyone.
    if (ownerToken_ != 0 && currentRunToken() != ownerToken_)
        return;
    auto slot = std::make_unique<Slot>();
    slot->role = role;
    slot->tid = static_cast<std::uint32_t>(slots_.size());
    slot->startTicks = profTsc();
    boundSlotTls.epoch = epoch;
    boundSlotTls.slot = slot.get();
    slots_.push_back(std::move(slot));
}

void
Profiler::unregisterThread()
{
    Slot *slot = boundSlot();
    boundSlotTls.slot = nullptr;
    boundSlotTls.epoch = 0;
    if (!slot)
        return;
    closeSlot(*slot, profTsc());
}

Profiler::Slot *
Profiler::boundSlot() const
{
    if (boundSlotTls.slot == nullptr ||
        boundSlotTls.epoch != epoch_.load(std::memory_order_relaxed)) {
        return nullptr;
    }
    return boundSlotTls.slot;
}

void
Profiler::enter(Slot *slot, Phase p)
{
    if (slot->depth >= maxDepth) {
        ++slot->truncated;
        ++slot->depth;
        return;
    }
    Slot::Frame &f = slot->stack[slot->depth];
    f.phase = static_cast<std::uint8_t>(p);
    f.startTicks = profTsc();
    f.childTicks = 0;
    slot->pathKey |= (std::uint64_t{f.phase} + 1) << (8 * slot->depth);
    ++slot->depth;
    slot->current.store(static_cast<std::uint8_t>(f.phase + 1),
                        std::memory_order_relaxed);
}

void
Profiler::exit(Slot *slot)
{
    exitAt(slot, profTsc());
}

void
Profiler::closeSlot(Slot &slot, std::uint64_t now_ticks)
{
    if (slot.endTicks != 0)
        return;
    // Unwind any frames a panic left open so their time is counted.
    while (slot.depth > 0)
        exitAt(&slot, now_ticks);
    slot.endTicks = now_ticks;
    slot.current.store(0, std::memory_order_relaxed);
}

const char *
Profiler::currentPhaseOfRole(const std::string &role) const
{
    if (!active())
        return nullptr;
    std::lock_guard<std::mutex> lk(registryMutex_);
    // Scan newest-first: a role re-registered in this session (not
    // normal, but cheap to be right about) resolves to the live slot.
    for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
        if ((*it)->role != role)
            continue;
        const std::uint8_t cur =
            (*it)->current.load(std::memory_order_relaxed);
        return cur == 0 ? "idle"
                        : phaseName(static_cast<Phase>(cur - 1));
    }
    return nullptr;
}

ProfileReport
Profiler::endSession()
{
    ProfileReport report;
    // Disarm the hot path first so no new scopes open while slots are
    // aggregated; worker threads have already joined (engine
    // contract), so only the calling thread's slot can still be open.
    const std::uint64_t now_ticks = profTsc();
    const auto now = std::chrono::steady_clock::now();
    if (epoch_.load(std::memory_order_relaxed) == 0)
        return report;
    epoch_.store(0, std::memory_order_release);
    boundSlotTls.slot = nullptr;
    boundSlotTls.epoch = 0;

    std::lock_guard<std::mutex> lk(registryMutex_);
    const std::uint64_t wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - t0_)
            .count());
    const std::uint64_t dticks =
        now_ticks > t0Ticks_ ? now_ticks - t0Ticks_ : 1;
    // Post-hoc calibration across the whole session: far more stable
    // than a warmup spin, and it is exactly the conversion that makes
    // "phase totals sum to wall time" checkable against steady_clock.
    const double ns_per_tick =
        static_cast<double>(wall_ns) / static_cast<double>(dticks);
    report.enabled = true;
    report.wallNs = wall_ns;
    report.tscGhz = ns_per_tick > 0.0 ? 1.0 / ns_per_tick : 0.0;

    const auto to_ns = [ns_per_tick](std::uint64_t ticks) {
        return static_cast<std::uint64_t>(
            static_cast<double>(ticks) * ns_per_tick);
    };

    std::uint64_t phase_ticks[numPhases] = {};
    std::uint64_t phase_count[numPhases] = {};
    std::uint64_t other_ns = 0;
    for (const auto &slot_ptr : slots_) {
        Slot &slot = *slot_ptr;
        closeSlot(slot, now_ticks);

        ProfileWorker w;
        w.role = slot.role;
        w.tid = slot.tid;
        const std::uint64_t span_ticks =
            slot.endTicks > slot.startTicks
                ? slot.endTicks - slot.startTicks
                : 0;
        w.spanNs = to_ns(span_ticks);
        w.truncated = slot.truncated;
        w.droppedPaths = slot.droppedPaths;

        std::uint64_t w_phase_ticks[numPhases] = {};
        std::uint64_t w_phase_count[numPhases] = {};
        std::vector<const PathStat *> used;
        for (const PathStat &p : slot.paths) {
            if (p.key != 0)
                used.push_back(&p);
        }
        std::sort(used.begin(), used.end(),
                  [](const PathStat *a, const PathStat *b) {
                      return a->key < b->key;
                  });
        for (const PathStat *p : used) {
            const std::size_t leaf =
                static_cast<std::size_t>(pathLeaf(p->key));
            w_phase_ticks[leaf] += p->ticks;
            w_phase_count[leaf] += p->count;
            w.paths.push_back({pathName(p->key), to_ns(p->ticks),
                               p->count});
        }
        // Sum attributed time over the *converted* per-phase values so
        // attributed + other == span holds exactly in ns, not just in
        // ticks (independent floor conversions would drift a few ns).
        std::uint64_t attributed_ns = 0;
        for (std::size_t i = 0; i < numPhases; ++i) {
            const std::uint64_t ns = to_ns(w_phase_ticks[i]);
            w.phases.push_back({phaseName(static_cast<Phase>(i)), ns,
                                w_phase_count[i]});
            attributed_ns += ns;
            phase_ticks[i] += w_phase_ticks[i];
            phase_count[i] += w_phase_count[i];
        }
        w.otherNs =
            w.spanNs > attributed_ns ? w.spanNs - attributed_ns : 0;
        other_ns += w.otherNs;
        report.workers.push_back(std::move(w));
    }
    for (std::size_t i = 0; i < numPhases; ++i) {
        report.phaseTotals.push_back({phaseName(static_cast<Phase>(i)),
                                      to_ns(phase_ticks[i]),
                                      phase_count[i]});
    }
    report.phaseTotals.push_back({"other", other_ns, 0});
    report.verdict = profileVerdict(report);
    slots_.clear();
    return report;
}

std::string
profileVerdict(const ProfileReport &report)
{
    std::uint64_t total = 0;
    for (const PhaseTotal &t : report.phaseTotals)
        total += t.ns;
    if (total == 0)
        return "no host time attributed";

    // Rank by time; "other" competes like any phase so an untracked
    // sink is called out instead of hidden.
    std::vector<const PhaseTotal *> ranked;
    for (const PhaseTotal &t : report.phaseTotals)
        ranked.push_back(&t);
    std::sort(ranked.begin(), ranked.end(),
              [](const PhaseTotal *a, const PhaseTotal *b) {
                  return a->ns > b->ns;
              });
    const auto pct = [total](std::uint64_t ns) {
        return 100.0 * static_cast<double>(ns) /
               static_cast<double>(total);
    };
    char buf[160];
    const PhaseTotal &top = *ranked[0];
    const PhaseTotal &next = *ranked[1];
    if (top.name == "simulate") {
        std::snprintf(buf, sizeof(buf),
                      "simulate-bound: %.1f%% of host time in "
                      "simulate (next: %s %.1f%%)",
                      pct(top.ns), next.name.c_str(), pct(next.ns));
    } else {
        std::snprintf(buf, sizeof(buf),
                      "bottleneck: %s %.1f%% of host time "
                      "(simulate %.1f%%)",
                      top.name.c_str(), pct(top.ns),
                      pct([&report] {
                          for (const PhaseTotal &t : report.phaseTotals)
                              if (t.name == "simulate")
                                  return t.ns;
                          return std::uint64_t{0};
                      }()));
    }
    return buf;
}

void
writeFoldedStacks(std::ostream &os, const ProfileReport &report)
{
    // Collapsed-stack format: frames joined by ';', one trailing
    // space, an integer count. flamegraph.pl and speedscope both
    // split on the *last* space, so spaces inside role names are
    // fine; ';' inside a role would split a frame, so it is mapped.
    const auto safeRole = [](std::string role) {
        std::replace(role.begin(), role.end(), ';', ':');
        return role;
    };
    for (const ProfileWorker &w : report.workers) {
        const std::string role = safeRole(w.role);
        for (const PhaseTotal &p : w.paths) {
            if (p.ns / 1000 == 0)
                continue; // sub-microsecond paths: noise
            os << role << ';' << p.name << ' ' << p.ns / 1000 << '\n';
        }
        if (w.otherNs / 1000 != 0)
            os << role << ";other " << w.otherNs / 1000 << '\n';
    }
}

} // namespace slacksim::obs
