/**
 * @file
 * Observability configuration embedded in EngineConfig. Kept free of
 * other core headers so core/config.hh can include it cheaply.
 */

#ifndef SLACKSIM_OBS_OBS_CONFIG_HH
#define SLACKSIM_OBS_OBS_CONFIG_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace slacksim {

namespace obs {
struct RunProgress;
} // namespace obs

/** Per-run observability knobs (all off by default). */
struct ObsConfig
{
    /** Chrome-trace / Perfetto JSON output path; "" disables the
     *  event tracer entirely (hot-path hooks stay dormant). */
    std::string traceOut;

    /** Epoch metrics time-series CSV output path; "" disables the
     *  sampler. */
    std::string metricsOut;

    /** Per-thread trace ring size in KiB; overflowing records are
     *  dropped and accounted, never blocked on. */
    std::uint32_t bufferKb = 1024;

    /** Metrics sampling period in simulated cycles. 0 follows the
     *  adaptive controller's epoch (or 1000 cycles otherwise) so each
     *  controller decision lands in its own sample. */
    Tick metricsEpoch = 0;

    /** Unified run-report JSON output path; "" disables it. The
     *  forensics ledgers themselves are always collected (their cost
     *  is confined to actual violations). */
    std::string reportOut;

    /** Stall watchdog threshold in wall-clock ms; 0 (default) keeps
     *  the watchdog thread off entirely. */
    std::uint64_t watchdogMs = 0;

    /** Host-time profiler: attribute every worker thread's wall time
     *  to phases (simulate / waits / drain / checkpoint / ...) and
     *  emit the profile section of the run report. Off by default;
     *  the dormant hook is a single relaxed load. */
    bool profile = false;

    /** Folded-stack output path for flamegraph.pl / speedscope; ""
     *  keeps the profile in the run report only. Setting this implies
     *  profile=true at the flag layer. */
    std::string profileOut;

    /** Correlation id stamped into every artifact this run emits
     *  (run report, metrics CSV schema line, forensics section). The
     *  job server sets it to "job-<id>"; "" for standalone runs. */
    std::string jobId;

    /** Distributed-trace id for the causal chain this run belongs to
     *  (16 hex digits, obs/span.hh). The job server propagates the
     *  submit-time id here (it survives the supervisor fork because
     *  the child's SimConfig is copied by value); standalone runs
     *  mint their own in runSimulation(). "" leaves every artifact
     *  without a trace section. */
    std::string traceId;

    /** Span id of the submitter-side root span this run's engine span
     *  nests under; 0 for standalone runs (the engine span becomes
     *  the root). */
    std::uint64_t parentSpanId = 0;

    /** Live progress mailbox (obs/progress.hh). When non-null the
     *  epoch sampler publishes a snapshot after every sample so an
     *  external observer (the serve heartbeat loop) can poll the run
     *  without touching engine state. Must outlive the run. */
    obs::RunProgress *progress = nullptr;

    /** @return true when any output is requested. */
    bool
    enabled() const
    {
        return !traceOut.empty() || !metricsOut.empty() ||
               !reportOut.empty() || profile;
    }
};

} // namespace slacksim

#endif // SLACKSIM_OBS_OBS_CONFIG_HH
