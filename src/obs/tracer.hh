/**
 * @file
 * Process-wide event tracer: a registry of per-thread lock-free
 * record rings plus the inline emit helpers the engines and models
 * call from their hot paths.
 *
 * Hot-path contract: emitting a record is one relaxed epoch load, a
 * thread-local pointer check, a steady_clock read and an SPSC push —
 * no mutexes anywhere. When no trace is active the helpers return
 * after the first load; when the library is built with
 * -DSLACKSIM_OBS_DISABLED they compile to nothing at all.
 *
 * Thread registration (cold path, mutex-guarded) binds the calling
 * thread to a fresh ring and a role label ("core 3", "manager",
 * "relay 0") used by the Chrome-trace exporter as the track name.
 * Sessions are epoch-numbered so a record emitted by a thread that
 * never re-registered after a previous run cannot touch a stale ring.
 */

#ifndef SLACKSIM_OBS_TRACER_HH
#define SLACKSIM_OBS_TRACER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace_buffer.hh"
#include "obs/trace_event.hh"

namespace slacksim::obs {

/** Everything drained from one registered thread. */
struct ThreadTrace
{
    std::string role;      //!< registration label ("core 3", ...)
    std::uint32_t tid = 0; //!< registration order, 0 = first
    std::uint64_t dropped = 0; //!< overflow-dropped record count
    std::vector<TraceRecord> records; //!< ring order (per-thread FIFO)
};

/** The global tracer registry. */
class Tracer
{
  public:
    /** Inline so the inactive hot path never leaves the caller. */
    static Tracer &
    instance()
    {
        static Tracer tracer;
        return tracer;
    }

    /**
     * Start a trace session: clears previous state and arms the emit
     * helpers. Call from the manager thread before worker threads
     * spawn. @param ring_kb per-thread ring size in KiB.
     * @return false when another session is already active (only one
     * trace session per process; the caller should skip tracing).
     */
    bool activate(std::uint32_t ring_kb);

    /** Stop the session; emit helpers become no-ops again. */
    void deactivate();

    /** @return true while a session is active (relaxed). */
    bool
    active() const
    {
        return epoch_.load(std::memory_order_relaxed) != 0;
    }

    /**
     * Bind the calling thread to a fresh ring under @p role. No-op
     * when no session is active. Safe to call on every run: the
     * binding of a previous session is replaced.
     */
    void registerThread(const std::string &role);

    /** Drop the calling thread's binding (thread exit). */
    void unregisterThread();

    /** Producer hot path: emit one record on the calling thread. */
    void
    emit(TraceCategory cat, TraceType type, const char *name,
         Tick cycle, std::int64_t arg = 0, std::int64_t arg2 = 0)
    {
        if (!active()) // inline early-out: no call when tracing is off
            return;
        TraceRing *ring = boundRing();
        if (!ring)
            return;
        emitAt(ring, wallNowNs(), cat, type, name, cycle, arg, arg2);
    }

    /** Like emit() but with an explicit wall timestamp (retroactive
     *  span begins captured via wallNowNs() before a block ran). */
    void
    emitAt(std::uint64_t wall_ns, TraceCategory cat, TraceType type,
           const char *name, Tick cycle, std::int64_t arg = 0,
           std::int64_t arg2 = 0)
    {
        if (!active())
            return;
        TraceRing *ring = boundRing();
        if (!ring)
            return;
        emitAt(ring, wall_ns, cat, type, name, cycle, arg, arg2);
    }

    /** @return ns since activation, or 0 when no session is active. */
    std::uint64_t
    wallNowNs() const
    {
        if (!active())
            return 0;
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0_)
                .count());
    }

    /**
     * Consumer side (manager thread / post-run): move every visible
     * record of every ring into the session accumulator. Safe while
     * producers are still running (SPSC protocol). @return records
     * moved by this call.
     */
    std::size_t collect();

    /** collect(), then @return the accumulated per-thread traces.
     *  Leaves the accumulator empty. */
    std::vector<ThreadTrace> takeTraces();

    /** @return total records dropped across all rings so far. */
    std::uint64_t droppedTotal() const;

  private:
    Tracer() = default;

    struct Slot
    {
        std::string role;
        std::uint32_t tid = 0;
        std::unique_ptr<TraceRing> ring;
        std::vector<TraceRecord> collected;
    };

    /** @return the calling thread's ring for the current session,
     *  or nullptr when tracing is off / the thread is unbound. */
    TraceRing *boundRing() const;

    static void
    emitAt(TraceRing *ring, std::uint64_t wall_ns, TraceCategory cat,
           TraceType type, const char *name, Tick cycle,
           std::int64_t arg, std::int64_t arg2)
    {
        TraceRecord rec;
        rec.wallNs = wall_ns;
        rec.cycle = cycle;
        rec.name = name;
        rec.arg = arg;
        rec.arg2 = arg2;
        rec.type = type;
        rec.category = cat;
        ring->push(rec);
    }

    std::atomic<std::uint64_t> epoch_{0}; //!< 0 = inactive
    std::uint64_t nextEpoch_ = 0;
    /** Run token that owns the session (0: not owned by any run —
     *  every thread may register, the single-tenant behavior). */
    std::uint64_t ownerToken_ = 0;
    std::uint32_t ringKb_ = 1024;
    std::chrono::steady_clock::time_point t0_{};

    mutable std::mutex registryMutex_; //!< guards slots_ (cold path)
    std::vector<std::unique_ptr<Slot>> slots_;
};

/** @return true when trace emission is currently armed. */
inline bool
traceActive()
{
#ifdef SLACKSIM_OBS_DISABLED
    return false;
#else
    return Tracer::instance().active();
#endif
}

#ifdef SLACKSIM_OBS_DISABLED

inline void traceBegin(TraceCategory, const char *, Tick,
                       std::int64_t = 0) {}
inline void traceEnd(TraceCategory, const char *, Tick,
                     std::int64_t = 0) {}
inline void traceInstant(TraceCategory, const char *, Tick,
                         std::int64_t = 0, std::int64_t = 0) {}
inline void traceCounter(TraceCategory, const char *, Tick,
                         std::int64_t) {}
inline std::uint64_t traceWallNs() { return 0; }
inline void traceSpanAt(std::uint64_t, TraceCategory, const char *,
                        Tick, Tick, std::int64_t = 0) {}

#else

/** Open a span on the calling thread's track. */
inline void
traceBegin(TraceCategory cat, const char *name, Tick cycle,
           std::int64_t arg = 0)
{
    Tracer::instance().emit(cat, TraceType::Begin, name, cycle, arg);
}

/** Close the innermost span of @p name on this thread's track. */
inline void
traceEnd(TraceCategory cat, const char *name, Tick cycle,
         std::int64_t arg = 0)
{
    Tracer::instance().emit(cat, TraceType::End, name, cycle, arg);
}

/** Emit a point event. */
inline void
traceInstant(TraceCategory cat, const char *name, Tick cycle,
             std::int64_t arg = 0, std::int64_t arg2 = 0)
{
    Tracer::instance().emit(cat, TraceType::Instant, name, cycle, arg,
                            arg2);
}

/** Emit a counter sample. */
inline void
traceCounter(TraceCategory cat, const char *name, Tick cycle,
             std::int64_t value)
{
    Tracer::instance().emit(cat, TraceType::Counter, name, cycle,
                            value);
}

/** @return the session wall clock (ns), for traceSpanAt(). */
inline std::uint64_t
traceWallNs()
{
    return Tracer::instance().wallNowNs();
}

/**
 * Emit a complete span after the fact: Begin stamped with a wall time
 * captured earlier (traceWallNs()), End stamped now. Lets the manager
 * loop trace a block only when it turned out to do work.
 */
inline void
traceSpanAt(std::uint64_t begin_wall_ns, TraceCategory cat,
            const char *name, Tick begin_cycle, Tick end_cycle,
            std::int64_t arg = 0)
{
    Tracer &t = Tracer::instance();
    t.emitAt(begin_wall_ns, cat, TraceType::Begin, name, begin_cycle);
    t.emit(cat, TraceType::End, name, end_cycle, arg);
}

#endif // SLACKSIM_OBS_DISABLED

/**
 * Merge per-thread traces into one (cycle, tid, per-thread order)
 * sorted list — the deterministic order tests and offline analyzers
 * consume. @return (tid, record) pairs.
 */
std::vector<std::pair<std::uint32_t, TraceRecord>>
mergeByCycle(const std::vector<ThreadTrace> &traces);

} // namespace slacksim::obs

#endif // SLACKSIM_OBS_TRACER_HH
