/**
 * @file
 * Flight recorder + stall watchdog: turn hangs and crashes into
 * actionable reports.
 *
 * Each registered worker owns a tiny ring of its most recent lifecycle
 * events (park, resume, finish, pause-ack, ...). A watchdog thread
 * polls every worker's local clock and ring head; when an eligible
 * worker makes no progress for the configured wall time the watchdog
 * dumps every worker's last clock, stall age and recent events plus an
 * engine-supplied progress probe (ProgressBoard sum/generation). The
 * same dump is pre-rendered continuously so a fatal signal (SIGABRT
 * from a panic, SIGSEGV) can emit it with nothing but write(2).
 *
 * Overhead contract: a worker's note() is a handful of relaxed atomic
 * stores; when no watchdog is configured (--watchdog-ms=0, the
 * default) the engines hold a null pointer and pay one branch. The
 * watchdog never kills the run — it reports and re-arms.
 */

#ifndef SLACKSIM_OBS_FLIGHT_RECORDER_HH
#define SLACKSIM_OBS_FLIGHT_RECORDER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/types.hh"

namespace slacksim {
namespace obs {

/**
 * Per-worker ring of recent lifecycle events. Single writer (the
 * worker), concurrent reader (the watchdog). All fields are relaxed
 * atomics: a reader may observe a torn *entry* (name from one event,
 * cycle from the next lap) but never a torn *field* — acceptable for
 * a best-effort post-mortem, and clean under TSan.
 */
class FlightRecorder
{
  public:
    static constexpr std::size_t capacity = 32;

    /** One recorded event. @p name must be a string literal. */
    struct Entry
    {
        std::atomic<std::uint64_t> seq{0}; //!< 0 = never written
        std::atomic<Tick> cycle{0};
        std::atomic<const char *> name{nullptr};
    };

    /** Worker side: append one event. */
    void
    note(const char *name, Tick cycle)
    {
        const std::uint64_t seq =
            head_.load(std::memory_order_relaxed) + 1;
        Entry &e = ring_[seq % capacity];
        e.cycle.store(cycle, std::memory_order_relaxed);
        e.name.store(name, std::memory_order_relaxed);
        e.seq.store(seq, std::memory_order_relaxed);
        head_.store(seq, std::memory_order_relaxed);
    }

    /** @return events recorded so far (watchdog progress signal). */
    std::uint64_t
    headSeq() const
    {
        return head_.load(std::memory_order_relaxed);
    }

    /**
     * Reader side: copy the most recent events, oldest first.
     * @return up to @p max (seq, cycle, name) tuples.
     */
    struct Snapshot
    {
        std::uint64_t seq = 0;
        Tick cycle = 0;
        const char *name = nullptr;
    };
    std::vector<Snapshot> recent(std::size_t max) const;

  private:
    std::atomic<std::uint64_t> head_{0};
    Entry ring_[capacity];
};

/**
 * Watchdog thread that monitors registered workers and dumps the
 * flight state on stall, fatal signal, or demand.
 */
class StallWatchdog
{
  public:
    /** @param stall_ms wall time without progress that counts as a
     *  stall. */
    explicit StallWatchdog(std::uint64_t stall_ms);
    ~StallWatchdog();

    StallWatchdog(const StallWatchdog &) = delete;
    StallWatchdog &operator=(const StallWatchdog &) = delete;

    /**
     * Register a worker before start().
     *
     * @param name  display label ("core 3", "relay 0", "manager")
     * @param clock the worker's local clock, or nullptr when it has
     *              none (progress is then judged by note() traffic)
     * @param finished optional completion flag; a finished worker is
     *              never considered stalled
     * @param stall_eligible false = informational only (shown in
     *              dumps, never triggers one)
     * @return worker index for note()
     */
    std::size_t addWorker(std::string name,
                          const std::atomic<Tick> *clock,
                          const std::atomic<bool> *finished,
                          bool stall_eligible);

    /** Worker hot path: record a lifecycle event. */
    void
    note(std::size_t worker, const char *event, Tick cycle)
    {
        workers_[worker]->recorder.note(event, cycle);
    }

    /** Engine-supplied one-line progress summary, polled per dump. */
    void setProgressProbe(std::function<std::string()> probe);

    /** Spawn the watchdog thread (workers must all be registered). */
    void start();

    /** Stop and join the watchdog thread. Idempotent. */
    void stop();

    /** Force a dump right now (on-demand forensics). */
    void dumpNow(const char *reason = "on demand");

    /** @return dumps emitted so far (stall-triggered + on-demand). */
    std::uint64_t stallDumps() const
    {
        return dumps_.load(std::memory_order_relaxed);
    }

    /** @return the text of the most recent dump ("" when none). */
    std::string lastDump() const;

    std::uint64_t stallMs() const { return stallMs_; }

  private:
    struct Worker
    {
        std::string name;
        const std::atomic<Tick> *clock = nullptr;
        const std::atomic<bool> *finished = nullptr;
        bool stallEligible = false;
        FlightRecorder recorder;

        // Watchdog-thread-only bookkeeping.
        Tick lastClock = 0;
        std::uint64_t lastSeq = 0;
        std::uint64_t lastChangeMs = 0;
    };

    void threadMain();

    /** @return ms since start(). */
    std::uint64_t nowMs() const;

    /**
     * Render the full dump. @param stalled per-worker stall flags
     * (empty = none flagged, e.g. on-demand dumps).
     */
    std::string renderDump(const char *reason,
                           const std::vector<bool> &stalled) const;

    /** Publish @p text for the async-signal-safe crash path. */
    void publishCrashDump(const std::string &text);

    void emitDump(const char *reason, const std::vector<bool> &stalled);

    static void signalHandler(int signo);
    void installSignalHandlers();
    void removeSignalHandlers();

    const std::uint64_t stallMs_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::function<std::string()> probe_;

    std::chrono::steady_clock::time_point t0_;
    std::thread thread_;
    mutable std::mutex mutex_; //!< guards cv_, lastDump_, probe_
    std::condition_variable cv_;
    bool stopping_ = false;
    bool started_ = false;
    std::atomic<std::uint64_t> dumps_{0};
    std::string lastDump_;

    // Crash-dump double buffer: the watchdog thread renders into the
    // unpublished slot, then flips. The signal handler write(2)s the
    // published slot without taking any lock.
    struct CrashBuf
    {
        char text[8192];
        std::atomic<std::size_t> len{0};
    };
    CrashBuf crash_[2];
    std::atomic<int> crashPub_{-1}; //!< -1 = nothing rendered yet
    bool signalsInstalled_ = false;
};

} // namespace obs
} // namespace slacksim

#endif // SLACKSIM_OBS_FLIGHT_RECORDER_HH
