/**
 * @file
 * Run-report writer (schema slacksim.run_report.v5).
 */

#include "obs/run_report.hh"

#include <thread>

#include "core/config.hh"
#include "core/run_result.hh"
#include "fault/fault_plan.hh"
#include "obs/span.hh"
#include "util/build_info.hh"
#include "util/json.hh"

namespace slacksim {
namespace obs {

namespace {

const char *
checkpointModeName(CheckpointMode mode)
{
    switch (mode) {
      case CheckpointMode::Off:
        return "off";
      case CheckpointMode::Measure:
        return "measure";
      case CheckpointMode::Speculative:
        return "speculative";
    }
    return "unknown";
}

const char *
checkpointTechName(CheckpointTech tech)
{
    switch (tech) {
      case CheckpointTech::Memory:
        return "memory";
      case CheckpointTech::ForkProcess:
        return "fork";
    }
    return "unknown";
}

void
writeHistogramSummary(JsonWriter &w, const char *key,
                      const Log2Histogram &h)
{
    w.beginObject(key);
    w.field("count", h.count());
    w.field("mean", h.mean());
    w.field("p50", h.percentile(50));
    w.field("p95", h.percentile(95));
    w.field("max", h.max());
    w.endObject();
}

void
writeConfigSection(JsonWriter &w, const SimConfig &config)
{
    const EngineConfig &e = config.engine;
    w.beginObject("config");
    w.field("workload", config.workload.kernel);
    w.field("cores", config.target.numCores);
    w.field("scheme", schemeName(e.scheme));
    w.field("parallel_host", e.parallelHost);
    w.field("slack_bound", e.slackBound);
    w.field("quantum", e.quantum);
    w.beginObject("adaptive");
    w.field("target_rate", e.adaptive.targetViolationRate);
    w.field("band", e.adaptive.violationBand);
    w.field("epoch_cycles", e.adaptive.epochCycles);
    w.field("initial_bound", e.adaptive.initialBound);
    w.field("min_bound", e.adaptive.minBound);
    w.field("max_bound", e.adaptive.maxBound);
    w.field("windowed_rate", e.adaptive.windowedRate);
    w.endObject();
    w.beginObject("checkpoint");
    w.field("mode", checkpointModeName(e.checkpoint.mode));
    w.field("tech", checkpointTechName(e.checkpoint.tech));
    w.field("interval", e.checkpoint.interval);
    w.field("child_timeout_ms", e.checkpoint.childTimeoutMs);
    w.endObject();
    w.beginObject("recovery");
    w.field("storm_threshold", e.recovery.stormThreshold);
    w.field("storm_window", e.recovery.stormWindow);
    w.field("pinned_epoch_limit", e.recovery.pinnedEpochLimit);
    w.field("repromote_after", e.recovery.repromoteAfter);
    w.endObject();
    w.beginObject("obs");
    w.field("trace_out", e.obs.traceOut);
    w.field("metrics_out", e.obs.metricsOut);
    w.field("report_out", e.obs.reportOut);
    w.field("watchdog_ms", e.obs.watchdogMs);
    w.field("profile", e.obs.profile);
    w.field("profile_out", e.obs.profileOut);
    w.field("job_id", e.obs.jobId);
    w.field("trace_id", e.obs.traceId);
    w.field("parent_span_id", spanIdHex(e.obs.parentSpanId));
    w.endObject();
    w.endObject();
}

void
writeResultSection(JsonWriter &w, const RunResult &r)
{
    w.beginObject("result");
    w.field("exec_cycles", r.execCycles);
    w.field("global_cycles", r.globalCycles);
    w.field("committed_uops", r.committedUops);
    w.field("ipc", r.ipc());
    w.field("cpi", r.cpi());
    w.field("wall_seconds", r.host.wallSeconds);
    w.beginObject("violations");
    w.field("bus", r.violations.busViolations);
    w.field("map", r.violations.mapViolations);
    w.field("bus_rate", r.busViolationRate());
    w.field("map_rate", r.mapViolationRate());
    w.endObject();
    w.beginObject("host");
    w.field("checkpoints", r.host.checkpointsTaken);
    w.field("checkpoint_bytes", r.host.checkpointBytes);
    w.field("checkpoint_seconds", r.host.checkpointSeconds);
    // Seal/copy work a background thread absorbed while the cores
    // kept simulating — overlapped host time, deliberately *not* part
    // of the critical-path checkpoint_seconds above.
    w.field("checkpoint_async_seconds", r.host.checkpointAsyncSeconds);
    w.field("rollbacks", r.host.rollbacks);
    w.field("wasted_cycles", r.host.wastedCycles);
    w.field("replay_cycles", r.host.replayCycles);
    w.field("slack_adjustments", r.host.slackAdjustments);
    w.field("manager_wakeups", r.host.managerWakeups);
    w.field("max_observed_slack", r.host.maxObservedSlack);
    w.field("host_threads_used",
            static_cast<std::uint64_t>(r.host.hostThreadsUsed));
    w.endObject();
    w.field("final_slack_bound", r.finalSlackBound);
    w.field("intervals",
            static_cast<std::uint64_t>(r.intervals.size()));
    w.endObject();
}

void
writeForensicsSection(JsonWriter &w, const ForensicsData &f,
                      const std::string &jobId)
{
    w.beginObject("forensics");
    // The ledger/decision-log header carries the correlation id so an
    // extracted forensics block can still be joined to the server
    // event log on its own.
    w.field("job_id", jobId);

    const ViolationLedger &ledger = f.ledger;
    w.beginObject("violations");
    w.field("bus_total", ledger.busTotal());
    w.field("map_total", ledger.mapTotal());
    w.beginObject("slack_histogram");
    writeHistogramSummary(w, "bus", ledger.busSlack());
    writeHistogramSummary(w, "map", ledger.mapSlack());
    w.endObject();
    w.beginArray("pairs");
    for (const auto &p : ledger.nonzeroPairs()) {
        w.beginObject();
        w.field("requester", p.requester);
        w.field("prior", p.prior == invalidCore
                             ? std::int64_t(-1)
                             : static_cast<std::int64_t>(p.prior));
        w.field("bus", p.bus);
        w.field("map", p.map);
        w.endObject();
    }
    w.endArray();
    w.beginArray("top_offenders");
    for (const auto &o : ledger.topOffenders(10)) {
        w.beginObject();
        w.field("bucket", o.bucket);
        w.field("bus", o.bus);
        w.field("map", o.map);
        w.endObject();
    }
    w.endArray();
    w.field("untracked_buckets", ledger.untrackedBuckets());
    w.endObject();

    const AdaptiveDecisionLog &log = f.decisions;
    w.beginArray("decisions");
    for (const auto &d : log.decisions()) {
        w.beginObject();
        w.field("cycle", d.cycle);
        w.field("rate", d.rate);
        w.field("verdict", bandVerdictName(d.verdict));
        w.field("old_bound", d.oldBound);
        w.field("new_bound", d.newBound);
        w.endObject();
    }
    w.endArray();
    w.field("decisions_dropped", log.decisionsDropped());
    w.beginArray("episodes");
    for (const auto &e : log.episodes()) {
        w.beginObject();
        w.field("kind", episodeKindName(e.kind));
        w.field("cycle", e.cycle);
        w.field("detail", e.detail);
        w.field("host_ns", e.hostNs);
        w.endObject();
    }
    w.endArray();
    w.field("episodes_dropped", log.episodesDropped());
    w.beginArray("transitions");
    for (const auto &t : log.transitions()) {
        w.beginObject();
        w.field("cycle", t.cycle);
        w.field("from", t.from);
        w.field("to", t.to);
        w.field("reason", t.reason);
        w.endObject();
    }
    w.endArray();
    w.field("transitions_dropped", log.transitionsDropped());

    w.endObject();
}

void
writeDegradationSection(JsonWriter &w, const SimConfig &config,
                        const RunResult &r)
{
    w.beginObject("degradation");
    w.field("level", r.degradationLevel);
    w.field("demotions", r.demotions);
    w.field("repromotions", r.repromotions);
    w.field("storm_threshold",
            config.engine.recovery.stormThreshold);
    w.field("repromote_after", config.engine.recovery.repromoteAfter);
    w.endObject();
}

void
writePhaseTotals(JsonWriter &w, const char *key,
                 const std::vector<PhaseTotal> &totals)
{
    w.beginArray(key);
    for (const auto &t : totals) {
        w.beginObject();
        w.field("name", t.name);
        w.field("ns", t.ns);
        w.field("count", t.count);
        w.endObject();
    }
    w.endArray();
}

void
writeProfileSection(JsonWriter &w, const ProfileReport &p)
{
    w.beginObject("profile");
    w.field("enabled", p.enabled);
    w.field("wall_ns", p.wallNs);
    w.field("attributed_ns", p.attributedNs());
    w.field("tsc_ghz", p.tscGhz);
    writePhaseTotals(w, "phases", p.phaseTotals);
    w.beginArray("workers");
    for (const auto &worker : p.workers) {
        w.beginObject();
        w.field("role", worker.role);
        w.field("tid", worker.tid);
        w.field("span_ns", worker.spanNs);
        w.field("other_ns", worker.otherNs);
        w.field("truncated", worker.truncated);
        w.field("dropped_paths", worker.droppedPaths);
        writePhaseTotals(w, "phases", worker.phases);
        writePhaseTotals(w, "paths", worker.paths);
        w.endObject();
    }
    w.endArray();
    w.beginObject("hw");
    w.field("available", p.hw.available);
    w.field("reason", p.hw.reason);
    w.field("cycles", p.hw.cycles);
    w.field("instructions", p.hw.instructions);
    w.field("cache_misses", p.hw.cacheMisses);
    w.endObject();
    w.field("verdict", p.verdict);
    w.endObject();
}

void
writeFaultsSection(JsonWriter &w, const RunResult &r)
{
    w.beginObject("faults");
    w.field("spec_count", r.faultSpecCount);
    w.field("seed", r.faultSeed);
    w.beginArray("injections");
    for (const auto &inj : r.faultInjections) {
        w.beginObject();
        w.field("kind", fault::faultKindName(inj.kind));
        w.field("trigger", inj.trigger);
        w.field("cycle", inj.cycle);
        w.field("detail", inj.detail);
        w.field("handled_by", inj.handledBy);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

void
writeRunReport(std::ostream &os, const SimConfig &config,
               const RunResult &result)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", runReportSchema);
    // Additive v3 field: "ok" for a run that reached its stop
    // condition, "cancelled" for a cooperative cancel (timeout,
    // client cancel, daemon drain) — every aggregate then covers only
    // the work done up to the cancel point.
    w.field("status", result.cancelled ? "cancelled" : "ok");
    // Additive v4 field: the serve correlation id ("" standalone).
    w.field("job_id", config.engine.obs.jobId);
    w.beginObject("generator");
    w.field("name", "slacksim");
    w.field("host_threads",
            static_cast<std::uint64_t>(
                std::thread::hardware_concurrency()));
    const BuildInfo &build = buildInfo();
    w.beginObject("build");
    w.field("git", build.gitHash);
    w.field("dirty", build.gitDirty[0] != '\0');
    w.field("compiler", build.compiler);
    w.field("build_type", build.buildType);
    w.field("obs", build.obs);
    w.field("sanitize", build.sanitize);
    w.endObject();
    w.endObject();
    writeConfigSection(w, config);
    writeResultSection(w, result);
    writeForensicsSection(w, result.forensics, config.engine.obs.jobId);
    writeDegradationSection(w, config, result);
    writeFaultsSection(w, result);
    writeProfileSection(w, result.forensics.profile);
    w.beginObject("obs");
    w.field("trace_records", result.forensics.obs.traceRecords);
    w.field("trace_dropped", result.forensics.obs.traceDropped);
    w.field("trace_bytes", result.forensics.obs.traceBytes);
    w.field("metrics_rows", result.forensics.obs.metricsRows);
    w.field("metrics_bytes", result.forensics.obs.metricsBytes);
    w.field("sampler_host_ns", result.forensics.obs.samplerHostNs);
    w.field("io_errors", result.forensics.obs.ioErrors);
    w.endObject();
    w.beginObject("watchdog");
    w.field("enabled", result.forensics.watchdogEnabled);
    w.field("stall_ms", result.forensics.stallMs);
    w.field("stall_dumps", result.forensics.stallDumps);
    w.endObject();
    // Additive v5 section: distributed-trace identity + clock anchor.
    const TraceSpanInfo &trace = result.forensics.trace;
    w.beginObject("trace");
    w.field("active", trace.active);
    w.field("trace_id", trace.traceId);
    w.field("span_id", spanIdHex(trace.spanId));
    w.field("parent_span_id", spanIdHex(trace.parentSpanId));
    w.field("pid", static_cast<std::uint64_t>(trace.anchor.pid));
    w.beginObject("clock_anchor");
    w.field("wall_us", trace.anchor.wallUs);
    w.field("steady_ns", trace.anchor.steadyNs);
    w.field("tsc", trace.anchor.tsc);
    w.field("tsc_ghz", result.forensics.profile.tscGhz);
    w.endObject();
    w.endObject();
    w.endObject();
    w.finish();
}

} // namespace obs
} // namespace slacksim
