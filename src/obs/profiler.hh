/**
 * @file
 * Host-time profiling layer: where do the host cycles of a run go?
 *
 * The event tracer (obs/tracer.hh) answers "what happened when"; this
 * layer answers the paper's headline question — host speedup — by
 * attributing every worker thread's wall time to a small set of
 * phases: simulate, queue-push, wait-for-slack, wait-inbound,
 * barrier, checkpoint, rollback-replay, drain, pacer-epoch, sample.
 * parti-gem5 and ScaleSimulator both attribute parallel-sim overhead
 * to synchronization and queue stalls before optimizing; the profiler
 * is that lens for the slack engines.
 *
 * Mechanics: a scoped PhaseScope reads a coarse timestamp counter
 * (rdtsc on x86, the virtual counter on aarch64, steady_clock
 * elsewhere) on entry and exit and accumulates *exclusive* time into
 * a per-thread, cache-line-padded slot keyed by the full phase path
 * (so nested scopes form flamegraph stacks). Raw ticks are converted
 * to nanoseconds once, at collection, with a calibration measured
 * across the whole session — no per-scope conversion cost and no
 * dependence on a short warmup spin.
 *
 * Hot-path contract: when no profiling session is active a PhaseScope
 * is one relaxed atomic load (enforced by perf_smoke --baseline, like
 * the fault hooks); with -DSLACKSIM_OBS_DISABLED it compiles away
 * entirely. When active, enter/exit are one TSC read plus a handful
 * of owner-thread writes — no atomics beyond one relaxed store of the
 * current phase (read by the stall watchdog so a stall dump can say
 * *what* the stuck worker was doing).
 *
 * Threading: registration and collection are mutex-guarded cold
 * paths. Slot counters are owner-thread-only; collect() must run
 * after worker threads joined (both engines already join before
 * ObsSession::finish()), which gives the reader a happens-before over
 * every plain field. Only the `current` phase byte is read live.
 */

#ifndef SLACKSIM_OBS_PROFILER_HH
#define SLACKSIM_OBS_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.hh"

namespace slacksim::obs {

/** Host-time attribution categories. Order is the report order. */
enum class Phase : std::uint8_t {
    Simulate,       //!< advancing target state (core bursts, uncore service)
    QueuePush,      //!< moving events between queues / backpressure
    WaitSlack,      //!< parked at the pacing limit (slack exhausted)
    WaitInbound,    //!< parked waiting for deliveries / progress
    Barrier,        //!< stop-the-world pause handshake
    Checkpoint,     //!< taking a snapshot
    RollbackReplay, //!< restoring a snapshot / replay bookkeeping
    Drain,          //!< manager service block (pump + sorted service)
    PacerEpoch,     //!< adaptive-controller epoch evaluation
    Sample,         //!< metrics sampler snapshot
};

/** Number of real phases (excludes the synthetic "other"). */
inline constexpr std::size_t numPhases = 10;

/** @return stable lowercase name for a phase. */
const char *phaseName(Phase p);

/** Totals for one phase (or one stack path). */
struct PhaseTotal
{
    std::string name; //!< phase name, or ";"-joined path
    std::uint64_t ns = 0;
    std::uint64_t count = 0;
};

/** One worker thread's attribution. */
struct ProfileWorker
{
    std::string role;            //!< "core 3", "relay 0", "manager"
    std::uint32_t tid = 0;       //!< registration order
    std::uint64_t spanNs = 0;    //!< register -> unregister/collect
    std::uint64_t otherNs = 0;   //!< span minus attributed time
    std::uint64_t truncated = 0; //!< scopes past the nesting cap
    std::uint64_t droppedPaths = 0; //!< path-table overflow victims
    std::vector<PhaseTotal> phases; //!< per-phase exclusive totals
    std::vector<PhaseTotal> paths;  //!< per-stack-path exclusive totals
};

/** Hardware-counter readings (perf_event_open), when available. */
struct HwCounterTotals
{
    bool available = false;
    std::string reason; //!< why not, when unavailable
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cacheMisses = 0;
};

/** Everything one profiling session collected. */
struct ProfileReport
{
    bool enabled = false;
    std::uint64_t wallNs = 0; //!< session wall time (steady clock)
    double tscGhz = 0.0;      //!< measured counter rate
    std::vector<ProfileWorker> workers;
    std::vector<PhaseTotal> phaseTotals; //!< summed across workers
    HwCounterTotals hw;
    std::string verdict; //!< one-line top-bottleneck statement

    /** Sum of a worker's attributed phase time plus its other bucket
     *  equals its span by construction; this is the cross-worker
     *  attributed total (excludes other). */
    std::uint64_t attributedNs() const;
};

/** Compute the top-bottleneck verdict line from the phase totals. */
std::string profileVerdict(const ProfileReport &report);

/** Write the report as a folded-stack file (flamegraph.pl /
 *  speedscope "collapsed stacks"): `role;phase;phase count` with the
 *  count in microseconds of exclusive host time. */
void writeFoldedStacks(std::ostream &os, const ProfileReport &report);

/** @return the current timestamp-counter value (monotonic ticks). */
std::uint64_t profTsc();

/**
 * Process-wide profiler registry: per-thread slots bound the same way
 * the tracer binds rings. One session at a time.
 */
class Profiler
{
  public:
    static Profiler &
    instance()
    {
        static Profiler profiler;
        return profiler;
    }

    /**
     * Start a profiling session and arm the PhaseScope hot path.
     * Call from the manager thread before worker threads spawn.
     * @return false when another session is already active.
     */
    bool beginSession();

    /**
     * Stop the session and aggregate every slot into a report.
     * Worker threads must have unregistered (engines join them first);
     * the calling thread's own slot is closed in place. Phase/path
     * tick totals are converted to ns with the calibration measured
     * between beginSession() and now.
     */
    ProfileReport endSession();

    /** @return true while a session is active (relaxed load). */
    bool
    active() const
    {
        return epoch_.load(std::memory_order_relaxed) != 0;
    }

    /** Bind the calling thread to a fresh slot under @p role.
     *  No-op when no session is active. */
    void registerThread(const std::string &role);

    /** Close the calling thread's slot (records the span end). */
    void unregisterThread();

    /**
     * Live phase of the slot registered under @p role, for the stall
     * watchdog's dumps. @return nullptr when no session is active or
     * the role is unknown; "idle" when the worker holds no scope.
     */
    const char *currentPhaseOfRole(const std::string &role) const;

    // -- PhaseScope internals (public for the inline hot path) --

    static constexpr std::size_t maxDepth = 8;  //!< nesting cap
    static constexpr std::size_t maxPaths = 64; //!< per-slot path table

    struct PathStat
    {
        std::uint64_t key = 0; //!< packed path, 0 = empty slot entry
        std::uint64_t ticks = 0;
        std::uint64_t count = 0;
    };

    /** One thread's attribution state. Owner-thread writes only;
     *  padded so neighbouring slots never share a line. */
    struct alignas(64) Slot
    {
        struct Frame
        {
            std::uint8_t phase = 0;
            std::uint64_t startTicks = 0;
            std::uint64_t childTicks = 0;
        };

        std::string role;
        std::uint32_t tid = 0;
        std::uint64_t startTicks = 0;
        std::uint64_t endTicks = 0; //!< 0 = still open
        std::uint32_t depth = 0;
        std::uint64_t pathKey = 0; //!< packed phase path (8 bits/level)
        Frame stack[maxDepth];
        PathStat paths[maxPaths]; //!< open-addressed by path key
        std::uint64_t droppedPaths = 0;
        std::uint64_t truncated = 0;
        std::atomic<std::uint8_t> current{0}; //!< phase + 1; 0 = idle
    };

    /** @return the calling thread's slot for the current session, or
     *  nullptr when profiling is off / the thread is unbound. */
    Slot *boundSlot() const;

    static void enter(Slot *slot, Phase p);
    static void exit(Slot *slot);

  private:
    Profiler() = default;

    void closeSlot(Slot &slot, std::uint64_t now_ticks);

    std::atomic<std::uint64_t> epoch_{0}; //!< 0 = inactive
    std::uint64_t nextEpoch_ = 0;
    /** Run token that owns the session (0: not owned by any run —
     *  every thread may register, the single-tenant behavior). */
    std::uint64_t ownerToken_ = 0;
    std::uint64_t t0Ticks_ = 0;
    std::chrono::steady_clock::time_point t0_{};

    mutable std::mutex registryMutex_; //!< guards slots_ (cold path)
    std::vector<std::unique_ptr<Slot>> slots_;
};

#ifdef SLACKSIM_OBS_DISABLED

/** Compile-time-disabled build: scopes vanish entirely. */
class PhaseScope
{
  public:
    explicit PhaseScope(Phase) {}
    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;
};

#else

/**
 * RAII phase attribution. Constructing one when no session is active
 * costs a single relaxed load; destruction then costs one branch.
 */
class PhaseScope
{
  public:
    explicit PhaseScope(Phase p)
    {
        Profiler &prof = Profiler::instance();
        if (!prof.active()) // inline early-out: disabled-path cost
            return;
        slot_ = prof.boundSlot();
        if (slot_)
            Profiler::enter(slot_, p);
    }

    ~PhaseScope()
    {
        if (slot_)
            Profiler::exit(slot_);
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    Profiler::Slot *slot_ = nullptr;
};

#endif // SLACKSIM_OBS_DISABLED

} // namespace slacksim::obs

#endif // SLACKSIM_OBS_PROFILER_HH
