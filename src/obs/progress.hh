/**
 * @file
 * Live per-run progress snapshot: the bridge between the engine's
 * epoch MetricsSampler (manager thread) and an external observer (the
 * serve scheduler publishing heartbeats into `watch` streams and the
 * `slacksim-submit top` view).
 *
 * The sampler is the only writer; readers poll at their own cadence.
 * Every field is an independent relaxed atomic — a reader may see a
 * torn *set* (cycle from epoch N, rate from epoch N-1), which is fine
 * for telemetry: each value is individually coherent and at most one
 * epoch stale. Nothing here is on the simulation hot path: the struct
 * is touched once per sampling epoch, and runs without an attached
 * observer never allocate one (ObsConfig::progress stays null).
 */

#ifndef SLACKSIM_OBS_PROGRESS_HH
#define SLACKSIM_OBS_PROGRESS_HH

#include <atomic>
#include <cstdint>

namespace slacksim::obs {

/** Lock-free run-progress mailbox (one writer, any readers). */
struct RunProgress
{
    std::atomic<std::uint64_t> epochs{0};      //!< samples published
    std::atomic<std::uint64_t> wallNs{0};      //!< ns since run start
    std::atomic<std::uint64_t> globalCycle{0}; //!< simulated time
    std::atomic<std::uint64_t> slackBound{0};  //!< current pacer bound
    std::atomic<std::uint64_t> violations{0};  //!< bus + map, cumulative
    std::atomic<std::uint64_t> checkpoints{0};
    std::atomic<std::uint64_t> rollbacks{0};
    /** Simulated cycles per host second over the last epoch window. */
    std::atomic<double> cyclesPerSec{0.0};
    /** Serviced bus events per host second over the last window. */
    std::atomic<double> eventsPerSec{0.0};
    std::atomic<bool> replay{false}; //!< inside a speculative replay

    /** Plain-value copy for reporting code. */
    struct Snapshot
    {
        std::uint64_t epochs = 0;
        std::uint64_t wallNs = 0;
        std::uint64_t globalCycle = 0;
        std::uint64_t slackBound = 0;
        std::uint64_t violations = 0;
        std::uint64_t checkpoints = 0;
        std::uint64_t rollbacks = 0;
        double cyclesPerSec = 0.0;
        double eventsPerSec = 0.0;
        bool replay = false;
    };

    Snapshot
    read() const
    {
        Snapshot s;
        s.epochs = epochs.load(std::memory_order_relaxed);
        s.wallNs = wallNs.load(std::memory_order_relaxed);
        s.globalCycle = globalCycle.load(std::memory_order_relaxed);
        s.slackBound = slackBound.load(std::memory_order_relaxed);
        s.violations = violations.load(std::memory_order_relaxed);
        s.checkpoints = checkpoints.load(std::memory_order_relaxed);
        s.rollbacks = rollbacks.load(std::memory_order_relaxed);
        s.cyclesPerSec = cyclesPerSec.load(std::memory_order_relaxed);
        s.eventsPerSec = eventsPerSec.load(std::memory_order_relaxed);
        s.replay = replay.load(std::memory_order_relaxed);
        return s;
    }
};

} // namespace slacksim::obs

#endif // SLACKSIM_OBS_PROGRESS_HH
