/**
 * @file
 * ObsSession implementation.
 */

#include "obs/obs_session.hh"

#include <fstream>

#include "core/manager_logic.hh"
#include "core/pacer.hh"
#include "core/sim_system.hh"
#include "obs/chrome_trace.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace slacksim::obs {

ObsSession::ObsSession(const ObsConfig &config, SimSystem &sys,
                       Pacer &pacer, ManagerLogic &mgr,
                       const HostStats &host)
    : config_(config),
      sys_(sys),
      pacer_(pacer),
      mgr_(mgr),
      host_(host)
{
}

ObsSession::~ObsSession()
{
    // Normal exit goes through finish(); this only releases the
    // tracer when an engine dies mid-run (panic unwinding in tests).
    if (tracing_ && !finished_)
        Tracer::instance().deactivate();
}

void
ObsSession::begin(const char *role)
{
    t0_ = std::chrono::steady_clock::now();
    if (!config_.traceOut.empty()) {
        tracing_ = Tracer::instance().activate(config_.bufferKb);
        if (tracing_) {
            Tracer::instance().registerThread(role);
            traceBegin(TraceCategory::Engine, "engine-run", 0);
        } else {
            SLACKSIM_WARN("trace session already active; --trace-out=",
                          config_.traceOut, " ignored for this run");
        }
    }
    if (!config_.metricsOut.empty()) {
        Tick epoch = config_.metricsEpoch;
        if (epoch == 0) {
            const EngineConfig &engine = sys_.config().engine;
            epoch = engine.scheme == SchemeKind::Adaptive
                        ? engine.adaptive.epochCycles
                        : 1000;
        }
        sampler_ = std::make_unique<MetricsSampler>(epoch);
    }
}

std::uint64_t
ObsSession::wallNowNs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
}

void
ObsSession::maybeSample(Tick global)
{
    if (sampler_ && sampler_->due(global))
        sample(global);
}

void
ObsSession::forceSample(Tick global)
{
    if (sampler_)
        sample(global);
}

void
ObsSession::sample(Tick global)
{
    MetricsRow row;
    row.wallNs = wallNowNs();
    row.global = global;
    row.minLocal = sys_.globalTime();
    row.maxLocal = sys_.maxLocalTime();
    row.slackBound = pacer_.currentBound();
    row.replay = pacer_.replayMode();
    row.busViolations = sys_.violations().busViolations;
    row.mapViolations = sys_.violations().mapViolations;
    row.busRequests = sys_.uncoreStats().busRequests;
    row.busQueueingCycles = sys_.uncoreStats().busQueueingCycles;
    row.mgrPending = mgr_.pendingDepth();
    row.checkpoints = host_.checkpointsTaken;
    row.rollbacks = host_.rollbacks;
    row.coreLocal.reserve(sys_.numCores());
    for (CoreId c = 0; c < sys_.numCores(); ++c)
        row.coreLocal.push_back(sys_.core(c).localTime());
    sampler_->push(global, std::move(row));
}

void
ObsSession::collectTrace()
{
    if (tracing_)
        Tracer::instance().collect();
}

void
ObsSession::finish(Tick global)
{
    if (finished_)
        return;
    finished_ = true;

    if (sampler_) {
        sample(global);
        std::ofstream os(config_.metricsOut);
        if (!os) {
            SLACKSIM_WARN("cannot write metrics CSV to ",
                          config_.metricsOut);
        } else {
            sampler_->writeCsv(os);
            SLACKSIM_INFORM("metrics: ", sampler_->rows().size(),
                            " epoch samples -> ", config_.metricsOut);
        }
    }

    if (tracing_) {
        traceEnd(TraceCategory::Engine, "engine-run", global);
        auto traces = Tracer::instance().takeTraces();
        Tracer::instance().deactivate();
        std::uint64_t records = 0;
        std::uint64_t dropped = 0;
        for (const auto &t : traces) {
            records += t.records.size();
            dropped += t.dropped;
        }
        std::ofstream os(config_.traceOut);
        if (!os) {
            SLACKSIM_WARN("cannot write Chrome trace to ",
                          config_.traceOut);
        } else {
            writeChromeTrace(os, traces);
            SLACKSIM_INFORM("trace: ", records, " events on ",
                            traces.size(), " tracks -> ",
                            config_.traceOut,
                            dropped ? " (ring overflow dropped " : "",
                            dropped ? std::to_string(dropped) : "",
                            dropped ? " records; raise --obs-buffer-kb)"
                                    : "");
        }
    }
}

} // namespace slacksim::obs
