/**
 * @file
 * ObsSession implementation.
 */

#include "obs/obs_session.hh"

#include "core/checkpointer.hh"
#include "core/manager_logic.hh"
#include "core/pacer.hh"
#include "core/sim_system.hh"
#include "obs/chrome_trace.hh"
#include "obs/profiler.hh"
#include "obs/progress.hh"
#include "obs/tracer.hh"
#include "util/io.hh"
#include "util/logging.hh"

namespace slacksim::obs {

ObsSession::ObsSession(const ObsConfig &config, SimSystem &sys,
                       Pacer &pacer, ManagerLogic &mgr,
                       Checkpointer &ckpt, const HostStats &host)
    : config_(config),
      sys_(sys),
      pacer_(pacer),
      mgr_(mgr),
      ckpt_(ckpt),
      host_(host)
{
}

ObsSession::~ObsSession()
{
    // Normal exit goes through finish(); this only releases the
    // tracer and the forensics wiring when an engine dies mid-run
    // (panic unwinding in tests). The wired components hold raw
    // pointers into this session, so unwiring before destruction is
    // load-bearing, not cosmetic.
    unwire();
    if (watchdog_)
        watchdog_->stop();
    if (tracing_ && !finished_)
        Tracer::instance().deactivate();
    if (profiling_ && !finished_)
        Profiler::instance().endSession();
}

void
ObsSession::begin(const char *role)
{
    t0_ = std::chrono::steady_clock::now();

    // Forensics is always on: its hot-path cost is one pointer test
    // plus table updates on actual violations, and an always-wired
    // ledger is what makes "ledger totals == ViolationStats"
    // unconditional. Wiring must precede the engine's initial
    // checkpoint so the ledger is serialized into every snapshot and
    // rewinds with the violation counters on rollback.
    ledger_.reset(sys_.numCores());
    decisions_.clear();
    sys_.uncore().setLedger(&ledger_);
    pacer_.setDecisionLog(&decisions_);
    ckpt_.setDecisionLog(&decisions_);
    wired_ = true;

    if (config_.watchdogMs > 0)
        watchdog_ = std::make_unique<StallWatchdog>(config_.watchdogMs);

    if (!config_.traceOut.empty()) {
        tracing_ = Tracer::instance().activate(config_.bufferKb);
        if (tracing_) {
            Tracer::instance().registerThread(role);
            traceBegin(TraceCategory::Engine, "engine-run", 0);
        } else {
            SLACKSIM_WARN("trace session already active; --trace-out=",
                          config_.traceOut, " ignored for this run");
        }
    }
    // Stamp the distributed-trace identity for this run. The anchor
    // is captured here — within µs of the tracer's t0 — so the fleet
    // merger can shift this process's relative trace timestamps onto
    // the wall-epoch timeline.
    if (!config_.traceId.empty()) {
        traceInfo_.traceId = config_.traceId;
        traceInfo_.spanId = mintSpanId();
        traceInfo_.parentSpanId = config_.parentSpanId;
        traceInfo_.anchor = captureClockAnchor();
        traceInfo_.active = true;
    }
    if (config_.profile) {
        profiling_ = Profiler::instance().beginSession();
        if (profiling_) {
            Profiler::instance().registerThread(role);
            // Hardware counters must open before worker threads spawn:
            // inherit=1 only covers threads created after the open.
            hw_ = std::make_unique<HwCounters>();
            hw_->open();
        } else {
            SLACKSIM_WARN("profiler session already active; --profile "
                          "ignored for this run");
        }
    }
    // A live-progress observer needs the sampler running even when no
    // CSV was requested: the heartbeat is fed from the same epoch
    // samples, the rows just stay in memory.
    if (!config_.metricsOut.empty() || config_.progress) {
        Tick epoch = config_.metricsEpoch;
        if (epoch == 0) {
            const EngineConfig &engine = sys_.config().engine;
            epoch = engine.scheme == SchemeKind::Adaptive
                        ? engine.adaptive.epochCycles
                        : 1000;
        }
        sampler_ = std::make_unique<MetricsSampler>(epoch);
    }
}

void
ObsSession::unwire()
{
    if (!wired_)
        return;
    sys_.uncore().setLedger(nullptr);
    pacer_.setDecisionLog(nullptr);
    ckpt_.setDecisionLog(nullptr);
    wired_ = false;
}

std::uint64_t
ObsSession::wallNowNs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
}

void
ObsSession::maybeSample(Tick global)
{
    if (sampler_ && sampler_->due(global))
        sample(global);
}

void
ObsSession::forceSample(Tick global)
{
    if (sampler_)
        sample(global);
}

void
ObsSession::sample(Tick global)
{
    PhaseScope scope(Phase::Sample);
    const std::uint64_t t0 = wallNowNs();
    MetricsRow row;
    row.wallNs = t0;
    row.global = global;
    row.minLocal = sys_.globalTime();
    row.maxLocal = sys_.maxLocalTime();
    row.slackBound = pacer_.currentBound();
    row.replay = pacer_.replayMode();
    row.busViolations = sys_.violations().busViolations;
    row.mapViolations = sys_.violations().mapViolations;
    row.busRequests = sys_.uncoreStats().busRequests;
    row.busQueueingCycles = sys_.uncoreStats().busQueueingCycles;
    row.mgrPending = mgr_.pendingDepth();
    row.checkpoints = host_.checkpointsTaken;
    row.rollbacks = host_.rollbacks;
    row.coreLocal.reserve(sys_.numCores());
    row.coreInQ.reserve(sys_.numCores());
    row.coreOutQ.reserve(sys_.numCores());
    for (CoreId c = 0; c < sys_.numCores(); ++c) {
        row.coreLocal.push_back(sys_.core(c).localTime());
        // Queue sizes are acquire-read and approximate while the
        // owning threads run — exactly right for occupancy telemetry.
        row.coreInQ.push_back(sys_.core(c).inQ().size());
        row.coreOutQ.push_back(sys_.core(c).outQ().size());
    }
    if (config_.progress)
        publishProgress(row);
    sampler_->push(global, std::move(row));
    samplerHostNs_ += wallNowNs() - t0;
}

void
ObsSession::publishProgress(const MetricsRow &row)
{
    RunProgress &p = *config_.progress;
    // Windowed rates against the previous publish; the first window
    // spans the run so far.
    const std::uint64_t dns = row.wallNs > lastPubWallNs_
                                  ? row.wallNs - lastPubWallNs_
                                  : row.wallNs;
    if (dns > 0) {
        const double secs = static_cast<double>(dns) / 1e9;
        const Tick dcycles =
            row.global > lastPubGlobal_ ? row.global - lastPubGlobal_
                                        : 0;
        const std::uint64_t devents =
            row.busRequests > lastPubBusRequests_
                ? row.busRequests - lastPubBusRequests_
                : 0;
        p.cyclesPerSec.store(static_cast<double>(dcycles) / secs,
                             std::memory_order_relaxed);
        p.eventsPerSec.store(static_cast<double>(devents) / secs,
                             std::memory_order_relaxed);
        lastPubWallNs_ = row.wallNs;
        lastPubGlobal_ = row.global;
        lastPubBusRequests_ = row.busRequests;
    }
    p.wallNs.store(row.wallNs, std::memory_order_relaxed);
    p.globalCycle.store(row.global, std::memory_order_relaxed);
    p.slackBound.store(row.slackBound, std::memory_order_relaxed);
    p.violations.store(row.busViolations + row.mapViolations,
                       std::memory_order_relaxed);
    p.checkpoints.store(row.checkpoints, std::memory_order_relaxed);
    p.rollbacks.store(row.rollbacks, std::memory_order_relaxed);
    p.replay.store(row.replay, std::memory_order_relaxed);
    p.epochs.fetch_add(1, std::memory_order_relaxed);
}

void
ObsSession::warnOnFirstDrop()
{
    if (dropWarned_)
        return;
    dropWarned_ = true;
    SLACKSIM_WARN("trace ring overflow: events are being dropped; "
                  "raise --obs-buffer-kb (drops are accounted in the "
                  "run report)");
}

void
ObsSession::collectTrace()
{
    if (!tracing_)
        return;
    Tracer::instance().collect();
    if (Tracer::instance().droppedTotal() != 0)
        warnOnFirstDrop();
}

void
ObsSession::finish(Tick global)
{
    if (finished_)
        return;
    finished_ = true;

    if (watchdog_)
        watchdog_->stop();

    ObsSelfStats self;

    if (sampler_) {
        sample(global);
        // Progress-only sessions (heartbeat attached, no --metrics-out)
        // keep the rows in memory and write nothing.
        if (!config_.metricsOut.empty()) {
            CheckedOfstream os(config_.metricsOut, "metrics CSV");
            if (os.ok()) {
                sampler_->writeCsv(os.stream(), config_.jobId);
                self.metricsBytes = os.bytesWritten();
            }
            if (os.finish()) {
                SLACKSIM_INFORM("metrics: ", sampler_->rows().size(),
                                " epoch samples -> ",
                                config_.metricsOut);
            } else {
                ++self.ioErrors;
            }
        }
        self.metricsRows = sampler_->rows().size();
    }
    self.samplerHostNs = samplerHostNs_;

    if (tracing_) {
        traceEnd(TraceCategory::Engine, "engine-run", global);
        auto traces = Tracer::instance().takeTraces();
        Tracer::instance().deactivate();
        std::uint64_t records = 0;
        std::uint64_t dropped = 0;
        for (const auto &t : traces) {
            records += t.records.size();
            dropped += t.dropped;
        }
        if (dropped)
            warnOnFirstDrop();
        self.traceRecords = records;
        self.traceDropped = dropped;
        CheckedOfstream os(config_.traceOut, "Chrome trace");
        if (os.ok()) {
            ChromeTraceMeta meta;
            meta.pid = traceInfo_.anchor.pid;
            meta.processName = config_.jobId.empty()
                                   ? std::string("slacksim")
                                   : "slacksim " + config_.jobId;
            meta.traceId = traceInfo_.traceId;
            meta.spanId = traceInfo_.spanId;
            meta.parentSpanId = traceInfo_.parentSpanId;
            meta.wallAnchorUs = traceInfo_.anchor.wallUs;
            meta.steadyAnchorNs = traceInfo_.anchor.steadyNs;
            meta.tscAnchor = traceInfo_.anchor.tsc;
            writeChromeTrace(os.stream(), traces, meta);
            self.traceBytes = os.bytesWritten();
        }
        if (os.finish()) {
            SLACKSIM_INFORM("trace: ", records, " events on ",
                            traces.size(), " tracks -> ",
                            config_.traceOut,
                            dropped ? " (ring overflow dropped " : "",
                            dropped ? std::to_string(dropped) : "",
                            dropped ? " records; raise --obs-buffer-kb)"
                                    : "");
        } else {
            ++self.ioErrors;
        }
    }

    if (profiling_) {
        // Both engines join their workers before finish(), so every
        // worker slot is closed; endSession() closes the manager's
        // own slot and converts ticks to ns with the full-session
        // calibration.
        forensics_.profile = Profiler::instance().endSession();
        if (hw_) {
            forensics_.profile.hw = hw_->read();
            hw_->close();
        }
        if (!forensics_.profile.verdict.empty())
            SLACKSIM_INFORM("profile: ", forensics_.profile.verdict);
        if (!config_.profileOut.empty()) {
            CheckedOfstream os(config_.profileOut, "folded stacks");
            if (os.ok())
                writeFoldedStacks(os.stream(), forensics_.profile);
            if (os.finish()) {
                SLACKSIM_INFORM("profile: folded stacks -> ",
                                config_.profileOut,
                                " (flamegraph.pl / speedscope)");
            } else {
                ++self.ioErrors;
            }
        }
    }

    // Unwire before moving the ledgers out: the uncore/pacer pointers
    // must never outlive the data they point into.
    unwire();
    forensics_.ledger = ledger_;
    forensics_.decisions = decisions_;
    forensics_.obs = self;
    forensics_.trace = traceInfo_;
    forensics_.watchdogEnabled = watchdog_ != nullptr;
    forensics_.stallMs = watchdog_ ? watchdog_->stallMs() : 0;
    forensics_.stallDumps = watchdog_ ? watchdog_->stallDumps() : 0;
    forensics_.lastStallDump =
        watchdog_ ? watchdog_->lastDump() : std::string();
}

} // namespace slacksim::obs
