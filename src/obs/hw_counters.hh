/**
 * @file
 * Optional hardware counters for a profiling session, via
 * perf_event_open. Three process-wide counters (cycles, instructions,
 * cache-misses) opened with inherit=1 before worker threads spawn, so
 * every thread the run creates is counted. inherit is incompatible
 * with PERF_FORMAT_GROUP, hence three independent fds rather than one
 * group read.
 *
 * Availability is best-effort by design: unprivileged containers
 * commonly deny the syscall (EPERM/EACCES under a strict
 * perf_event_paranoid), CI sandboxes may lack it entirely (ENOSYS),
 * and non-Linux hosts have no perf_event at all. Every such case
 * degrades to available=false with a human-readable reason carried
 * into the run report — never an error.
 */

#ifndef SLACKSIM_OBS_HW_COUNTERS_HH
#define SLACKSIM_OBS_HW_COUNTERS_HH

#include <cstdint>
#include <string>

#include "obs/profiler.hh"

namespace slacksim::obs {

/** Session-scoped perf_event counters; see file comment. */
class HwCounters
{
  public:
    HwCounters() = default;
    ~HwCounters() { close(); }

    HwCounters(const HwCounters &) = delete;
    HwCounters &operator=(const HwCounters &) = delete;

    /**
     * Try to open the three counters. @p force_unavailable is a test
     * hook exercising the fallback path on machines where the real
     * syscall would succeed.
     * @return true when all three counters opened.
     */
    bool open(bool force_unavailable = false);

    /** @return true when counters are live. */
    bool
    available() const
    {
        return available_;
    }

    /** @return why counters are unavailable ("" when available). */
    const std::string &
    reason() const
    {
        return reason_;
    }

    /** Read the counters accumulated since open(). When unavailable,
     *  returns available=false and the reason. */
    HwCounterTotals read() const;

    /** Close the fds (idempotent). */
    void close();

  private:
    bool available_ = false;
    std::string reason_;
    int fds_[3] = {-1, -1, -1};
};

} // namespace slacksim::obs

#endif // SLACKSIM_OBS_HW_COUNTERS_HH
