/**
 * @file
 * Chrome-trace / Perfetto JSON exporter for drained trace sessions.
 * The output loads directly in chrome://tracing and ui.perfetto.dev:
 * one track per registered engine thread (named after its role), span
 * begin/end pairs as "B"/"E" events, instants as "i", counters as
 * "C". Timestamps are host wall time (microseconds since activation);
 * the simulated target cycle of every record rides along in args.
 */

#ifndef SLACKSIM_OBS_CHROME_TRACE_HH
#define SLACKSIM_OBS_CHROME_TRACE_HH

#include <iosfwd>
#include <vector>

#include "obs/tracer.hh"

namespace slacksim::obs {

/** Write @p traces as one Chrome-trace JSON object to @p os. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<ThreadTrace> &traces);

} // namespace slacksim::obs

#endif // SLACKSIM_OBS_CHROME_TRACE_HH
