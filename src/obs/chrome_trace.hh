/**
 * @file
 * Chrome-trace / Perfetto JSON exporter for drained trace sessions.
 * The output loads directly in chrome://tracing and ui.perfetto.dev:
 * one track per registered engine thread (named after its role), span
 * begin/end pairs as "B"/"E" events, instants as "i", counters as
 * "C". Timestamps are host wall time (microseconds since activation);
 * the simulated target cycle of every record rides along in args.
 */

#ifndef SLACKSIM_OBS_CHROME_TRACE_HH
#define SLACKSIM_OBS_CHROME_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/tracer.hh"

namespace slacksim::obs {

/**
 * Per-process identity stamped into an exported trace: the real pid
 * (so fleet-merged traces from many supervised children don't collide
 * on engine-local thread ids), a process_name metadata track label,
 * the distributed-trace identity, and the clock anchor the fleet
 * merger uses to shift this process's relative timestamps onto the
 * wall-epoch timeline. Default-constructed meta reproduces the legacy
 * single-process output (pid 0, no metadata object).
 */
struct ChromeTraceMeta
{
    std::uint32_t pid = 0;       //!< emitting process's real pid
    std::string processName;     //!< Perfetto process track label
    std::string traceId;         //!< distributed trace id ("" = none)
    std::uint64_t spanId = 0;        //!< engine span id
    std::uint64_t parentSpanId = 0;  //!< submitter root span id
    std::uint64_t wallAnchorUs = 0;  //!< wall epoch µs at trace t0
    std::uint64_t steadyAnchorNs = 0; //!< steady clock at trace t0
    std::uint64_t tscAnchor = 0;      //!< raw TSC at trace t0
};

/** Write @p traces as one Chrome-trace JSON object to @p os. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<ThreadTrace> &traces,
                      const ChromeTraceMeta &meta = {});

} // namespace slacksim::obs

#endif // SLACKSIM_OBS_CHROME_TRACE_HH
